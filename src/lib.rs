//! # dSpace — Composable Abstractions for Smart Spaces
//!
//! A from-scratch Rust reproduction of *dSpace* (Fu & Ratnasamy, SOSP 2021):
//! an open, modular programming framework for smart spaces built around two
//! building blocks — **digivices** (declaratively-controlled actuation) and
//! **digidata** (dataflow-style IoT data processing) — composed with three
//! verbs: **mount**, **pipe**, and **yield**.
//!
//! This umbrella crate re-exports the public API of every subsystem:
//!
//! - [`value`] — attribute–value documents (JSON/YAML-subset, paths, diff,
//!   schemas) used for digi models.
//! - [`reflex`] — the jq-like embedded-policy language (§4.2, Fig. 3).
//! - [`simnet`] — deterministic discrete-event simulation of clocks, links,
//!   and latency/bandwidth, substituting for the paper's physical testbed.
//! - [`apiserver`] — a Kubernetes-style API server: object store with
//!   optimistic concurrency, Watch with ordered gap-free delivery (§3.5),
//!   admission webhooks, and RBAC (§3.6, §5.1).
//! - [`core`] — the paper's contribution: digi models, the digi-graph with
//!   the mount rule and single-writer semantics (§3.3), the Mounter, Syncer,
//!   and Policer controllers plus the topology webhook (§5.2), the driver
//!   library (§4), and the [`core::Space`] orchestration facade.
//! - [`devices`] — simulated versions of the nine retail IoT devices of
//!   Table 2, with heterogeneous vendor APIs and calibrated access latencies.
//! - [`analytics`] — synthetic stand-ins for the data frameworks of Table 3
//!   (scene detection, transcoding, stats, imitation learning).
//! - [`digis`] — the digivice/digidata catalogue and the ten deployment
//!   scenarios S1–S10 of §6.
//! - [`baselines`] — miniature Home-Assistant-like and SmartThings-like
//!   frameworks used for the §6.3 comparison.
//!
//! # Quickstart
//!
//! ```
//! use dspace::digis::scenarios::s1::S1;
//!
//! // Build scenario S1: two heterogeneous lamps unified behind a Room.
//! let mut s1 = S1::build();
//! s1.space.set_intent("lvroom/brightness", 0.8.into()).unwrap();
//! s1.space.run_for_ms(5_000);
//! // The GEENI lamp converges to the room's brightness, in Tuya scale.
//! let b1 = s1.space.status("l1/brightness").unwrap().as_f64().unwrap();
//! assert!((b1 - 802.0).abs() <= 3.0);
//! ```

pub use dspace_analytics as analytics;
pub use dspace_apiserver as apiserver;
pub use dspace_baselines as baselines;
pub use dspace_core as core;
pub use dspace_devices as devices;
pub use dspace_digis as digis;
pub use dspace_reflex as reflex;
pub use dspace_simnet as simnet;
pub use dspace_value as value;

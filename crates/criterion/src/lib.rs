//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal harness with the same surface the benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it measures a simple
//! calibrated wall-clock average and prints one line per benchmark:
//! `name                     time: 12.3 µs/iter (81234 iters)`.

use std::time::{Duration, Instant};

/// How `iter_batched` inputs are grouped. Accepted for API compatibility;
/// this harness always times one routine call at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One input per routine call.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement budget per benchmark.
const TARGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000_000;

/// The benchmark context handed to bench closures.
pub struct Bencher {
    /// Measured total time across timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// Smoke mode: run each routine exactly once, skip calibration.
    test_mode: bool,
}

impl Bencher {
    fn new(test_mode: bool) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            test_mode,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        if self.test_mode {
            self.elapsed += once;
            self.iters += 1;
            return;
        }
        let budget =
            (TARGET.as_nanos() / once.as_nanos().max(1)).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..budget {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += budget;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up + calibration.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        if self.test_mode {
            self.elapsed += once;
            self.iters += 1;
            return;
        }
        let budget =
            (TARGET.as_nanos() / once.as_nanos().max(1)).clamp(1, (MAX_ITERS / 4) as u128) as u64;
        for _ in 0..budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<50} (no iterations)");
        return;
    }
    let per = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if per >= 1e9 {
        (per / 1e9, "s")
    } else if per >= 1e6 {
        (per / 1e6, "ms")
    } else if per >= 1e3 {
        (per / 1e3, "µs")
    } else {
        (per, "ns")
    };
    println!(
        "{name:<50} time: {value:9.2} {unit}/iter ({} iters)",
        b.iters
    );
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Honors criterion's `cargo bench -- --test` smoke mode (also
    /// switchable via the `CRITERION_TEST_MODE` env var): each benchmark
    /// runs exactly once to prove it executes, skipping calibration.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_TEST_MODE").is_some();
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Forces smoke mode on or off, overriding CLI/env detection.
    pub fn with_test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// Whether this driver runs each benchmark once (smoke mode).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.test_mode);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; accepted for API compatibility and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.criterion.test_mode);
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = { $cfg };
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut n = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| n = n.wrapping_add(1)));
        assert!(n > 0);
    }

    #[test]
    fn test_mode_runs_each_benchmark_exactly_once() {
        let mut c = Criterion::default().with_test_mode(true);
        let mut calls = 0u64;
        c.bench_function("smoke/once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1, "smoke mode must run the routine exactly once");
        let mut batched_calls = 0u64;
        let mut group = c.benchmark_group("smoke");
        group.bench_function("once_batched", |b| {
            b.iter_batched(|| (), |()| batched_calls += 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(batched_calls, 1);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}

//! The `dq` command interpreter (§5.3 of the paper).
//!
//! "All digis, dSpace controllers, and policies can be created and/or
//! composed declaratively via standard Kubernetes configuration (yaml) …
//! or `dq`, which provides complementary commands/shortcuts such as run,
//! mount, yield, pipe …" This crate implements a `dq` that drives a
//! simulated space: commands are parsed and executed against a scenario
//! deployment, with virtual time advanced explicitly via `tick`.
//!
//! The interpreter is a library (so it is testable) wrapped by a tiny
//! REPL/batch binary.

use dspace_apiserver::{ApiServer, ObjectRef, Query, WalError, WatchId};
use dspace_core::graph::MountMode;
use dspace_core::policy::parse_ref;
use dspace_core::{Space, SpaceConfig};
use dspace_value::{json, Value};

/// The interpreter: a space plus command dispatch.
pub struct Dq {
    /// The space commands act on.
    pub space: Space,
    aliases: std::collections::BTreeMap<String, String>,
    /// Predicate watches opened with `watch`, keyed by their session token.
    watches: std::collections::BTreeMap<String, WatchId>,
    next_watch: usize,
}

/// Outcome of one command.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Text to print.
    Text(String),
    /// Quit requested.
    Quit,
}

impl Dq {
    /// Wraps a space.
    pub fn new(space: Space) -> Dq {
        Dq {
            space,
            aliases: Default::default(),
            watches: Default::default(),
            next_watch: 1,
        }
    }

    /// Builds an interpreter over a (possibly durable) space config: with
    /// `config.durability` set, the session resumes against whatever state
    /// a previous incarnation journaled — `list`, `graph`, and `get`
    /// answer from the recovered store immediately.
    pub fn open(config: SpaceConfig) -> Result<Dq, WalError> {
        Ok(Dq::new(Space::open(config)?))
    }

    /// Builds the interpreter around scenario S1 (the default playground).
    pub fn with_s1() -> Dq {
        let s1 = dspace_digis::scenarios::s1::S1::build();
        Dq::new(s1.space)
    }

    /// Executes one command line. Errors become printable text so a REPL
    /// session never dies on a typo.
    pub fn exec(&mut self, line: &str) -> Outcome {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Outcome::Text(String::new());
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let result = match parts[0] {
            "quit" | "exit" => return Outcome::Quit,
            "help" => Ok(HELP.to_string()),
            "get" => self.cmd_get(&parts),
            "set" => self.cmd_set(&parts),
            "mount" => self.cmd_mount(&parts, false),
            "unmount" => self.cmd_mount(&parts, true),
            "yield" => self.cmd_yield(&parts, true),
            "unyield" => self.cmd_yield(&parts, false),
            "pipe" => self.cmd_pipe(&parts),
            "run" => self.cmd_run(&parts),
            "rmns" => self.cmd_rmns(&parts),
            "alias" => self.cmd_alias(&parts),
            "graph" => Ok(self.cmd_graph()),
            "list" => Ok(self.cmd_list()),
            "find" => self.cmd_find(line),
            "watch" => self.cmd_watch(line),
            "drain" => self.cmd_drain(&parts),
            "trace" => Ok(self.cmd_trace(&parts)),
            "tick" => self.cmd_tick(&parts),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        };
        Outcome::Text(result.unwrap_or_else(|e| format!("error: {e}")))
    }

    fn oref(&self, s: &str) -> Result<ObjectRef, String> {
        let s = self.aliases.get(s).map(String::as_str).unwrap_or(s);
        if s.contains('/') {
            parse_ref(s).map_err(|e| e.to_string())
        } else {
            self.space.resolve(s).map_err(|e| e.to_string())
        }
    }

    /// `dq run <Kind> <name>`: creates a digi of a catalogue kind with its
    /// library driver (the paper's `dq run` shortcut, §5.3).
    fn cmd_run(&mut self, parts: &[&str]) -> Result<String, String> {
        let [_, kind, name] = parts else {
            return Err("usage: run <Kind> <name>".into());
        };
        let driver = dspace_digis::driver_for(kind)
            .ok_or_else(|| format!("no catalogue driver for kind {kind}"))?;
        let oref = self
            .space
            .create_digi(kind, name, driver)
            .map_err(|e| e.to_string())?;
        self.space.run_for_ms(100);
        Ok(format!("running {oref}"))
    }

    /// `dq rmns <namespace>`: tears down a whole namespace — every digi in
    /// it is deleted and its shard, drivers, devices, and mounts released.
    fn cmd_rmns(&mut self, parts: &[&str]) -> Result<String, String> {
        let [_, ns] = parts else {
            return Err("usage: rmns <namespace>".into());
        };
        let deleted = self.space.delete_namespace(ns).map_err(|e| e.to_string())?;
        self.space.run_for_ms(100);
        Ok(format!("namespace {ns} deleted ({deleted} digis)"))
    }

    /// `dq alias <short> <digi>`: a local shorthand for later commands.
    fn cmd_alias(&mut self, parts: &[&str]) -> Result<String, String> {
        match parts {
            [_, short, target] => {
                self.aliases.insert(short.to_string(), target.to_string());
                Ok(format!("{short} -> {target}"))
            }
            [_] => Ok(self
                .aliases
                .iter()
                .map(|(k, v)| format!("{k} -> {v}"))
                .collect::<Vec<_>>()
                .join("\n")),
            _ => Err("usage: alias [<short> <digi>]".into()),
        }
    }

    fn cmd_get(&mut self, parts: &[&str]) -> Result<String, String> {
        let [_, target] = parts else {
            return Err("usage: get <digi>[.path]".into());
        };
        let (name, path) = match target.split_once('.') {
            Some((n, p)) => (n, format!(".{p}")),
            None => (*target, ".".to_string()),
        };
        let oref = self.oref(name)?;
        let obj = self
            .space
            .world
            .api
            .reader(dspace_apiserver::ApiServer::ADMIN)
            .namespace(&oref.namespace)
            .get(&oref.kind, &oref.name)
            .map_err(|e| e.to_string())?;
        let v = obj.model.get_path(&path).cloned().unwrap_or(Value::Null);
        // Models render as YAML, matching the paper's presentation (Fig. 1).
        Ok(dspace_value::yaml::to_string(&v).trim_end().to_string())
    }

    fn cmd_set(&mut self, parts: &[&str]) -> Result<String, String> {
        let [_, target, raw] = parts else {
            return Err("usage: set <digi>/<attr> <json-value>".into());
        };
        let value = json::parse(raw)
            .or_else(|_| json::parse(&format!("\"{raw}\"")))
            .map_err(|e| e.to_string())?;
        self.space
            .set_intent_now(target, value)
            .map_err(|e| e.to_string())?;
        self.space.run_for_ms(100);
        Ok(format!("intent set: {target}"))
    }

    fn cmd_mount(&mut self, parts: &[&str], un: bool) -> Result<String, String> {
        let (child, parent, mode) = match parts {
            [_, c, p] => (c, p, MountMode::Expose),
            [_, c, p, m] => (
                c,
                p,
                MountMode::parse(m).ok_or_else(|| "mode must be expose|hide".to_string())?,
            ),
            _ => return Err("usage: [un]mount <child> <parent> [expose|hide]".into()),
        };
        let c = self.oref(child)?;
        let p = self.oref(parent)?;
        if un {
            self.space.unmount(&c, &p).map_err(|e| e.to_string())?;
            Ok(format!("unmounted {c} from {p}"))
        } else {
            let st = self.space.mount(&c, &p, mode).map_err(|e| e.to_string())?;
            Ok(format!("mounted {c} -> {p} ({st:?})"))
        }
    }

    fn cmd_yield(&mut self, parts: &[&str], do_yield: bool) -> Result<String, String> {
        let [_, child, parent] = parts else {
            return Err("usage: [un]yield <child> <parent>".into());
        };
        let c = self.oref(child)?;
        let p = self.oref(parent)?;
        if do_yield {
            self.space.yield_(&c, &p).map_err(|e| e.to_string())?;
            Ok(format!("{p} yielded {c}"))
        } else {
            self.space.unyield(&c, &p).map_err(|e| e.to_string())?;
            Ok(format!("{p} holds write access over {c}"))
        }
    }

    fn cmd_pipe(&mut self, parts: &[&str]) -> Result<String, String> {
        let [_, from, to] = parts else {
            return Err("usage: pipe <digi>.<out-attr> <digi>.<in-attr>".into());
        };
        let split = |s: &str| -> Result<(ObjectRef, String), String> {
            let (n, a) = s.rsplit_once('.').ok_or("endpoint must be digi.attr")?;
            Ok((self.oref(n)?, a.to_string()))
        };
        let (src, src_attr) = split(from)?;
        let (dst, dst_attr) = split(to)?;
        let sref = self
            .space
            .pipe(&src, &src_attr, &dst, &dst_attr)
            .map_err(|e| e.to_string())?;
        Ok(format!("pipe created: {sref}"))
    }

    fn cmd_graph(&mut self) -> String {
        let graph = self.space.world.graph.borrow();
        let edges = graph.edges();
        if edges.is_empty() {
            return "(empty digi-graph)".to_string();
        }
        let mut out = String::new();
        for e in edges {
            out.push_str(&format!(
                "{} -> {}  [{} {}]\n",
                e.parent,
                e.child,
                e.mode.as_str(),
                match e.state {
                    dspace_core::graph::EdgeState::Active => "active",
                    dspace_core::graph::EdgeState::Yielded => "yielded",
                }
            ));
        }
        out
    }

    fn cmd_list(&mut self) -> String {
        let mut out = String::new();
        let snap = self.space.world.api.snapshot();
        for obj in snap.query(&Query::all()) {
            out.push_str(&format!("{} (gen {})\n", obj.oref, obj.resource_version));
        }
        out
    }

    /// Splits `<kind> [in <ns>] [where <expr>]` off the raw command line.
    /// The expression is everything after the first ` where ` — reflex
    /// programs contain spaces, so it can't ride the whitespace split.
    fn parse_query(&self, line: &str, verb: &str) -> Result<Query, String> {
        let rest = line[verb.len()..].trim();
        let (head, expr) = match rest.split_once(" where ") {
            Some((h, e)) => (h.trim(), Some(e.trim())),
            None => (rest, None),
        };
        let head: Vec<&str> = head.split_whitespace().collect();
        let mut q = match head.as_slice() {
            [kind] => Query::kind(*kind),
            [kind, "in", ns] => Query::kind(*kind).in_ns(*ns),
            _ => return Err(format!("usage: {verb} <kind> [in <ns>] [where <expr>]")),
        };
        if let Some(expr) = expr {
            q = q.filter(expr).map_err(|e| e.to_string())?;
        }
        Ok(q)
    }

    /// `dq find <kind> [in <ns>] [where <expr>]`: a filtered list riding
    /// the indexed query path.
    fn cmd_find(&mut self, line: &str) -> Result<String, String> {
        let q = self.parse_query(line, "find")?;
        let objs = self
            .space
            .world
            .api
            .query(ApiServer::ADMIN, &q)
            .map_err(|e| e.to_string())?;
        if objs.is_empty() {
            return Ok("(no matches)".to_string());
        }
        let mut out = String::new();
        for obj in objs {
            out.push_str(&format!("{} (gen {})\n", obj.oref, obj.resource_version));
        }
        Ok(out.trim_end().to_string())
    }

    /// `dq watch <kind> [in <ns>] where <expr>`: subscribes to commits
    /// matching a predicate (namespace defaults to `default`). Matching is
    /// done at commit time against the index delta, so non-matching events
    /// never go pending for the session. Drain with `drain <token>`.
    fn cmd_watch(&mut self, line: &str) -> Result<String, String> {
        let mut q = self.parse_query(line, "watch")?;
        if q.namespace.is_none() {
            q = q.in_ns("default");
        }
        let id = self
            .space
            .world
            .api
            .watch_query(ApiServer::ADMIN, &q)
            .map_err(|e| e.to_string())?;
        let token = format!("w{}", self.next_watch);
        self.next_watch += 1;
        self.watches.insert(token.clone(), id);
        Ok(format!("{token}: watching {}", describe(&q)))
    }

    /// `dq drain <token>`: prints (and consumes) the pending events of a
    /// watch opened with `watch`.
    fn cmd_drain(&mut self, parts: &[&str]) -> Result<String, String> {
        let [_, token] = parts else {
            return Err("usage: drain <watch-token>".into());
        };
        let id = *self
            .watches
            .get(*token)
            .ok_or_else(|| format!("no watch '{token}' (open one with 'watch')"))?;
        let events = self.space.world.api.poll(id);
        if events.is_empty() {
            return Ok("(no events)".to_string());
        }
        let mut out = String::new();
        for ev in events {
            out.push_str(&format!(
                "{:?} {} (gen {})\n",
                ev.kind, ev.oref, ev.resource_version
            ));
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_trace(&mut self, parts: &[&str]) -> String {
        let n: usize = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
        let entries = self.space.world.trace.entries();
        let start = entries.len().saturating_sub(n);
        let mut out = String::new();
        for e in &entries[start..] {
            out.push_str(&format!(
                "{:>10.1}ms {:?} {} {}\n",
                e.t as f64 / 1e6,
                e.kind,
                e.subject,
                e.detail
            ));
        }
        out
    }

    fn cmd_tick(&mut self, parts: &[&str]) -> Result<String, String> {
        let ms: u64 = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
        self.space.run_for_ms(ms);
        Ok(format!("t = {:.1}ms", self.space.now_ms()))
    }
}

/// Renders a query for watch/find confirmations.
fn describe(q: &Query) -> String {
    let mut s = q.kind.clone().unwrap_or_else(|| "*".to_string());
    if let Some(ns) = &q.namespace {
        s.push_str(&format!(" in {ns}"));
    }
    if let Some(p) = &q.pred {
        s.push_str(&format!(" where {}", p.source()));
    }
    s
}

/// Help text.
pub const HELP: &str = "\
dq — dSpace command line (simulated space)
  get <digi>[.path]               read a model (or an attribute subtree)
  set <digi>/<attr> <value>       write a control intent
  mount <child> <parent> [mode]   mount a digi (mode: expose|hide)
  unmount <child> <parent>        remove a mount
  yield <child> <parent>          revoke the parent's write access
  unyield <child> <parent>        restore the parent's write access
  pipe <digi>.<out> <digi>.<in>   create a data flow
  run <Kind> <name>               create a digi with its catalogue driver
  rmns <namespace>                delete every digi in a namespace
  alias [<short> <digi>]          define or list name shorthands
  graph                           show the digi-graph
  list                            list all API objects
  find <kind> [in <ns>] [where <expr>]   filtered list (indexed)
  watch <kind> [in <ns>] where <expr>    subscribe to matching commits
  drain <token>                   print a watch's pending events
  trace [n]                       show the last n runtime trace entries
  tick [ms]                       advance virtual time (default 1000 ms)
  help | quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn text(o: Outcome) -> String {
        match o {
            Outcome::Text(s) => s,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut dq = Dq::with_s1();
        text(dq.exec("set lvroom/brightness 0.8"));
        text(dq.exec("tick 5000"));
        let out = text(dq.exec("get l1.control.brightness.status"));
        // 0.8 universal = 802 on the Tuya scale.
        assert!(out.contains("802"), "{out}");
    }

    #[test]
    fn graph_lists_mounts() {
        let mut dq = Dq::with_s1();
        let out = text(dq.exec("graph"));
        assert!(
            out.contains("Room/default/lvroom -> UniLamp/default/ul1"),
            "{out}"
        );
        assert!(out.contains("active"));
    }

    #[test]
    fn yield_and_unyield() {
        let mut dq = Dq::with_s1();
        let out = text(dq.exec("yield ul1 lvroom"));
        assert!(out.contains("yielded"), "{out}");
        let out = text(dq.exec("graph"));
        assert!(out.contains("yielded"), "{out}");
        text(dq.exec("unyield ul1 lvroom"));
        let out = text(dq.exec("graph"));
        assert!(!out.contains("yielded"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut dq = Dq::with_s1();
        let out = text(dq.exec("mount lvroom ul1"));
        assert!(out.contains("error"), "{out}"); // cycle
        let out = text(dq.exec("get ghost"));
        assert!(out.contains("error"), "{out}");
        let out = text(dq.exec("frobnicate"));
        assert!(out.contains("unknown command"), "{out}");
    }

    #[test]
    fn list_and_trace_and_help() {
        let mut dq = Dq::with_s1();
        assert!(text(dq.exec("list")).contains("Room/default/lvroom"));
        assert!(text(dq.exec("help")).contains("mount"));
        text(dq.exec("set lvroom/brightness 0.4"));
        text(dq.exec("tick 3000"));
        assert!(!text(dq.exec("trace 5")).is_empty());
        assert_eq!(dq.exec("quit"), Outcome::Quit);
    }

    #[test]
    fn find_filters_with_expressions() {
        let mut dq = Dq::with_s1();
        text(dq.exec("run Plug plugA"));
        text(dq.exec("run Plug plugB"));
        text(dq.exec("set plugA/power on"));
        text(dq.exec("tick 3000"));
        let out = text(dq.exec("find Plug where .control.power.intent == \"on\""));
        assert!(out.contains("Plug/default/plugA"), "{out}");
        assert!(!out.contains("plugB"), "{out}");
        let out = text(dq.exec("find Plug in default"));
        assert!(out.contains("plugA") && out.contains("plugB"), "{out}");
        assert!(text(dq.exec("find Plug where .nope ==")).contains("error"));
        assert!(text(dq.exec("find")).contains("error"));
    }

    #[test]
    fn watch_where_delivers_only_matching_commits() {
        let mut dq = Dq::with_s1();
        text(dq.exec("run Plug plugA"));
        text(dq.exec("run Plug plugB"));
        let out = text(dq.exec("watch Plug where .control.power.intent == \"on\""));
        assert!(out.starts_with("w1:"), "{out}");
        let id = dq.watches["w1"];
        // A non-matching commit never goes pending for the session.
        text(dq.exec("set plugB/power off"));
        assert!(!dq.space.world.api.has_pending(id));
        text(dq.exec("set plugA/power on"));
        let out = text(dq.exec("drain w1"));
        assert!(out.contains("Plug/default/plugA"), "{out}");
        assert!(!out.contains("plugB"), "{out}");
        assert_eq!(text(dq.exec("drain w1")), "(no events)");
        assert!(text(dq.exec("drain w9")).contains("error"));
    }

    #[test]
    fn hot_read_commands_ride_the_snapshot_path() {
        let mut dq = Dq::with_s1();
        text(dq.exec("tick 2000"));
        let direct_before = dq.space.world.api.direct_reads();
        let snap_before = dq.space.world.api.snapshot_reads();
        text(dq.exec("get l1.control.brightness"));
        text(dq.exec("get lvroom"));
        text(dq.exec("list"));
        assert!(
            dq.space.world.api.snapshot_reads() >= snap_before + 3,
            "get/list must read through StoreSnapshot"
        );
        assert_eq!(
            dq.space.world.api.direct_reads(),
            direct_before,
            "CLI reads must never take a store read (or a store lock)"
        );
    }

    #[test]
    fn run_creates_catalogue_digi_and_alias_works() {
        let mut dq = Dq::with_s1();
        let out = text(dq.exec("run Plug plug9"));
        assert!(out.contains("running Plug/default/plug9"), "{out}");
        let out = text(dq.exec("run Hovercraft h1"));
        assert!(out.contains("error"), "{out}");
        text(dq.exec("alias p plug9"));
        let out = text(dq.exec("get p.meta.kind"));
        assert!(out.contains("Plug"), "{out}");
        let out = text(dq.exec("alias"));
        assert!(out.contains("p -> plug9"), "{out}");
    }

    #[test]
    fn rmns_tears_down_namespace() {
        let mut dq = Dq::with_s1();
        let out = text(dq.exec("rmns default"));
        assert!(out.contains("namespace default deleted"), "{out}");
        assert!(text(dq.exec("get l1")).contains("error"));
        assert!(!text(dq.exec("list")).contains("Room/default/lvroom"));
        assert_eq!(text(dq.exec("graph")), "(empty digi-graph)");
        assert!(text(dq.exec("rmns")).contains("usage"));
    }

    #[test]
    fn unmount_removes_edge() {
        let mut dq = Dq::with_s1();
        text(dq.exec("unmount ul2 lvroom"));
        let out = text(dq.exec("graph"));
        // The room→ul2 edge is gone; ul2's own child mount remains.
        assert!(
            !out.contains("Room/default/lvroom -> UniLamp/default/ul2"),
            "{out}"
        );
        assert!(
            out.contains("UniLamp/default/ul2 -> LifxLamp/default/l2"),
            "{out}"
        );
    }

    #[test]
    fn durable_session_resumes_after_restart() {
        let dir = std::env::temp_dir().join(format!("dspace-dq-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || SpaceConfig {
            durability: Some(dspace_apiserver::DurabilityOptions::new(dir.clone())),
            ..SpaceConfig::default()
        };

        // First session: build a small world through the CLI, journal it.
        let mut dq = Dq::open(config()).unwrap();
        dspace_digis::register_all(&mut dq.space);
        text(dq.exec("run Room den"));
        text(dq.exec("run Plug plug1"));
        assert!(!text(dq.exec("mount plug1 den")).contains("error"));
        text(dq.exec("set plug1/power on"));
        text(dq.exec("tick 3000"));
        let list = text(dq.exec("list"));
        let graph = text(dq.exec("graph"));
        assert!(graph.contains("Room/default/den -> Plug/default/plug1"));
        drop(dq); // crash

        // Second session: list/graph/get answer from the recovered store
        // before any new write.
        let mut dq = Dq::open(config()).unwrap();
        dspace_digis::register_all(&mut dq.space);
        assert_eq!(text(dq.exec("list")), list);
        assert_eq!(text(dq.exec("graph")), graph);
        assert!(text(dq.exec("get plug1.control.power.intent")).contains("on"));
        // Indexed finds work against the recovered store too: the indexes
        // are rebuilt on demand from the recovered objects.
        let found = text(dq.exec("find Plug where .control.power.intent == \"on\""));
        assert!(found.contains("Plug/default/plug1"), "{found}");

        // And the session keeps going: catalogue drivers re-attach to the
        // recovered digi, new digis and intents work.
        let plug1 = dq.space.resolve("plug1").unwrap();
        dq.space
            .world
            .add_driver(plug1, dspace_digis::driver_for("Plug").unwrap());
        text(dq.exec("run Plug plug2"));
        assert!(text(dq.exec("list")).contains("Plug/default/plug2"));
        // plug1 is still mounted under den with an active parent, so a
        // direct child write is reverted by the recovered mounter (the
        // parent replica holds the writer slot) — mount semantics survive
        // the restart too.
        dq.space
            .set_intent_now("plug1/power", "off".into())
            .unwrap();
        text(dq.exec("tick 3000"));
        let get_out = text(dq.exec("get plug1.control.power.intent"));
        assert!(get_out.contains("on"), "get: {get_out}");
        // An unmounted digi takes user intents directly.
        text(dq.exec("set plug2/power on"));
        text(dq.exec("tick 3000"));
        let get_out = text(dq.exec("get plug2.control.power.intent"));
        assert!(get_out.contains("on"), "get: {get_out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The `dq` binary: a REPL (or batch interpreter) over a simulated space.
//!
//! ```text
//! dq               # interactive REPL on scenario S1
//! dq -c "set lvroom/brightness 0.8" -c "tick 5000" -c "get lvroom"
//! ```

use std::io::{BufRead, Write};

use dq::{Dq, Outcome};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut dq = Dq::with_s1();
    // Batch mode: -c commands.
    let mut batch = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "-c" {
            i += 1;
            if let Some(cmd) = args.get(i) {
                batch.push(cmd.clone());
            }
        } else if args[i] == "--help" {
            println!("{}", dq::HELP);
            return;
        }
        i += 1;
    }
    if !batch.is_empty() {
        for cmd in batch {
            match dq.exec(&cmd) {
                Outcome::Text(t) if !t.is_empty() => println!("{t}"),
                Outcome::Text(_) => {}
                Outcome::Quit => return,
            }
        }
        return;
    }
    // REPL mode.
    println!("dq — dSpace shell over scenario S1 ('help' for commands)");
    let stdin = std::io::stdin();
    loop {
        print!("dq> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match dq.exec(&line) {
                Outcome::Text(t) if !t.is_empty() => println!("{t}"),
                Outcome::Text(_) => {}
                Outcome::Quit => break,
            },
            Err(_) => break,
        }
    }
}

//! The topology admission webhook (§5.2 of the paper).
//!
//! "Topology webhook tracks the latest status of the digi-graph and rejects
//! any invalid changes (e.g., an invalid mount/pipe request) that lead to
//! an invalid digi-graph."
//!
//! The webhook owns the authoritative [`DigiGraph`]: it *reviews* proposed
//! model writes that would change mount references (rejecting mount-rule,
//! cycle, and single-writer violations) and *observes* committed writes to
//! keep the graph current. Pipe requests (`Sync` objects) are checked for
//! the single-writer-per-port rule of §3.2.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dspace_apiserver::{
    AdmissionResponse, AdmissionReview, AdmissionWebhook, Object, ObjectRef, Verb,
};
use dspace_value::Value;

use crate::graph::{DigiGraph, EdgeState, MountMode};
#[cfg(test)]
use crate::model::MOUNT_ACTIVE;
use crate::model::MOUNT_YIELDED;

/// A mount reference as written in a parent model's `.mount` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountRef {
    /// Child object.
    pub child: ObjectRef,
    /// Expose/hide.
    pub mode: MountMode,
    /// Active/yielded.
    pub state: EdgeState,
}

/// Extracts all mount references from a model document.
///
/// The child's namespace is taken from the parent (mounts are
/// namespace-local in this reproduction).
pub fn mount_refs(model: &Value, namespace: &str) -> Vec<MountRef> {
    let mut out = Vec::new();
    let Some(kinds) = model.get_path(".mount").and_then(Value::as_object) else {
        return out;
    };
    for (kind, names) in kinds {
        let Some(names) = names.as_object() else {
            continue;
        };
        for (name, body) in names {
            let mode = body
                .get_path("mode")
                .and_then(Value::as_str)
                .and_then(MountMode::parse)
                .unwrap_or(MountMode::Expose);
            let state = match body.get_path("status").and_then(Value::as_str) {
                Some(MOUNT_YIELDED) => EdgeState::Yielded,
                _ => EdgeState::Active,
            };
            out.push(MountRef {
                child: ObjectRef::new(kind.clone(), namespace, name.clone()),
                mode,
                state,
            });
        }
    }
    out
}

/// A pipe target, used for the single-writer-per-port check.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Port {
    target: ObjectRef,
    path: String,
}

fn sync_spec_ports(model: &Value) -> Option<(ObjectRef, Port)> {
    let tgt = model.get_path(".spec.target")?;
    let target = ObjectRef::new(
        tgt.get_path("kind")?.as_str()?,
        tgt.get_path("namespace")
            .and_then(Value::as_str)
            .unwrap_or("default"),
        tgt.get_path("name")?.as_str()?,
    );
    let path = tgt.get_path("path")?.as_str()?.to_string();
    let src = model.get_path(".spec.source")?;
    let source = ObjectRef::new(
        src.get_path("kind")?.as_str()?,
        src.get_path("namespace")
            .and_then(Value::as_str)
            .unwrap_or("default"),
        src.get_path("name")?.as_str()?,
    );
    Some((source, Port { target, path }))
}

/// The topology webhook. Shares the digi-graph with the rest of the
/// runtime through `Rc<RefCell<_>>`.
pub struct TopologyWebhook {
    graph: Rc<RefCell<DigiGraph>>,
    /// Sync object → its target port (for pipe single-writer enforcement).
    ports: BTreeMap<ObjectRef, Port>,
}

impl TopologyWebhook {
    /// Creates the webhook around a shared graph.
    pub fn new(graph: Rc<RefCell<DigiGraph>>) -> Self {
        TopologyWebhook {
            graph,
            ports: BTreeMap::new(),
        }
    }

    fn review_digi(&self, review: &AdmissionReview<'_>) -> AdmissionResponse {
        let parent = review.oref.clone();
        let ns = &parent.namespace;
        let old_refs = review.old.map(|m| mount_refs(m, ns)).unwrap_or_default();
        let new_refs = review.new.map(|m| mount_refs(m, ns)).unwrap_or_default();
        let graph = self.graph.borrow();

        // Additions must satisfy the mount rule and the single-writer rule.
        for r in &new_refs {
            let existed = old_refs.iter().any(|o| o.child == r.child);
            if !existed {
                if let Err(e) = graph.check_mount(&r.child, &parent) {
                    return AdmissionResponse::Deny(e.to_string());
                }
                if r.state == EdgeState::Active {
                    if let Some(holder) = graph.active_parent(&r.child) {
                        if holder != parent {
                            return AdmissionResponse::Deny(format!(
                                "{} already has an active parent ({holder}); \
                                 new mounts must start yielded",
                                r.child
                            ));
                        }
                    }
                }
            } else {
                // State transitions: yielded -> active needs the writer slot
                // to be free.
                let was = old_refs
                    .iter()
                    .find(|o| o.child == r.child)
                    .expect("existed");
                if was.state == EdgeState::Yielded && r.state == EdgeState::Active {
                    if let Some(holder) = graph.active_parent(&r.child) {
                        if holder != parent {
                            return AdmissionResponse::Deny(format!(
                                "cannot unyield {}: {holder} holds write access",
                                r.child
                            ));
                        }
                    }
                }
            }
        }
        AdmissionResponse::Allow
    }

    fn review_sync(&self, review: &AdmissionReview<'_>) -> AdmissionResponse {
        if review.verb == Verb::Delete {
            return AdmissionResponse::Allow;
        }
        let Some(new) = review.new else {
            return AdmissionResponse::Allow;
        };
        let Some((_source, port)) = sync_spec_ports(new) else {
            return AdmissionResponse::Deny("malformed Sync spec".into());
        };
        // At most one digidata can pipe to an input attribute (§3.2).
        for (existing_ref, existing_port) in &self.ports {
            if existing_ref != review.oref && *existing_port == port {
                return AdmissionResponse::Deny(format!(
                    "port {}{} already written by {existing_ref}",
                    port.target, port.path
                ));
            }
        }
        AdmissionResponse::Allow
    }

    fn observe_digi(&mut self, review: &AdmissionReview<'_>) {
        let parent = review.oref.clone();
        let ns = &parent.namespace;
        let old_refs = review.old.map(|m| mount_refs(m, ns)).unwrap_or_default();
        let new_refs = review.new.map(|m| mount_refs(m, ns)).unwrap_or_default();
        let mut graph = self.graph.borrow_mut();
        // Removals.
        for o in &old_refs {
            if !new_refs.iter().any(|n| n.child == o.child) {
                let _ = graph.unmount(&o.child, &parent);
            }
        }
        // Additions and state changes.
        for n in &new_refs {
            match old_refs.iter().find(|o| o.child == n.child) {
                None => {
                    // Review already validated; mount() may still downgrade
                    // to yielded per the single-writer rule.
                    let _ = graph.mount(&n.child, &parent, n.mode);
                    if n.state == EdgeState::Yielded {
                        let _ = graph.yield_edge(&n.child, &parent);
                    }
                }
                Some(o) if o.state != n.state => match n.state {
                    EdgeState::Yielded => {
                        let _ = graph.yield_edge(&n.child, &parent);
                    }
                    EdgeState::Active => {
                        let _ = graph.unyield_edge(&n.child, &parent);
                    }
                },
                _ => {}
            }
        }
    }

    /// Rebuilds the webhook's derived state — graph edges and Sync port
    /// claims — from objects recovered out of durable storage. The models
    /// were admitted when they first committed, so edges are re-installed
    /// verbatim ([`DigiGraph::restore`]) rather than re-reviewed: replay
    /// order is namespace order, not commit order, and re-running the
    /// yield-on-second-parent transition could flip edge states.
    pub fn restore(&mut self, objects: &[Object]) {
        let mut graph = self.graph.borrow_mut();
        for obj in objects {
            match obj.oref.kind.as_str() {
                "Sync" => {
                    if let Some((_s, port)) = sync_spec_ports(&obj.model) {
                        self.ports.insert(obj.oref.clone(), port);
                    }
                }
                "Policy" => {}
                _ => {
                    for r in mount_refs(&obj.model, &obj.oref.namespace) {
                        graph.restore(crate::graph::MountEdge {
                            parent: obj.oref.clone(),
                            child: r.child,
                            mode: r.mode,
                            state: r.state,
                        });
                    }
                }
            }
        }
    }

    fn observe_sync(&mut self, review: &AdmissionReview<'_>) {
        match review.verb {
            Verb::Delete => {
                self.ports.remove(review.oref);
            }
            _ => {
                if let Some((_s, port)) = review.new.and_then(sync_spec_ports) {
                    self.ports.insert(review.oref.clone(), port);
                }
            }
        }
    }
}

impl AdmissionWebhook for TopologyWebhook {
    fn name(&self) -> &str {
        "topology"
    }

    fn review(&mut self, review: &AdmissionReview<'_>) -> AdmissionResponse {
        // Digi names become path segments of the parent's replica
        // (`.mount.<Kind>.<name>`): a dot inside the name splits the
        // segment and corrupts every replica-path parse downstream, so
        // such names never enter the space.
        if review.verb == Verb::Create
            && (review.oref.name.contains('.') || review.oref.kind.contains('.'))
        {
            return AdmissionResponse::Deny(format!(
                "name {} contains '.', which is reserved as the model path separator",
                review.oref
            ));
        }
        match review.oref.kind.as_str() {
            "Sync" => self.review_sync(review),
            "Policy" => AdmissionResponse::Allow,
            _ => self.review_digi(review),
        }
    }

    fn observe(&mut self, review: &AdmissionReview<'_>) {
        match review.oref.kind.as_str() {
            "Sync" => self.observe_sync(review),
            "Policy" => {}
            _ => self.observe_digi(review),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_apiserver::{ApiError, ApiServer};
    use dspace_value::json;

    fn digi_model(kind: &str, name: &str) -> Value {
        json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "default"}},
                 "control": {{}}, "mount": {{}}, "obs": {{}}}}"#
        ))
        .unwrap()
    }

    fn setup() -> (ApiServer, Rc<RefCell<DigiGraph>>) {
        let graph = Rc::new(RefCell::new(DigiGraph::new()));
        let mut api = ApiServer::new();
        api.register_webhook(Box::new(TopologyWebhook::new(graph.clone())));
        for (k, n) in [
            ("Lamp", "l1"),
            ("Room", "r1"),
            ("Room", "r2"),
            ("Power", "pc"),
        ] {
            api.create(
                ApiServer::ADMIN,
                &ObjectRef::default_ns(k, n),
                digi_model(k, n),
            )
            .unwrap();
        }
        (api, graph)
    }

    fn mount_patch(kind: &str, name: &str, status: &str) -> (String, Value) {
        (
            format!(".mount.{kind}.{name}"),
            json::parse(&format!(
                r#"{{"mode": "expose", "status": "{status}", "gen": 0}}"#
            ))
            .unwrap(),
        )
    }

    #[test]
    fn dotted_names_are_rejected_at_admission() {
        let (mut api, _graph) = setup();
        // A dot in the digi name would shear `.mount.Lamp.bad.name` into
        // four segments and corrupt the replica path.
        let err = api
            .create(
                ApiServer::ADMIN,
                &ObjectRef::default_ns("Lamp", "bad.name"),
                digi_model("Lamp", "bad.name"),
            )
            .unwrap_err();
        assert!(
            matches!(&err, ApiError::AdmissionDenied { webhook, reason }
                if webhook == "topology" && reason.contains("path separator")),
            "got {err:?}"
        );
        // Dotted kinds are just as unrepresentable.
        assert!(api
            .create(
                ApiServer::ADMIN,
                &ObjectRef::default_ns("La.mp", "ok"),
                digi_model("La.mp", "ok"),
            )
            .is_err());
        // Dot-free names still pass.
        api.create(
            ApiServer::ADMIN,
            &ObjectRef::default_ns("Lamp", "dot-free"),
            digi_model("Lamp", "dot-free"),
        )
        .unwrap();
    }

    #[test]
    fn mount_write_updates_graph() {
        let (mut api, graph) = setup();
        let room = ObjectRef::default_ns("Room", "r1");
        let (path, v) = mount_patch("Lamp", "l1", "active");
        api.patch_path(ApiServer::ADMIN, &room, &path, v).unwrap();
        let g = graph.borrow();
        assert_eq!(
            g.active_parent(&ObjectRef::default_ns("Lamp", "l1")),
            Some(room)
        );
    }

    #[test]
    fn cycle_rejected_at_admission() {
        let (mut api, _graph) = setup();
        let room = ObjectRef::default_ns("Room", "r1");
        let lamp = ObjectRef::default_ns("Lamp", "l1");
        let (path, v) = mount_patch("Lamp", "l1", "active");
        api.patch_path(ApiServer::ADMIN, &room, &path, v).unwrap();
        // Now mount the room under the lamp: cycle.
        let (path, v) = mount_patch("Room", "r1", "active");
        let err = api
            .patch_path(ApiServer::ADMIN, &lamp, &path, v)
            .unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn second_active_parent_rejected() {
        let (mut api, _graph) = setup();
        let r1 = ObjectRef::default_ns("Room", "r1");
        let pc = ObjectRef::default_ns("Power", "pc");
        let (path, v) = mount_patch("Lamp", "l1", "active");
        api.patch_path(ApiServer::ADMIN, &r1, &path, v).unwrap();
        // Power controller claims active: denied.
        let (path, v) = mount_patch("Lamp", "l1", "active");
        let err = api.patch_path(ApiServer::ADMIN, &pc, &path, v).unwrap_err();
        assert!(err.to_string().contains("active parent"), "{err}");
        // Yielded mount is fine.
        let (path, v) = mount_patch("Lamp", "l1", "yielded");
        api.patch_path(ApiServer::ADMIN, &pc, &path, v).unwrap();
    }

    #[test]
    fn yield_transition_tracked_and_unyield_guarded() {
        let (mut api, graph) = setup();
        let r1 = ObjectRef::default_ns("Room", "r1");
        let pc = ObjectRef::default_ns("Power", "pc");
        let lamp = ObjectRef::default_ns("Lamp", "l1");
        let (p1, v1) = mount_patch("Lamp", "l1", "active");
        api.patch_path(ApiServer::ADMIN, &r1, &p1, v1).unwrap();
        let (p2, v2) = mount_patch("Lamp", "l1", "yielded");
        api.patch_path(ApiServer::ADMIN, &pc, &p2, v2).unwrap();
        // Unyield by pc while r1 active: denied.
        let err = api
            .patch_path(
                ApiServer::ADMIN,
                &pc,
                ".mount.Lamp.l1.status",
                MOUNT_ACTIVE.into(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("write access"), "{err}");
        // r1 yields, then pc can take over.
        api.patch_path(
            ApiServer::ADMIN,
            &r1,
            ".mount.Lamp.l1.status",
            MOUNT_YIELDED.into(),
        )
        .unwrap();
        api.patch_path(
            ApiServer::ADMIN,
            &pc,
            ".mount.Lamp.l1.status",
            MOUNT_ACTIVE.into(),
        )
        .unwrap();
        assert_eq!(graph.borrow().active_parent(&lamp), Some(pc));
    }

    #[test]
    fn unmount_removes_edge_from_graph() {
        let (mut api, graph) = setup();
        let r1 = ObjectRef::default_ns("Room", "r1");
        let (p, v) = mount_patch("Lamp", "l1", "active");
        api.patch_path(ApiServer::ADMIN, &r1, &p, v).unwrap();
        api.delete_path(ApiServer::ADMIN, &r1, ".mount.Lamp.l1")
            .unwrap();
        assert!(graph
            .borrow()
            .parents_of(&ObjectRef::default_ns("Lamp", "l1"))
            .is_empty());
        // Can now mount to another room.
        let r2 = ObjectRef::default_ns("Room", "r2");
        let (p, v) = mount_patch("Lamp", "l1", "active");
        api.patch_path(ApiServer::ADMIN, &r2, &p, v).unwrap();
        assert_eq!(
            graph
                .borrow()
                .active_parent(&ObjectRef::default_ns("Lamp", "l1")),
            Some(r2)
        );
    }

    #[test]
    fn pipe_single_writer_per_port() {
        let (mut api, _graph) = setup();
        let mk = |name: &str, src: &str, dst: &str| {
            json::parse(&format!(
                r#"{{"meta": {{"kind": "Sync", "name": "{name}", "namespace": "default"}},
                     "spec": {{
                        "source": {{"kind": "Scene", "name": "{src}", "path": ".data.output.objects"}},
                        "target": {{"kind": "Stats", "name": "{dst}", "path": ".data.input.objects"}}
                     }}}}"#
            ))
            .unwrap()
        };
        let s1 = ObjectRef::default_ns("Sync", "s1");
        api.create(ApiServer::ADMIN, &s1, mk("s1", "scA", "stats"))
            .unwrap();
        // A second writer to the same target port is rejected.
        let s2 = ObjectRef::default_ns("Sync", "s2");
        let err = api
            .create(ApiServer::ADMIN, &s2, mk("s2", "scB", "stats"))
            .unwrap_err();
        assert!(err.to_string().contains("already written"), "{err}");
        // Deleting the first frees the port.
        api.delete(ApiServer::ADMIN, &s1).unwrap();
        api.create(ApiServer::ADMIN, &s2, mk("s2", "scB", "stats"))
            .unwrap();
    }

    #[test]
    fn diamond_rejected_at_admission() {
        let (mut api, _g) = setup();
        let r1 = ObjectRef::default_ns("Room", "r1");
        let r2 = ObjectRef::default_ns("Room", "r2");
        let pc = ObjectRef::default_ns("Power", "pc");
        // pc -> r1, r1 -> l1. Then pc -> l1 would create a diamond.
        let (p, v) = mount_patch("Room", "r1", "active");
        api.patch_path(ApiServer::ADMIN, &pc, &p, v).unwrap();
        let (p, v) = mount_patch("Lamp", "l1", "active");
        api.patch_path(ApiServer::ADMIN, &r1, &p, v).unwrap();
        let (p, v) = mount_patch("Lamp", "l1", "yielded");
        let err = api.patch_path(ApiServer::ADMIN, &pc, &p, v).unwrap_err();
        assert!(err.to_string().contains("mount rule"), "{err}");
        // An unrelated room can still mount it (multi-root is fine).
        let (p, v) = mount_patch("Lamp", "l1", "yielded");
        api.patch_path(ApiServer::ADMIN, &r2, &p, v).unwrap();
    }
}

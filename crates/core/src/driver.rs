//! The driver programming library (§4 of the paper).
//!
//! A digi driver is a set of *handlers* invoked in response to model
//! updates. Handlers have **filters** (which attribute subtree must have
//! changed), **priorities** (low runs before high, §4.3), and a body —
//! either native Rust code or a **reflex**: a jq policy executed by the
//! [`dspace_reflex`] interpreter (Fig. 3). Reflexes embedded in the model
//! under `.reflex.<name>` are (re)registered automatically at the start of
//! every reconciliation cycle, so users can add or reconfigure behaviour
//! at runtime by patching the model (§4.2).
//!
//! A reconciliation cycle (Fig. 4): compute the changes between the
//! previous and the new model, run matching handlers from low to high
//! priority over a working copy, and return the resulting model plus any
//! side effects (device commands) for the runtime to execute.

use dspace_reflex::{Env, Program};
use dspace_value::{diff, Change, Path, Value};

use crate::model::DigiModel;

/// A side effect requested by a handler, executed by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send a command to the actuator attached to this digi (the physical
    /// device or data-processing engine behind a leaf digi).
    Device(Value),
    /// Diagnostic log line.
    Log(String),
}

/// When a handler should run: the handler fires if any changed path and the
/// filter prefix are prefixes of one another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    prefix: Path,
}

impl Filter {
    /// Fires on any model change.
    pub fn any() -> Self {
        Filter {
            prefix: Path::root(),
        }
    }

    /// Fires on changes under `.control` (the `@digi.on.control` decorator).
    pub fn on_control() -> Self {
        Filter {
            prefix: ".control".parse().expect("static"),
        }
    }

    /// Fires on changes under `.control.<attr>`.
    pub fn on_control_attr(attr: &str) -> Self {
        Filter {
            prefix: format!(".control.{attr}").parse().expect("valid attr"),
        }
    }

    /// Fires on changes under `.obs`.
    pub fn on_obs() -> Self {
        Filter {
            prefix: ".obs".parse().expect("static"),
        }
    }

    /// Fires on changes under `.data.input`.
    pub fn on_data_input() -> Self {
        Filter {
            prefix: ".data.input".parse().expect("static"),
        }
    }

    /// Fires on changes under `.data.output`.
    pub fn on_data_output() -> Self {
        Filter {
            prefix: ".data.output".parse().expect("static"),
        }
    }

    /// Fires on changes under `.mount` (children replicas).
    pub fn on_mount() -> Self {
        Filter {
            prefix: ".mount".parse().expect("static"),
        }
    }

    /// Fires on changes under an arbitrary path.
    pub fn on_path(path: &str) -> Self {
        Filter {
            prefix: path.parse().unwrap_or_else(|_| Path::root()),
        }
    }

    /// Returns `true` if this filter matches the change set.
    pub fn matches(&self, changes: &[Change]) -> bool {
        if self.prefix.is_empty() {
            return !changes.is_empty();
        }
        changes
            .iter()
            .any(|c| self.prefix.is_prefix_of(&c.path) || c.path.is_prefix_of(&self.prefix))
    }
}

/// Context passed to native handlers during a reconciliation cycle.
pub struct ReconcileCtx<'a> {
    /// The working copy of the model; mutations here become the new model.
    pub model: &'a mut Value,
    /// Leaf-level changes that triggered this cycle.
    pub changes: &'a [Change],
    /// Current space time, in seconds (drives `$time` in policies).
    pub now_s: f64,
    /// Side effects to be executed by the runtime after the cycle.
    pub effects: &'a mut Vec<Effect>,
}

impl<'a> ReconcileCtx<'a> {
    /// Typed view over the working model.
    pub fn digi(&mut self) -> DigiModel<'_> {
        DigiModel::new(self.model)
    }

    /// Returns `true` if any change touched `path` (prefix match).
    pub fn changed(&self, path: &str) -> bool {
        Filter::on_path(path).matches(self.changes)
    }

    /// Emits a device command effect.
    pub fn device(&mut self, cmd: Value) {
        self.effects.push(Effect::Device(cmd));
    }

    /// Emits a log effect.
    pub fn log(&mut self, msg: impl Into<String>) {
        self.effects.push(Effect::Log(msg.into()));
    }
}

/// A handler body: native Rust or a compiled reflex policy. Bodies are
/// `Send`: a driver's reconcile pass may run as a plan job on a shard
/// worker thread, so handlers must not capture thread-pinned state.
enum Body {
    Native(Box<dyn FnMut(&mut ReconcileCtx<'_>) + Send>),
    Reflex(Program),
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Native(_) => f.write_str("Native(..)"),
            Body::Reflex(p) => write!(f, "Reflex({:?})", p.source),
        }
    }
}

/// A registered handler.
#[derive(Debug)]
pub struct Handler {
    /// Handler name; reflexes with the same name replace it (§4.2).
    pub name: String,
    /// Execution priority: low runs before high (§4.3). Negative disables.
    pub priority: i64,
    /// The change filter.
    pub filter: Filter,
    body: Body,
}

/// The result of one reconciliation cycle.
#[derive(Debug)]
pub struct ReconcileResult {
    /// The model after all handlers ran.
    pub model: Value,
    /// Side effects requested by handlers.
    pub effects: Vec<Effect>,
    /// Handler errors (reflex evaluation failures); the cycle continues
    /// past them, matching kopf-style resilient operators.
    pub errors: Vec<String>,
    /// Names of the handlers that ran, in order.
    pub ran: Vec<String>,
}

/// A digi driver: an ordered collection of handlers.
///
/// # Examples
///
/// The Plug driver from §4.1 of the paper (native flavour):
///
/// ```
/// use dspace_core::driver::{Driver, Filter};
/// use dspace_value::Value;
///
/// let mut driver = Driver::new();
/// driver.on(Filter::on_control(), 0, "handle-power", |ctx| {
///     let intent = ctx.digi().intent("power");
///     if !intent.is_null() {
///         ctx.device(dspace_value::object([("power", intent)]));
///     }
/// });
/// ```
#[derive(Debug, Default)]
pub struct Driver {
    handlers: Vec<Handler>,
}

impl Driver {
    /// Creates an empty driver.
    pub fn new() -> Self {
        Driver::default()
    }

    /// Registers a native handler (the `@digi.on.*` decorators of §4.2).
    pub fn on(
        &mut self,
        filter: Filter,
        priority: i64,
        name: impl Into<String>,
        f: impl FnMut(&mut ReconcileCtx<'_>) + Send + 'static,
    ) -> &mut Self {
        self.upsert(Handler {
            name: name.into(),
            priority,
            filter,
            body: Body::Native(Box::new(f)),
        });
        self
    }

    /// Registers a reflex handler from policy source (the `reflex` API).
    ///
    /// Returns an error if the policy does not compile.
    pub fn reflex(
        &mut self,
        name: impl Into<String>,
        priority: i64,
        policy: &str,
    ) -> Result<&mut Self, dspace_reflex::CompileError> {
        let program = Program::compile(policy)?;
        self.upsert(Handler {
            name: name.into(),
            priority,
            filter: Filter::any(),
            body: Body::Reflex(program),
        });
        Ok(self)
    }

    /// Inserts or replaces a handler by name (reflexes can reconfigure
    /// handlers in the driver, §4.2).
    fn upsert(&mut self, handler: Handler) {
        if let Some(slot) = self.handlers.iter_mut().find(|h| h.name == handler.name) {
            *slot = handler;
        } else {
            self.handlers.push(handler);
        }
    }

    /// Returns the registered handler names (unsorted).
    pub fn handler_names(&self) -> Vec<&str> {
        self.handlers.iter().map(|h| h.name.as_str()).collect()
    }

    /// Synchronizes reflex handlers from the model's `.reflex` section:
    /// every entry is upserted (name collision replaces, so users can
    /// override built-in handlers); entries removed from the model keep
    /// their last registration (matching the paper's reflex semantics of
    /// reconfiguration-by-update).
    fn sync_reflexes(&mut self, model: &Value) -> Vec<String> {
        let mut errors = Vec::new();
        let Some(reflexes) = model.get_path(".reflex").and_then(Value::as_object) else {
            return errors;
        };
        for (name, spec) in reflexes {
            let Some(policy) = spec.get_path("policy").and_then(Value::as_str) else {
                continue;
            };
            let priority = spec
                .get_path("priority")
                .and_then(Value::as_f64)
                .unwrap_or(0.0) as i64;
            // Skip recompilation when the existing handler is identical.
            if let Some(existing) = self.handlers.iter().find(|h| h.name == *name) {
                if existing.priority == priority {
                    if let Body::Reflex(p) = &existing.body {
                        if p.source == policy {
                            continue;
                        }
                    }
                }
            }
            match Program::compile(policy) {
                Ok(program) => self.upsert(Handler {
                    name: name.clone(),
                    priority,
                    filter: Filter::any(),
                    body: Body::Reflex(program),
                }),
                Err(e) => errors.push(format!("reflex {name}: {e}")),
            }
        }
        errors
    }

    /// Runs one reconciliation cycle (Fig. 4 of the paper).
    ///
    /// `old` is the model as of the previous cycle, `new` the model that
    /// triggered this one. Handlers whose filter matches the diff run in
    /// priority order (low first); each sees the working copy produced by
    /// its predecessors. Handlers with negative priority are disabled.
    pub fn reconcile(&mut self, old: &Value, new: &Value, now_s: f64) -> ReconcileResult {
        let mut errors = self.sync_reflexes(new);
        let mut working = new.clone();
        let mut effects = Vec::new();
        let mut ran = Vec::new();

        // Sort indices by priority (stable, so registration order breaks
        // ties), low before high.
        let mut order: Vec<usize> = (0..self.handlers.len()).collect();
        order.sort_by_key(|&i| self.handlers[i].priority);

        // Handler passes run to a (bounded) fixpoint: a handler whose
        // filter matches changes made by *another handler* in this cycle
        // still fires, because a driver's own commit does not retrigger a
        // cycle (Fig. 4: "unless the update is caused by the previous
        // reconciliation").
        let mut prev = old.clone();
        for _pass in 0..4 {
            let changes = diff(&prev, &working);
            if changes.is_empty() {
                break;
            }
            prev = working.clone();
            for &i in &order {
                let handler = &mut self.handlers[i];
                if handler.priority < 0 {
                    continue; // Disabled (§4.2: negative priority disables).
                }
                if !handler.filter.matches(&changes) {
                    continue;
                }
                match &mut handler.body {
                    Body::Native(f) => {
                        let mut ctx = ReconcileCtx {
                            model: &mut working,
                            changes: &changes,
                            now_s,
                            effects: &mut effects,
                        };
                        f(&mut ctx);
                        ran.push(handler.name.clone());
                    }
                    Body::Reflex(program) => {
                        let env = Env::new().with_var("time", now_s.into());
                        match program.eval(&working, &env) {
                            Ok(updated) => {
                                working = updated;
                                ran.push(handler.name.clone());
                            }
                            Err(e) => errors.push(format!("reflex {}: {e}", handler.name)),
                        }
                    }
                }
            }
            if working == prev {
                break;
            }
        }
        // Duplicate device commands from repeated passes collapse.
        effects.dedup();
        ReconcileResult {
            model: working,
            effects,
            errors,
            ran,
        }
    }
}

/// A model *view* (§4.2): a reversible rearrangement of attributes that
/// makes them easier to access in handlers. Updates to the view are applied
/// back to the source paths.
///
/// # Examples
///
/// ```
/// use dspace_core::driver::View;
/// use dspace_value::json;
///
/// let view = View::new().map(".control.brightness.intent", ".bri");
/// let model = json::parse(r#"{"control": {"brightness": {"intent": 0.5}}}"#).unwrap();
/// let mut v = view.forward(&model);
/// assert_eq!(v.get_path(".bri").unwrap().as_f64(), Some(0.5));
/// v.set(&".bri".parse().unwrap(), 0.9.into()).unwrap();
/// let mut back = model.clone();
/// view.backward(&v, &mut back);
/// assert_eq!(back.get_path(".control.brightness.intent").unwrap().as_f64(), Some(0.9));
/// ```
#[derive(Debug, Clone, Default)]
pub struct View {
    mappings: Vec<(Path, Path)>,
}

impl View {
    /// Creates an empty view.
    pub fn new() -> Self {
        View::default()
    }

    /// Adds a mapping from a source model path to a view path.
    pub fn map(mut self, source: &str, target: &str) -> Self {
        let s: Path = source.parse().expect("valid source path");
        let t: Path = target.parse().expect("valid target path");
        self.mappings.push((s, t));
        self
    }

    /// Chains another view after this one: the second view's sources are
    /// interpreted in the first view's output (§4.2: views can be chained).
    pub fn chain(mut self, next: &View) -> Self {
        let mut composed = Vec::new();
        for (s2, t2) in &next.mappings {
            // Find a first-stage mapping whose target is a prefix of s2.
            let mut source = s2.clone();
            for (s1, t1) in &self.mappings {
                if let Some(rest) = t1.strip_prefix(s2) {
                    source = s1.join(&rest);
                    break;
                }
            }
            composed.push((source, t2.clone()));
        }
        self.mappings = composed;
        self
    }

    /// Builds the view document from a model.
    pub fn forward(&self, model: &Value) -> Value {
        let mut out = dspace_value::obj();
        for (src, dst) in &self.mappings {
            let v = model.get(src).cloned().unwrap_or(Value::Null);
            let _ = out.set(dst, v);
        }
        out
    }

    /// Applies changes made in the view document back to the model.
    pub fn backward(&self, view: &Value, model: &mut Value) {
        for (src, dst) in &self.mappings {
            if let Some(v) = view.get(dst) {
                let _ = model.set(src, v.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::json::parse;

    fn lamp() -> Value {
        parse(
            r#"{"meta": {"kind": "Lamp", "name": "l1", "gen": 1},
                "control": {"power": {"intent": null, "status": "off"}},
                "obs": {}, "reflex": {}}"#,
        )
        .unwrap()
    }

    #[test]
    fn filter_matching() {
        let old = lamp();
        let mut new = old.clone();
        new.set(&".control.power.intent".parse().unwrap(), "on".into())
            .unwrap();
        let changes = diff(&old, &new);
        assert!(Filter::on_control().matches(&changes));
        assert!(Filter::on_control_attr("power").matches(&changes));
        assert!(!Filter::on_control_attr("brightness").matches(&changes));
        assert!(!Filter::on_obs().matches(&changes));
        assert!(Filter::any().matches(&changes));
        assert!(!Filter::any().matches(&[]));
        // A coarse change (whole subtree replaced) matches a finer filter.
        let coarse = diff(
            &parse(r#"{"control": 1}"#).unwrap(),
            &parse(r#"{"control": 2}"#).unwrap(),
        );
        assert!(Filter::on_control_attr("power").matches(&coarse));
    }

    #[test]
    fn handler_runs_on_matching_change() {
        let mut driver = Driver::new();
        driver.on(Filter::on_control(), 0, "power", |ctx| {
            let intent = ctx.digi().intent("power");
            ctx.digi().set_status("power", intent.clone());
            ctx.device(dspace_value::object([("power", intent)]));
        });
        let old = lamp();
        let mut new = old.clone();
        new.set(&".control.power.intent".parse().unwrap(), "on".into())
            .unwrap();
        let result = driver.reconcile(&old, &new, 0.0);
        assert!(result.ran.contains(&"power".to_string()));
        assert_eq!(
            result
                .model
                .get_path(".control.power.status")
                .unwrap()
                .as_str(),
            Some("on")
        );
        // Duplicate commands from fixpoint passes collapse to one.
        assert_eq!(result.effects.len(), 1);
    }

    #[test]
    fn handler_skipped_on_unrelated_change() {
        let mut driver = Driver::new();
        driver.on(Filter::on_control(), 0, "power", |ctx| {
            ctx.log("should not run");
        });
        let old = lamp();
        let mut new = old.clone();
        new.set(&".obs.reason".parse().unwrap(), "x".into())
            .unwrap();
        let result = driver.reconcile(&old, &new, 0.0);
        assert!(result.ran.is_empty());
        assert!(result.effects.is_empty());
    }

    #[test]
    fn priority_order_low_runs_first() {
        let mut driver = Driver::new();
        driver.on(Filter::any(), 5, "second", |ctx| {
            let v = ctx.model.get_path(".trace").cloned().unwrap_or(Value::Null);
            let s = format!("{}b", v.as_str().unwrap_or(""));
            ctx.model.set(&".trace".parse().unwrap(), s.into()).unwrap();
        });
        driver.on(Filter::any(), 1, "first", |ctx| {
            ctx.model
                .set(&".trace".parse().unwrap(), "a".into())
                .unwrap();
        });
        let old = lamp();
        let mut new = old.clone();
        new.set(&".obs.reason".parse().unwrap(), "x".into())
            .unwrap();
        let result = driver.reconcile(&old, &new, 0.0);
        assert_eq!(
            &result.ran[..2],
            &["first".to_string(), "second".to_string()]
        );
        assert_eq!(
            result.model.get_path(".trace").unwrap().as_str(),
            Some("ab")
        );
    }

    #[test]
    fn negative_priority_disables() {
        let mut driver = Driver::new();
        driver.on(Filter::any(), -1, "disabled", |ctx| ctx.log("no"));
        let old = lamp();
        let mut new = old.clone();
        new.set(&".obs.reason".parse().unwrap(), "x".into())
            .unwrap();
        let result = driver.reconcile(&old, &new, 0.0);
        assert!(result.ran.is_empty());
    }

    #[test]
    fn reflex_handler_executes_policy() {
        let mut driver = Driver::new();
        driver
            .reflex(
                "cap",
                0,
                "if .control.power.intent == \"on\" then .obs.lit = true else . end",
            )
            .unwrap();
        let old = lamp();
        let mut new = old.clone();
        new.set(&".control.power.intent".parse().unwrap(), "on".into())
            .unwrap();
        let result = driver.reconcile(&old, &new, 0.0);
        assert_eq!(
            result.model.get_path(".obs.lit").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn model_embedded_reflex_auto_registers() {
        // Fig. 3: the reflex lives in the model, not in driver code.
        let mut driver = Driver::new();
        let old = lamp();
        let mut new = old.clone();
        new.set(
            &".reflex.motion-brightness".parse().unwrap(),
            parse(
                r#"{"policy": "if $time - (.obs.last_motion // 0) <= 600 then .control.power.intent = \"on\" else . end",
                    "priority": 1, "processor": "jq"}"#,
            )
            .unwrap(),
        )
        .unwrap();
        new.set(&".obs.last_motion".parse().unwrap(), 100.0.into())
            .unwrap();
        let result = driver.reconcile(&old, &new, 200.0);
        assert_eq!(
            result.ran.first().map(String::as_str),
            Some("motion-brightness")
        );
        assert_eq!(
            result
                .model
                .get_path(".control.power.intent")
                .unwrap()
                .as_str(),
            Some("on")
        );
        // Outside the window, the policy leaves the model alone.
        let result = driver.reconcile(&old, &new, 2000.0);
        assert!(result
            .model
            .get_path(".control.power.intent")
            .unwrap()
            .is_null());
    }

    #[test]
    fn reflex_with_same_name_reconfigures_handler() {
        let mut driver = Driver::new();
        driver.on(Filter::any(), 0, "behaviour", |ctx| {
            ctx.model
                .set(&".obs.v".parse().unwrap(), 1.0.into())
                .unwrap();
        });
        let old = lamp();
        let mut new = old.clone();
        new.set(
            &".reflex.behaviour".parse().unwrap(),
            parse(r#"{"policy": ".obs.v = 2", "priority": 0}"#).unwrap(),
        )
        .unwrap();
        let result = driver.reconcile(&old, &new, 0.0);
        assert_eq!(result.model.get_path(".obs.v").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn broken_reflex_reports_error_and_cycle_continues() {
        let mut driver = Driver::new();
        driver.on(Filter::any(), 10, "still-runs", |ctx| {
            ctx.model
                .set(&".obs.ok".parse().unwrap(), true.into())
                .unwrap();
        });
        let old = lamp();
        let mut new = old.clone();
        new.set(
            &".reflex.broken".parse().unwrap(),
            parse(r#"{"policy": "if if", "priority": 0}"#).unwrap(),
        )
        .unwrap();
        let result = driver.reconcile(&old, &new, 0.0);
        assert_eq!(result.errors.len(), 1);
        assert_eq!(
            result.model.get_path(".obs.ok").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn view_roundtrip_and_chain() {
        let view = View::new()
            .map(".control.brightness.intent", ".bri")
            .map(".control.power.intent", ".pow");
        let model =
            parse(r#"{"control": {"brightness": {"intent": 0.5}, "power": {"intent": "on"}}}"#)
                .unwrap();
        let v = view.forward(&model);
        assert_eq!(v.get_path(".bri").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get_path(".pow").unwrap().as_str(), Some("on"));
        // Chain: rename .bri to .b.
        let second = View::new().map(".bri", ".b");
        let chained = view.clone().chain(&second);
        let v2 = chained.forward(&model);
        assert_eq!(v2.get_path(".b").unwrap().as_f64(), Some(0.5));
        // Backward propagates view edits to the source.
        let mut edited = v2.clone();
        edited.set(&".b".parse().unwrap(), 0.7.into()).unwrap();
        let mut back = model.clone();
        chained.backward(&edited, &mut back);
        assert_eq!(
            back.get_path(".control.brightness.intent")
                .unwrap()
                .as_f64(),
            Some(0.7)
        );
    }
}

//! Composition policies (§3.4): declarative mount/yield automation.
//!
//! A `Policy` API object names a set of digis to watch, a reflex condition
//! evaluated over their models, and actions to run when the condition
//! *rises* (false → true) or *falls* (true → false). The Policer controller
//! (see [`crate::policer`]) evaluates and enforces them — this module is
//! the data model.
//!
//! Example (the S10 delegation policy, in YAML):
//!
//! ```yaml
//! meta: {kind: Policy, name: emergency-yield}
//! spec:
//!   watch: ["Emergency/default/city"]
//!   condition: ".city.obs.alarm == true"
//!   on_rising:
//!     - {action: transfer, child: "Room/default/lvroom",
//!        from: "Home/default/home", to: "Emergency/default/city"}
//!   on_falling:
//!     - {action: transfer, child: "Room/default/lvroom",
//!        from: "Emergency/default/city", to: "Home/default/home"}
//! ```
//!
//! Condition programs see a context object with one key per watched digi
//! (its name), bound to that digi's current model.

use std::fmt;

use dspace_apiserver::ObjectRef;
use dspace_reflex::Program;
use dspace_value::Value;

use crate::graph::MountMode;

/// An action a policy can perform.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyAction {
    /// Mount `child` to `parent`.
    Mount {
        /// The digi to mount.
        child: ObjectRef,
        /// The digivice to mount it to.
        parent: ObjectRef,
        /// Expose/hide.
        mode: MountMode,
    },
    /// Unmount `child` from `parent`.
    Unmount {
        /// The mounted digi.
        child: ObjectRef,
        /// Its parent.
        parent: ObjectRef,
    },
    /// Yield `parent`'s write access over `child`.
    Yield {
        /// The controlled digi.
        child: ObjectRef,
        /// The parent giving up write access.
        parent: ObjectRef,
    },
    /// Restore `parent`'s write access over `child`.
    Unyield {
        /// The controlled digi.
        child: ObjectRef,
        /// The parent (re)claiming write access.
        parent: ObjectRef,
    },
    /// Atomically move write access over `child` from `from` to `to`
    /// (yield + unyield), mounting `to` (yielded) first if needed.
    Transfer {
        /// The controlled digi.
        child: ObjectRef,
        /// Current writer.
        from: ObjectRef,
        /// New writer.
        to: ObjectRef,
    },
    /// Write an intent on a digi (`.control.<attr>.intent`).
    SetIntent {
        /// Target digi.
        target: ObjectRef,
        /// Control attribute.
        attr: String,
        /// Intent value.
        value: Value,
    },
    /// Create a data-flow pipe (footnote 3 of the paper: "one might extend
    /// adaptive composition to data flow composition with pipe policies").
    Pipe {
        /// Source digidata.
        source: ObjectRef,
        /// Source output attribute.
        source_attr: String,
        /// Target digidata.
        target: ObjectRef,
        /// Target input attribute.
        target_attr: String,
    },
    /// Remove the pipe between the same endpoints.
    Unpipe {
        /// Source digidata.
        source: ObjectRef,
        /// Source output attribute.
        source_attr: String,
        /// Target digidata.
        target: ObjectRef,
        /// Target input attribute.
        target_attr: String,
    },
}

/// Errors from parsing a Policy object.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A required field is missing or has the wrong type.
    Malformed(String),
    /// The condition program failed to compile.
    BadCondition(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Malformed(m) => write!(f, "malformed policy: {m}"),
            PolicyError::BadCondition(m) => write!(f, "bad policy condition: {m}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// A compiled composition policy.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Digis whose models feed the condition context.
    pub watch: Vec<ObjectRef>,
    /// The compiled condition.
    pub condition: Program,
    /// Actions on a false→true transition.
    pub on_rising: Vec<PolicyAction>,
    /// Actions on a true→false transition.
    pub on_falling: Vec<PolicyAction>,
}

/// Parses `Kind/namespace/name` (or `Kind/name`, defaulting the namespace).
pub fn parse_ref(s: &str) -> Result<ObjectRef, PolicyError> {
    let parts: Vec<&str> = s.split('/').collect();
    match parts.as_slice() {
        [kind, ns, name] => Ok(ObjectRef::new(*kind, *ns, *name)),
        [kind, name] => Ok(ObjectRef::default_ns(*kind, *name)),
        _ => Err(PolicyError::Malformed(format!("bad object ref '{s}'"))),
    }
}

fn parse_action(v: &Value) -> Result<PolicyAction, PolicyError> {
    let field = |name: &str| -> Result<ObjectRef, PolicyError> {
        let s = v
            .get_path(name)
            .and_then(Value::as_str)
            .ok_or_else(|| PolicyError::Malformed(format!("action missing '{name}'")))?;
        parse_ref(s)
    };
    let kind = v
        .get_path("action")
        .and_then(Value::as_str)
        .ok_or_else(|| PolicyError::Malformed("action missing 'action'".into()))?;
    match kind {
        "mount" => Ok(PolicyAction::Mount {
            child: field("child")?,
            parent: field("parent")?,
            mode: v
                .get_path("mode")
                .and_then(Value::as_str)
                .and_then(MountMode::parse)
                .unwrap_or(MountMode::Expose),
        }),
        "unmount" => Ok(PolicyAction::Unmount {
            child: field("child")?,
            parent: field("parent")?,
        }),
        "yield" => Ok(PolicyAction::Yield {
            child: field("child")?,
            parent: field("parent")?,
        }),
        "unyield" => Ok(PolicyAction::Unyield {
            child: field("child")?,
            parent: field("parent")?,
        }),
        "transfer" => Ok(PolicyAction::Transfer {
            child: field("child")?,
            from: field("from")?,
            to: field("to")?,
        }),
        "pipe" | "unpipe" => {
            let endpoint = |name: &str| -> Result<(ObjectRef, String), PolicyError> {
                let s = v
                    .get_path(name)
                    .and_then(Value::as_str)
                    .ok_or_else(|| PolicyError::Malformed(format!("action missing '{name}'")))?;
                let (obj, attr) = s.rsplit_once('.').ok_or_else(|| {
                    PolicyError::Malformed(format!("endpoint '{s}' must be Kind/name.attr"))
                })?;
                Ok((parse_ref(obj)?, attr.to_string()))
            };
            let (source, source_attr) = endpoint("from")?;
            let (target, target_attr) = endpoint("to")?;
            if kind == "pipe" {
                Ok(PolicyAction::Pipe {
                    source,
                    source_attr,
                    target,
                    target_attr,
                })
            } else {
                Ok(PolicyAction::Unpipe {
                    source,
                    source_attr,
                    target,
                    target_attr,
                })
            }
        }
        "set-intent" => Ok(PolicyAction::SetIntent {
            target: field("target")?,
            attr: v
                .get_path("attr")
                .and_then(Value::as_str)
                .ok_or_else(|| PolicyError::Malformed("set-intent missing 'attr'".into()))?
                .to_string(),
            value: v.get_path("value").cloned().unwrap_or(Value::Null),
        }),
        other => Err(PolicyError::Malformed(format!("unknown action '{other}'"))),
    }
}

impl Policy {
    /// Parses and compiles a Policy object's model document.
    pub fn parse(model: &Value) -> Result<Policy, PolicyError> {
        let watch = model
            .get_path(".spec.watch")
            .and_then(Value::as_array)
            .ok_or_else(|| PolicyError::Malformed("spec.watch missing".into()))?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| PolicyError::Malformed("watch entries must be strings".into()))
                    .and_then(parse_ref)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let cond_src = model
            .get_path(".spec.condition")
            .and_then(Value::as_str)
            .ok_or_else(|| PolicyError::Malformed("spec.condition missing".into()))?;
        let condition =
            Program::compile(cond_src).map_err(|e| PolicyError::BadCondition(e.to_string()))?;
        let actions = |key: &str| -> Result<Vec<PolicyAction>, PolicyError> {
            match model.get_path(&format!(".spec.{key}")) {
                None | Some(Value::Null) => Ok(Vec::new()),
                Some(Value::Array(items)) => items.iter().map(parse_action).collect(),
                Some(_) => Err(PolicyError::Malformed(format!("spec.{key} must be a list"))),
            }
        };
        Ok(Policy {
            watch,
            condition,
            on_rising: actions("on_rising")?,
            on_falling: actions("on_falling")?,
        })
    }

    /// Builds the condition context: `{<digi name>: <model>}`.
    pub fn context(&self, models: &[(String, Value)]) -> Value {
        dspace_value::object(models.iter().map(|(n, m)| (n.clone(), m.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::yaml;

    fn s10_policy_model() -> Value {
        yaml::parse(
            "
meta: {kind: Policy, name: emergency-yield, namespace: default}
spec:
  watch: [\"Emergency/default/city\"]
  condition: .city.obs.alarm == true
  on_rising:
    - {action: transfer, child: Room/default/lvroom, from: Home/default/home, to: Emergency/default/city}
  on_falling:
    - {action: transfer, child: Room/default/lvroom, from: Emergency/default/city, to: Home/default/home}
",
        )
        .unwrap()
    }

    #[test]
    fn parse_s10_policy() {
        let p = Policy::parse(&s10_policy_model()).unwrap();
        assert_eq!(p.watch, vec![ObjectRef::default_ns("Emergency", "city")]);
        assert_eq!(p.on_rising.len(), 1);
        assert!(matches!(p.on_rising[0], PolicyAction::Transfer { .. }));
        assert_eq!(p.on_falling.len(), 1);
    }

    #[test]
    fn condition_evaluates_over_context() {
        let p = Policy::parse(&s10_policy_model()).unwrap();
        let alarm_on = dspace_value::json::parse(r#"{"obs": {"alarm": true}}"#).unwrap();
        let alarm_off = dspace_value::json::parse(r#"{"obs": {"alarm": false}}"#).unwrap();
        let env = dspace_reflex::Env::new().with_var("time", 0.0.into());
        let ctx_on = p.context(&[("city".into(), alarm_on)]);
        let ctx_off = p.context(&[("city".into(), alarm_off)]);
        assert!(p.condition.eval(&ctx_on, &env).unwrap().truthy());
        assert!(!p.condition.eval(&ctx_off, &env).unwrap().truthy());
    }

    #[test]
    fn parse_ref_forms() {
        assert_eq!(
            parse_ref("Room/default/r1").unwrap(),
            ObjectRef::default_ns("Room", "r1")
        );
        assert_eq!(
            parse_ref("Room/r1").unwrap(),
            ObjectRef::default_ns("Room", "r1")
        );
        assert!(parse_ref("justaname").is_err());
        assert!(parse_ref("a/b/c/d").is_err());
    }

    #[test]
    fn parse_all_action_kinds() {
        let actions = yaml::parse(
            "
meta: {kind: Policy, name: p}
spec:
  watch: [\"Room/r\"]
  condition: \"true\"
  on_rising:
    - {action: mount, child: Roomba/rb, parent: Room/r, mode: hide}
    - {action: unmount, child: Roomba/rb, parent: Room/r}
    - {action: yield, child: Lamp/l, parent: Room/r}
    - {action: unyield, child: Lamp/l, parent: Room/r}
    - {action: set-intent, target: Lamp/l, attr: power, value: \"off\"}
    - {action: pipe, from: Camera/cam.url, to: Scene/sc.url}
    - {action: unpipe, from: Camera/cam.url, to: Scene/sc.url}
",
        )
        .unwrap();
        let p = Policy::parse(&actions).unwrap();
        assert_eq!(p.on_rising.len(), 7);
        assert!(matches!(p.on_rising[5], PolicyAction::Pipe { .. }));
        assert!(matches!(p.on_rising[6], PolicyAction::Unpipe { .. }));
        assert!(matches!(
            p.on_rising[0],
            PolicyAction::Mount {
                mode: MountMode::Hide,
                ..
            }
        ));
        assert!(matches!(p.on_rising[4], PolicyAction::SetIntent { .. }));
    }

    #[test]
    fn malformed_policies_rejected() {
        let no_watch = yaml::parse("meta: {kind: Policy}\nspec:\n  condition: \"true\"\n").unwrap();
        assert!(matches!(
            Policy::parse(&no_watch),
            Err(PolicyError::Malformed(_))
        ));
        let bad_cond = yaml::parse(
            "meta: {kind: Policy}\nspec:\n  watch: [\"A/a\"]\n  condition: \"if if\"\n",
        )
        .unwrap();
        assert!(matches!(
            Policy::parse(&bad_cond),
            Err(PolicyError::BadCondition(_))
        ));
        let bad_action = yaml::parse(
            "meta: {kind: Policy}\nspec:\n  watch: [\"A/a\"]\n  condition: \"true\"\n  on_rising:\n    - {action: explode}\n",
        )
        .unwrap();
        assert!(Policy::parse(&bad_action).is_err());
    }
}

//! The Mounter controller (§5.2 of the paper).
//!
//! When digi A is mounted to digivice B, the mounter synchronizes state
//! between A's model and the *model replica* of A stored under B's
//! `.mount.<Kind>.<name>` attribute:
//!
//! - **northbound** (A → replica): `control.*.status`, `control.*.intent`
//!   (so parent drivers observe child-initiated intent changes and can run
//!   intent reconciliation, §3.5), `obs`, `data.*`, and — under `expose`
//!   mode — A's own `.mount` subtree; the replica's `gen` is set to A's
//!   model version.
//! - **southbound** (replica → A): `control.*.intent` and `data.input.*`
//!   writes made by B's driver, *never* `.status` ("status information
//!   should never flow southbound"), only while B's mount is **active**
//!   (not yielded), and only when the replica's version number is no less
//!   than A's (the version gate of §5.2).
//!
//! Concurrent parent/child writes are resolved with a three-way merge
//! against the replica content the mounter last wrote (its *shadow*):
//! fields the parent changed since then are parent-pending southbound
//! writes and survive northbound refreshes.

use std::collections::{BTreeMap, BTreeSet};

use dspace_apiserver::{ApiServer, ObjectRef, WatchEvent};
use dspace_simnet::Time;
use dspace_value::{Path, Segment, Value};

use crate::batch::{BatchBackend, WriteBatch};
use crate::graph::{DigiGraph, EdgeState, GraphRead, MountEdge, MountMode};
use crate::model::{MOUNT_ACTIVE, MOUNT_YIELDED};
use crate::trace::{Trace, TraceKind};

/// The apiserver subject the mounter authenticates as.
pub const SUBJECT: &str = "controller:mounter";

/// A trace entry to emit iff the write behind `ticket` commits.
struct TraceEffect {
    ticket: usize,
    subject: String,
    detail: String,
}

/// A planned mounter cycle: queued writes plus success-gated trace
/// effects. Planning runs against the wake-time snapshot; the plan can
/// land immediately (legacy inline path) or later, after simulated
/// reconcile/link/admission delays (async controller runtime).
pub(crate) struct MounterPlan {
    pub(crate) batch: WriteBatch,
    effects: Vec<TraceEffect>,
}

impl MounterPlan {
    /// Commits inline (non-OCC, legacy semantics) and emits gated traces.
    pub(crate) fn land(self, api: &mut ApiServer, trace: &mut Trace, now: Time) {
        let results = self.batch.commit(api);
        for e in self.effects {
            if results[e.ticket].is_ok() {
                trace.push(now, TraceKind::Composition, e.subject, e.detail);
            }
        }
    }

    /// Commits with OCC re-validation against the plan's snapshot rvs and
    /// emits gated traces; returns how many ops failed validation.
    pub(crate) fn land_occ(self, api: &mut ApiServer, trace: &mut Trace, now: Time) -> u64 {
        let (results, conflicts) = self.batch.commit_occ(api);
        for e in self.effects {
            if results[e.ticket].is_ok() {
                trace.push(now, TraceKind::Composition, e.subject, e.detail);
            }
        }
        conflicts
    }
}

/// The Mounter controller.
///
/// Holds no handle to the runtime's digi-graph: every pass is handed the
/// graph to read (the live one inline, an `Arc` edge snapshot from a plan
/// job), which keeps the whole struct `Send` so deferred plan passes can
/// run on shard worker threads.
pub struct Mounter {
    /// Replica content as last written by the mounter, per (parent, child).
    shadows: BTreeMap<(ObjectRef, ObjectRef), Value>,
    /// Commit all of a pump cycle's writes as one `apply_batch` call.
    batched: bool,
}

impl Default for Mounter {
    fn default() -> Self {
        Self::new()
    }
}

impl Mounter {
    /// Creates a mounter.
    pub fn new() -> Self {
        Mounter {
            shadows: BTreeMap::new(),
            batched: true,
        }
    }

    /// Switches between batched (one `apply_batch` per pump cycle) and
    /// legacy per-op writes. Both modes make identical decisions and
    /// leave identical store state.
    pub fn set_batched(&mut self, batched: bool) {
        self.batched = batched;
    }

    /// Processes a batch of watch events: re-synchronizes every mount edge
    /// adjacent to an object that changed. All writes of the pass commit
    /// as one batch; trace entries for southbound syncs are emitted after
    /// the commit, gated on their op's result.
    pub fn process(
        &mut self,
        api: &mut ApiServer,
        graph: &std::cell::RefCell<DigiGraph>,
        events: &[WatchEvent],
        trace: &mut Trace,
        now: Time,
    ) {
        // The graph is handed down as the `RefCell` (borrow-per-read):
        // in per-op write mode planning commits each write immediately,
        // and the admission chain's topology webhook re-borrows the same
        // cell mutably mid-plan.
        let plan = self.plan(api, graph, events, false);
        plan.land(api, trace, now);
    }

    /// Drains a batch of watch events into a landable plan without
    /// committing anything: re-synchronizes every mount edge adjacent to
    /// an object that changed, queueing writes (and success-gated trace
    /// effects) on the returned plan. `force_batched` overrides the
    /// per-op compatibility mode for deferred landings, which must commit
    /// as one `apply_batch` transfer.
    pub(crate) fn plan<B: BatchBackend, G: GraphRead>(
        &mut self,
        api: &mut B,
        graph: &G,
        events: &[WatchEvent],
        force_batched: bool,
    ) -> MounterPlan {
        // Dedup with a set: a burst batch repeats the same oref many
        // times, and `Vec::contains` made this scan quadratic.
        let mut affected: BTreeSet<ObjectRef> = BTreeSet::new();
        for ev in events {
            if ev.oref.kind == "Sync" || ev.oref.kind == "Policy" {
                continue;
            }
            affected.insert(ev.oref.clone());
        }
        let mut batch = WriteBatch::new(SUBJECT, self.batched || force_batched);
        let mut effects: Vec<TraceEffect> = Vec::new();
        for oref in affected {
            // One O(degree) pass per changed digi: the graph's endpoint
            // index hands back full edges (payload included), so there is
            // no per-neighbor `edge()` re-lookup.
            for edge in graph.adjacent_edges(&oref) {
                self.sync_edge(api, &mut batch, edge, &mut effects);
            }
        }
        MounterPlan { batch, effects }
    }

    /// Synchronizes one mount edge in both directions, queueing writes on
    /// `batch` and success-gated trace entries on `effects`.
    fn sync_edge<B: BatchBackend>(
        &mut self,
        api: &mut B,
        batch: &mut WriteBatch,
        edge: MountEdge,
        effects: &mut Vec<TraceEffect>,
    ) {
        let MountEdge { parent, child, .. } = &edge;
        // Reads go through the batch so an edge synced later in the pass
        // observes the writes of earlier edges, exactly as it would have
        // observed their commits under per-op writes.
        let Ok((parent_model, _)) = batch.get(api, parent) else {
            return;
        };
        let Ok((child_model, _)) = batch.get(api, child) else {
            return;
        };
        let replica_path = crate::model::replica_path(&child.kind, &child.name);
        let replica_cur = parent_model
            .get_path(&replica_path)
            .cloned()
            .unwrap_or(Value::Null);
        if replica_cur.is_null() {
            // The mount reference is gone from the model (unmount raced);
            // the topology webhook will drop the edge shortly.
            return;
        }
        // Release the parent read handle before any write: the batch
        // overlay mutates in place only while no reader still holds the
        // model, so keeping this alive would force a deep clone of the
        // whole parent model on every northbound refresh.
        drop(parent_model);
        let key = (parent.clone(), child.clone());
        let shadow = self
            .shadows
            .get(&key)
            .cloned()
            .unwrap_or_else(dspace_value::obj);

        // --- Northbound: build the replica candidate from the child. -----
        // Generations are compared exactly as u64: an f64 round-trip
        // collapses adjacent versions past 2^53 and mis-orders the gate.
        let child_gen = child_model
            .get_path(".meta.gen")
            .and_then(Value::as_exact_u64)
            .unwrap_or(0);
        let mut candidate = dspace_value::obj();
        set(&mut candidate, ".mode", Value::from(edge.mode.as_str()));
        set(
            &mut candidate,
            ".status",
            Value::from(match edge.state {
                EdgeState::Active => MOUNT_ACTIVE,
                EdgeState::Yielded => MOUNT_YIELDED,
            }),
        );
        set(&mut candidate, ".gen", Value::from_exact_u64(child_gen));
        for section in ["control", "obs", "data"] {
            if let Some(v) = child_model.get_path(section) {
                set(&mut candidate, &format!(".{section}"), v.clone());
            }
        }
        if edge.mode == MountMode::Expose {
            if let Some(v) = child_model.get_path("mount") {
                set(&mut candidate, ".mount", v.clone());
            }
        }
        // The northbound-only view, before parent-pending writes are
        // merged in: this is what the shadow reverts to when the version
        // gate blocks, so blocked writes stay pending instead of being
        // silently absorbed.
        let fresh = candidate.clone();
        // Three-way merge: parent writes pending since the last mounter
        // write survive the refresh.
        let mut pending: Vec<(Path, Value)> = Vec::new();
        collect_southbound_leaves(&replica_cur, &Path::root(), &mut |path, v| {
            let in_shadow = shadow.get(path).cloned().unwrap_or(Value::Null);
            if *v != in_shadow && !v.is_null() {
                pending.push((path.clone(), v.clone()));
            }
        });
        for (path, v) in &pending {
            let _ = candidate.set(path, v.clone());
        }

        if candidate != replica_cur {
            // Errors are ignored (as before): no effect rides on this op.
            let _ = batch.patch_path(api, parent, &replica_path, candidate.clone());
        }

        // --- Southbound: apply parent-pending intent/input writes. -------
        // Version gate (§5.2): only sync when the *stored* replica is at
        // least as fresh as the child's model. A stale replica means the
        // parent acted on an outdated view of the child; the northbound
        // refresh above (which advances `.gen` to the child's version)
        // must land first, and the retry happens on its event.
        let stored_gen = replica_cur
            .get_path(".gen")
            .and_then(Value::as_exact_u64)
            .unwrap_or(0);
        let gate_ok = stored_gen >= child_gen;
        let mut synced_south = false;
        if edge.state == EdgeState::Active && gate_ok {
            synced_south = true;
            let mut patch = dspace_value::obj();
            let mut wrote = false;
            collect_southbound_leaves(&candidate, &Path::root(), &mut |path, v| {
                if v.is_null() {
                    return;
                }
                let child_val = child_model.get(path).cloned().unwrap_or(Value::Null);
                if *v != child_val {
                    let _ = patch.set(path, v.clone());
                    wrote = true;
                }
            });
            // Same copy-on-write discipline as the parent handle above.
            drop(child_model);
            if wrote {
                // The trace entry is deferred: it only appears if the op
                // commits, matching the old per-op success gate.
                let ticket = batch.patch(api, child, patch);
                effects.push(TraceEffect {
                    ticket,
                    subject: child.to_string(),
                    detail: format!("southbound sync from {parent}"),
                });
            }
        }
        // Only a southbound-synced candidate becomes the new shadow; when
        // the gate (or a yielded edge) blocked, the pending parent writes
        // must be re-detected on the next round.
        self.shadows
            .insert(key, if synced_south { candidate } else { fresh });
    }
}

fn set(doc: &mut Value, path: &str, v: Value) {
    let p: Path = path.parse().expect("static path");
    doc.set(&p, v).expect("object document");
}

/// Visits every leaf under `doc` whose path is *southbound-capable*:
/// `control.<attr>.intent`, `data.input.<...>`, possibly nested below one
/// or more `mount.<Kind>.<name>` prefixes (writes through exposed
/// grandchild replicas).
fn collect_southbound_leaves(doc: &Value, base: &Path, visit: &mut impl FnMut(&Path, &Value)) {
    fn walk(v: &Value, path: &Path, visit: &mut impl FnMut(&Path, &Value)) {
        if is_southbound(path) {
            // Leaves only: intent scalars or anything under data.input.
            match v {
                Value::Object(map) => {
                    for (k, child) in map {
                        walk(child, &path.child(k.clone()), visit);
                    }
                }
                other => visit(path, other),
            }
            return;
        }
        if let Value::Object(map) = v {
            for (k, child) in map {
                let p = path.child(k.clone());
                if could_lead_southbound(&p) {
                    walk(child, &p, visit);
                }
            }
        }
    }
    walk(doc, base, visit)
}

/// Returns `true` when `path` (relative to a replica root) addresses a
/// southbound-writable location.
fn is_southbound(path: &Path) -> bool {
    let segs = strip_mount_prefixes(path.segments());
    match segs {
        [Segment::Key(c), Segment::Key(_attr), Segment::Key(i), ..]
            if c == "control" && i == "intent" =>
        {
            true
        }
        [Segment::Key(d), Segment::Key(i), _, ..] if d == "data" && i == "input" => true,
        _ => false,
    }
}

/// Returns `true` if descending further below `path` could still reach a
/// southbound location (used to prune the walk).
fn could_lead_southbound(path: &Path) -> bool {
    let segs = strip_mount_prefixes(path.segments());
    match segs {
        [] => true,
        [Segment::Key(k)] => k == "control" || k == "data" || k == "mount",
        [Segment::Key(c), _] if c == "control" => true,
        [Segment::Key(c), _, Segment::Key(i)] if c == "control" => i == "intent",
        [Segment::Key(d), Segment::Key(i)] if d == "data" => i == "input",
        [Segment::Key(m), _] if m == "mount" => true,
        _ => is_southbound(path),
    }
}

/// Strips leading `mount.<Kind>.<name>` triples.
fn strip_mount_prefixes(mut segs: &[Segment]) -> &[Segment] {
    loop {
        match segs {
            [Segment::Key(m), _, _, rest @ ..] if m == "mount" => {
                segs = rest;
            }
            _ => return segs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn southbound_classification() {
        let yes = [
            ".control.power.intent",
            ".control.brightness.intent",
            ".data.input.url",
            ".mount.Speaker.s1.control.mode.intent",
            ".mount.Room.r1.mount.Speaker.s1.control.mode.intent",
            ".mount.Scene.sc.data.input.url",
        ];
        for p in yes {
            let path: Path = p.parse().unwrap();
            assert!(is_southbound(&path), "{p} should be southbound");
        }
        let no = [
            ".control.power.status",
            ".obs.objects",
            ".data.output.objects",
            ".mount.Speaker.s1.control.mode.status",
            ".gen",
            ".mode",
            ".status",
        ];
        for p in no {
            let path: Path = p.parse().unwrap();
            assert!(!is_southbound(&path), "{p} should not be southbound");
        }
    }

    #[test]
    fn collect_southbound_finds_nested_leaves() {
        let doc = dspace_value::json::parse(
            r#"{
                "mode": "expose", "status": "active", "gen": 3,
                "control": {"power": {"intent": "on", "status": "off"}},
                "data": {"input": {"url": "rtsp://x"}, "output": {"objects": []}},
                "mount": {"Speaker": {"s1": {"control": {"mode": {"intent": "pause", "status": "play"}}}}}
            }"#,
        )
        .unwrap();
        let mut found = Vec::new();
        collect_southbound_leaves(&doc, &Path::root(), &mut |p, v| {
            found.push((p.to_string(), v.clone()));
        });
        found.sort_by(|a, b| a.0.cmp(&b.0));
        let paths: Vec<&str> = found.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                ".control.power.intent",
                ".data.input.url",
                ".mount.Speaker.s1.control.mode.intent",
            ]
        );
    }
}

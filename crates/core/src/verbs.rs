//! Composition verbs (§3.2): the operations behind `dq mount/yield/pipe`.
//!
//! Verbs are plain apiserver writes — a mount is a mount reference written
//! into the parent's model, a pipe is a `Sync` object — validated by the
//! topology webhook and enacted by the Mounter/Syncer controllers. Both
//! the [`crate::space::Space`] facade and the Policer execute composition
//! through these functions.

use std::fmt;

use dspace_apiserver::{ApiError, ApiServer, ObjectRef, Query};
use dspace_value::Value;

use crate::graph::{DigiGraph, EdgeState, MountMode};
use crate::model::{MOUNT_ACTIVE, MOUNT_YIELDED};
use crate::syncer::SyncSpec;

/// Errors from composition verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum VerbError {
    /// The apiserver rejected the write (admission, RBAC, missing object).
    Api(ApiError),
    /// The verb arguments were invalid.
    Invalid(String),
}

impl fmt::Display for VerbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbError::Api(e) => write!(f, "{e}"),
            VerbError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for VerbError {}

impl From<ApiError> for VerbError {
    fn from(e: ApiError) -> Self {
        VerbError::Api(e)
    }
}

/// `mount(child, parent)`: writes a mount reference into the parent model.
///
/// If the child already has an active parent, the new mount starts in the
/// yielded state ("the mount is automatically followed by a yield", §3.4).
/// Returns the state the mount was created in.
pub fn mount(
    api: &mut ApiServer,
    graph: &DigiGraph,
    subject: &str,
    child: &ObjectRef,
    parent: &ObjectRef,
    mode: MountMode,
) -> Result<EdgeState, VerbError> {
    let state = match graph.active_parent(child) {
        Some(holder) if holder != *parent => EdgeState::Yielded,
        _ => EdgeState::Active,
    };
    let status = match state {
        EdgeState::Active => MOUNT_ACTIVE,
        EdgeState::Yielded => MOUNT_YIELDED,
    };
    let path = crate::model::replica_path(&child.kind, &child.name);
    let body = dspace_value::object([
        ("mode", Value::from(mode.as_str())),
        ("status", Value::from(status)),
        ("gen", Value::from(0.0)),
    ]);
    api.patch_path(subject, parent, &path, body)?;
    Ok(state)
}

/// `unmount(child, parent)`: removes the mount reference.
pub fn unmount(
    api: &mut ApiServer,
    subject: &str,
    child: &ObjectRef,
    parent: &ObjectRef,
) -> Result<(), VerbError> {
    let path = crate::model::replica_path(&child.kind, &child.name);
    api.delete_path(subject, parent, &path)?;
    Ok(())
}

/// `yield(child, parent)`: revokes the parent's write access (§3.2); the
/// parent keeps watching the child through its replica.
pub fn yield_(
    api: &mut ApiServer,
    subject: &str,
    child: &ObjectRef,
    parent: &ObjectRef,
) -> Result<(), VerbError> {
    let path = format!(
        "{}.status",
        crate::model::replica_path(&child.kind, &child.name)
    );
    api.patch_path(subject, parent, &path, MOUNT_YIELDED.into())?;
    Ok(())
}

/// `unyield(child, parent)`: restores write access. The topology webhook
/// rejects this while another parent holds the writer slot.
pub fn unyield(
    api: &mut ApiServer,
    subject: &str,
    child: &ObjectRef,
    parent: &ObjectRef,
) -> Result<(), VerbError> {
    let path = format!(
        "{}.status",
        crate::model::replica_path(&child.kind, &child.name)
    );
    api.patch_path(subject, parent, &path, MOUNT_ACTIVE.into())?;
    Ok(())
}

/// Moves write access over `child` from `from` to `to`, mounting `to`
/// (yielded) first when it has no existing mount.
pub fn transfer(
    api: &mut ApiServer,
    graph: &DigiGraph,
    subject: &str,
    child: &ObjectRef,
    from: &ObjectRef,
    to: &ObjectRef,
) -> Result<(), VerbError> {
    if graph.edge(to, child).is_none() {
        mount(api, graph, subject, child, to, MountMode::Expose)?;
    }
    if graph.edge(from, child).is_some() {
        yield_(api, subject, child, from)?;
    }
    unyield(api, subject, child, to)
}

/// Writes `.control.<attr>.intent` on a digi.
pub fn set_intent(
    api: &mut ApiServer,
    subject: &str,
    target: &ObjectRef,
    attr: &str,
    value: Value,
) -> Result<(), VerbError> {
    api.patch_path(subject, target, &format!(".control.{attr}.intent"), value)?;
    Ok(())
}

/// `pipe(A.out.x, B.in.x)`: creates the `Sync` object implementing the
/// data flow. Returns the Sync object's reference (pass it to [`unpipe`]).
pub fn pipe(api: &mut ApiServer, subject: &str, spec: &SyncSpec) -> Result<ObjectRef, VerbError> {
    if !spec.source_path.starts_with(".data.output") || !spec.target_path.starts_with(".data.input")
    {
        return Err(VerbError::Invalid(
            "pipe must connect a data.output path to a data.input path".into(),
        ));
    }
    let name = format!(
        "pipe-{}-{}--{}-{}",
        spec.source.name,
        spec.source_path.rsplit('.').next().unwrap_or("x"),
        spec.target.name,
        spec.target_path.rsplit('.').next().unwrap_or("x"),
    );
    let oref = ObjectRef::default_ns("Sync", name.clone());
    api.create(subject, &oref, spec.to_model(&name))?;
    Ok(oref)
}

/// Removes a pipe created by [`pipe`].
pub fn unpipe(api: &mut ApiServer, subject: &str, sync: &ObjectRef) -> Result<(), VerbError> {
    api.delete(subject, sync)?;
    Ok(())
}

/// Removes the pipe whose Sync spec matches `spec` (used by pipe policies,
/// which name endpoints rather than Sync objects).
pub fn unpipe_matching(
    api: &mut ApiServer,
    subject: &str,
    spec: &SyncSpec,
) -> Result<(), VerbError> {
    let syncs = api.query(subject, &Query::kind("Sync"))?;
    for obj in syncs {
        if SyncSpec::parse(&obj.model).as_ref() == Some(spec) {
            api.delete(subject, &obj.oref)?;
            return Ok(());
        }
    }
    Err(VerbError::Invalid(format!(
        "no pipe from {}{} to {}{}",
        spec.source, spec.source_path, spec.target, spec.target_path
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_apiserver::ApiServer;
    use dspace_value::json;

    fn digi(kind: &str, name: &str) -> Value {
        json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "default"}},
                 "control": {{}}, "mount": {{}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn mount_writes_reference_with_state() {
        let mut api = ApiServer::new();
        let graph = DigiGraph::new();
        let lamp = ObjectRef::default_ns("Lamp", "l1");
        let room = ObjectRef::default_ns("Room", "r1");
        api.create(ApiServer::ADMIN, &lamp, digi("Lamp", "l1"))
            .unwrap();
        api.create(ApiServer::ADMIN, &room, digi("Room", "r1"))
            .unwrap();
        let st = mount(
            &mut api,
            &graph,
            ApiServer::ADMIN,
            &lamp,
            &room,
            MountMode::Hide,
        )
        .unwrap();
        assert_eq!(st, EdgeState::Active);
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &room, ".mount.Lamp.l1.mode")
                .unwrap()
                .as_str(),
            Some("hide")
        );
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &room, ".mount.Lamp.l1.status")
                .unwrap()
                .as_str(),
            Some(MOUNT_ACTIVE)
        );
    }

    #[test]
    fn pipe_requires_output_to_input() {
        let mut api = ApiServer::new();
        let bad = SyncSpec {
            source: ObjectRef::default_ns("A", "a"),
            source_path: ".control.x.status".into(),
            target: ObjectRef::default_ns("B", "b"),
            target_path: ".data.input.x".into(),
        };
        assert!(matches!(
            pipe(&mut api, ApiServer::ADMIN, &bad),
            Err(VerbError::Invalid(_))
        ));
    }

    #[test]
    fn pipe_and_unpipe_roundtrip() {
        let mut api = ApiServer::new();
        let spec = SyncSpec {
            source: ObjectRef::default_ns("Xcdr", "x"),
            source_path: ".data.output.url".into(),
            target: ObjectRef::default_ns("Scene", "s"),
            target_path: ".data.input.url".into(),
        };
        let sref = pipe(&mut api, ApiServer::ADMIN, &spec).unwrap();
        assert!(api.get(ApiServer::ADMIN, &sref).is_ok());
        unpipe(&mut api, ApiServer::ADMIN, &sref).unwrap();
        assert!(api.get(ApiServer::ADMIN, &sref).is_err());
    }
}

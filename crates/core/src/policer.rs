//! The Policer controller (§5.2): adaptive composition via policies.
//!
//! "The policy controller watches all Policy objects … starts watching for
//! changes on these digis and enforces the policy if any of the conditions
//! are triggered." Conditions are reflex programs over the watched digis'
//! models; actions are composition verbs (mount/yield/transfer/…). This is
//! what makes composition *adaptive* (§3.4): a roomba is remounted as it
//! moves between rooms, a home yields to an emergency service when the
//! alarm fires — with no human in the loop.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use dspace_apiserver::{ApiServer, BatchOp, ObjectRef, Query, WatchEvent, WatchEventKind, WatchId};
use dspace_reflex::Env;
use dspace_simnet::Time;

use crate::graph::DigiGraph;
use crate::policy::{Policy, PolicyAction};
use crate::trace::{Trace, TraceKind};
use crate::verbs;

/// The apiserver subject the policer authenticates as.
pub const SUBJECT: &str = "controller:policer";

/// A planned policer cycle: the policies to (re-)evaluate, decided from
/// the wake-time event batch. Registration bookkeeping (watch extension/
/// narrowing, spec parsing) happens at plan time; condition evaluation
/// and actions run at landing time against landing-time state, exactly
/// as the inline path evaluates against post-registration state.
pub(crate) struct PolicerPlan {
    to_evaluate: Vec<ObjectRef>,
}

impl PolicerPlan {
    /// True when no policy needs evaluation (nothing travels the link).
    pub(crate) fn is_empty(&self) -> bool {
        self.to_evaluate.is_empty()
    }

    /// Estimated bytes for the evaluation request batch (policy refs plus
    /// framing), used to size the simulated link transfer.
    pub(crate) fn wire_bytes(&self) -> u64 {
        self.to_evaluate
            .iter()
            .map(|id| id.to_string().len() as u64 + 16)
            .sum()
    }
}

/// The Policer controller.
///
/// Holds no handle to the runtime's digi-graph: graph-reading verbs are
/// handed the live graph cell at landing time, which keeps the struct
/// `Send` so it can ride a plan-phase job like the other controllers.
pub struct Policer {
    policies: BTreeMap<ObjectRef, Policy>,
    /// Last condition value per policy (for edge triggering).
    state: BTreeMap<ObjectRef, bool>,
    /// Reverse map: watched digi → policies watching it. Event dispatch is
    /// one lookup instead of a scan over every policy's watch list, and the
    /// key set is exactly the set of object subscriptions the policer holds
    /// on the apiserver.
    by_watched: BTreeMap<ObjectRef, BTreeSet<ObjectRef>>,
}

impl Default for Policer {
    fn default() -> Self {
        Self::new()
    }
}

impl Policer {
    /// Creates a policer.
    pub fn new() -> Self {
        Policer {
            policies: BTreeMap::new(),
            state: BTreeMap::new(),
            by_watched: BTreeMap::new(),
        }
    }

    /// Number of registered policies.
    pub fn active_policies(&self) -> usize {
        self.policies.len()
    }

    /// Digis the policer currently subscribes to (one object subscription
    /// per entry, refcounted across policies).
    pub fn watched_digis(&self) -> usize {
        self.by_watched.len()
    }

    /// The exact query a policy's watch entry subscribes on the apiserver.
    fn object_query(w: &ObjectRef) -> Query {
        Query::kind(w.kind.as_str())
            .in_ns(w.namespace.as_str())
            .named(w.name.as_str())
    }

    /// Subscribes the policer's watch to every digi in `watch` (one
    /// occurrence per policy; the store refcounts overlapping selectors).
    fn watch_digis(
        &mut self,
        api: &mut ApiServer,
        id: WatchId,
        policy: &ObjectRef,
        watch: &[ObjectRef],
    ) {
        for w in watch {
            if api
                .extend_watch(SUBJECT, id, &Self::object_query(w))
                .is_ok()
            {
                self.by_watched
                    .entry(w.clone())
                    .or_default()
                    .insert(policy.clone());
            }
        }
    }

    /// Drops the subscriptions a removed (or re-parsed) policy held.
    fn unwatch_digis(
        &mut self,
        api: &mut ApiServer,
        id: WatchId,
        policy: &ObjectRef,
        watch: &[ObjectRef],
    ) {
        for w in watch {
            let _ = api.narrow_watch(id, &Self::object_query(w));
            if let Some(holders) = self.by_watched.get_mut(w) {
                holders.remove(policy);
                if holders.is_empty() {
                    self.by_watched.remove(w);
                }
            }
        }
    }

    /// Processes a batch of watch events drained from subscription `watch`.
    ///
    /// The policer owns that subscription's selector set: as policies come
    /// and go it extends the watch with one object query per watched digi
    /// and narrows it back when the last policy watching a digi is deleted.
    /// Events for digis no policy watches are therefore never queued — the
    /// policer does not wake for them at all, rather than waking to discard.
    pub fn process(
        &mut self,
        api: &mut ApiServer,
        graph: &RefCell<DigiGraph>,
        watch: WatchId,
        events: &[WatchEvent],
        trace: &mut Trace,
        now: Time,
    ) {
        let plan = self.plan(api, watch, events, trace, now);
        self.land(api, graph, plan, trace, now);
    }

    /// Drains a batch of watch events into a landable plan: policy
    /// add/remove bookkeeping is applied eagerly (it owns the watch's
    /// selector set and must not lag behind the event stream), while
    /// evaluation is deferred to the returned plan.
    pub(crate) fn plan(
        &mut self,
        api: &mut ApiServer,
        watch: WatchId,
        events: &[WatchEvent],
        trace: &mut Trace,
        now: Time,
    ) -> PolicerPlan {
        let mut to_evaluate: Vec<ObjectRef> = Vec::new();
        for ev in events {
            if ev.oref.kind == "Policy" {
                match ev.kind {
                    WatchEventKind::Deleted => {
                        if let Some(old) = self.policies.remove(&ev.oref) {
                            let targets = old.watch.clone();
                            self.unwatch_digis(api, watch, &ev.oref, &targets);
                        }
                        self.state.remove(&ev.oref);
                    }
                    _ => match Policy::parse(&ev.model) {
                        Ok(p) => {
                            let new_watch = p.watch.clone();
                            let old_watch = self
                                .policies
                                .insert(ev.oref.clone(), p)
                                .map(|old| old.watch)
                                .unwrap_or_default();
                            let added: Vec<ObjectRef> = new_watch
                                .iter()
                                .filter(|w| !old_watch.contains(w))
                                .cloned()
                                .collect();
                            let removed: Vec<ObjectRef> = old_watch
                                .into_iter()
                                .filter(|w| !new_watch.contains(w))
                                .collect();
                            self.unwatch_digis(api, watch, &ev.oref, &removed);
                            self.watch_digis(api, watch, &ev.oref, &added);
                            self.state.remove(&ev.oref);
                            if !to_evaluate.contains(&ev.oref) {
                                to_evaluate.push(ev.oref.clone());
                            }
                        }
                        Err(e) => trace.push(
                            now,
                            TraceKind::PolicyFired,
                            ev.oref.to_string(),
                            format!("rejected: {e}"),
                        ),
                    },
                }
                continue;
            }
            if let Some(holders) = self.by_watched.get(&ev.oref) {
                for id in holders {
                    if !to_evaluate.contains(id) {
                        to_evaluate.push(id.clone());
                    }
                }
            }
        }
        PolicerPlan { to_evaluate }
    }

    /// Evaluates every policy in the plan against current state. `now` is
    /// the landing time; conditions referencing `time` and all emitted
    /// traces use it. `graph` is the *live* digi-graph cell: an action may
    /// mutate the graph through the topology webhook, and the next action
    /// of the same policy must see that mutation (s8's unmount→mount
    /// pair), so freshness cannot come from a wake-time snapshot.
    pub(crate) fn land(
        &mut self,
        api: &mut ApiServer,
        graph: &RefCell<DigiGraph>,
        plan: PolicerPlan,
        trace: &mut Trace,
        now: Time,
    ) {
        let now_s = now as f64 / 1e9;
        for id in plan.to_evaluate {
            self.evaluate(api, graph, &id, trace, now, now_s);
        }
    }

    fn evaluate(
        &mut self,
        api: &mut ApiServer,
        graph: &RefCell<DigiGraph>,
        id: &ObjectRef,
        trace: &mut Trace,
        now: Time,
        now_s: f64,
    ) {
        let Some(policy) = self.policies.get(id).cloned() else {
            return;
        };
        let mut models = Vec::new();
        for w in &policy.watch {
            let Ok(obj) = api.get(SUBJECT, w) else { return };
            models.push((w.name.clone(), (*obj.model).clone()));
        }
        let ctx = policy.context(&models);
        let env = Env::new().with_var("time", now_s.into());
        let value = match policy.condition.eval(&ctx, &env) {
            Ok(v) => v.truthy(),
            Err(e) => {
                trace.push(
                    now,
                    TraceKind::PolicyFired,
                    id.to_string(),
                    format!("error: {e}"),
                );
                return;
            }
        };
        let prev = self.state.insert(id.clone(), value);
        let actions: &[PolicyAction] = match (prev, value) {
            // Rising edge, or a freshly registered policy whose condition
            // already holds: enforce.
            (None, true) | (Some(false), true) => &policy.on_rising,
            (Some(true), false) => &policy.on_falling,
            _ => return,
        };
        if actions.is_empty() {
            return;
        }
        trace.push(
            now,
            TraceKind::PolicyFired,
            id.to_string(),
            format!("condition -> {value}, {} action(s)", actions.len()),
        );
        let mut i = 0;
        while i < actions.len() {
            // A run of consecutive set-intent actions commits as ONE
            // apiserver batch: a fan-out like "all tenants' lamps off"
            // spans namespaces, so the shard executor can run the writes
            // in parallel, while per-action results (and their order in
            // the trace) are preserved exactly.
            let run = i + actions[i..]
                .iter()
                .take_while(|a| matches!(a, PolicyAction::SetIntent { .. }))
                .count();
            if run - i >= 2 {
                let ops = actions[i..run]
                    .iter()
                    .map(|a| {
                        let PolicyAction::SetIntent {
                            target,
                            attr,
                            value,
                        } = a
                        else {
                            unreachable!("run contains only set-intent actions")
                        };
                        BatchOp::PatchPath {
                            oref: target.clone(),
                            path: format!(".control.{attr}.intent"),
                            value: value.clone(),
                        }
                    })
                    .collect();
                for (action, result) in actions[i..run].iter().zip(api.apply_batch(SUBJECT, ops)) {
                    match result {
                        Ok(_) => trace.push(
                            now,
                            TraceKind::Composition,
                            id.to_string(),
                            format!("{action:?}"),
                        ),
                        Err(e) => trace.push(
                            now,
                            TraceKind::PolicyFired,
                            id.to_string(),
                            format!("action failed: {e}"),
                        ),
                    }
                }
                i = run;
                continue;
            }
            let action = &actions[i];
            if let Err(e) = self.run_action(api, graph, action) {
                trace.push(
                    now,
                    TraceKind::PolicyFired,
                    id.to_string(),
                    format!("action failed: {e}"),
                );
            } else {
                trace.push(
                    now,
                    TraceKind::Composition,
                    id.to_string(),
                    format!("{action:?}"),
                );
            }
            i += 1;
        }
    }

    fn run_action(
        &self,
        api: &mut ApiServer,
        graph: &RefCell<DigiGraph>,
        action: &PolicyAction,
    ) -> Result<(), verbs::VerbError> {
        // Per-action clone: the previous action may have moved an edge
        // through the admission webhook, and graph-reading verbs must see
        // the current topology, not the cycle-start one.
        let graph = graph.borrow().clone();
        match action {
            PolicyAction::Mount {
                child,
                parent,
                mode,
            } => verbs::mount(api, &graph, SUBJECT, child, parent, *mode).map(|_| ()),
            PolicyAction::Unmount { child, parent } => verbs::unmount(api, SUBJECT, child, parent),
            PolicyAction::Yield { child, parent } => verbs::yield_(api, SUBJECT, child, parent),
            PolicyAction::Unyield { child, parent } => verbs::unyield(api, SUBJECT, child, parent),
            PolicyAction::Transfer { child, from, to } => {
                verbs::transfer(api, &graph, SUBJECT, child, from, to)
            }
            PolicyAction::SetIntent {
                target,
                attr,
                value,
            } => verbs::set_intent(api, SUBJECT, target, attr, value.clone()),
            PolicyAction::Pipe {
                source,
                source_attr,
                target,
                target_attr,
            } => {
                let spec = crate::syncer::SyncSpec {
                    source: source.clone(),
                    source_path: format!(".data.output.{source_attr}"),
                    target: target.clone(),
                    target_path: format!(".data.input.{target_attr}"),
                };
                verbs::pipe(api, SUBJECT, &spec).map(|_| ())
            }
            PolicyAction::Unpipe {
                source,
                source_attr,
                target,
                target_attr,
            } => {
                let spec = crate::syncer::SyncSpec {
                    source: source.clone(),
                    source_path: format!(".data.output.{source_attr}"),
                    target: target.clone(),
                    target_path: format!(".data.input.{target_attr}"),
                };
                verbs::unpipe_matching(api, SUBJECT, &spec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use super::*;
    use crate::topology::TopologyWebhook;
    use dspace_value::{json, yaml, Value};

    fn digi(kind: &str, name: &str) -> Value {
        json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "default"}},
                 "control": {{}}, "mount": {{}}, "obs": {{}}}}"#
        ))
        .unwrap()
    }

    struct Rig {
        api: ApiServer,
        policer: Policer,
        graph: Rc<RefCell<DigiGraph>>,
        watch: dspace_apiserver::WatchId,
        trace: Trace,
    }

    impl Rig {
        fn new() -> Rig {
            let graph = Rc::new(RefCell::new(DigiGraph::new()));
            let mut api = ApiServer::new();
            api.register_webhook(Box::new(TopologyWebhook::new(graph.clone())));
            api.rbac_mut().add_role(dspace_apiserver::Role::new(
                "controller",
                vec![dspace_apiserver::Rule::allow_all()],
            ));
            api.rbac_mut().bind(SUBJECT, "controller");
            let watch = api.watch_query(ApiServer::ADMIN, &Query::all()).unwrap();
            Rig {
                api,
                policer: Policer::new(),
                graph,
                watch,
                trace: Trace::new(),
            }
        }

        /// Drains events and runs the policer until quiescent.
        fn settle(&mut self) {
            for _ in 0..10 {
                let evs = self.api.poll(self.watch);
                if evs.is_empty() {
                    return;
                }
                self.policer.process(
                    &mut self.api,
                    &self.graph,
                    self.watch,
                    &evs,
                    &mut self.trace,
                    0,
                );
            }
        }
    }

    #[test]
    fn s10_emergency_delegation() {
        let mut rig = Rig::new();
        let room = ObjectRef::default_ns("Room", "lvroom");
        let home = ObjectRef::default_ns("Home", "home");
        let city = ObjectRef::default_ns("Emergency", "city");
        for (k, n) in [("Room", "lvroom"), ("Home", "home"), ("Emergency", "city")] {
            rig.api
                .create(ApiServer::ADMIN, &ObjectRef::default_ns(k, n), digi(k, n))
                .unwrap();
        }
        // home controls room.
        {
            let g = rig.graph.borrow().clone();
            verbs::mount(
                &mut rig.api,
                &g,
                ApiServer::ADMIN,
                &room,
                &home,
                crate::graph::MountMode::Expose,
            )
            .unwrap();
        }
        rig.settle();
        let policy = yaml::parse(
            "
meta: {kind: Policy, name: emergency-yield, namespace: default}
spec:
  watch: [\"Emergency/default/city\"]
  condition: .city.obs.alarm == true
  on_rising:
    - {action: transfer, child: Room/default/lvroom, from: Home/default/home, to: Emergency/default/city}
  on_falling:
    - {action: transfer, child: Room/default/lvroom, from: Emergency/default/city, to: Home/default/home}
",
        )
        .unwrap();
        rig.api
            .create(
                ApiServer::ADMIN,
                &ObjectRef::default_ns("Policy", "emergency-yield"),
                policy,
            )
            .unwrap();
        rig.settle();
        assert_eq!(rig.policer.active_policies(), 1);
        assert_eq!(rig.graph.borrow().active_parent(&room), Some(home.clone()));

        // Alarm fires: control transfers to the city service.
        rig.api
            .patch_path(ApiServer::ADMIN, &city, ".obs.alarm", true.into())
            .unwrap();
        rig.settle();
        assert_eq!(rig.graph.borrow().active_parent(&room), Some(city.clone()));

        // Alarm clears: control returns to the home.
        rig.api
            .patch_path(ApiServer::ADMIN, &city, ".obs.alarm", false.into())
            .unwrap();
        rig.settle();
        assert_eq!(rig.graph.borrow().active_parent(&room), Some(home));
        // The city keeps a yielded mount (it continues to watch).
        assert_eq!(
            rig.graph.borrow().edge(&city, &room).unwrap().state,
            crate::graph::EdgeState::Yielded
        );
    }

    #[test]
    fn s8_mobility_mount_policy() {
        let mut rig = Rig::new();
        let roomba = ObjectRef::default_ns("Roomba", "rb");
        let room_a = ObjectRef::default_ns("Room", "a");
        let room_b = ObjectRef::default_ns("Room", "b");
        for (k, n) in [("Roomba", "rb"), ("Room", "a"), ("Room", "b")] {
            rig.api
                .create(ApiServer::ADMIN, &ObjectRef::default_ns(k, n), digi(k, n))
                .unwrap();
        }
        {
            let g = rig.graph.borrow().clone();
            verbs::mount(
                &mut rig.api,
                &g,
                ApiServer::ADMIN,
                &roomba,
                &room_a,
                crate::graph::MountMode::Expose,
            )
            .unwrap();
        }
        rig.settle();
        // Unmount from A and mount to B when A no longer sees the roomba
        // in its objects list (S8's mount policy).
        let policy = yaml::parse(
            "
meta: {kind: Policy, name: roomba-mobility, namespace: default}
spec:
  watch: [\"Room/default/a\"]
  condition: .a.obs.objects and (.a.obs.objects | contains([\"roomba\"]) | not)
  on_rising:
    - {action: unmount, child: Roomba/default/rb, parent: Room/default/a}
    - {action: mount, child: Roomba/default/rb, parent: Room/default/b}
",
        )
        .unwrap();
        rig.api
            .create(
                ApiServer::ADMIN,
                &ObjectRef::default_ns("Policy", "roomba-mobility"),
                policy,
            )
            .unwrap();
        rig.settle();
        // Roomba still visible in room a: nothing happens.
        rig.api
            .patch_path(
                ApiServer::ADMIN,
                &room_a,
                ".obs.objects",
                dspace_value::array(["person".into(), "roomba".into()]),
            )
            .unwrap();
        rig.settle();
        assert_eq!(
            rig.graph.borrow().active_parent(&roomba),
            Some(room_a.clone())
        );
        // Roomba left the camera view of room a: remounted to room b.
        rig.api
            .patch_path(
                ApiServer::ADMIN,
                &room_a,
                ".obs.objects",
                dspace_value::array(["person".into()]),
            )
            .unwrap();
        rig.settle();
        assert_eq!(rig.graph.borrow().active_parent(&roomba), Some(room_b));
        assert!(rig.graph.borrow().edge(&room_a, &roomba).is_none());
    }

    #[test]
    fn consecutive_set_intents_commit_as_one_batch() {
        let mut rig = Rig::new();
        let alarm = ObjectRef::default_ns("Alarm", "alarm");
        rig.api
            .create(ApiServer::ADMIN, &alarm, digi("Alarm", "alarm"))
            .unwrap();
        // Lamps in two tenant namespaces: the fan-out spans shards.
        for ns in ["tenant-a", "tenant-b"] {
            let mut m = digi("Lamp", "l1");
            m.set(&".meta.namespace".parse().unwrap(), ns.into())
                .unwrap();
            rig.api
                .create(ApiServer::ADMIN, &ObjectRef::new("Lamp", ns, "l1"), m)
                .unwrap();
        }
        rig.settle();
        let policy = yaml::parse(
            "
meta: {kind: Policy, name: lights-out, namespace: default}
spec:
  watch: [\"Alarm/default/alarm\"]
  condition: .alarm.obs.night == true
  on_rising:
    - {action: set-intent, target: Lamp/tenant-a/l1, attr: power, value: \"off\"}
    - {action: set-intent, target: Lamp/tenant-b/l1, attr: power, value: \"off\"}
",
        )
        .unwrap();
        rig.api
            .create(
                ApiServer::ADMIN,
                &ObjectRef::default_ns("Policy", "lights-out"),
                policy,
            )
            .unwrap();
        rig.settle();
        rig.api
            .patch_path(ApiServer::ADMIN, &alarm, ".obs.night", true.into())
            .unwrap();
        rig.settle();
        for ns in ["tenant-a", "tenant-b"] {
            let v = rig
                .api
                .get_path(
                    ApiServer::ADMIN,
                    &ObjectRef::new("Lamp", ns, "l1"),
                    ".control.power.intent",
                )
                .unwrap();
            assert_eq!(v.as_str(), Some("off"), "{ns} lamp not switched off");
        }
        // Both actions traced as committed compositions.
        let composed = rig
            .trace
            .entries()
            .iter()
            .filter(|e| e.kind == TraceKind::Composition && e.detail.contains("SetIntent"))
            .count();
        assert_eq!(composed, 2);
    }

    #[test]
    fn broken_policy_is_rejected_not_fatal() {
        let mut rig = Rig::new();
        let bad = yaml::parse(
            "meta: {kind: Policy, name: bad, namespace: default}\nspec:\n  condition: \"true\"\n",
        )
        .unwrap();
        rig.api
            .create(
                ApiServer::ADMIN,
                &ObjectRef::default_ns("Policy", "bad"),
                bad,
            )
            .unwrap();
        rig.settle();
        assert_eq!(rig.policer.active_policies(), 0);
        assert!(rig
            .trace
            .entries()
            .iter()
            .any(|e| e.kind == TraceKind::PolicyFired && e.detail.contains("rejected")));
    }
}

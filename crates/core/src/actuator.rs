//! The boundary between leaf digis and the (simulated) physical world.
//!
//! In the paper, leaf digivices interface with physical devices through
//! vendor libraries, and leaf digidata wrap data-processing frameworks
//! (§6.1, Tables 2–3). In this reproduction both are [`Actuator`]s: objects
//! that accept commands from a digi's driver, take some (virtual) time to
//! act — the **DT** component of Figure 7 — and answer with model patches
//! (status updates, observations, data outputs). Actuators may also emit
//! spontaneous patches (motion detection, a manually flipped switch, a
//! moving robot) from their periodic [`Actuator::step`] hook.

use dspace_simnet::{Rng, Time};
use dspace_value::Value;

/// The outcome of an actuation or a spontaneous device event.
#[derive(Debug, Clone, PartialEq)]
pub struct Actuation {
    /// Virtual time until the effect lands (device/processing latency).
    pub delay: Time,
    /// Model patch merged into the digi's model when the effect lands
    /// (e.g. `{"control": {"power": {"status": "on"}}}`).
    pub patch: Value,
    /// Bytes transferred to perform this actuation (for bandwidth
    /// accounting, e.g. a video frame fetched by the Scene engine).
    pub bytes: usize,
}

impl Actuation {
    /// Creates an actuation with no payload bytes.
    pub fn new(delay: Time, patch: Value) -> Self {
        Actuation {
            delay,
            patch,
            bytes: 0,
        }
    }

    /// Sets the transfer size.
    pub fn with_bytes(mut self, bytes: usize) -> Self {
        self.bytes = bytes;
        self
    }
}

/// A simulated physical device or data-processing engine attached to a
/// leaf digi.
pub trait Actuator {
    /// Human-readable device name (vendor/model), for traces.
    fn name(&self) -> &str;

    /// Handles a command emitted by the digi's driver
    /// ([`crate::driver::Effect::Device`]). Returns the actuations the
    /// command causes; an empty vector means the command was a no-op.
    fn actuate(&mut self, now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation>;

    /// Periodic hook for spontaneous physical events; `model` is the digi's
    /// current model (inputs/config live there). Called every poll
    /// interval by the runtime.
    fn step(&mut self, _now: Time, _model: &Value, _rng: &mut Rng) -> Vec<Actuation> {
        Vec::new()
    }

    /// The poll interval for [`Actuator::step`]; `None` disables polling.
    fn poll_interval(&self) -> Option<Time> {
        None
    }
}

/// A trivial actuator for tests: acknowledges every command after a fixed
/// delay by copying each `control.*.intent` in the command to `status`.
#[derive(Debug, Clone)]
pub struct EchoActuator {
    /// Device name.
    pub device: String,
    /// Fixed actuation latency.
    pub latency: Time,
}

impl EchoActuator {
    /// Creates an echo actuator.
    pub fn new(device: impl Into<String>, latency: Time) -> Self {
        EchoActuator {
            device: device.into(),
            latency,
        }
    }
}

impl Actuator for EchoActuator {
    fn name(&self) -> &str {
        &self.device
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, _rng: &mut Rng) -> Vec<Actuation> {
        // The command is `{attr: value, ...}`; acknowledge as status.
        let Some(map) = cmd.as_object() else {
            return Vec::new();
        };
        let mut patch = dspace_value::obj();
        for (attr, v) in map {
            let p = format!(".control.{attr}.status")
                .parse()
                .expect("attr path");
            patch.set(&p, v.clone()).expect("object patch");
        }
        vec![Actuation::new(self.latency, patch)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_simnet::millis;

    #[test]
    fn echo_actuator_acknowledges_command() {
        let mut a = EchoActuator::new("test-lamp", millis(100));
        let mut rng = Rng::new(1);
        let cmd = dspace_value::object([("power", "on".into())]);
        let acts = a.actuate(0, &cmd, &mut rng);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].delay, millis(100));
        assert_eq!(
            acts[0]
                .patch
                .get_path(".control.power.status")
                .unwrap()
                .as_str(),
            Some("on")
        );
        // Non-object commands are ignored.
        assert!(a.actuate(0, &Value::Null, &mut rng).is_empty());
    }

    #[test]
    fn default_step_is_silent() {
        let mut a = EchoActuator::new("x", 0);
        let mut rng = Rng::new(1);
        assert!(a.step(0, &Value::Null, &mut rng).is_empty());
        assert!(a.poll_interval().is_none());
    }
}

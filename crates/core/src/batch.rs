//! Write batching for controllers.
//!
//! A [`WriteBatch`] lets a controller accumulate every write of one pump
//! cycle and commit them in a single [`ApiServer::apply_batch`] call —
//! one RBAC/validation/admission pass per op but one store commit (and
//! one parallel shard fan-out, one compaction pass per shard) for the
//! whole cycle, instead of a full serial verb round-trip per write.
//!
//! **Decision parity.** A controller must make byte-identical decisions
//! whether its writes are batched or issued per-op. Per-op, a write is
//! visible to the controller's next read; batched, it is not committed
//! yet. The batch therefore keeps a *read-through overlay*: each queued
//! write is simulated against the overlay exactly the way the server
//! will apply it at commit (same merge/set, same `rv + 1`, same
//! [`stamp_gen`] stamping), and [`WriteBatch::get`] serves overlay
//! entries before consulting the server. The overlay is optimistic: an
//! op denied by admission at commit time was still visible to later
//! same-cycle reads. The dSpace controllers only issue writes that pass
//! the topology webhook (it validates mount-topology changes, which
//! controllers never make), so in practice the overlay and the committed
//! state agree — and the cross-mode determinism tests assert it.
//!
//! **Deferred effects.** Controller side-effects that were gated on a
//! write's success (a trace entry, a dedup-cache insert) cannot happen
//! at issue time in batched mode. Write methods return a *ticket*; after
//! [`WriteBatch::commit`] the per-ticket results tell the controller
//! which effects to apply. In per-op mode the same tickets resolve to
//! the immediately-known results, so controller code is identical in
//! both modes.

use std::collections::BTreeMap;

use dspace_apiserver::{stamp_gen, ApiError, ApiServer, BatchOp, ObjectRef, SnapshotView, Verb};
use dspace_value::{Path, Shared, Value};

/// The result of one queued write: the committed resource version on
/// success, mirroring the serial verbs.
pub type WriteResult = Result<u64, ApiError>;

/// The read/write surface a [`WriteBatch`] accumulates against: the live
/// [`ApiServer`] for inline controller cycles, or a detached
/// [`SnapshotView`] for plan jobs running off the coordinator thread.
/// Semantics — RBAC checks, error shapes, read-your-writes — are
/// identical across backends, which is what keeps parallel planning
/// bit-identical to the serial planner.
pub trait BatchBackend {
    /// RBAC-checked read of `(model, resource_version)`, mirroring
    /// [`ApiServer::get`] exactly (same `Forbidden` reason text, same
    /// `NotFound`).
    fn read(&self, subject: &str, oref: &ObjectRef) -> Result<(Shared<Value>, u64), ApiError>;

    /// Whether `subject` may `Get` the object — the overlay hit's RBAC
    /// gate, which must agree with [`read`](Self::read)'s check.
    fn authorized_get(&self, subject: &str, oref: &ObjectRef) -> bool;

    /// Unauthenticated raw read backing
    /// [`WriteBatch::read_for_write`]'s first-read snapshot.
    fn read_admin(&self, oref: &ObjectRef) -> Result<(Shared<Value>, u64), ApiError>;

    /// Immediate deep-merge patch — the legacy per-op (non-batched)
    /// path. Plan jobs never take it: deferred cycles force batching.
    fn patch_now(&mut self, subject: &str, oref: &ObjectRef, patch: Value) -> WriteResult;

    /// Immediate path set — the legacy per-op (non-batched) path.
    fn patch_path_now(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        path: &str,
        value: Value,
    ) -> WriteResult;
}

impl BatchBackend for ApiServer {
    fn read(&self, subject: &str, oref: &ObjectRef) -> Result<(Shared<Value>, u64), ApiError> {
        let obj = self.get(subject, oref)?;
        Ok((obj.model, obj.resource_version))
    }

    fn authorized_get(&self, subject: &str, oref: &ObjectRef) -> bool {
        self.rbac().authorize(subject, Verb::Get, oref)
    }

    fn read_admin(&self, oref: &ObjectRef) -> Result<(Shared<Value>, u64), ApiError> {
        let obj = self.get(ApiServer::ADMIN, oref)?;
        Ok((obj.model, obj.resource_version))
    }

    fn patch_now(&mut self, subject: &str, oref: &ObjectRef, patch: Value) -> WriteResult {
        self.patch(subject, oref, patch)
    }

    fn patch_path_now(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        path: &str,
        value: Value,
    ) -> WriteResult {
        self.patch_path(subject, oref, path, value)
    }
}

impl BatchBackend for SnapshotView {
    fn read(&self, subject: &str, oref: &ObjectRef) -> Result<(Shared<Value>, u64), ApiError> {
        let obj = self.get(subject, oref)?;
        Ok((obj.model, obj.resource_version))
    }

    fn authorized_get(&self, subject: &str, oref: &ObjectRef) -> bool {
        self.authorized(subject, Verb::Get, oref)
    }

    fn read_admin(&self, oref: &ObjectRef) -> Result<(Shared<Value>, u64), ApiError> {
        let obj = self.get(ApiServer::ADMIN, oref)?;
        Ok((obj.model, obj.resource_version))
    }

    fn patch_now(&mut self, _subject: &str, _oref: &ObjectRef, _patch: Value) -> WriteResult {
        unreachable!("snapshot-backed batches always run in batched mode")
    }

    fn patch_path_now(
        &mut self,
        _subject: &str,
        _oref: &ObjectRef,
        _path: &str,
        _value: Value,
    ) -> WriteResult {
        unreachable!("snapshot-backed batches always run in batched mode")
    }
}

/// How a ticket resolves at commit time.
enum Pending {
    /// Failed at issue time (the failure is deterministic: per-op mode
    /// fails the same way against the same state). Never sent.
    Failed(ApiError),
    /// Queued as the `.0`-th op of the batch commit.
    Queued(usize),
    /// Executed immediately (per-op mode) with this result.
    Done(WriteResult),
}

/// One pump cycle's worth of controller writes (see module docs).
pub struct WriteBatch {
    subject: String,
    batched: bool,
    ops: Vec<BatchOp>,
    /// Simulated post-write state per object: `(stamped model, rv)`.
    overlay: BTreeMap<ObjectRef, (Shared<Value>, u64)>,
    /// Store resource version each written object's *first* read-for-write
    /// observed — the snapshot this batch's decisions are based on.
    /// [`commit_occ`](Self::commit_occ) re-validates against it.
    base: BTreeMap<ObjectRef, u64>,
    /// Rough serialized size of the queued ops, for sizing the link
    /// transfer that carries a deferred batch to the apiserver.
    wire_bytes: u64,
    pending: Vec<Pending>,
}

impl WriteBatch {
    /// Starts an empty batch acting as `subject`. With `batched = false`
    /// every write executes immediately (the legacy per-op behavior);
    /// tickets still resolve through [`commit`](Self::commit) so the
    /// calling code is mode-agnostic.
    pub fn new(subject: impl Into<String>, batched: bool) -> Self {
        WriteBatch {
            subject: subject.into(),
            batched,
            ops: Vec::new(),
            overlay: BTreeMap::new(),
            base: BTreeMap::new(),
            wire_bytes: 0,
            pending: Vec::new(),
        }
    }

    /// Number of writes issued so far (failed, queued, or done).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no write has been issued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of ops queued for the batch commit (excludes issue-time
    /// failures and per-op-mode writes that already executed).
    pub fn queued_ops(&self) -> usize {
        self.ops.len()
    }

    /// Approximate wire size of the queued ops — what a deferred commit
    /// puts on the link.
    pub fn wire_bytes(&self) -> usize {
        self.wire_bytes as usize
    }

    /// Reads an object's `(model, resource_version)` as the controller
    /// must see it mid-cycle: through the overlay when batched, straight
    /// from the server otherwise. RBAC is enforced either way.
    pub fn get<B: BatchBackend>(
        &self,
        api: &B,
        oref: &ObjectRef,
    ) -> Result<(Shared<Value>, u64), ApiError> {
        if self.batched {
            if let Some((model, rv)) = self.overlay.get(oref) {
                if !api.authorized_get(&self.subject, oref) {
                    return Err(ApiError::Forbidden {
                        subject: self.subject.clone(),
                        reason: format!("{:?} on {oref} not permitted", Verb::Get),
                    });
                }
                return Ok((Shared::clone(model), *rv));
            }
        }
        api.read(&self.subject, oref)
    }

    /// Reads one attribute (see [`get`](Self::get)); missing paths read
    /// as `Null`, like the serial `get_path` verb.
    pub fn get_path<B: BatchBackend>(
        &self,
        api: &B,
        oref: &ObjectRef,
        path: &str,
    ) -> Result<Value, ApiError> {
        let (model, _) = self.get(api, oref)?;
        Ok(model.get_path(path).cloned().unwrap_or(Value::Null))
    }

    /// Deep-merges a patch into an object's model. Returns the ticket to
    /// look up in [`commit`](Self::commit)'s results.
    pub fn patch<B: BatchBackend>(&mut self, api: &mut B, oref: &ObjectRef, patch: Value) -> usize {
        if !self.batched {
            let result = api.patch_now(&self.subject, oref, patch);
            return self.push(Pending::Done(result));
        }
        match self.read_for_write(api, oref) {
            Err(e) => self.push(Pending::Failed(e)),
            Ok((mut model, rv)) => {
                let m = Shared::make_mut(&mut model);
                m.merge(&patch);
                stamp_gen(m, rv + 1);
                self.overlay.insert(oref.clone(), (model, rv + 1));
                self.queue(BatchOp::Patch {
                    oref: oref.clone(),
                    patch,
                })
            }
        }
    }

    /// Sets one attribute path. Returns the ticket to look up in
    /// [`commit`](Self::commit)'s results.
    pub fn patch_path<B: BatchBackend>(
        &mut self,
        api: &mut B,
        oref: &ObjectRef,
        path: &str,
        value: Value,
    ) -> usize {
        if !self.batched {
            let result = api.patch_path_now(&self.subject, oref, path, value);
            return self.push(Pending::Done(result));
        }
        let parsed: Path = match path.parse() {
            Ok(p) => p,
            Err(e) => {
                return self.push(Pending::Failed(ApiError::BadRequest(format!(
                    "bad path {path}: {e}"
                ))))
            }
        };
        match self.read_for_write(api, oref) {
            Err(e) => self.push(Pending::Failed(e)),
            Ok((mut model, rv)) => {
                let m = Shared::make_mut(&mut model);
                if let Err(e) = m.set(&parsed, value.clone()) {
                    return self.push(Pending::Failed(ApiError::BadRequest(e.to_string())));
                }
                stamp_gen(m, rv + 1);
                self.overlay.insert(oref.clone(), (model, rv + 1));
                self.queue(BatchOp::PatchPath {
                    oref: oref.clone(),
                    path: path.to_string(),
                    value,
                })
            }
        }
    }

    /// Commits queued ops (one `apply_batch` call) and resolves every
    /// ticket, in issue order.
    pub fn commit(self, api: &mut ApiServer) -> Vec<WriteResult> {
        let server = if self.ops.is_empty() {
            Vec::new()
        } else {
            api.apply_batch(&self.subject, self.ops)
        };
        let mut server = server.into_iter().map(Some).collect::<Vec<_>>();
        self.pending
            .into_iter()
            .map(|p| match p {
                Pending::Failed(e) => Err(e),
                Pending::Done(r) => r,
                Pending::Queued(i) => server[i].take().expect("one result per queued op"),
            })
            .collect()
    }

    /// Commits like [`commit`](Self::commit), but first re-validates every
    /// written object against the resource version its plan-time read
    /// observed (the `base` map). When a batch lands after a delay — an
    /// async controller cycle whose writes traveled a link — the store may
    /// have moved on; ops against a moved (or vanished) object resolve
    /// `Err(Conflict)` / `Err(NotFound)` without reaching the server,
    /// exactly like a driver's OCC `update`. The remaining ops commit as
    /// one batch. Returns the per-ticket results and the number of objects
    /// whose validation failed.
    ///
    /// Convergence is preserved because a failed validation implies a
    /// newer committed event on that object, which retriggers the watcher
    /// that planned this batch.
    pub fn commit_occ(self, api: &mut ApiServer) -> (Vec<WriteResult>, u64) {
        let mut stale: BTreeMap<ObjectRef, ApiError> = BTreeMap::new();
        for (oref, &expected) in &self.base {
            match api.get(ApiServer::ADMIN, oref) {
                Ok(obj) if obj.resource_version == expected => {}
                Ok(obj) => {
                    stale.insert(
                        oref.clone(),
                        ApiError::Conflict {
                            oref: oref.clone(),
                            expected,
                            actual: obj.resource_version,
                        },
                    );
                }
                Err(_) => {
                    stale.insert(oref.clone(), ApiError::NotFound(oref.clone()));
                }
            }
        }
        let conflicts = stale.len() as u64;
        // Send only the ops whose base still holds; remember where each
        // queued index landed so tickets resolve in issue order.
        let mut send: Vec<BatchOp> = Vec::new();
        let mut routed: Vec<Result<usize, ApiError>> = Vec::with_capacity(self.ops.len());
        for op in self.ops {
            match stale.get(op.oref()) {
                Some(e) => routed.push(Err(e.clone())),
                None => {
                    routed.push(Ok(send.len()));
                    send.push(op);
                }
            }
        }
        let server = if send.is_empty() {
            Vec::new()
        } else {
            api.apply_batch(&self.subject, send)
        };
        let mut server = server.into_iter().map(Some).collect::<Vec<_>>();
        let results = self
            .pending
            .into_iter()
            .map(|p| match p {
                Pending::Failed(e) => Err(e),
                Pending::Done(r) => r,
                Pending::Queued(i) => match &routed[i] {
                    Err(e) => Err(e.clone()),
                    Ok(j) => server[*j].take().expect("one result per sent op"),
                },
            })
            .collect();
        (results, conflicts)
    }

    /// The simulation's read: overlay entry if the object was already
    /// written this cycle, otherwise the committed object. Mirrors the
    /// `current` input of the server's own batch-overlay preparation —
    /// NotFound here is NotFound at commit.
    fn read_for_write<B: BatchBackend>(
        &mut self,
        api: &B,
        oref: &ObjectRef,
    ) -> Result<(Shared<Value>, u64), ApiError> {
        if let Some((model, rv)) = self.overlay.get(oref) {
            return Ok((Shared::clone(model), *rv));
        }
        // Unauthenticated raw read: RBAC for the write itself is checked
        // by apply_batch at commit, exactly like the serial verb would.
        let (model, rv) = api
            .read_admin(oref)
            .map_err(|_| ApiError::NotFound(oref.clone()))?;
        // First store read for this object: the OCC base of every write
        // the batch queues against it.
        self.base.insert(oref.clone(), rv);
        Ok((model, rv))
    }

    fn push(&mut self, p: Pending) -> usize {
        self.pending.push(p);
        self.pending.len() - 1
    }

    fn queue(&mut self, op: BatchOp) -> usize {
        self.wire_bytes += wire_size(&op);
        self.ops.push(op);
        self.push(Pending::Queued(self.ops.len() - 1))
    }
}

/// Rough serialized size of one batch op: the payload plus per-op header
/// overhead (oref, path, framing).
fn wire_size(op: &BatchOp) -> u64 {
    let payload = match op {
        BatchOp::Patch { patch, .. } => dspace_value::json::encoded_len(patch),
        BatchOp::PatchPath { path, value, .. } => {
            path.len() + dspace_value::json::encoded_len(value)
        }
        BatchOp::Create { model, .. } => dspace_value::json::encoded_len(model),
        BatchOp::Update { model, .. } => dspace_value::json::encoded_len(model),
        BatchOp::Delete { .. } => 0,
    };
    (payload + op.oref().to_string().len() + 16) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(kind: &str, name: &str) -> Value {
        dspace_value::json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "default"}},
                 "control": {{"power": {{"intent": null, "status": null}}}}}}"#
        ))
        .unwrap()
    }

    fn setup() -> (ApiServer, ObjectRef) {
        let mut api = ApiServer::new();
        let oref = ObjectRef::default_ns("Plug", "p1");
        api.create(ApiServer::ADMIN, &oref, model("Plug", "p1"))
            .unwrap();
        (api, oref)
    }

    #[test]
    fn batched_and_immediate_leave_identical_state() {
        for batched in [false, true] {
            let (mut api, oref) = setup();
            let mut b = WriteBatch::new(ApiServer::ADMIN, batched);
            b.patch_path(&mut api, &oref, ".control.power.intent", "on".into());
            b.patch(
                &mut api,
                &oref,
                dspace_value::object([(
                    "control",
                    dspace_value::object([(
                        "power",
                        dspace_value::object([("status", Value::from("on"))]),
                    )]),
                )]),
            );
            let results = b.commit(&mut api);
            assert_eq!(results.len(), 2);
            assert_eq!(*results[0].as_ref().unwrap(), 2);
            assert_eq!(*results[1].as_ref().unwrap(), 3);
            let obj = api.get(ApiServer::ADMIN, &oref).unwrap();
            assert_eq!(obj.resource_version, 3, "batched={batched}");
            assert_eq!(
                obj.model
                    .get_path(".meta.gen")
                    .and_then(Value::as_exact_u64),
                Some(3),
                "batched={batched}: gen must track rv"
            );
        }
    }

    #[test]
    fn overlay_serves_read_your_writes() {
        let (mut api, oref) = setup();
        let mut b = WriteBatch::new(ApiServer::ADMIN, true);
        b.patch_path(&mut api, &oref, ".control.power.intent", "on".into());
        // Mid-cycle read sees the uncommitted write (like per-op mode
        // would see the committed one)...
        assert_eq!(
            b.get_path(&api, &oref, ".control.power.intent")
                .unwrap()
                .as_str(),
            Some("on")
        );
        let (m, rv) = b.get(&api, &oref).unwrap();
        assert_eq!(rv, 2);
        assert_eq!(
            m.get_path(".meta.gen").and_then(Value::as_exact_u64),
            Some(2),
            "overlay model is stamped like the commit will stamp it"
        );
        // ...but the server does not, until commit.
        assert!(api
            .get_path(ApiServer::ADMIN, &oref, ".control.power.intent")
            .unwrap()
            .is_null());
        b.commit(&mut api);
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &oref, ".control.power.intent")
                .unwrap()
                .as_str(),
            Some("on")
        );
    }

    #[test]
    fn issue_time_failures_resolve_without_reaching_the_server() {
        let (mut api, _) = setup();
        let ghost = ObjectRef::default_ns("Plug", "ghost");
        let mut b = WriteBatch::new(ApiServer::ADMIN, true);
        let t = b.patch_path(&mut api, &ghost, ".control.power.intent", "on".into());
        let rev_before = api.snapshot().revision();
        let results = b.commit(&mut api);
        assert!(matches!(results[t], Err(ApiError::NotFound(_))));
        assert_eq!(
            api.snapshot().revision(),
            rev_before,
            "an all-failed batch commits nothing"
        );
    }
}

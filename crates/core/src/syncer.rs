//! The Syncer controller (§5.2): data-flow composition for `pipe`.
//!
//! `pipe(A, B)` is implemented as a `Sync` API object naming a source
//! `(digi, path)` and a target `(digi, path)`. The syncer watches `Sync`
//! objects and the models they reference: whenever the value at a source
//! path changes, it is copied to the target path. If the source value is a
//! pointer to data (e.g. a stream URL), only the pointer is copied (§3.2) —
//! which falls out naturally from value semantics.

use std::collections::BTreeMap;

use dspace_apiserver::{ApiServer, ObjectRef, WatchEvent, WatchEventKind};
use dspace_value::Value;

use crate::batch::{BatchBackend, WriteBatch};

/// The apiserver subject the syncer authenticates as.
pub const SUBJECT: &str = "controller:syncer";

/// A parsed Sync spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncSpec {
    /// Source digi.
    pub source: ObjectRef,
    /// Attribute path in the source model.
    pub source_path: String,
    /// Target digi.
    pub target: ObjectRef,
    /// Attribute path in the target model.
    pub target_path: String,
}

impl SyncSpec {
    /// Parses a Sync object's model.
    pub fn parse(model: &Value) -> Option<SyncSpec> {
        let end = |side: &str, field: &str| -> Option<String> {
            model
                .get_path(&format!(".spec.{side}.{field}"))
                .and_then(Value::as_str)
                .map(str::to_string)
        };
        let oref = |side: &str| -> Option<ObjectRef> {
            Some(ObjectRef::new(
                end(side, "kind")?,
                end(side, "namespace").unwrap_or_else(|| "default".into()),
                end(side, "name")?,
            ))
        };
        Some(SyncSpec {
            source: oref("source")?,
            source_path: end("source", "path")?,
            target: oref("target")?,
            target_path: end("target", "path")?,
        })
    }

    /// Builds the Sync object's model document.
    pub fn to_model(&self, name: &str) -> Value {
        let side = |oref: &ObjectRef, path: &str| {
            dspace_value::object([
                ("kind", Value::from(oref.kind.as_str())),
                ("namespace", Value::from(oref.namespace.as_str())),
                ("name", Value::from(oref.name.as_str())),
                ("path", Value::from(path)),
            ])
        };
        dspace_value::object([
            (
                "meta",
                dspace_value::object([
                    ("kind", Value::from("Sync")),
                    ("name", Value::from(name)),
                    ("namespace", Value::from("default")),
                ]),
            ),
            (
                "spec",
                dspace_value::object([
                    ("source", side(&self.source, &self.source_path)),
                    ("target", side(&self.target, &self.target_path)),
                ]),
            ),
        ])
    }
}

/// A `last`-cache insert to apply after the cycle's writes commit.
struct LastEffect {
    /// Gate: only insert if this ticket's op committed. `None` means no
    /// write was needed (target already matched) — insert unconditionally.
    ticket: Option<usize>,
    id: ObjectRef,
    value: Value,
}

/// A planned syncer cycle: queued propagation writes plus the
/// commit-gated `last`-cache inserts that ride on them. Planning runs
/// against the wake-time snapshot; the plan lands immediately (legacy
/// inline path) or later under the async controller runtime.
pub(crate) struct SyncerPlan {
    pub(crate) batch: WriteBatch,
    effects: Vec<LastEffect>,
}

/// The Syncer controller.
#[derive(Debug)]
pub struct Syncer {
    specs: BTreeMap<ObjectRef, SyncSpec>,
    /// Last value propagated per Sync object, to avoid redundant writes.
    last: BTreeMap<ObjectRef, Value>,
    /// Commit all of a pump cycle's writes as one `apply_batch` call.
    batched: bool,
}

impl Default for Syncer {
    fn default() -> Self {
        Syncer {
            specs: BTreeMap::new(),
            last: BTreeMap::new(),
            batched: true,
        }
    }
}

impl Syncer {
    /// Creates an empty syncer.
    pub fn new() -> Self {
        Syncer::default()
    }

    /// Switches between batched (one `apply_batch` per pump cycle) and
    /// legacy per-op writes. Both modes propagate identically.
    pub fn set_batched(&mut self, batched: bool) {
        self.batched = batched;
    }

    /// Number of active Sync specs (for tests/diagnostics).
    pub fn active_syncs(&self) -> usize {
        self.specs.len()
    }

    /// Processes a batch of watch events. All propagation writes commit
    /// as one batch at the end of the pass; `last`-cache updates are
    /// applied afterwards, gated on their op's commit result.
    pub fn process(&mut self, api: &mut ApiServer, events: &[WatchEvent]) {
        let plan = self.plan(api, events, false);
        self.land(api, plan);
    }

    /// Drains a batch of watch events into a landable plan without
    /// committing: Sync registrations are applied eagerly (spec/cache
    /// bookkeeping), propagation writes are queued. `force_batched`
    /// overrides per-op compatibility mode for deferred landings.
    ///
    /// Generic over [`BatchBackend`] so the same planning code runs
    /// against the live apiserver (inline path) or a wake-time
    /// [`dspace_apiserver::SnapshotView`] on a shard worker lane
    /// (parallel plan phase) — planning only reads, so both backends
    /// observe identical state.
    pub(crate) fn plan<B: BatchBackend>(
        &mut self,
        api: &mut B,
        events: &[WatchEvent],
        force_batched: bool,
    ) -> SyncerPlan {
        let mut batch = WriteBatch::new(SUBJECT, self.batched || force_batched);
        let mut effects: Vec<LastEffect> = Vec::new();
        for ev in events {
            if ev.oref.kind == "Sync" {
                match ev.kind {
                    WatchEventKind::Deleted => {
                        self.specs.remove(&ev.oref);
                        self.last.remove(&ev.oref);
                        // Drop pending cache inserts for the dead sync:
                        // per-op they would have been inserted and then
                        // removed right here.
                        effects.retain(|e| e.id != ev.oref);
                    }
                    _ => {
                        if let Some(spec) = SyncSpec::parse(&ev.model) {
                            self.specs.insert(ev.oref.clone(), spec);
                            // Initial propagation on pipe creation.
                            self.propagate_for_sync(
                                api,
                                &mut batch,
                                &mut effects,
                                &ev.oref.clone(),
                            );
                        }
                    }
                }
                continue;
            }
            // A model changed: propagate every sync sourced from it.
            let sync_ids: Vec<ObjectRef> = self
                .specs
                .iter()
                .filter(|(_, s)| s.source == ev.oref)
                .map(|(id, _)| id.clone())
                .collect();
            for id in sync_ids {
                self.propagate_for_sync(api, &mut batch, &mut effects, &id);
            }
        }
        SyncerPlan { batch, effects }
    }

    /// Commits a plan inline (non-OCC, legacy semantics) and applies the
    /// commit-gated `last`-cache inserts.
    pub(crate) fn land(&mut self, api: &mut ApiServer, plan: SyncerPlan) {
        let results = plan.batch.commit(api);
        self.finish(plan.effects, &results);
    }

    /// Commits a plan with OCC re-validation against the plan's snapshot
    /// rvs, applies gated cache inserts, and returns how many ops failed
    /// validation.
    pub(crate) fn land_occ(&mut self, api: &mut ApiServer, plan: SyncerPlan) -> u64 {
        let (results, conflicts) = plan.batch.commit_occ(api);
        self.finish(plan.effects, &results);
        conflicts
    }

    fn finish(&mut self, effects: Vec<LastEffect>, results: &[crate::batch::WriteResult]) {
        for e in effects {
            let committed = match e.ticket {
                Some(t) => results[t].is_ok(),
                None => true,
            };
            if committed {
                self.last.insert(e.id, e.value);
            }
        }
    }

    fn propagate_for_sync<B: BatchBackend>(
        &mut self,
        api: &mut B,
        batch: &mut WriteBatch,
        effects: &mut Vec<LastEffect>,
        id: &ObjectRef,
    ) {
        let Some(spec) = self.specs.get(id).cloned() else {
            return;
        };
        // Reads go through the batch: a propagation later in the pass
        // observes earlier queued writes, exactly as it would have
        // observed their commits under per-op writes.
        let Ok(value) = batch.get_path(api, &spec.source, &spec.source_path) else {
            return;
        };
        if value.is_null() {
            return;
        }
        if self.last.get(id) == Some(&value) {
            return;
        }
        // Read the current target value: skip the write when it already
        // matches (keeps the event log quiet and loops convergent).
        let current = batch
            .get_path(api, &spec.target, &spec.target_path)
            .unwrap_or(Value::Null);
        let ticket = if current != value {
            Some(batch.patch_path(api, &spec.target, &spec.target_path, value.clone()))
        } else {
            None
        };
        effects.push(LastEffect {
            ticket,
            id: id.clone(),
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_apiserver::{ApiServer, Query};
    use dspace_value::json;

    fn digidata(kind: &str, name: &str) -> Value {
        json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "default"}},
                 "data": {{"input": {{"url": null, "objects": null}},
                            "output": {{"url": null, "objects": null}}}}}}"#
        ))
        .unwrap()
    }

    fn setup() -> (ApiServer, Syncer, ObjectRef, ObjectRef) {
        let mut api = ApiServer::new();
        api.rbac_mut().add_role(dspace_apiserver::Role::new(
            "controller",
            vec![dspace_apiserver::Rule::allow_all()],
        ));
        api.rbac_mut().bind(SUBJECT, "controller");
        let cam = ObjectRef::default_ns("Xcdr", "x1");
        let scene = ObjectRef::default_ns("Scene", "sc1");
        api.create(ApiServer::ADMIN, &cam, digidata("Xcdr", "x1"))
            .unwrap();
        api.create(ApiServer::ADMIN, &scene, digidata("Scene", "sc1"))
            .unwrap();
        (api, Syncer::new(), cam, scene)
    }

    fn create_sync(api: &mut ApiServer, syncer: &mut Syncer, spec: &SyncSpec, name: &str) {
        let w = api.watch_query(ApiServer::ADMIN, &Query::all()).unwrap();
        let sref = ObjectRef::default_ns("Sync", name);
        api.create(ApiServer::ADMIN, &sref, spec.to_model(name))
            .unwrap();
        let evs = api.poll(w);
        syncer.process(api, &evs);
        api.cancel_watch(w);
    }

    #[test]
    fn pipe_copies_output_to_input() {
        let (mut api, mut syncer, xcdr, scene) = setup();
        let spec = SyncSpec {
            source: xcdr.clone(),
            source_path: ".data.output.url".into(),
            target: scene.clone(),
            target_path: ".data.input.url".into(),
        };
        create_sync(&mut api, &mut syncer, &spec, "s1");
        assert_eq!(syncer.active_syncs(), 1);
        // Source update propagates.
        let w = api.watch_query(ApiServer::ADMIN, &Query::all()).unwrap();
        api.patch_path(
            ApiServer::ADMIN,
            &xcdr,
            ".data.output.url",
            "rtsp://out/1".into(),
        )
        .unwrap();
        let evs = api.poll(w);
        syncer.process(&mut api, &evs);
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &scene, ".data.input.url")
                .unwrap()
                .as_str(),
            Some("rtsp://out/1")
        );
    }

    #[test]
    fn initial_value_propagates_on_pipe_creation() {
        let (mut api, mut syncer, xcdr, scene) = setup();
        api.patch_path(
            ApiServer::ADMIN,
            &xcdr,
            ".data.output.url",
            "rtsp://pre".into(),
        )
        .unwrap();
        let spec = SyncSpec {
            source: xcdr.clone(),
            source_path: ".data.output.url".into(),
            target: scene.clone(),
            target_path: ".data.input.url".into(),
        };
        create_sync(&mut api, &mut syncer, &spec, "s1");
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &scene, ".data.input.url")
                .unwrap()
                .as_str(),
            Some("rtsp://pre")
        );
    }

    #[test]
    fn deleted_sync_stops_propagating() {
        let (mut api, mut syncer, xcdr, scene) = setup();
        let spec = SyncSpec {
            source: xcdr.clone(),
            source_path: ".data.output.url".into(),
            target: scene.clone(),
            target_path: ".data.input.url".into(),
        };
        create_sync(&mut api, &mut syncer, &spec, "s1");
        let w = api.watch_query(ApiServer::ADMIN, &Query::all()).unwrap();
        api.delete(ApiServer::ADMIN, &ObjectRef::default_ns("Sync", "s1"))
            .unwrap();
        api.patch_path(
            ApiServer::ADMIN,
            &xcdr,
            ".data.output.url",
            "rtsp://late".into(),
        )
        .unwrap();
        let evs = api.poll(w);
        syncer.process(&mut api, &evs);
        assert_eq!(syncer.active_syncs(), 0);
        assert!(api
            .get_path(ApiServer::ADMIN, &scene, ".data.input.url")
            .unwrap()
            .is_null());
    }

    #[test]
    fn fan_out_to_multiple_targets() {
        // One digidata may pipe to multiple others (§3.2).
        let (mut api, mut syncer, xcdr, scene) = setup();
        let stats = ObjectRef::default_ns("Stats", "st1");
        api.create(ApiServer::ADMIN, &stats, digidata("Stats", "st1"))
            .unwrap();
        for (i, target) in [&scene, &stats].into_iter().enumerate() {
            let spec = SyncSpec {
                source: xcdr.clone(),
                source_path: ".data.output.objects".into(),
                target: target.clone(),
                target_path: ".data.input.objects".into(),
            };
            create_sync(&mut api, &mut syncer, &spec, &format!("s{i}"));
        }
        let w = api.watch_query(ApiServer::ADMIN, &Query::all()).unwrap();
        api.patch_path(
            ApiServer::ADMIN,
            &xcdr,
            ".data.output.objects",
            dspace_value::array(["person".into()]),
        )
        .unwrap();
        let evs = api.poll(w);
        syncer.process(&mut api, &evs);
        for target in [&scene, &stats] {
            assert_eq!(
                api.get_path(ApiServer::ADMIN, target, ".data.input.objects")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .len(),
                1,
                "target {target} did not receive the objects"
            );
        }
    }

    #[test]
    fn spec_roundtrip() {
        let spec = SyncSpec {
            source: ObjectRef::default_ns("A", "a"),
            source_path: ".data.output.x".into(),
            target: ObjectRef::default_ns("B", "b"),
            target_path: ".data.input.x".into(),
        };
        let model = spec.to_model("s");
        assert_eq!(SyncSpec::parse(&model), Some(spec));
        assert_eq!(SyncSpec::parse(&Value::Null), None);
    }
}

//! Conventions over digi model documents (Table 1 of the paper).
//!
//! A digi model is an attribute–value document with well-known sections:
//!
//! ```yaml
//! meta:    {group, version, kind, name, namespace, gen}
//! control: {<attr>: {intent, status}}     # digivice only
//! data:    {input: {..}, output: {..}}    # digidata only
//! obs:     {..}                           # events/observations
//! mount:   {<Kind>: {<name>: <replica>}}  # children replicas
//! reflex:  {<name>: {policy, priority, processor}}
//! ```
//!
//! [`DigiModel`] wraps a [`Value`] and exposes typed accessors for these
//! conventions; it is used by drivers and controllers alike.

use dspace_value::{Path, Value};

/// Mount reference status values: the parent currently holds write access.
pub const MOUNT_ACTIVE: &str = "active";
/// Mount reference status values: the parent's write access was yielded.
pub const MOUNT_YIELDED: &str = "yielded";

/// A convenience wrapper over a digi model document.
///
/// Wraps a borrowed mutable [`Value`]; all mutation happens in place so the
/// caller (usually a driver's reconcile cycle) decides when to commit.
#[derive(Debug)]
pub struct DigiModel<'a> {
    model: &'a mut Value,
}

impl<'a> DigiModel<'a> {
    /// Wraps a model document.
    pub fn new(model: &'a mut Value) -> Self {
        DigiModel { model }
    }

    /// The underlying document.
    pub fn raw(&self) -> &Value {
        self.model
    }

    /// The digi's kind, if present.
    pub fn kind(&self) -> Option<&str> {
        self.model.get_path("meta.kind").and_then(Value::as_str)
    }

    /// The digi's name, if present.
    pub fn name(&self) -> Option<&str> {
        self.model.get_path("meta.name").and_then(Value::as_str)
    }

    /// The model's version number (`meta.gen`, §3.5). Decoded exactly:
    /// generations past 2^53 are string-encoded by the store and must not
    /// round-trip through `f64`.
    pub fn gen(&self) -> u64 {
        self.model
            .get_path("meta.gen")
            .and_then(Value::as_exact_u64)
            .unwrap_or(0)
    }

    /// Reads `control.<attr>.intent`.
    pub fn intent(&self, attr: &str) -> Value {
        self.model
            .get_path(&format!(".control.{attr}.intent"))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Reads `control.<attr>.status`.
    pub fn status(&self, attr: &str) -> Value {
        self.model
            .get_path(&format!(".control.{attr}.status"))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes `control.<attr>.intent`.
    pub fn set_intent(&mut self, attr: &str, value: Value) {
        let p: Path = format!(".control.{attr}.intent")
            .parse()
            .expect("valid path");
        self.model
            .set(&p, value)
            .expect("control section is an object");
    }

    /// Writes `control.<attr>.status`.
    pub fn set_status(&mut self, attr: &str, value: Value) {
        let p: Path = format!(".control.{attr}.status")
            .parse()
            .expect("valid path");
        self.model
            .set(&p, value)
            .expect("control section is an object");
    }

    /// Reads `obs.<attr>`.
    pub fn obs(&self, attr: &str) -> Value {
        self.model
            .get_path(&format!(".obs.{attr}"))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes `obs.<attr>`.
    pub fn set_obs(&mut self, attr: &str, value: Value) {
        let p: Path = format!(".obs.{attr}").parse().expect("valid path");
        self.model.set(&p, value).expect("obs section is an object");
    }

    /// Reads `data.input.<attr>` (digidata).
    pub fn input(&self, attr: &str) -> Value {
        self.model
            .get_path(&format!(".data.input.{attr}"))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes `data.input.<attr>` (digidata).
    pub fn set_input(&mut self, attr: &str, value: Value) {
        let p: Path = format!(".data.input.{attr}").parse().expect("valid path");
        self.model
            .set(&p, value)
            .expect("data section is an object");
    }

    /// Reads `data.output.<attr>` (digidata).
    pub fn output(&self, attr: &str) -> Value {
        self.model
            .get_path(&format!(".data.output.{attr}"))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes `data.output.<attr>` (digidata).
    pub fn set_output(&mut self, attr: &str, value: Value) {
        let p: Path = format!(".data.output.{attr}").parse().expect("valid path");
        self.model
            .set(&p, value)
            .expect("data section is an object");
    }

    /// Lists `(kind, name)` of every mount reference in this model.
    pub fn mounts(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        if let Some(kinds) = self.model.get_path(".mount").and_then(Value::as_object) {
            for (kind, names) in kinds {
                if let Some(names) = names.as_object() {
                    for name in names.keys() {
                        out.push((kind.clone(), name.clone()));
                    }
                }
            }
        }
        out
    }

    /// Reads an attribute inside a mounted child's replica, e.g.
    /// `replica_path("UniLamp", "ul1", ".control.power.status")`.
    pub fn replica(&self, kind: &str, name: &str, path: &str) -> Value {
        let base = replica_path(kind, name);
        let full = format!("{base}{path}");
        self.model.get_path(&full).cloned().unwrap_or(Value::Null)
    }

    /// Writes into a mounted child's replica (typically `.control.*.intent`);
    /// the Mounter then syncs the write southbound to the child (§5.2).
    pub fn set_replica(&mut self, kind: &str, name: &str, path: &str, value: Value) {
        let full: Path = format!("{}{}", replica_path(kind, name), path)
            .parse()
            .expect("valid replica path");
        self.model
            .set(&full, value)
            .expect("mount section is an object");
    }

    /// Lists names of children of `kind` currently mounted.
    pub fn mounted_names(&self, kind: &str) -> Vec<String> {
        self.model
            .get_path(&format!(".mount.{kind}"))
            .and_then(Value::as_object)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }
}

/// Returns the model path of the replica of child `(kind, name)`.
pub fn replica_path(kind: &str, name: &str) -> String {
    format!(".mount.{kind}.{name}")
}

/// Extracts the `(kind, name)` a replica path refers to, if `path` points
/// into the `.mount` section.
pub fn parse_replica_path(path: &Path) -> Option<(String, String, Path)> {
    let segs = path.segments();
    match segs {
        [dspace_value::Segment::Key(mount), dspace_value::Segment::Key(kind), dspace_value::Segment::Key(name), rest @ ..]
            if mount == "mount" =>
        {
            Some((kind.clone(), name.clone(), Path::new(rest.to_vec())))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::{json, AttrType, KindSchema};

    fn lamp_model() -> Value {
        KindSchema::digivice("digi.dev", "v1", "Lamp")
            .control("power", AttrType::String)
            .control("brightness", AttrType::Number)
            .obs("reason", AttrType::String)
            .new_model("l1", "default")
    }

    #[test]
    fn intent_status_accessors() {
        let mut m = lamp_model();
        let mut dm = DigiModel::new(&mut m);
        assert!(dm.intent("power").is_null());
        dm.set_intent("power", "on".into());
        dm.set_status("power", "off".into());
        assert_eq!(dm.intent("power").as_str(), Some("on"));
        assert_eq!(dm.status("power").as_str(), Some("off"));
        assert_eq!(dm.kind(), Some("Lamp"));
        assert_eq!(dm.name(), Some("l1"));
        assert_eq!(dm.gen(), 0);
    }

    #[test]
    fn obs_accessors() {
        let mut m = lamp_model();
        let mut dm = DigiModel::new(&mut m);
        dm.set_obs("reason", "DISCONNECT".into());
        assert_eq!(dm.obs("reason").as_str(), Some("DISCONNECT"));
        assert!(dm.obs("missing").is_null());
    }

    #[test]
    fn data_accessors() {
        let mut m = KindSchema::digidata("digi.dev", "v1", "Scene")
            .input("url", AttrType::String)
            .output("objects", AttrType::Array)
            .new_model("sc1", "default");
        let mut dm = DigiModel::new(&mut m);
        dm.set_input("url", "rtsp://cam".into());
        dm.set_output("objects", vec!["person"].into());
        assert_eq!(dm.input("url").as_str(), Some("rtsp://cam"));
        assert_eq!(dm.output("objects").as_array().unwrap().len(), 1);
    }

    #[test]
    fn mounts_enumeration_and_replicas() {
        let mut m = lamp_model();
        {
            let mut dm = DigiModel::new(&mut m);
            dm.set_replica("UniLamp", "ul1", ".control.power.intent", "on".into());
            dm.set_replica("UniLamp", "ul2", ".control.power.intent", "off".into());
            dm.set_replica(
                "Scene",
                "sc1",
                ".data.output.objects",
                json::parse("[]").unwrap(),
            );
        }
        let mut dm = DigiModel::new(&mut m);
        let mut mounts = dm.mounts();
        mounts.sort();
        assert_eq!(
            mounts,
            vec![
                ("Scene".to_string(), "sc1".to_string()),
                ("UniLamp".to_string(), "ul1".to_string()),
                ("UniLamp".to_string(), "ul2".to_string()),
            ]
        );
        assert_eq!(
            dm.replica("UniLamp", "ul1", ".control.power.intent")
                .as_str(),
            Some("on")
        );
        assert_eq!(dm.mounted_names("UniLamp"), vec!["ul1", "ul2"]);
        dm.set_replica("UniLamp", "ul1", ".control.power.intent", "off".into());
        assert_eq!(
            dm.replica("UniLamp", "ul1", ".control.power.intent")
                .as_str(),
            Some("off")
        );
    }

    #[test]
    fn parse_replica_path_extracts_child() {
        let p: Path = ".mount.UniLamp.ul1.control.power.intent".parse().unwrap();
        let (kind, name, rest) = parse_replica_path(&p).unwrap();
        assert_eq!(kind, "UniLamp");
        assert_eq!(name, "ul1");
        assert_eq!(rest.to_string(), ".control.power.intent");
        let not_mount: Path = ".control.power".parse().unwrap();
        assert!(parse_replica_path(&not_mount).is_none());
    }
}

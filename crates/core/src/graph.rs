//! The digi-graph: mount topology with multitree and single-writer
//! invariants (§3.3–3.4 of the paper).
//!
//! Mount edges point parent → child. The graph must remain a *multitree*
//! (diamond-free poset): between any two digis there is at most one
//! directed path, and there are no cycles. The paper enforces this with
//! the **mount rule** — "a digivice cannot join a hierarchy that it or any
//! of its descendants is already a part of" — which this module checks on
//! every mount.
//!
//! In addition, each digi has at most one *active* parent (single writer,
//! §3.4); other parents hold their mounts in the *yielded* state and
//! retain read access only.

// Graph mutations fail on the cold path only, and rejection messages carry
// both endpoint refs by design; boxing the error is not worth the churn.
#![allow(clippy::result_large_err)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dspace_apiserver::ObjectRef;

/// Mount mode (§3.2): whether the parent may see the child's own children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MountMode {
    /// Parent can access the child's children through the replica.
    Expose,
    /// Child's own mounts are hidden from the parent.
    Hide,
}

impl MountMode {
    /// Parses `"expose"`/`"hide"`.
    pub fn parse(s: &str) -> Option<MountMode> {
        match s {
            "expose" => Some(MountMode::Expose),
            "hide" => Some(MountMode::Hide),
            _ => None,
        }
    }

    /// The canonical string form.
    pub fn as_str(&self) -> &'static str {
        match self {
            MountMode::Expose => "expose",
            MountMode::Hide => "hide",
        }
    }
}

/// Write-access state of a mount edge (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeState {
    /// The parent holds write access to the child's intent.
    Active,
    /// The parent yielded: read access only.
    Yielded,
}

/// A mount edge parent → child.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountEdge {
    /// The controlling digivice.
    pub parent: ObjectRef,
    /// The controlled digi.
    pub child: ObjectRef,
    /// Expose/hide.
    pub mode: MountMode,
    /// Active/yielded.
    pub state: EdgeState,
}

/// Errors from graph mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The mount would create a cycle.
    Cycle {
        /// Attempted parent.
        parent: ObjectRef,
        /// Attempted child.
        child: ObjectRef,
    },
    /// The mount would create a diamond (two paths between a pair of digis),
    /// violating the mount rule.
    MountRule {
        /// Attempted parent.
        parent: ObjectRef,
        /// Attempted child.
        child: ObjectRef,
        /// A digi reachable by two paths if the mount were allowed.
        witness: ObjectRef,
    },
    /// The edge already exists.
    DuplicateMount(ObjectRef, ObjectRef),
    /// The edge does not exist.
    NoSuchMount(ObjectRef, ObjectRef),
    /// Unyield would give the child two active parents.
    SecondActiveParent {
        /// The child in question.
        child: ObjectRef,
        /// The parent that already holds write access.
        holder: ObjectRef,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle { parent, child } => {
                write!(f, "mount {child} -> {parent} would create a cycle")
            }
            GraphError::MountRule { parent, child, witness } => write!(
                f,
                "mount {child} -> {parent} violates the mount rule: {witness} would be reachable twice"
            ),
            GraphError::DuplicateMount(p, c) => write!(f, "{c} is already mounted to {p}"),
            GraphError::NoSuchMount(p, c) => write!(f, "{c} is not mounted to {p}"),
            GraphError::SecondActiveParent { child, holder } => write!(
                f,
                "{child} already has an active parent ({holder}); yield it first"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// The digi-graph.
///
/// Both directions of every edge are indexed with the full `(mode, state)`
/// payload, so "all edges adjacent to this digi" ([`DigiGraph::adjacent_edges`])
/// is O(degree) — no per-neighbor re-lookup through the other index.
#[derive(Debug, Clone, Default)]
pub struct DigiGraph {
    /// parent → children, with the edge payload.
    children: BTreeMap<ObjectRef, BTreeMap<ObjectRef, (MountMode, EdgeState)>>,
    /// child → parents, mirroring the same payload.
    parents: BTreeMap<ObjectRef, BTreeMap<ObjectRef, (MountMode, EdgeState)>>,
}

impl DigiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DigiGraph::default()
    }

    /// An immutable edge snapshot for plan jobs: a clone of the whole
    /// graph behind an `Arc`, cheap to move across threads and safe to
    /// read while the coordinator's live graph keeps mutating. Taken once
    /// per wake (graphs are small — edges only, no models).
    pub fn frozen(&self) -> std::sync::Arc<DigiGraph> {
        std::sync::Arc::new(self.clone())
    }

    /// Returns all mount edges (sorted by parent then child).
    pub fn edges(&self) -> Vec<MountEdge> {
        let mut out = Vec::new();
        for (parent, kids) in &self.children {
            for (child, (mode, state)) in kids {
                out.push(MountEdge {
                    parent: parent.clone(),
                    child: child.clone(),
                    mode: *mode,
                    state: *state,
                });
            }
        }
        out
    }

    /// Returns the children of `parent`.
    pub fn children_of(&self, parent: &ObjectRef) -> Vec<ObjectRef> {
        self.children
            .get(parent)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Returns the parents of `child`.
    pub fn parents_of(&self, child: &ObjectRef) -> Vec<ObjectRef> {
        self.parents
            .get(child)
            .map(|s| s.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Returns every mount edge touching `node`, in a deterministic order:
    /// edges where `node` is the parent first (sorted by child), then edges
    /// where it is the child (sorted by parent). O(degree of `node`).
    pub fn adjacent_edges(&self, node: &ObjectRef) -> Vec<MountEdge> {
        let mut out = Vec::new();
        if let Some(kids) = self.children.get(node) {
            for (child, (mode, state)) in kids {
                out.push(MountEdge {
                    parent: node.clone(),
                    child: child.clone(),
                    mode: *mode,
                    state: *state,
                });
            }
        }
        if let Some(ps) = self.parents.get(node) {
            for (parent, (mode, state)) in ps {
                out.push(MountEdge {
                    parent: parent.clone(),
                    child: node.clone(),
                    mode: *mode,
                    state: *state,
                });
            }
        }
        out
    }

    /// Returns the parent currently holding write access over `child`, if
    /// any (single-writer invariant: there is at most one). O(degree): the
    /// parent index mirrors the edge payload.
    pub fn active_parent(&self, child: &ObjectRef) -> Option<ObjectRef> {
        self.parents
            .get(child)?
            .iter()
            .find(|(_, (_, state))| *state == EdgeState::Active)
            .map(|(p, _)| p.clone())
    }

    /// Looks up one edge.
    pub fn edge(&self, parent: &ObjectRef, child: &ObjectRef) -> Option<MountEdge> {
        let (mode, state) = self.children.get(parent)?.get(child)?;
        Some(MountEdge {
            parent: parent.clone(),
            child: child.clone(),
            mode: *mode,
            state: *state,
        })
    }

    /// All digis reachable downward from `node` (excluding `node`).
    pub fn descendants(&self, node: &ObjectRef) -> BTreeSet<ObjectRef> {
        let mut out = BTreeSet::new();
        let mut stack = self.children_of(node);
        while let Some(n) = stack.pop() {
            if out.insert(n.clone()) {
                stack.extend(self.children_of(&n));
            }
        }
        out
    }

    /// All digis reachable upward from `node` (excluding `node`).
    pub fn ancestors(&self, node: &ObjectRef) -> BTreeSet<ObjectRef> {
        let mut out = BTreeSet::new();
        let mut stack = self.parents_of(node);
        while let Some(n) = stack.pop() {
            if out.insert(n.clone()) {
                stack.extend(self.parents_of(&n));
            }
        }
        out
    }

    /// Checks whether mounting `child` to `parent` is legal without
    /// mutating the graph. This is the **mount rule** check (§3.3): the
    /// resulting graph must stay a diamond-free poset.
    pub fn check_mount(&self, child: &ObjectRef, parent: &ObjectRef) -> Result<(), GraphError> {
        if self.edge(parent, child).is_some() {
            return Err(GraphError::DuplicateMount(parent.clone(), child.clone()));
        }
        if child == parent {
            return Err(GraphError::Cycle {
                parent: parent.clone(),
                child: child.clone(),
            });
        }
        // Cycle: parent reachable downward from child.
        let down_of_child = self.descendants(child);
        if down_of_child.contains(parent) {
            return Err(GraphError::Cycle {
                parent: parent.clone(),
                child: child.clone(),
            });
        }
        // Diamond: adding parent→child creates a second path x→…→y whenever
        // some ancestor-or-self x of parent already reaches some
        // descendant-or-self y of child.
        let mut up_of_parent = self.ancestors(parent);
        up_of_parent.insert(parent.clone());
        let mut down_of_child = down_of_child;
        down_of_child.insert(child.clone());
        for x in &up_of_parent {
            let mut reach = self.descendants(x);
            reach.insert(x.clone());
            if let Some(witness) = down_of_child.intersection(&reach).next() {
                return Err(GraphError::MountRule {
                    parent: parent.clone(),
                    child: child.clone(),
                    witness: witness.clone(),
                });
            }
        }
        Ok(())
    }

    /// Mounts `child` to `parent` after checking the mount rule.
    ///
    /// Single-writer handling (§3.4): if the child already has an active
    /// parent, the new edge is created in the *yielded* state ("the mount
    /// is automatically followed by a yield"); otherwise it starts active.
    /// Returns the state the edge was created in.
    pub fn mount(
        &mut self,
        child: &ObjectRef,
        parent: &ObjectRef,
        mode: MountMode,
    ) -> Result<EdgeState, GraphError> {
        self.check_mount(child, parent)?;
        let state = if self.active_parent(child).is_some() {
            EdgeState::Yielded
        } else {
            EdgeState::Active
        };
        self.children
            .entry(parent.clone())
            .or_default()
            .insert(child.clone(), (mode, state));
        self.parents
            .entry(child.clone())
            .or_default()
            .insert(parent.clone(), (mode, state));
        Ok(state)
    }

    /// Re-installs an edge recovered from durable storage, bypassing the
    /// mount-rule check and the yield-on-second-parent transition: the edge
    /// was legal when it committed, and its `(mode, state)` payload — not a
    /// recomputed one — is the truth being restored.
    pub fn restore(&mut self, edge: MountEdge) {
        self.children
            .entry(edge.parent.clone())
            .or_default()
            .insert(edge.child.clone(), (edge.mode, edge.state));
        self.parents
            .entry(edge.child)
            .or_default()
            .insert(edge.parent, (edge.mode, edge.state));
    }

    /// Removes a mount edge.
    pub fn unmount(&mut self, child: &ObjectRef, parent: &ObjectRef) -> Result<(), GraphError> {
        let kids = self
            .children
            .get_mut(parent)
            .ok_or_else(|| GraphError::NoSuchMount(parent.clone(), child.clone()))?;
        if kids.remove(child).is_none() {
            return Err(GraphError::NoSuchMount(parent.clone(), child.clone()));
        }
        if kids.is_empty() {
            self.children.remove(parent);
        }
        if let Some(ps) = self.parents.get_mut(child) {
            ps.remove(parent);
            if ps.is_empty() {
                self.parents.remove(child);
            }
        }
        Ok(())
    }

    /// Drops every edge with at least one endpoint in `namespace` (used
    /// when a namespace is deleted: its digis are gone, so mounts into or
    /// out of it are dangling). Returns the number of edges removed.
    pub fn remove_namespace(&mut self, namespace: &str) -> usize {
        let doomed: Vec<(ObjectRef, ObjectRef)> = self
            .children
            .iter()
            .flat_map(|(parent, kids)| {
                kids.keys()
                    .filter(|child| parent.namespace == namespace || child.namespace == namespace)
                    .map(|child| (parent.clone(), child.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (parent, child) in &doomed {
            self.unmount(child, parent).expect("edge listed above");
        }
        doomed.len()
    }

    /// Yields `parent`'s write access over `child` (edge → yielded).
    pub fn yield_edge(&mut self, child: &ObjectRef, parent: &ObjectRef) -> Result<(), GraphError> {
        match self.children.get_mut(parent).and_then(|k| k.get_mut(child)) {
            Some((_, state)) => {
                *state = EdgeState::Yielded;
                self.mirror_state(child, parent, EdgeState::Yielded);
                Ok(())
            }
            None => Err(GraphError::NoSuchMount(parent.clone(), child.clone())),
        }
    }

    /// Keeps the child→parent payload mirror in sync after a state change.
    fn mirror_state(&mut self, child: &ObjectRef, parent: &ObjectRef, state: EdgeState) {
        let (_, s) = self
            .parents
            .get_mut(child)
            .and_then(|ps| ps.get_mut(parent))
            .expect("parent index mirrors children index");
        *s = state;
    }

    /// Restores `parent`'s write access over `child` (edge → active).
    ///
    /// Fails if another parent currently holds write access — the
    /// single-writer invariant.
    pub fn unyield_edge(
        &mut self,
        child: &ObjectRef,
        parent: &ObjectRef,
    ) -> Result<(), GraphError> {
        if let Some(holder) = self.active_parent(child) {
            if holder != *parent {
                return Err(GraphError::SecondActiveParent {
                    child: child.clone(),
                    holder,
                });
            }
            return Ok(()); // Already active.
        }
        match self.children.get_mut(parent).and_then(|k| k.get_mut(child)) {
            Some((_, state)) => {
                *state = EdgeState::Active;
                self.mirror_state(child, parent, EdgeState::Active);
                Ok(())
            }
            None => Err(GraphError::NoSuchMount(parent.clone(), child.clone())),
        }
    }

    /// Verifies the multitree invariant over the whole graph; returns a
    /// violating pair if any (used by property tests).
    pub fn verify_multitree(&self) -> Result<(), (ObjectRef, ObjectRef)> {
        // Count directed paths between all pairs via DFS from each node;
        // a multitree has at most one path per ordered pair.
        let nodes: BTreeSet<ObjectRef> = self
            .children
            .keys()
            .chain(self.parents.keys())
            .cloned()
            .collect();
        for start in &nodes {
            let mut counts: BTreeMap<ObjectRef, u64> = BTreeMap::new();
            // DFS with memoized path counts would be fine; graphs are small,
            // use simple recursion via explicit stack of paths.
            fn count_paths(g: &DigiGraph, from: &ObjectRef, counts: &mut BTreeMap<ObjectRef, u64>) {
                for c in g.children_of(from) {
                    *counts.entry(c.clone()).or_insert(0) += 1;
                    count_paths(g, &c, counts);
                }
            }
            count_paths(self, start, &mut counts);
            if let Some((n, _)) = counts.iter().find(|(_, c)| **c > 1) {
                return Err((start.clone(), n.clone()));
            }
        }
        Ok(())
    }

    /// Verifies the single-writer invariant; returns a violating child.
    pub fn verify_single_writer(&self) -> Result<(), ObjectRef> {
        for (child, parents) in &self.parents {
            let active = parents
                .values()
                .filter(|(_, state)| *state == EdgeState::Active)
                .count();
            if active > 1 {
                return Err(child.clone());
            }
        }
        Ok(())
    }

    /// Verifies that the child→parent index mirrors the parent→child index
    /// exactly (payload included). Used by tests.
    pub fn verify_mirror(&self) -> Result<(), (ObjectRef, ObjectRef)> {
        let forward: BTreeSet<(ObjectRef, ObjectRef, MountMode, EdgeState)> = self
            .children
            .iter()
            .flat_map(|(p, kids)| {
                kids.iter()
                    .map(|(c, (m, s))| (p.clone(), c.clone(), *m, *s))
                    .collect::<Vec<_>>()
            })
            .collect();
        let backward: BTreeSet<(ObjectRef, ObjectRef, MountMode, EdgeState)> = self
            .parents
            .iter()
            .flat_map(|(c, ps)| {
                ps.iter()
                    .map(|(p, (m, s))| (p.clone(), c.clone(), *m, *s))
                    .collect::<Vec<_>>()
            })
            .collect();
        match forward.symmetric_difference(&backward).next() {
            None => Ok(()),
            Some((p, c, _, _)) => Err((p.clone(), c.clone())),
        }
    }
}

/// Read access to the digi-graph for controller planning passes.
///
/// Two implementors, one per planning venue:
/// - [`DigiGraph`] itself — plan jobs on shard worker lanes read the
///   immutable [`DigiGraph::frozen`] `Arc` snapshot captured at wake;
/// - `RefCell<DigiGraph>` — inline (coordinator) passes read the live
///   cell, borrowing **per call**, never across the pass. That matters in
///   legacy per-op write mode, where planning commits each write
///   immediately and the admission chain's topology webhook re-borrows
///   the same cell mutably mid-plan.
pub trait GraphRead {
    /// Every mount edge touching `node` (see [`DigiGraph::adjacent_edges`]).
    fn adjacent_edges(&self, node: &ObjectRef) -> Vec<MountEdge>;
}

impl GraphRead for DigiGraph {
    fn adjacent_edges(&self, node: &ObjectRef) -> Vec<MountEdge> {
        DigiGraph::adjacent_edges(self, node)
    }
}

impl GraphRead for std::cell::RefCell<DigiGraph> {
    fn adjacent_edges(&self, node: &ObjectRef) -> Vec<MountEdge> {
        self.borrow().adjacent_edges(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(name: &str) -> ObjectRef {
        ObjectRef::default_ns("Digi", name)
    }

    #[test]
    fn simple_mount_chain() {
        let mut g = DigiGraph::new();
        assert_eq!(
            g.mount(&d("lamp"), &d("room"), MountMode::Expose).unwrap(),
            EdgeState::Active
        );
        assert_eq!(
            g.mount(&d("room"), &d("home"), MountMode::Expose).unwrap(),
            EdgeState::Active
        );
        assert_eq!(g.children_of(&d("room")), vec![d("lamp")]);
        assert_eq!(g.parents_of(&d("room")), vec![d("home")]);
        assert_eq!(g.active_parent(&d("lamp")), Some(d("room")));
        assert_eq!(g.descendants(&d("home")).len(), 2);
        assert_eq!(g.ancestors(&d("lamp")).len(), 2);
    }

    #[test]
    fn cycle_rejected() {
        let mut g = DigiGraph::new();
        g.mount(&d("b"), &d("a"), MountMode::Expose).unwrap();
        g.mount(&d("c"), &d("b"), MountMode::Expose).unwrap();
        // a -> b -> c; mounting a under c closes the loop.
        assert!(matches!(
            g.mount(&d("a"), &d("c"), MountMode::Expose),
            Err(GraphError::Cycle { .. })
        ));
        // Self mount.
        assert!(matches!(
            g.mount(&d("a"), &d("a"), MountMode::Expose),
            Err(GraphError::Cycle { .. })
        ));
    }

    #[test]
    fn fig2a_diamond_rejected() {
        // Fig. 2a of the paper: X -> Z exists; B mounts X, then mounting Z
        // to B would let B write Z both directly and through X.
        let mut g = DigiGraph::new();
        g.mount(&d("z"), &d("x"), MountMode::Expose).unwrap();
        g.mount(&d("x"), &d("b"), MountMode::Expose).unwrap();
        let err = g.mount(&d("z"), &d("b"), MountMode::Expose).unwrap_err();
        assert!(matches!(err, GraphError::MountRule { .. }), "{err}");
    }

    #[test]
    fn deep_diamond_rejected() {
        // a -> b -> c -> z; mounting z under a (via a fresh intermediate)
        // still violates: a already reaches z.
        let mut g = DigiGraph::new();
        g.mount(&d("b"), &d("a"), MountMode::Expose).unwrap();
        g.mount(&d("c"), &d("b"), MountMode::Expose).unwrap();
        g.mount(&d("z"), &d("c"), MountMode::Expose).unwrap();
        assert!(g.mount(&d("z"), &d("a"), MountMode::Expose).is_err());
        // And mounting via an intermediate w mounted to a:
        g.mount(&d("w"), &d("a"), MountMode::Expose).unwrap();
        assert!(g.mount(&d("z"), &d("w"), MountMode::Expose).is_err());
    }

    #[test]
    fn multi_rooted_hierarchy_allowed() {
        // Fig. 2b: a digivice may have two parents in disjoint hierarchies.
        let mut g = DigiGraph::new();
        assert_eq!(
            g.mount(&d("lamp"), &d("room"), MountMode::Expose).unwrap(),
            EdgeState::Active
        );
        // Second parent: allowed, but starts yielded (single writer).
        assert_eq!(
            g.mount(&d("lamp"), &d("power-ctl"), MountMode::Expose)
                .unwrap(),
            EdgeState::Yielded
        );
        assert_eq!(g.parents_of(&d("lamp")).len(), 2);
        assert_eq!(g.active_parent(&d("lamp")), Some(d("room")));
        g.verify_multitree().unwrap();
        g.verify_single_writer().unwrap();
    }

    #[test]
    fn yield_transfers_write_access() {
        let mut g = DigiGraph::new();
        g.mount(&d("lamp"), &d("room"), MountMode::Expose).unwrap();
        g.mount(&d("lamp"), &d("power-ctl"), MountMode::Expose)
            .unwrap();
        // power-ctl cannot unyield while room is active.
        assert!(matches!(
            g.unyield_edge(&d("lamp"), &d("power-ctl")),
            Err(GraphError::SecondActiveParent { .. })
        ));
        // Transfer: yield room, then unyield power-ctl.
        g.yield_edge(&d("lamp"), &d("room")).unwrap();
        assert_eq!(g.active_parent(&d("lamp")), None);
        g.unyield_edge(&d("lamp"), &d("power-ctl")).unwrap();
        assert_eq!(g.active_parent(&d("lamp")), Some(d("power-ctl")));
        g.verify_single_writer().unwrap();
    }

    #[test]
    fn unmount_removes_edge() {
        let mut g = DigiGraph::new();
        g.mount(&d("lamp"), &d("room"), MountMode::Expose).unwrap();
        g.unmount(&d("lamp"), &d("room")).unwrap();
        assert!(g.children_of(&d("room")).is_empty());
        assert!(g.parents_of(&d("lamp")).is_empty());
        assert!(matches!(
            g.unmount(&d("lamp"), &d("room")),
            Err(GraphError::NoSuchMount(..))
        ));
        // After unmounting, remount is legal again.
        g.mount(&d("lamp"), &d("room"), MountMode::Hide).unwrap();
        assert_eq!(
            g.edge(&d("room"), &d("lamp")).unwrap().mode,
            MountMode::Hide
        );
    }

    #[test]
    fn duplicate_mount_rejected() {
        let mut g = DigiGraph::new();
        g.mount(&d("lamp"), &d("room"), MountMode::Expose).unwrap();
        assert!(matches!(
            g.mount(&d("lamp"), &d("room"), MountMode::Expose),
            Err(GraphError::DuplicateMount(..))
        ));
    }

    #[test]
    fn device_mobility_remount() {
        // S8: roomba moves from room-a to room-b.
        let mut g = DigiGraph::new();
        g.mount(&d("roomba"), &d("room-a"), MountMode::Expose)
            .unwrap();
        g.unmount(&d("roomba"), &d("room-a")).unwrap();
        let st = g
            .mount(&d("roomba"), &d("room-b"), MountMode::Expose)
            .unwrap();
        assert_eq!(st, EdgeState::Active);
        assert_eq!(g.active_parent(&d("roomba")), Some(d("room-b")));
    }

    #[test]
    fn adjacent_edges_covers_both_directions() {
        let mut g = DigiGraph::new();
        g.mount(&d("lamp"), &d("room"), MountMode::Expose).unwrap();
        g.mount(&d("room"), &d("home"), MountMode::Hide).unwrap();
        let adj = g.adjacent_edges(&d("room"));
        assert_eq!(adj.len(), 2);
        // Parent-side edge first, then child-side.
        assert_eq!(
            (adj[0].parent.clone(), adj[0].child.clone()),
            (d("room"), d("lamp"))
        );
        assert_eq!(adj[0].mode, MountMode::Expose);
        assert_eq!(
            (adj[1].parent.clone(), adj[1].child.clone()),
            (d("home"), d("room"))
        );
        assert_eq!(adj[1].mode, MountMode::Hide);
        assert!(g.adjacent_edges(&d("nobody")).is_empty());
        g.verify_mirror().unwrap();
    }

    #[test]
    fn mirror_tracks_state_changes() {
        let mut g = DigiGraph::new();
        g.mount(&d("lamp"), &d("room"), MountMode::Expose).unwrap();
        g.mount(&d("lamp"), &d("power-ctl"), MountMode::Expose)
            .unwrap();
        g.verify_mirror().unwrap();
        g.yield_edge(&d("lamp"), &d("room")).unwrap();
        g.unyield_edge(&d("lamp"), &d("power-ctl")).unwrap();
        g.verify_mirror().unwrap();
        // The child-side view reports the new states without edge() calls.
        let adj = g.adjacent_edges(&d("lamp"));
        let state_of = |p: &ObjectRef| {
            adj.iter()
                .find(|e| e.parent == *p)
                .map(|e| e.state)
                .unwrap()
        };
        assert_eq!(state_of(&d("room")), EdgeState::Yielded);
        assert_eq!(state_of(&d("power-ctl")), EdgeState::Active);
    }

    #[test]
    fn remove_namespace_drops_cross_namespace_edges() {
        let mut g = DigiGraph::new();
        let guest_lamp = ObjectRef::new("Digi", "guest", "lamp");
        let guest_hub = ObjectRef::new("Digi", "guest", "hub");
        g.mount(&guest_lamp, &guest_hub, MountMode::Expose).unwrap();
        // Cross-namespace mount: default-ns home controls the guest hub.
        g.mount(&guest_hub, &d("home"), MountMode::Expose).unwrap();
        g.mount(&d("lamp"), &d("home"), MountMode::Expose).unwrap();
        assert_eq!(g.remove_namespace("guest"), 2);
        g.verify_mirror().unwrap();
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.children_of(&d("home")), vec![d("lamp")]);
        assert!(g.adjacent_edges(&guest_hub).is_empty());
        assert_eq!(g.remove_namespace("guest"), 0);
    }

    #[test]
    fn campus_hierarchy_is_legal() {
        // §2.3's campus example: campus -> buildings -> floors -> rooms.
        let mut g = DigiGraph::new();
        for b in ["b1", "b2"] {
            g.mount(&d(b), &d("campus"), MountMode::Expose).unwrap();
            for f in ["f1", "f2"] {
                let floor = format!("{b}-{f}");
                g.mount(&d(&floor), &d(b), MountMode::Expose).unwrap();
                for r in ["r1", "r2"] {
                    g.mount(&d(&format!("{floor}-{r}")), &d(&floor), MountMode::Expose)
                        .unwrap();
                }
            }
        }
        g.verify_multitree().unwrap();
        assert_eq!(g.descendants(&d("campus")).len(), 2 + 4 + 8);
    }
}

//! dSpace core: the paper's primary contribution.
//!
//! This crate implements §3–§5 of *dSpace* (SOSP 2021):
//!
//! - [`model`] — conventions over digi model documents: `control.*.intent`
//!   and `.status`, `data.input`/`.output`, `obs`, mount references,
//!   the `meta.gen` version number (Table 1).
//! - [`graph`] — the digi-graph: mount edges as a **multitree**
//!   (diamond-free poset, §3.3), the *mount rule*, and **single-writer**
//!   tracking with active/yielded edge states (§3.4).
//! - [`driver`] — the driver programming library (§4): prioritized,
//!   filtered handlers; views; reflex policies executed by the jq-like
//!   interpreter; the reconciliation cycle of Fig. 4.
//! - [`mounter`] — the Mounter controller (§5.2): model-replica
//!   synchronization with northbound status/obs/intent flow, southbound
//!   intent/input flow, version gating, and hide/expose modes.
//! - [`syncer`] — the Syncer controller: `Sync` objects implementing
//!   data-flow composition (pipe).
//! - [`policer`] — the Policer controller: mount/yield `Policy` objects
//!   with reflex conditions, enabling adaptive composition (§3.4).
//! - [`topology`] — the topology admission webhook enforcing the mount
//!   rule and single-writer constraint on every apiserver write (§5.2).
//! - [`actuator`] — the boundary to the (simulated) physical world: leaf
//!   digis attach an [`actuator::Actuator`] whose actuation latency is the
//!   "DT" of the paper's Figure 7.
//! - [`world`] / [`space`] — the runtime: components (controllers, digi
//!   drivers, the user CLI) exchanging state only through the apiserver,
//!   with per-hop link latencies injected by the discrete-event simulator.
//! - [`trace`] — a structured event trace used by the Figure-7 harness to
//!   compute FPT/BPT/DT.

pub mod actuator;
pub mod batch;
pub mod driver;
pub mod graph;
pub mod model;
pub mod mounter;
pub mod policer;
pub mod policy;
pub mod space;
pub mod syncer;
pub mod topology;
pub mod trace;
pub mod verbs;
pub mod world;

pub use actuator::{Actuation, Actuator};
pub use driver::{Driver, Filter, Handler, ReconcileCtx, View};
pub use graph::{DigiGraph, EdgeState, GraphError, MountMode};
pub use model::DigiModel;
pub use policy::{Policy, PolicyAction, PolicyError};
pub use space::{Space, SpaceConfig, SpaceError};
pub use trace::{Trace, TraceEntry, TraceKind};
pub use world::World;

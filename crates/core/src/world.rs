//! The runtime world: components exchanging state through the apiserver.
//!
//! The paper's architecture (§5, Fig. 5) runs digis and controllers as
//! separate pods that coordinate *only* via the apiserver. This module
//! keeps that discipline in a deterministic, simulated form: each
//! component (Mounter, Syncer, Policer, every digi driver, and the user's
//! CLI) owns a watch subscription; when the apiserver has pending events
//! for a component, a *wake* is scheduled after that component's network
//! link latency; the woken component drains its watch and reacts, possibly
//! committing further model writes — which schedule further wakes.
//!
//! This per-hop wake latency is exactly what the paper measures as forward
//! and backward propagation time (Figure 7).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dspace_apiserver::{
    ApiServer, ObjectRef, Role, Rule, Verb, WatchEvent, WatchId, WatchSelector,
};
use dspace_simnet::{Link, Metrics, Rng, Sim};
use dspace_value::Value;

use crate::actuator::Actuator;
use crate::driver::{Driver, Effect};
use crate::graph::DigiGraph;
use crate::mounter::Mounter;
use crate::policer::Policer;
use crate::syncer::Syncer;
use crate::topology::TopologyWebhook;
use crate::trace::{Trace, TraceKind};

/// Network link latencies for the deployment being simulated.
#[derive(Debug, Clone)]
pub struct LinkSet {
    /// Controllers ↔ apiserver (same node or control-plane-local).
    pub controller: Link,
    /// Digi driver pods ↔ apiserver.
    pub driver: Link,
    /// The user's CLI ↔ apiserver.
    pub user: Link,
}

impl Default for LinkSet {
    /// On-prem-ish defaults (minikube on a single host).
    fn default() -> Self {
        LinkSet {
            controller: Link::new("controller", dspace_simnet::LatencyModel::FixedMs(2.0)),
            driver: Link::new("driver", dspace_simnet::LatencyModel::FixedMs(8.0)),
            user: Link::new("user", dspace_simnet::LatencyModel::FixedMs(10.0)),
        }
    }
}

/// A digi driver plus its reconcile-loop state.
pub struct DriverRuntime {
    /// The digi this driver reconciles.
    pub oref: ObjectRef,
    /// Authenticated subject of this driver.
    pub subject: String,
    driver: Driver,
    last_model: Rc<Value>,
    last_written: Option<u64>,
}

/// The user's CLI session: watches models and records when updates become
/// visible to the user (the BPT endpoint of Figure 7).
#[derive(Default)]
struct UserCli {
    cache: BTreeMap<ObjectRef, Rc<Value>>,
}

enum Component {
    Mounter(Mounter),
    Syncer(Syncer),
    Policer(Policer),
    Driver(DriverRuntime),
    User(UserCli),
}

struct ComponentSlot {
    name: String,
    watch: WatchId,
    link: Link,
    woken: bool,
    kind: Option<Component>,
}

/// The complete runtime state mutated by simulation events.
pub struct World {
    /// The apiserver (object store + admission + RBAC).
    pub api: ApiServer,
    /// The digi-graph, shared with the topology webhook.
    pub graph: Rc<RefCell<DigiGraph>>,
    /// Deterministic randomness for links and devices.
    pub rng: Rng,
    /// Experiment metrics.
    pub metrics: Metrics,
    /// Structured event trace.
    pub trace: Trace,
    /// Link latencies.
    pub links: LinkSet,
    slots: Vec<ComponentSlot>,
    actuators: BTreeMap<ObjectRef, Option<Box<dyn Actuator>>>,
}

impl World {
    /// Builds a world with the three dSpace controllers, the topology
    /// webhook, and a user CLI component already registered.
    pub fn new(links: LinkSet, seed: u64) -> Self {
        let graph = Rc::new(RefCell::new(DigiGraph::new()));
        let mut api = ApiServer::new();
        api.register_webhook(Box::new(TopologyWebhook::new(graph.clone())));
        // Controller and user roles (§3.6): controllers get broad access;
        // the user (home owner) gets full access to digi models.
        api.rbac_mut()
            .add_role(Role::new("controller", vec![Rule::allow_all()]));
        for subject in [
            crate::mounter::SUBJECT,
            crate::syncer::SUBJECT,
            crate::policer::SUBJECT,
        ] {
            api.rbac_mut().bind(subject, "controller");
        }
        api.rbac_mut().add_role(Role::new(
            "home-owner",
            vec![Rule::new(
                [
                    Verb::Get,
                    Verb::List,
                    Verb::Watch,
                    Verb::Patch,
                    Verb::Create,
                    Verb::Update,
                    Verb::Delete,
                ],
                ["*"],
                ["*"],
            )],
        ));
        api.rbac_mut().bind("user", "home-owner");

        let mut world = World {
            api,
            graph: graph.clone(),
            rng: Rng::new(seed),
            metrics: Metrics::new(),
            trace: Trace::new(),
            links,
            slots: Vec::new(),
            actuators: BTreeMap::new(),
        };
        let controller_link = world.links.controller.clone();
        let user_link = world.links.user.clone();
        // Controllers and the user CLI genuinely need the global view; digi
        // drivers (added later) subscribe to exactly their own object.
        world.add_slot(
            "mounter",
            ApiServer::ADMIN,
            WatchSelector::All,
            controller_link.clone(),
            Component::Mounter(Mounter::new(graph.clone())),
        );
        world.add_slot(
            "syncer",
            ApiServer::ADMIN,
            WatchSelector::All,
            controller_link.clone(),
            Component::Syncer(Syncer::new()),
        );
        world.add_slot(
            "policer",
            ApiServer::ADMIN,
            WatchSelector::All,
            controller_link,
            Component::Policer(Policer::new(graph)),
        );
        world.add_slot(
            "user-cli",
            "user",
            WatchSelector::All,
            user_link,
            Component::User(UserCli::default()),
        );
        world
    }

    fn add_slot(
        &mut self,
        name: &str,
        subject: &str,
        selector: WatchSelector,
        link: Link,
        kind: Component,
    ) {
        let watch = self
            .api
            .watch_selector(subject, selector)
            .expect("component subject authorized to watch its selector");
        self.slots.push(ComponentSlot {
            name: name.to_string(),
            watch,
            link,
            woken: false,
            kind: Some(kind),
        });
    }

    /// Registers a digi driver component with its RBAC identity.
    pub fn add_driver(&mut self, oref: ObjectRef, driver: Driver) {
        let subject = format!("driver:{}", oref.name);
        let role = format!("digi:{}", oref.name);
        self.api.rbac_mut().add_role(Role::new(
            role.clone(),
            // A digi driver may only access its own model (§3.6) — the
            // Watch verb included, so its subscription can cover nothing
            // beyond its own change stream.
            vec![Rule::for_object(
                [Verb::Get, Verb::Update, Verb::Patch, Verb::Watch],
                oref.kind.clone(),
                oref.name.clone(),
            )],
        ));
        self.api.rbac_mut().bind(subject.clone(), role);
        let last_model = self
            .api
            .get(ApiServer::ADMIN, &oref)
            .map(|o| Rc::new(o.model))
            .unwrap_or_else(|_| Rc::new(Value::Null));
        let link = self.links.driver.clone();
        self.add_slot(
            &format!("driver:{}", oref.name),
            &subject,
            WatchSelector::Object(oref.clone()),
            link,
            Component::Driver(DriverRuntime {
                oref,
                subject: subject.clone(),
                driver,
                last_model,
                last_written: None,
            }),
        );
    }

    /// Attaches a simulated device/data engine to a leaf digi and arms its
    /// periodic step hook.
    pub fn attach_actuator(
        &mut self,
        sim: &mut Sim<World>,
        oref: ObjectRef,
        actuator: Box<dyn Actuator>,
    ) {
        let subject = format!("device:{}", oref.name);
        let role = format!("device-role:{}", oref.name);
        self.api.rbac_mut().add_role(Role::new(
            role.clone(),
            vec![Rule::for_object(
                [Verb::Get, Verb::Patch],
                oref.kind.clone(),
                oref.name.clone(),
            )],
        ));
        self.api.rbac_mut().bind(subject, role);
        let interval = actuator.poll_interval();
        self.actuators.insert(oref.clone(), Some(actuator));
        if let Some(interval) = interval {
            let target = oref.clone();
            sim.schedule(interval, move |w: &mut World, sim| {
                w.device_tick(target.clone(), sim);
            });
        }
    }

    /// Returns `true` if any component has undelivered watch events.
    pub fn has_pending_work(&self) -> bool {
        self.slots
            .iter()
            .any(|s| !s.woken && self.api.has_pending(s.watch))
    }

    /// Schedules wakes for every component with pending watch events.
    /// Called by the space loop after every simulation event.
    pub fn pump(&mut self, sim: &mut Sim<World>) {
        for i in 0..self.slots.len() {
            if self.slots[i].woken || !self.api.has_pending(self.slots[i].watch) {
                continue;
            }
            self.slots[i].woken = true;
            let delay = self.slots[i].link.delay(1024, &mut self.rng);
            sim.schedule(delay, move |w: &mut World, sim| w.wake(i, sim));
        }
    }

    fn wake(&mut self, i: usize, sim: &mut Sim<World>) {
        self.slots[i].woken = false;
        let events = self.api.poll(self.slots[i].watch);
        if events.is_empty() {
            return;
        }
        let mut component = self.slots[i].kind.take().expect("component present");
        match &mut component {
            Component::Mounter(m) => {
                let mut trace = std::mem::take(&mut self.trace);
                m.process(&mut self.api, &events, &mut trace, sim.now());
                self.trace = trace;
            }
            Component::Syncer(s) => s.process(&mut self.api, &events),
            Component::Policer(p) => {
                let mut trace = std::mem::take(&mut self.trace);
                p.process(&mut self.api, &events, &mut trace, sim.now());
                self.trace = trace;
            }
            Component::Driver(d) => {
                Self::drive(self, d, &events, sim);
            }
            Component::User(u) => {
                for ev in &events {
                    let old = u
                        .cache
                        .get(&ev.oref)
                        .cloned()
                        .unwrap_or_else(|| Rc::new(Value::Null));
                    let changes = dspace_value::diff(&old, &ev.model);
                    let detail = changes
                        .iter()
                        .take(8)
                        .map(|c| c.path.to_string())
                        .collect::<Vec<_>>()
                        .join(";");
                    self.trace.push(
                        sim.now(),
                        TraceKind::UserObserved,
                        ev.oref.to_string(),
                        detail,
                    );
                    u.cache.insert(ev.oref.clone(), ev.model.clone());
                }
            }
        }
        self.slots[i].kind = Some(component);
    }

    /// Runs a driver's reconciliation cycles for a batch of events.
    fn drive(
        world: &mut World,
        rt: &mut DriverRuntime,
        events: &[WatchEvent],
        sim: &mut Sim<World>,
    ) {
        for ev in events {
            if ev.oref != rt.oref {
                // With per-object subscriptions this never fires; the
                // counter exists so tests/benches can assert drivers no
                // longer receive (and discard) other digis' events.
                world.metrics.count("driver_foreign_events", 1);
                continue;
            }
            if ev.kind == dspace_apiserver::WatchEventKind::Deleted {
                continue;
            }
            // Skip the echo of the driver's own previous write (Fig. 4:
            // "unless the update is caused by the previous reconciliation").
            if rt.last_written == Some(ev.resource_version) {
                rt.last_model = ev.model.clone();
                continue;
            }
            let now_s = sim.now() as f64 / 1e9;
            let result = rt.driver.reconcile(&rt.last_model, &ev.model, now_s);
            let changed: Vec<String> = dspace_value::diff(&rt.last_model, &ev.model)
                .iter()
                .take(8)
                .map(|c| c.path.to_string())
                .collect();
            world.trace.push(
                sim.now(),
                TraceKind::DriverReconciled,
                rt.oref.to_string(),
                changed.join(";"),
            );
            for err in &result.errors {
                world.metrics.count("driver_errors", 1);
                world.trace.push(
                    sim.now(),
                    TraceKind::DriverReconciled,
                    rt.oref.to_string(),
                    format!("error: {err}"),
                );
            }
            rt.last_model = ev.model.clone();
            // Execute effects.
            for effect in &result.effects {
                match effect {
                    Effect::Device(cmd) => {
                        world.trace.push(
                            sim.now(),
                            TraceKind::DeviceCommand,
                            rt.oref.to_string(),
                            dspace_value::json::to_string(cmd),
                        );
                        world.actuate(rt.oref.clone(), cmd.clone(), sim);
                    }
                    Effect::Log(msg) => {
                        world.trace.push(
                            sim.now(),
                            TraceKind::DriverReconciled,
                            rt.oref.to_string(),
                            format!("log: {msg}"),
                        );
                    }
                }
            }
            // Commit the reconciled model with OCC; a conflict means a
            // newer event is already queued and will retrigger the cycle.
            if result.model != *ev.model {
                match world.api.update(
                    &rt.subject,
                    &rt.oref,
                    result.model.clone(),
                    Some(ev.resource_version),
                ) {
                    Ok(rv) => {
                        rt.last_written = Some(rv);
                        rt.last_model = Rc::new(result.model);
                    }
                    Err(dspace_apiserver::ApiError::Conflict { .. }) => {
                        world.metrics.count("reconcile_conflicts", 1);
                    }
                    Err(e) => {
                        world.metrics.count("driver_errors", 1);
                        world.trace.push(
                            sim.now(),
                            TraceKind::DriverReconciled,
                            rt.oref.to_string(),
                            format!("write failed: {e}"),
                        );
                    }
                }
            }
        }
    }

    /// Sends a command to the actuator attached to `oref` and schedules the
    /// resulting patches.
    fn actuate(&mut self, oref: ObjectRef, cmd: Value, sim: &mut Sim<World>) {
        let Some(slot) = self.actuators.get_mut(&oref) else {
            self.metrics.count("commands_without_actuator", 1);
            return;
        };
        let Some(mut actuator) = slot.take() else {
            return;
        };
        let acts = actuator.actuate(sim.now(), &cmd, &mut self.rng);
        let name = actuator.name().to_string();
        *self.actuators.get_mut(&oref).expect("slot exists") = Some(actuator);
        self.schedule_actuations(oref, name, acts, sim);
    }

    /// Periodic device poll: spontaneous physical events (motion, manual
    /// toggles, robot movement) surface here.
    fn device_tick(&mut self, oref: ObjectRef, sim: &mut Sim<World>) {
        let Some(slot) = self.actuators.get_mut(&oref) else {
            return;
        };
        let Some(mut actuator) = slot.take() else {
            return;
        };
        let model = self
            .api
            .get(ApiServer::ADMIN, &oref)
            .map(|o| o.model)
            .unwrap_or(Value::Null);
        let acts = actuator.step(sim.now(), &model, &mut self.rng);
        let name = actuator.name().to_string();
        let interval = actuator.poll_interval();
        *self.actuators.get_mut(&oref).expect("slot exists") = Some(actuator);
        self.schedule_actuations(oref.clone(), name, acts, sim);
        if let Some(interval) = interval {
            sim.schedule(interval, move |w: &mut World, sim| {
                w.device_tick(oref.clone(), sim);
            });
        }
    }

    fn schedule_actuations(
        &mut self,
        oref: ObjectRef,
        device: String,
        acts: Vec<crate::actuator::Actuation>,
        sim: &mut Sim<World>,
    ) {
        for act in acts {
            if act.bytes > 0 {
                self.metrics
                    .count(&format!("bytes:{device}"), act.bytes as u64);
            }
            // Pure bandwidth-accounting actuations carry no model change;
            // committing them would spam every watcher with no-op events.
            if act
                .patch
                .as_object()
                .map(|m| m.is_empty())
                .unwrap_or(act.patch.is_null())
            {
                continue;
            }
            let target = oref.clone();
            let dev = device.clone();
            let delay_ms = act.delay as f64 / 1e6;
            sim.schedule(act.delay, move |w: &mut World, sim| {
                let subject = format!("device:{}", target.name);
                if w.api.patch(&subject, &target, act.patch.clone()).is_ok() {
                    w.trace.push(
                        sim.now(),
                        TraceKind::DeviceDone,
                        target.to_string(),
                        format!("{dev} {delay_ms:.1}ms"),
                    );
                    w.metrics
                        .record(&format!("dt_ms:{}", target.name), delay_ms);
                }
            });
        }
    }

    /// Injects a physical-world event directly on a digi's model (e.g. a
    /// user manually flips the lamp switch — scenario S2).
    pub fn physical_event(&mut self, oref: &ObjectRef, patch: Value, sim: &Sim<World>) {
        let subject = format!("device:{}", oref.name);
        let subject = if self.actuators.contains_key(oref) {
            subject
        } else {
            ApiServer::ADMIN.to_string()
        };
        if self.api.patch(&subject, oref, patch).is_ok() {
            self.trace.push(
                sim.now(),
                TraceKind::DeviceDone,
                oref.to_string(),
                "physical-event".to_string(),
            );
        }
    }

    /// Names of the registered components, in registration order.
    pub fn component_names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.name.as_str()).collect()
    }
}

//! The runtime world: components exchanging state through the apiserver.
//!
//! The paper's architecture (§5, Fig. 5) runs digis and controllers as
//! separate pods that coordinate *only* via the apiserver. This module
//! keeps that discipline in a deterministic, simulated form: each
//! component (Mounter, Syncer, Policer, every digi driver, and the user's
//! CLI) owns a watch subscription; when the apiserver has pending events
//! for a component, a *wake* is scheduled after that component's network
//! link latency; the woken component drains its watch and reacts, possibly
//! committing further model writes — which schedule further wakes.
//!
//! This per-hop wake latency is exactly what the paper measures as forward
//! and backward propagation time (Figure 7).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use dspace_apiserver::{
    ApiServer, CoalescedEvent, ObjectRef, Role, Rule, Verb, WatchId, WatchSelector,
};
use dspace_simnet::{Link, Metrics, Rng, Sim};
use dspace_value::{KindSchema, Value};

use crate::actuator::Actuator;
use crate::driver::{Driver, Effect};
use crate::graph::DigiGraph;
use crate::mounter::Mounter;
use crate::policer::Policer;
use crate::syncer::Syncer;
use crate::topology::TopologyWebhook;
use crate::trace::{Trace, TraceKind};

/// Network link latencies for the deployment being simulated.
#[derive(Debug, Clone)]
pub struct LinkSet {
    /// Controllers ↔ apiserver (same node or control-plane-local).
    pub controller: Link,
    /// Digi driver pods ↔ apiserver.
    pub driver: Link,
    /// The user's CLI ↔ apiserver.
    pub user: Link,
}

impl Default for LinkSet {
    /// On-prem-ish defaults (minikube on a single host).
    fn default() -> Self {
        LinkSet {
            controller: Link::new("controller", dspace_simnet::LatencyModel::FixedMs(2.0)),
            driver: Link::new("driver", dspace_simnet::LatencyModel::FixedMs(8.0)),
            user: Link::new("user", dspace_simnet::LatencyModel::FixedMs(10.0)),
        }
    }
}

/// A digi driver plus its reconcile-loop state.
pub struct DriverRuntime {
    /// The digi this driver reconciles.
    pub oref: ObjectRef,
    /// Authenticated subject of this driver.
    pub subject: String,
    driver: Driver,
    last_model: Rc<Value>,
    last_written: Option<u64>,
}

/// The user's CLI session: watches models and records when updates become
/// visible to the user (the BPT endpoint of Figure 7).
#[derive(Default)]
struct UserCli {
    cache: BTreeMap<ObjectRef, Rc<Value>>,
}

enum Component {
    Mounter(Mounter),
    Syncer(Syncer),
    Policer(Policer),
    Driver(DriverRuntime),
    User(UserCli),
}

/// How a component's watch subscription is maintained.
#[derive(Clone, Copy)]
enum SlotScope {
    /// The subscription is fixed at creation (drivers, the user CLI).
    Fixed,
    /// A space-wide controller: its subscription grows to cover
    /// `(system_kinds ∪ digi kinds) × namespaces` as kinds are registered
    /// and namespaces appear — every shard it owns, and nothing else.
    Space {
        /// Non-digi kinds this controller owns (e.g. `Sync` for the
        /// syncer), subscribed alongside every digi kind.
        system_kinds: &'static [&'static str],
    },
}

struct ComponentSlot {
    name: String,
    watch: WatchId,
    link: Link,
    woken: bool,
    scope: SlotScope,
    /// Drain with `poll_coalesced` on wake: a burst of mutations to one
    /// object becomes a single reconciliation against the newest snapshot.
    coalesce: bool,
    kind: Option<Component>,
}

/// The complete runtime state mutated by simulation events.
pub struct World {
    /// The apiserver (object store + admission + RBAC).
    pub api: ApiServer,
    /// The digi-graph, shared with the topology webhook.
    pub graph: Rc<RefCell<DigiGraph>>,
    /// Deterministic randomness for links and devices.
    pub rng: Rng,
    /// Experiment metrics.
    pub metrics: Metrics,
    /// Structured event trace.
    pub trace: Trace,
    /// Link latencies.
    pub links: LinkSet,
    slots: Vec<ComponentSlot>,
    actuators: BTreeMap<ObjectRef, Option<Box<dyn Actuator>>>,
    /// Digi kinds registered so far; space-scoped controllers subscribe to
    /// each of them in every known namespace.
    digi_kinds: BTreeSet<String>,
    /// Namespaces with at least one digi (always includes `default`).
    namespaces: BTreeSet<String>,
}

impl World {
    /// Builds a world with the three dSpace controllers, the topology
    /// webhook, and a user CLI component already registered.
    pub fn new(links: LinkSet, seed: u64) -> Self {
        let graph = Rc::new(RefCell::new(DigiGraph::new()));
        let mut api = ApiServer::new();
        api.register_webhook(Box::new(TopologyWebhook::new(graph.clone())));
        // Controller and user roles (§3.6): controllers get broad access;
        // the user (home owner) gets full access to digi models.
        api.rbac_mut()
            .add_role(Role::new("controller", vec![Rule::allow_all()]));
        for subject in [
            crate::mounter::SUBJECT,
            crate::syncer::SUBJECT,
            crate::policer::SUBJECT,
        ] {
            api.rbac_mut().bind(subject, "controller");
        }
        api.rbac_mut().add_role(Role::new(
            "home-owner",
            vec![Rule::new(
                [
                    Verb::Get,
                    Verb::List,
                    Verb::Watch,
                    Verb::Patch,
                    Verb::Create,
                    Verb::Update,
                    Verb::Delete,
                ],
                ["*"],
                ["*"],
            )],
        ));
        api.rbac_mut().bind("user", "home-owner");

        let mut world = World {
            api,
            graph: graph.clone(),
            rng: Rng::new(seed),
            metrics: Metrics::new(),
            trace: Trace::new(),
            links,
            slots: Vec::new(),
            actuators: BTreeMap::new(),
            digi_kinds: BTreeSet::new(),
            namespaces: BTreeSet::new(),
        };
        let controller_link = world.links.controller.clone();
        let user_link = world.links.user.clone();
        // Controllers start with empty subscriptions that grow to exactly
        // the kinds/namespaces they own (via `register_kind` and
        // `ensure_namespace`); only the user CLI keeps the global view.
        // Digi drivers (added later) subscribe to their own object.
        world.add_slot(
            "mounter",
            ApiServer::ADMIN,
            Vec::new(),
            controller_link.clone(),
            SlotScope::Space { system_kinds: &[] },
            false,
            Component::Mounter(Mounter::new(graph.clone())),
        );
        world.add_slot(
            "syncer",
            ApiServer::ADMIN,
            Vec::new(),
            controller_link.clone(),
            SlotScope::Space {
                system_kinds: &["Sync"],
            },
            false,
            Component::Syncer(Syncer::new()),
        );
        world.add_slot(
            "policer",
            ApiServer::ADMIN,
            Vec::new(),
            controller_link,
            SlotScope::Space {
                system_kinds: &["Policy"],
            },
            false,
            Component::Policer(Policer::new(graph)),
        );
        world.add_slot(
            "user-cli",
            "user",
            vec![WatchSelector::All],
            user_link,
            SlotScope::Fixed,
            false,
            Component::User(UserCli::default()),
        );
        world.ensure_namespace("default");
        world
    }

    #[allow(clippy::too_many_arguments)]
    fn add_slot(
        &mut self,
        name: &str,
        subject: &str,
        selectors: Vec<WatchSelector>,
        link: Link,
        scope: SlotScope,
        coalesce: bool,
        kind: Component,
    ) {
        let watch = self
            .api
            .watch_selectors(subject, selectors)
            .expect("component subject authorized to watch its selectors");
        self.slots.push(ComponentSlot {
            name: name.to_string(),
            watch,
            link,
            woken: false,
            scope,
            coalesce,
            kind: Some(kind),
        });
    }

    /// Registers a digi kind's schema and widens every space-scoped
    /// controller to watch it in all known namespaces.
    pub fn register_kind(&mut self, schema: KindSchema) {
        let kind = schema.kind.clone();
        self.api.register_schema(schema);
        if !self.digi_kinds.insert(kind.clone()) {
            return;
        }
        let namespaces: Vec<String> = self.namespaces.iter().cloned().collect();
        for i in 0..self.slots.len() {
            if matches!(self.slots[i].scope, SlotScope::Space { .. }) {
                for ns in &namespaces {
                    self.subscribe(i, &kind, ns);
                }
            }
        }
    }

    /// Makes `ns` known to the space, widening every space-scoped
    /// controller to watch its owned kinds in the new namespace's shard.
    /// Must run before the namespace's first object is created, so
    /// controllers see the `Added` event.
    pub fn ensure_namespace(&mut self, ns: &str) {
        if !self.namespaces.insert(ns.to_string()) {
            return;
        }
        let kinds: Vec<String> = self.digi_kinds.iter().cloned().collect();
        for i in 0..self.slots.len() {
            if let SlotScope::Space { system_kinds } = self.slots[i].scope {
                for kind in system_kinds {
                    self.subscribe(i, kind, ns);
                }
                for kind in &kinds {
                    self.subscribe(i, kind, ns);
                }
            }
        }
    }

    fn subscribe(&mut self, i: usize, kind: &str, ns: &str) {
        self.api
            .add_watch_selector(
                ApiServer::ADMIN,
                self.slots[i].watch,
                WatchSelector::KindInNamespace {
                    kind: kind.to_string(),
                    namespace: ns.to_string(),
                },
            )
            .expect("controller subscription is live");
    }

    /// Registers a digi driver component with its RBAC identity.
    pub fn add_driver(&mut self, oref: ObjectRef, driver: Driver) {
        let subject = format!("driver:{}", oref.name);
        let role = format!("digi:{}", oref.name);
        self.api.rbac_mut().add_role(Role::new(
            role.clone(),
            // A digi driver may only access its own model (§3.6) — the
            // Watch verb included, so its subscription can cover nothing
            // beyond its own change stream.
            vec![Rule::for_object(
                [Verb::Get, Verb::Update, Verb::Patch, Verb::Watch],
                oref.kind.clone(),
                oref.name.clone(),
            )],
        ));
        self.api.rbac_mut().bind(subject.clone(), role);
        let last_model = self
            .api
            .get(ApiServer::ADMIN, &oref)
            .map(|o| Rc::new(o.model))
            .unwrap_or_else(|_| Rc::new(Value::Null));
        let link = self.links.driver.clone();
        self.add_slot(
            &format!("driver:{}", oref.name),
            &subject,
            vec![WatchSelector::Object(oref.clone())],
            link,
            SlotScope::Fixed,
            // Drivers drain coalesced: a burst of N writes to the digi is
            // one wake, one reconcile, against the newest snapshot.
            true,
            Component::Driver(DriverRuntime {
                oref,
                subject: subject.clone(),
                driver,
                last_model,
                last_written: None,
            }),
        );
    }

    /// Attaches a simulated device/data engine to a leaf digi and arms its
    /// periodic step hook.
    pub fn attach_actuator(
        &mut self,
        sim: &mut Sim<World>,
        oref: ObjectRef,
        actuator: Box<dyn Actuator>,
    ) {
        let subject = format!("device:{}", oref.name);
        let role = format!("device-role:{}", oref.name);
        self.api.rbac_mut().add_role(Role::new(
            role.clone(),
            vec![Rule::for_object(
                [Verb::Get, Verb::Patch],
                oref.kind.clone(),
                oref.name.clone(),
            )],
        ));
        self.api.rbac_mut().bind(subject, role);
        let interval = actuator.poll_interval();
        self.actuators.insert(oref.clone(), Some(actuator));
        if let Some(interval) = interval {
            let target = oref.clone();
            // Background: the re-arming tick alone must not look like
            // pending propagation to quiescence checks (`Space::settle`).
            sim.schedule_background(interval, move |w: &mut World, sim| {
                w.device_tick(target.clone(), sim);
            });
        }
    }

    /// Returns `true` if any component has undelivered watch events.
    pub fn has_pending_work(&self) -> bool {
        self.slots
            .iter()
            .any(|s| !s.woken && self.api.has_pending(s.watch))
    }

    /// Schedules wakes for every component with pending watch events.
    /// Called by the space loop after every simulation event.
    pub fn pump(&mut self, sim: &mut Sim<World>) {
        for i in 0..self.slots.len() {
            if self.slots[i].woken || !self.api.has_pending(self.slots[i].watch) {
                continue;
            }
            self.slots[i].woken = true;
            let delay = self.slots[i].link.delay(1024, &mut self.rng);
            sim.schedule(delay, move |w: &mut World, sim| w.wake(i, sim));
        }
    }

    fn wake(&mut self, i: usize, sim: &mut Sim<World>) {
        self.slots[i].woken = false;
        if self.slots[i].coalesce {
            let events = self.api.poll_coalesced(self.slots[i].watch);
            if events.is_empty() {
                return;
            }
            self.metrics.count("driver_deliveries", events.len() as u64);
            let absorbed: u64 = events.iter().map(|e| e.coalesced - 1).sum();
            if absorbed > 0 {
                self.metrics.count("driver_coalesced_events", absorbed);
            }
            let mut component = self.slots[i].kind.take().expect("component present");
            if let Component::Driver(d) = &mut component {
                Self::drive(self, d, &events, sim);
            } else {
                debug_assert!(false, "only driver slots coalesce");
            }
            self.slots[i].kind = Some(component);
            return;
        }
        let events = self.api.poll(self.slots[i].watch);
        if events.is_empty() {
            return;
        }
        // Foreign-event accounting: with subscriptions narrowed to owned
        // kinds, controllers should never receive another controller's
        // system objects. The counters exist so tests can assert it.
        let foreign = |kinds: &[&str]| {
            events
                .iter()
                .filter(|e| kinds.contains(&e.oref.kind.as_str()))
                .count() as u64
        };
        let mut component = self.slots[i].kind.take().expect("component present");
        match &mut component {
            Component::Mounter(m) => {
                let n = foreign(&["Sync", "Policy"]);
                if n > 0 {
                    self.metrics.count("mounter_foreign_events", n);
                }
                let mut trace = std::mem::take(&mut self.trace);
                m.process(&mut self.api, &events, &mut trace, sim.now());
                self.trace = trace;
            }
            Component::Syncer(s) => {
                let n = foreign(&["Policy"]);
                if n > 0 {
                    self.metrics.count("syncer_foreign_events", n);
                }
                s.process(&mut self.api, &events)
            }
            Component::Policer(p) => {
                let n = foreign(&["Sync"]);
                if n > 0 {
                    self.metrics.count("policer_foreign_events", n);
                }
                let mut trace = std::mem::take(&mut self.trace);
                p.process(&mut self.api, &events, &mut trace, sim.now());
                self.trace = trace;
            }
            Component::Driver(d) => {
                let wrapped: Vec<CoalescedEvent> = events
                    .iter()
                    .map(|event| CoalescedEvent {
                        event: event.clone(),
                        coalesced: 1,
                    })
                    .collect();
                Self::drive(self, d, &wrapped, sim);
            }
            Component::User(u) => {
                for ev in &events {
                    let old = u
                        .cache
                        .get(&ev.oref)
                        .cloned()
                        .unwrap_or_else(|| Rc::new(Value::Null));
                    let changes = dspace_value::diff(&old, &ev.model);
                    let detail = changes
                        .iter()
                        .take(8)
                        .map(|c| c.path.to_string())
                        .collect::<Vec<_>>()
                        .join(";");
                    self.trace.push(
                        sim.now(),
                        TraceKind::UserObserved,
                        ev.oref.to_string(),
                        detail,
                    );
                    u.cache.insert(ev.oref.clone(), ev.model.clone());
                }
            }
        }
        self.slots[i].kind = Some(component);
    }

    /// Runs a driver's reconciliation cycles for a batch of coalesced
    /// deliveries: one cycle per object, against its newest snapshot.
    fn drive(
        world: &mut World,
        rt: &mut DriverRuntime,
        events: &[CoalescedEvent],
        sim: &mut Sim<World>,
    ) {
        for ce in events {
            let ev = &ce.event;
            if ev.oref != rt.oref {
                // With per-object subscriptions this never fires; the
                // counter exists so tests/benches can assert drivers no
                // longer receive (and discard) other digis' events.
                world.metrics.count("driver_foreign_events", 1);
                continue;
            }
            if ev.kind == dspace_apiserver::WatchEventKind::Deleted {
                continue;
            }
            // Skip the echo of the driver's own previous write (Fig. 4:
            // "unless the update is caused by the previous reconciliation").
            if rt.last_written == Some(ev.resource_version) {
                rt.last_model = ev.model.clone();
                continue;
            }
            let now_s = sim.now() as f64 / 1e9;
            let result = rt.driver.reconcile(&rt.last_model, &ev.model, now_s);
            let changed: Vec<String> = dspace_value::diff(&rt.last_model, &ev.model)
                .iter()
                .take(8)
                .map(|c| c.path.to_string())
                .collect();
            world.trace.push(
                sim.now(),
                TraceKind::DriverReconciled,
                rt.oref.to_string(),
                changed.join(";"),
            );
            for err in &result.errors {
                world.metrics.count("driver_errors", 1);
                world.trace.push(
                    sim.now(),
                    TraceKind::DriverReconciled,
                    rt.oref.to_string(),
                    format!("error: {err}"),
                );
            }
            rt.last_model = ev.model.clone();
            // Execute effects.
            for effect in &result.effects {
                match effect {
                    Effect::Device(cmd) => {
                        world.trace.push(
                            sim.now(),
                            TraceKind::DeviceCommand,
                            rt.oref.to_string(),
                            dspace_value::json::to_string(cmd),
                        );
                        world.actuate(rt.oref.clone(), cmd.clone(), sim);
                    }
                    Effect::Log(msg) => {
                        world.trace.push(
                            sim.now(),
                            TraceKind::DriverReconciled,
                            rt.oref.to_string(),
                            format!("log: {msg}"),
                        );
                    }
                }
            }
            // Commit the reconciled model with OCC; a conflict means a
            // newer event is already queued and will retrigger the cycle.
            if result.model != *ev.model {
                match world
                    .api
                    .client(&rt.subject)
                    .namespace(&rt.oref.namespace)
                    .update(
                        &rt.oref.kind,
                        &rt.oref.name,
                        result.model.clone(),
                        Some(ev.resource_version),
                    ) {
                    Ok(rv) => {
                        rt.last_written = Some(rv);
                        rt.last_model = Rc::new(result.model);
                    }
                    Err(dspace_apiserver::ApiError::Conflict { .. }) => {
                        world.metrics.count("reconcile_conflicts", 1);
                    }
                    Err(e) => {
                        world.metrics.count("driver_errors", 1);
                        world.trace.push(
                            sim.now(),
                            TraceKind::DriverReconciled,
                            rt.oref.to_string(),
                            format!("write failed: {e}"),
                        );
                    }
                }
            }
        }
    }

    /// Sends a command to the actuator attached to `oref` and schedules the
    /// resulting patches.
    fn actuate(&mut self, oref: ObjectRef, cmd: Value, sim: &mut Sim<World>) {
        let Some(slot) = self.actuators.get_mut(&oref) else {
            self.metrics.count("commands_without_actuator", 1);
            return;
        };
        let Some(mut actuator) = slot.take() else {
            return;
        };
        let acts = actuator.actuate(sim.now(), &cmd, &mut self.rng);
        let name = actuator.name().to_string();
        *self.actuators.get_mut(&oref).expect("slot exists") = Some(actuator);
        self.schedule_actuations(oref, name, acts, sim);
    }

    /// Periodic device poll: spontaneous physical events (motion, manual
    /// toggles, robot movement) surface here.
    fn device_tick(&mut self, oref: ObjectRef, sim: &mut Sim<World>) {
        let Some(slot) = self.actuators.get_mut(&oref) else {
            return;
        };
        let Some(mut actuator) = slot.take() else {
            return;
        };
        let model = self
            .api
            .get(ApiServer::ADMIN, &oref)
            .map(|o| o.model)
            .unwrap_or(Value::Null);
        let acts = actuator.step(sim.now(), &model, &mut self.rng);
        let name = actuator.name().to_string();
        let interval = actuator.poll_interval();
        *self.actuators.get_mut(&oref).expect("slot exists") = Some(actuator);
        self.schedule_actuations(oref.clone(), name, acts, sim);
        if let Some(interval) = interval {
            sim.schedule_background(interval, move |w: &mut World, sim| {
                w.device_tick(oref.clone(), sim);
            });
        }
    }

    fn schedule_actuations(
        &mut self,
        oref: ObjectRef,
        device: String,
        acts: Vec<crate::actuator::Actuation>,
        sim: &mut Sim<World>,
    ) {
        for act in acts {
            if act.bytes > 0 {
                self.metrics
                    .count(&format!("bytes:{device}"), act.bytes as u64);
            }
            // Pure bandwidth-accounting actuations carry no model change;
            // committing them would spam every watcher with no-op events.
            if act
                .patch
                .as_object()
                .map(|m| m.is_empty())
                .unwrap_or(act.patch.is_null())
            {
                continue;
            }
            let target = oref.clone();
            let dev = device.clone();
            let delay_ms = act.delay as f64 / 1e6;
            sim.schedule(act.delay, move |w: &mut World, sim| {
                let subject = format!("device:{}", target.name);
                let committed = w
                    .api
                    .client(subject)
                    .namespace(&target.namespace)
                    .patch(&target.kind, &target.name, act.patch.clone())
                    .is_ok();
                if committed {
                    w.trace.push(
                        sim.now(),
                        TraceKind::DeviceDone,
                        target.to_string(),
                        format!("{dev} {delay_ms:.1}ms"),
                    );
                    w.metrics
                        .record(&format!("dt_ms:{}", target.name), delay_ms);
                }
            });
        }
    }

    /// Injects a physical-world event directly on a digi's model (e.g. a
    /// user manually flips the lamp switch — scenario S2).
    pub fn physical_event(&mut self, oref: &ObjectRef, patch: Value, sim: &Sim<World>) {
        let subject = format!("device:{}", oref.name);
        let subject = if self.actuators.contains_key(oref) {
            subject
        } else {
            ApiServer::ADMIN.to_string()
        };
        let committed = self
            .api
            .client(subject)
            .namespace(&oref.namespace)
            .patch(&oref.kind, &oref.name, patch)
            .is_ok();
        if committed {
            self.trace.push(
                sim.now(),
                TraceKind::DeviceDone,
                oref.to_string(),
                "physical-event".to_string(),
            );
        }
    }

    /// Names of the registered components, in registration order.
    pub fn component_names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.name.as_str()).collect()
    }
}

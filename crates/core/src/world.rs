//! The runtime world: components exchanging state through the apiserver.
//!
//! The paper's architecture (§5, Fig. 5) runs digis and controllers as
//! separate pods that coordinate *only* via the apiserver. This module
//! keeps that discipline in a deterministic, simulated form: each
//! component (Mounter, Syncer, Policer, every digi driver, and the user's
//! CLI) owns a watch subscription; when the apiserver has pending events
//! for a component, a *wake* is scheduled after that component's network
//! link latency; the woken component drains its watch and reacts, possibly
//! committing further model writes — which schedule further wakes.
//!
//! This per-hop wake latency is exactly what the paper measures as forward
//! and backward propagation time (Figure 7).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use dspace_apiserver::{
    ApiServer, CoalescedEvent, DurabilityOptions, Object, ObjectRef, Query, Role, Rule,
    SnapshotView, Verb, WalError, WatchId,
};
use dspace_simnet::{Delivery, LatencyModel, Link, Metrics, RetryPolicy, Rng, Sim, Stopwatch};
use dspace_value::{KindSchema, Shared, Value};

use crate::actuator::Actuator;
use crate::driver::{Driver, Effect};
use crate::graph::DigiGraph;
use crate::mounter::Mounter;
use crate::policer::Policer;
use crate::syncer::Syncer;
use crate::topology::TopologyWebhook;
use crate::trace::{Trace, TraceKind};

/// Network link latencies for the deployment being simulated.
#[derive(Debug, Clone)]
pub struct LinkSet {
    /// Controllers ↔ apiserver (same node or control-plane-local).
    pub controller: Link,
    /// Digi driver pods ↔ apiserver.
    pub driver: Link,
    /// The user's CLI ↔ apiserver.
    pub user: Link,
}

impl Default for LinkSet {
    /// On-prem-ish defaults (minikube on a single host).
    fn default() -> Self {
        LinkSet {
            controller: Link::new("controller", dspace_simnet::LatencyModel::FixedMs(2.0)),
            driver: Link::new("driver", dspace_simnet::LatencyModel::FixedMs(8.0)),
            user: Link::new("user", dspace_simnet::LatencyModel::FixedMs(10.0)),
        }
    }
}

/// A digi driver plus its reconcile-loop state.
pub struct DriverRuntime {
    /// The digi this driver reconciles.
    pub oref: ObjectRef,
    /// Authenticated subject of this driver.
    pub subject: String,
    driver: Driver,
    last_model: Shared<Value>,
    last_written: Option<u64>,
}

/// The user's CLI session: watches models and records when updates become
/// visible to the user (the BPT endpoint of Figure 7).
#[derive(Default)]
struct UserCli {
    cache: BTreeMap<ObjectRef, Shared<Value>>,
}

enum Component {
    Mounter(Mounter),
    Syncer(Syncer),
    Policer(Policer),
    Driver(DriverRuntime),
    User(UserCli),
}

/// A controller cycle's planned work, decided against wake-time snapshots
/// and carried through the deferred busy → link → admission → landing
/// pipeline.
enum ControllerPlan {
    Mounter(crate::mounter::MounterPlan),
    Syncer(crate::syncer::SyncerPlan),
    Policer(crate::policer::PolicerPlan),
}

impl ControllerPlan {
    /// True when nothing travels the wire (no queued write / evaluation).
    fn is_empty(&self) -> bool {
        match self {
            ControllerPlan::Mounter(p) => p.batch.queued_ops() == 0,
            ControllerPlan::Syncer(p) => p.batch.queued_ops() == 0,
            ControllerPlan::Policer(p) => p.is_empty(),
        }
    }

    /// Serialized size of the batch the link carries.
    fn wire_bytes(&self) -> usize {
        match self {
            ControllerPlan::Mounter(p) => p.batch.wire_bytes(),
            ControllerPlan::Syncer(p) => p.batch.wire_bytes(),
            ControllerPlan::Policer(p) => p.wire_bytes() as usize,
        }
    }
}

/// A queued plan job: a pure function of its captured wake-time inputs
/// (a [`PlanCtx`] plus the slot's drained events), executed on a shard
/// worker lane by `World::flush_plans`. Purity is what makes flush timing
/// irrelevant to results — a job computes the same outcome whether it runs
/// at wake, at flush, or at its landing continuation.
type PlanJobFn = Box<dyn FnOnce() -> PlanOutcome + Send>;

/// What a plan job produces: the component it checked out of its slot
/// (moved through the job so bookkeeping mutations — syncer caches, driver
/// `last_model` — travel with the plan) plus the planned work, which lands
/// coordinator-side in deterministic ticket order.
enum PlanOutcome {
    Mounter(Mounter, crate::mounter::MounterPlan),
    Syncer(Syncer, crate::syncer::SyncerPlan),
    Driver(DriverRuntime, DriverCycle),
}

/// One reconcile step a driver plan job computed for a single watch event.
/// Traces, error counts, and device effects replay coordinator-side at
/// landing, in step order — so actuator RNG draws stay on the shared
/// stream in the same order the serial planner produced them.
struct DriverStep {
    /// First 8 changed paths, `;`-joined (the `DriverReconciled` detail).
    changed: String,
    errors: Vec<String>,
    effects: Vec<Effect>,
}

/// A driver cycle computed off-thread: per-event steps plus the model
/// commits queued for transmission over the driver link.
struct DriverCycle {
    foreign_events: u64,
    steps: Vec<DriverStep>,
    commits: VecDeque<PendingCommit>,
}

/// Immutable inputs a plan job computes against, captured once per wake on
/// the coordinator. Everything a plan may consult is frozen here, so the
/// job is a pure function and lane assignment / execution order cannot
/// leak into results.
pub struct PlanCtx {
    /// Batch-boundary-exact store snapshot plus an RBAC view — the same
    /// reads `ApiServer::get` would answer at wake time.
    pub view: SnapshotView,
    /// Edge snapshot of the digi-graph at wake time. The live graph is
    /// coordinator-only (`Rc<RefCell<..>>`); plan jobs get an `Arc` clone.
    pub graph: std::sync::Arc<DigiGraph>,
    /// Per-slot RNG stream, forked (non-consuming) off the world RNG at
    /// wake. Any randomness a plan job needs must come from here — never
    /// the shared stream — so draws are independent of which lane runs the
    /// job. Simnet fault draws (links, actuators) stay coordinator-side.
    pub rng: Rng,
    /// The sim instant the outcome lands (wake time + reconcile duration).
    pub land_at: dspace_simnet::Time,
}

/// The pure compute of one driver reconcile cycle: a function of the
/// runtime's cached model, the drained events, and the landing-time clock —
/// no store, graph, shared-RNG, or trace access, so it runs unchanged on a
/// shard worker lane (parallel plan phase) or inline on the coordinator
/// (serial path), with bit-identical results.
fn run_driver_cycle(rt: &mut DriverRuntime, events: &[CoalescedEvent], now_s: f64) -> DriverCycle {
    let mut cycle = DriverCycle {
        foreign_events: 0,
        steps: Vec::new(),
        commits: VecDeque::new(),
    };
    for ce in events {
        let ev = &ce.event;
        if ev.oref != rt.oref {
            // With per-object subscriptions this never fires; the counter
            // exists so tests/benches can assert drivers no longer receive
            // (and discard) other digis' events.
            cycle.foreign_events += 1;
            continue;
        }
        if ev.kind == dspace_apiserver::WatchEventKind::Deleted {
            continue;
        }
        // Skip the echo of the driver's own previous write (Fig. 4:
        // "unless the update is caused by the previous reconciliation").
        if rt.last_written == Some(ev.resource_version) {
            rt.last_model = ev.model.clone();
            continue;
        }
        let result = rt.driver.reconcile(&rt.last_model, &ev.model, now_s);
        let changed = dspace_value::diff(&rt.last_model, &ev.model)
            .iter()
            .take(8)
            .map(|c| c.path.to_string())
            .collect::<Vec<_>>()
            .join(";");
        rt.last_model = ev.model.clone();
        if result.model != *ev.model {
            cycle.commits.push_back(PendingCommit {
                model: result.model,
                expected: ev.resource_version,
            });
        }
        cycle.steps.push(DriverStep {
            changed,
            errors: result.errors,
            effects: result.effects,
        });
    }
    cycle
}

/// How a component's watch subscription is maintained.
#[derive(Clone, Copy)]
enum SlotScope {
    /// The subscription is fixed at creation (drivers, the user CLI).
    Fixed,
    /// A space-wide controller: its subscription grows to cover
    /// `(system_kinds ∪ digi kinds) × namespaces` as kinds are registered
    /// and namespaces appear — every shard it owns, and nothing else.
    Space {
        /// Non-digi kinds this controller owns (e.g. `Sync` for the
        /// syncer), subscribed alongside every digi kind.
        system_kinds: &'static [&'static str],
    },
    /// A controller that subscribes only to its system kinds per
    /// namespace and manages any further subscriptions itself (the
    /// policer: it extends its watch with one object query per digi a
    /// policy watches, and narrows it back when the policy goes away —
    /// so digi churn no policy cares about never wakes it).
    System {
        /// The system kinds subscribed in every namespace.
        system_kinds: &'static [&'static str],
    },
}

struct ComponentSlot {
    name: String,
    watch: WatchId,
    link: Link,
    woken: bool,
    /// A reconcile cycle is in flight (its completion event is scheduled).
    /// Driver slots and — under the async controller runtime — controller
    /// slots go busy; the user CLI stays synchronous.
    busy: bool,
    /// A wake arrived while busy. Completion re-polls, so however many
    /// events queued up mid-reconcile, they land as exactly one follow-up
    /// cycle.
    dirty: bool,
    scope: SlotScope,
    /// Drain with `poll_coalesced` on wake: a burst of mutations to one
    /// object becomes a single reconciliation against the newest snapshot.
    coalesce: bool,
    /// Link the slot's deferred writes travel (defaults to `link` when
    /// unset). Only consulted by async controller cycles.
    write_link: Option<Link>,
    /// Per-slot counter keys, interned at registration so the hot drop/
    /// retry paths never re-allocate the `"metric:{name}"` strings.
    wake_drops_key: String,
    retries_key: String,
    gave_up_key: String,
    followups_key: String,
    kind: Option<Component>,
}

/// A model write a driver decided on during a reconcile, waiting to
/// traverse the driver link (and survive its faults) before committing.
struct PendingCommit {
    model: Value,
    /// OCC precondition: the resource version the reconcile ran against.
    expected: u64,
}

/// The complete runtime state mutated by simulation events.
pub struct World {
    /// The apiserver (object store + admission + RBAC).
    pub api: ApiServer,
    /// The digi-graph, shared with the topology webhook.
    ///
    /// Deliberately `Rc`, not [`Shared`]: the graph is coordinator-only
    /// state. Admission (and thus every webhook) runs on the control
    /// thread before ops are handed to the shard executor, so the graph is
    /// never touched from a shard worker and needs no `Send` bound.
    pub graph: Rc<RefCell<DigiGraph>>,
    /// Deterministic randomness for links and devices.
    pub rng: Rng,
    /// Experiment metrics.
    pub metrics: Metrics,
    /// Structured event trace.
    pub trace: Trace,
    /// Link latencies.
    pub links: LinkSet,
    slots: Vec<ComponentSlot>,
    /// Slots that may have undelivered watch events, maintained from the
    /// store's dirty-watcher feed so `pump` never scans quiescent slots.
    pending_slots: BTreeSet<usize>,
    /// Watch subscription → owning slot, for routing the dirty feed.
    watch_slots: BTreeMap<WatchId, usize>,
    /// Duration of one driver reconcile cycle (the work between draining
    /// the watch and deciding on a commit). `FixedMs(0)` keeps the legacy
    /// instantaneous behavior.
    reconcile_latency: LatencyModel,
    /// Duration of one controller reconcile cycle (mounter/syncer/policer).
    /// `FixedMs(0)` keeps the legacy instantaneous behavior.
    controller_reconcile: LatencyModel,
    /// Apiserver-side admission stage for deferred controller batches,
    /// modeled separately from the link so the two delays are
    /// independently attributable.
    admission: LatencyModel,
    /// Run controllers through the async busy/dirty lifecycle. With the
    /// default zero latency models and no write links the async path is
    /// bit-identical to the legacy inline path, so this stays on.
    async_controllers: bool,
    /// When `false`, a busy controller stalls wake *delivery* for every
    /// slot until its cycle ends — the serial baseline the pipelined
    /// runtime is benchmarked against.
    pipelined_controllers: bool,
    /// Wake deliveries may not land before this instant while running
    /// serial controllers (see `pipelined_controllers`).
    stall_until: dspace_simnet::Time,
    /// Fan the deferred plan phase out across the shard executor's worker
    /// lanes: wakes queue per-slot plan jobs (pure functions of wake-time
    /// snapshots) instead of planning inline, and a flush runs the batch
    /// on the pool. Off = plan serially coordinator-side. Both modes leave
    /// bit-identical store dumps and traces at any thread count.
    parallel_plan: bool,
    /// Plan jobs queued since the last flush, tagged by slot index.
    plan_queue: Vec<(usize, PlanJobFn)>,
    /// Completed plan outcomes awaiting their landing continuation, keyed
    /// by slot (the busy invariant guarantees one in-flight cycle per
    /// slot, so a plain map cannot collide).
    plan_results: BTreeMap<usize, PlanOutcome>,
    /// Backoff schedule for driver→apiserver commits over a faulty link.
    retry: RetryPolicy,
    actuators: BTreeMap<ObjectRef, Option<Box<dyn Actuator>>>,
    /// Digi kinds registered so far; space-scoped controllers subscribe to
    /// each of them in every known namespace.
    digi_kinds: BTreeSet<String>,
    /// Namespaces with at least one digi (always includes `default`).
    namespaces: BTreeSet<String>,
}

impl World {
    /// Builds a world with the three dSpace controllers, the topology
    /// webhook, and a user CLI component already registered.
    pub fn new(links: LinkSet, seed: u64) -> Self {
        Self::assemble(ApiServer::new(), links, seed)
    }

    /// Builds a world on a durable apiserver, recovering any state a
    /// previous incarnation committed to `opts.dir`: recovered models come
    /// back through the store, and the digi-graph plus Sync port claims are
    /// rebuilt from them before the topology webhook starts reviewing new
    /// writes. Components (drivers, devices) are *not* persisted — re-add
    /// them after opening, exactly as on a fresh world.
    pub fn open(links: LinkSet, seed: u64, opts: DurabilityOptions) -> Result<Self, WalError> {
        Ok(Self::assemble(ApiServer::open(opts)?, links, seed))
    }

    fn assemble(mut api: ApiServer, links: LinkSet, seed: u64) -> Self {
        let graph = Rc::new(RefCell::new(DigiGraph::new()));
        let mut topology = TopologyWebhook::new(graph.clone());
        // A recovered store already holds committed models; rebuild the
        // webhook's derived state from them before it reviews anything.
        let recovered: Vec<Object> = api.dump();
        if !recovered.is_empty() {
            topology.restore(&recovered);
        }
        api.register_webhook(Box::new(topology));
        // Controller and user roles (§3.6): controllers get broad access;
        // the user (home owner) gets full access to digi models.
        api.rbac_mut()
            .add_role(Role::new("controller", vec![Rule::allow_all()]));
        for subject in [
            crate::mounter::SUBJECT,
            crate::syncer::SUBJECT,
            crate::policer::SUBJECT,
        ] {
            api.rbac_mut().bind(subject, "controller");
        }
        api.rbac_mut().add_role(Role::new(
            "home-owner",
            vec![Rule::new(
                [
                    Verb::Get,
                    Verb::List,
                    Verb::Watch,
                    Verb::Patch,
                    Verb::Create,
                    Verb::Update,
                    Verb::Delete,
                ],
                ["*"],
                ["*"],
            )],
        ));
        api.rbac_mut().bind("user", "home-owner");

        let mut world = World {
            api,
            graph: graph.clone(),
            rng: Rng::new(seed),
            metrics: Metrics::new(),
            trace: Trace::new(),
            links,
            slots: Vec::new(),
            pending_slots: BTreeSet::new(),
            watch_slots: BTreeMap::new(),
            reconcile_latency: LatencyModel::FixedMs(0.0),
            controller_reconcile: LatencyModel::FixedMs(0.0),
            admission: LatencyModel::FixedMs(0.0),
            async_controllers: true,
            pipelined_controllers: true,
            stall_until: 0,
            parallel_plan: true,
            plan_queue: Vec::new(),
            plan_results: BTreeMap::new(),
            retry: RetryPolicy::default(),
            actuators: BTreeMap::new(),
            digi_kinds: BTreeSet::new(),
            namespaces: BTreeSet::new(),
        };
        let controller_link = world.links.controller.clone();
        let user_link = world.links.user.clone();
        // Controllers start with empty subscriptions that grow to exactly
        // the kinds/namespaces they own (via `register_kind` and
        // `ensure_namespace`); only the user CLI keeps the global view.
        // Digi drivers (added later) subscribe to their own object.
        world.add_slot(
            "mounter",
            ApiServer::ADMIN,
            Vec::new(),
            controller_link.clone(),
            SlotScope::Space { system_kinds: &[] },
            false,
            Component::Mounter(Mounter::new()),
        );
        world.add_slot(
            "syncer",
            ApiServer::ADMIN,
            Vec::new(),
            controller_link.clone(),
            SlotScope::Space {
                system_kinds: &["Sync"],
            },
            false,
            Component::Syncer(Syncer::new()),
        );
        world.add_slot(
            "policer",
            ApiServer::ADMIN,
            Vec::new(),
            controller_link,
            SlotScope::System {
                system_kinds: &["Policy"],
            },
            false,
            Component::Policer(Policer::new()),
        );
        world.add_slot(
            "user-cli",
            "user",
            vec![Query::all()],
            user_link,
            SlotScope::Fixed,
            false,
            Component::User(UserCli::default()),
        );
        world.ensure_namespace("default");
        // Recovered namespaces are live: re-announce them so space-scoped
        // controllers subscribe there just as they would have pre-crash.
        for obj in &recovered {
            world.ensure_namespace(&obj.oref.namespace);
        }
        world
    }

    /// Switches the mounter and syncer between batched per-cycle commits
    /// and legacy per-op writes (the policer always batches). The two
    /// modes are decision-equivalent and leave bit-identical store state;
    /// per-op exists as a baseline for benches and determinism tests.
    pub fn set_controller_batching(&mut self, batched: bool) {
        for slot in &mut self.slots {
            match &mut slot.kind {
                Some(Component::Mounter(m)) => m.set_batched(batched),
                Some(Component::Syncer(s)) => s.set_batched(batched),
                _ => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn add_slot(
        &mut self,
        name: &str,
        subject: &str,
        queries: Vec<Query>,
        link: Link,
        scope: SlotScope,
        coalesce: bool,
        kind: Component,
    ) {
        let watch = self
            .api
            .watch_queries(subject, &queries)
            .expect("component subject authorized to watch its queries");
        let tier = if matches!(kind, Component::Driver(_)) {
            "driver"
        } else {
            "controller"
        };
        self.watch_slots.insert(watch, self.slots.len());
        self.slots.push(ComponentSlot {
            name: name.to_string(),
            watch,
            link,
            woken: false,
            busy: false,
            dirty: false,
            scope,
            coalesce,
            write_link: None,
            wake_drops_key: format!("wake_drops:{name}"),
            retries_key: format!("{tier}_retries:{name}"),
            gave_up_key: format!("{tier}_gave_up:{name}"),
            followups_key: format!("{tier}_followups:{name}"),
            kind: Some(kind),
        });
    }

    /// Sets the duration model for driver reconcile cycles.
    pub fn set_reconcile_latency(&mut self, latency: LatencyModel) {
        self.reconcile_latency = latency;
    }

    /// Sets the retry policy for driver→apiserver commits.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Sets the duration model for controller reconcile cycles.
    pub fn set_controller_reconcile_latency(&mut self, latency: LatencyModel) {
        self.controller_reconcile = latency;
    }

    /// Sets the apiserver-side admission stage for deferred controller
    /// batches.
    pub fn set_admission_latency(&mut self, latency: LatencyModel) {
        self.admission = latency;
    }

    /// Toggles the async controller lifecycle (busy/dirty/deferred
    /// landing). Off = legacy: controllers process inline on wake.
    pub fn set_async_controllers(&mut self, on: bool) {
        self.async_controllers = on;
    }

    /// Toggles pipelining. Off = serial baseline: each controller cycle
    /// stalls wake delivery for every component until it completes.
    pub fn set_pipelined_controllers(&mut self, on: bool) {
        self.pipelined_controllers = on;
    }

    /// Toggles the parallel plan phase (on by default). Off = deferred
    /// cycles plan inline on the coordinator, the serial baseline the
    /// pooled planner is benchmarked — and bit-identity-tested — against.
    pub fn set_parallel_plan(&mut self, on: bool) {
        self.parallel_plan = on;
    }

    /// Captures the immutable planning inputs for slot `i`'s cycle: store
    /// snapshot + RBAC view, graph edge snapshot, a per-slot RNG stream,
    /// and the landing instant. Built once per wake, coordinator-side.
    fn plan_ctx(&self, i: usize, land_at: dspace_simnet::Time) -> PlanCtx {
        PlanCtx {
            view: self.api.snapshot_view(),
            graph: self.graph.borrow().frozen(),
            rng: self.rng.stream(i as u64),
            land_at,
        }
    }

    /// Runs every queued plan job on the shard executor's worker lanes and
    /// parks the outcomes for their landing continuations. Job purity
    /// makes the flush instant unobservable in results; it only decides
    /// how much planning overlaps (`plan_parallelism`).
    fn flush_plans(&mut self) {
        if self.plan_queue.is_empty() {
            return;
        }
        let jobs = std::mem::take(&mut self.plan_queue);
        self.metrics.record("plan_parallelism", jobs.len() as f64);
        let sw = Stopwatch::start();
        let (slots, work): (Vec<usize>, Vec<PlanJobFn>) = jobs.into_iter().unzip();
        let outcomes = self.api.run_pooled(work, |job| job());
        for (slot, outcome) in slots.into_iter().zip(outcomes) {
            self.plan_results.insert(slot, outcome);
        }
        self.metrics.record_elapsed("plan_ns", sw);
    }

    /// Claims slot `i`'s plan outcome at its landing continuation,
    /// flushing the queue first if the job hasn't run yet (the d == 0
    /// inline continuation, or a landing that beat the eager flush).
    fn take_plan(&mut self, i: usize) -> PlanOutcome {
        if !self.plan_results.contains_key(&i) {
            self.flush_plans();
        }
        self.plan_results
            .remove(&i)
            .expect("a plan job was queued for this slot's in-flight cycle")
    }

    /// Overrides the link a controller slot's deferred writes travel
    /// (faults included). `name` is the slot name (`mounter`, `syncer`,
    /// `policer`).
    pub fn set_controller_write_link(&mut self, name: &str, link: Link) {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.name == name)
            .expect("known controller slot name");
        slot.write_link = Some(link);
    }

    /// Returns `true` while the named driver has a reconcile in flight.
    pub fn driver_busy(&self, name: &str) -> bool {
        let slot_name = format!("driver:{name}");
        self.slots.iter().any(|s| s.name == slot_name && s.busy)
    }

    /// Returns `true` while the named controller slot (`mounter`,
    /// `syncer`, `policer`) has a deferred cycle in flight.
    pub fn controller_busy(&self, name: &str) -> bool {
        self.slots.iter().any(|s| s.name == name && s.busy)
    }

    /// Registers a digi kind's schema and widens every space-scoped
    /// controller to watch it in all known namespaces.
    pub fn register_kind(&mut self, schema: KindSchema) {
        let kind = schema.kind.clone();
        self.api.register_schema(schema);
        if !self.digi_kinds.insert(kind.clone()) {
            return;
        }
        let namespaces: Vec<String> = self.namespaces.iter().cloned().collect();
        for i in 0..self.slots.len() {
            if matches!(self.slots[i].scope, SlotScope::Space { .. }) {
                for ns in &namespaces {
                    self.subscribe(i, &kind, ns);
                }
            }
        }
    }

    /// Makes `ns` known to the space, widening every space-scoped
    /// controller to watch its owned kinds in the new namespace's shard.
    /// Must run before the namespace's first object is created, so
    /// controllers see the `Added` event.
    pub fn ensure_namespace(&mut self, ns: &str) {
        if !self.namespaces.insert(ns.to_string()) {
            return;
        }
        let kinds: Vec<String> = self.digi_kinds.iter().cloned().collect();
        for i in 0..self.slots.len() {
            match self.slots[i].scope {
                SlotScope::Space { system_kinds } => {
                    for kind in system_kinds {
                        self.subscribe(i, kind, ns);
                    }
                    for kind in &kinds {
                        self.subscribe(i, kind, ns);
                    }
                }
                SlotScope::System { system_kinds } => {
                    for kind in system_kinds {
                        self.subscribe(i, kind, ns);
                    }
                }
                SlotScope::Fixed => {}
            }
        }
    }

    /// Deletes a whole namespace: every digi model in it is deleted (each
    /// watcher observes a terminal `Deleted` event, gap-free), its shard is
    /// dropped once drained, devices are detached, and mount edges with an
    /// endpoint in the namespace are GC'd from the digi-graph.
    ///
    /// Driver slots for the deleted digis stay registered but go silent:
    /// the apiserver cancels their (namespace-homed) subscriptions as part
    /// of the namespace teardown, so they can never wake again.
    pub fn delete_namespace(&mut self, ns: &str) -> Result<u64, dspace_apiserver::ApiError> {
        let deleted = self.api.delete_namespace(ApiServer::ADMIN, ns)?;
        // Edges where the deleted digis were *children* live in their
        // parents' models and survive the per-object deletes; sweep them.
        self.graph.borrow_mut().remove_namespace(ns);
        // Detached devices stop re-arming: the next periodic tick finds no
        // actuator entry and does not reschedule.
        self.actuators.retain(|oref, _| oref.namespace != ns);
        self.namespaces.remove(ns);
        Ok(deleted)
    }

    fn subscribe(&mut self, i: usize, kind: &str, ns: &str) {
        self.api
            .extend_watch(
                ApiServer::ADMIN,
                self.slots[i].watch,
                &Query::kind(kind).in_ns(ns),
            )
            .expect("controller subscription is live");
    }

    /// Registers a digi driver component with its RBAC identity.
    pub fn add_driver(&mut self, oref: ObjectRef, driver: Driver) {
        let subject = format!("driver:{}", oref.name);
        let role = format!("digi:{}", oref.name);
        self.api.rbac_mut().add_role(Role::new(
            role.clone(),
            // A digi driver may only access its own model (§3.6) — the
            // Watch verb included, so its subscription can cover nothing
            // beyond its own change stream.
            vec![Rule::for_object(
                [Verb::Get, Verb::Update, Verb::Patch, Verb::Watch],
                oref.kind.clone(),
                oref.name.clone(),
            )],
        ));
        self.api.rbac_mut().bind(subject.clone(), role);
        let last_model = self
            .api
            .get(ApiServer::ADMIN, &oref)
            .map(|o| o.model)
            .unwrap_or_else(|_| Shared::new(Value::Null));
        let link = self.links.driver.clone();
        self.add_slot(
            &format!("driver:{}", oref.name),
            &subject,
            vec![Query::kind(oref.kind.as_str())
                .in_ns(oref.namespace.as_str())
                .named(oref.name.as_str())],
            link,
            SlotScope::Fixed,
            // Drivers drain coalesced: a burst of N writes to the digi is
            // one wake, one reconcile, against the newest snapshot.
            true,
            Component::Driver(DriverRuntime {
                oref,
                subject: subject.clone(),
                driver,
                last_model,
                last_written: None,
            }),
        );
    }

    /// Attaches a simulated device/data engine to a leaf digi and arms its
    /// periodic step hook.
    pub fn attach_actuator(
        &mut self,
        sim: &mut Sim<World>,
        oref: ObjectRef,
        actuator: Box<dyn Actuator>,
    ) {
        let subject = format!("device:{}", oref.name);
        let role = format!("device-role:{}", oref.name);
        self.api.rbac_mut().add_role(Role::new(
            role.clone(),
            vec![Rule::for_object(
                [Verb::Get, Verb::Patch],
                oref.kind.clone(),
                oref.name.clone(),
            )],
        ));
        self.api.rbac_mut().bind(subject, role);
        let interval = actuator.poll_interval();
        self.actuators.insert(oref.clone(), Some(actuator));
        if let Some(interval) = interval {
            let target = oref.clone();
            // Background: the re-arming tick alone must not look like
            // pending propagation to quiescence checks (`Space::settle`).
            sim.schedule_background(interval, move |w: &mut World, sim| {
                w.device_tick(target.clone(), sim);
            });
        }
    }

    /// Returns `true` if any component has undelivered watch events or a
    /// reconcile cycle still in flight.
    pub fn has_pending_work(&self) -> bool {
        self.slots
            .iter()
            .any(|s| s.busy || s.dirty || (!s.woken && self.api.has_pending(s.watch)))
    }

    /// Schedules wakes for every component with pending watch events.
    /// Called by the space loop after every simulation event.
    ///
    /// Only the *shortlist* of possibly-pending slots is scanned: the
    /// store marks a watcher dirty when an event is appended to it, and
    /// `pump` drains that feed into `pending_slots`, so slots with no
    /// traffic cost nothing per sim event. The shortlist is conservative
    /// (a slot is only charged in `shard_append`, so pending can never
    /// appear without a dirty mark) and iterated in ascending slot order —
    /// the same order the full scan used, which keeps the RNG draw
    /// sequence of faulty-link transfers identical.
    ///
    /// The notification travels the component's link sized by the actual
    /// serialized payload of its pending events; a faulty link may drop
    /// it, in which case the apiserver retransmits after the link's RTO.
    pub fn pump(&mut self, sim: &mut Sim<World>) {
        for id in self.api.drain_dirty_watchers() {
            if let Some(&i) = self.watch_slots.get(&id) {
                self.pending_slots.insert(i);
            }
        }
        for i in std::mem::take(&mut self.pending_slots) {
            if self.slots[i].woken {
                // A scheduled wake drains the whole queue; the slot
                // re-enters the shortlist on its next append.
                continue;
            }
            // One derivation pass answers both "anything pending?" and the
            // wire size of the notification.
            let (pending, pending_bytes) = self.api.pending_totals(self.slots[i].watch);
            if pending == 0 {
                continue;
            }
            self.slots[i].woken = true;
            let bytes = pending_bytes as usize;
            match self.slots[i].link.transfer(bytes, sim.now(), &mut self.rng) {
                Delivery::After(delay) => {
                    sim.schedule(delay, move |w: &mut World, sim| w.wake(i, sim));
                }
                Delivery::Dropped => {
                    self.metrics.count("wake_drops", 1);
                    self.metrics.count(&self.slots[i].wake_drops_key, 1);
                    let rto = self.slots[i].link.rto();
                    sim.schedule(rto, move |w: &mut World, sim| {
                        w.slots[i].woken = false;
                        // The dirty mark was consumed when this slot was
                        // shortlisted; re-add it for the retransmit scan.
                        w.pending_slots.insert(i);
                        w.pump(sim);
                    });
                }
            }
        }
        // Eager flush: once no same-instant sim event remains that could
        // add another job to the batch, run everything queued on the pool
        // now — the batch is as wide as this instant will ever make it,
        // and planning overlaps the coordinator's remaining bookkeeping
        // instead of stalling the first landing continuation.
        if !self.plan_queue.is_empty() && sim.next_at().is_none_or(|t| t > sim.now()) {
            self.flush_plans();
        }
    }

    fn wake(&mut self, i: usize, sim: &mut Sim<World>) {
        if !self.pipelined_controllers && sim.now() < self.stall_until {
            // Serial-controller baseline: no slot makes progress while a
            // controller cycle is in flight. Re-queue the delivery behind
            // the stall horizon (which may have moved again by then).
            let wait = self.stall_until - sim.now();
            sim.schedule(wait, move |w: &mut World, sim| w.wake(i, sim));
            return;
        }
        if self.slots[i].busy {
            // Mid-reconcile: note the wake and let completion re-poll.
            // `woken` stays set so `pump` doesn't schedule more wakes for
            // events that will all drain in the one follow-up cycle.
            self.slots[i].dirty = true;
            return;
        }
        self.slots[i].woken = false;
        if self.slots[i].coalesce {
            let events = self.api.poll_coalesced(self.slots[i].watch);
            if events.is_empty() {
                return;
            }
            self.count_driver_delivery(&events);
            self.start_reconcile(i, events, sim);
            return;
        }
        let events = self.api.poll(self.slots[i].watch);
        if events.is_empty() {
            return;
        }
        if matches!(self.slots[i].kind, Some(Component::Driver(_))) {
            // A non-coalescing driver still goes through the async cycle;
            // each raw event is a single-event "batch".
            let wrapped: Vec<CoalescedEvent> = events
                .iter()
                .map(|event| CoalescedEvent {
                    event: event.clone(),
                    coalesced: 1,
                })
                .collect();
            self.start_reconcile(i, wrapped, sim);
            return;
        }
        if matches!(self.slots[i].kind, Some(Component::User(_))) {
            let mut component = self.slots[i].kind.take().expect("component present");
            if let Component::User(u) = &mut component {
                for ev in &events {
                    let old = u
                        .cache
                        .get(&ev.oref)
                        .cloned()
                        .unwrap_or_else(|| Shared::new(Value::Null));
                    let changes = dspace_value::diff(&old, &ev.model);
                    let detail = changes
                        .iter()
                        .take(8)
                        .map(|c| c.path.to_string())
                        .collect::<Vec<_>>()
                        .join(";");
                    self.trace.push(
                        sim.now(),
                        TraceKind::UserObserved,
                        ev.oref.to_string(),
                        detail,
                    );
                    u.cache.insert(ev.oref.clone(), ev.model.clone());
                }
            }
            self.slots[i].kind = Some(component);
            return;
        }
        self.controller_cycle(i, events, sim);
    }

    /// Starts one controller cycle over a drained event batch.
    ///
    /// With async controllers off — or on with all-zero latency models and
    /// no write link — the cycle runs inline, bit-identical to the legacy
    /// synchronous path (a `FixedMs` sample consumes no RNG draws). The
    /// deferred path splits the cycle into plan (wake time, against the
    /// drained snapshots) → busy latency → link transfer (with retries) →
    /// admission → landing, with the slot busy throughout so concurrent
    /// wakes coalesce into one follow-up via the dirty bit.
    fn controller_cycle(
        &mut self,
        i: usize,
        events: Vec<dspace_apiserver::WatchEvent>,
        sim: &mut Sim<World>,
    ) {
        // Foreign-event accounting: with subscriptions narrowed to owned
        // kinds, controllers should never receive another controller's
        // system objects. The counters exist so tests can assert it.
        let foreign = |kinds: &[&str]| {
            events
                .iter()
                .filter(|e| kinds.contains(&e.oref.kind.as_str()))
                .count() as u64
        };
        let (metric, n) = match &self.slots[i].kind {
            Some(Component::Mounter(_)) => ("mounter_foreign_events", foreign(&["Sync", "Policy"])),
            Some(Component::Syncer(_)) => ("syncer_foreign_events", foreign(&["Policy"])),
            Some(Component::Policer(_)) => ("policer_foreign_events", foreign(&["Sync"])),
            _ => unreachable!("only controller slots reach controller_cycle"),
        };
        if n > 0 {
            self.metrics.count(metric, n);
        }
        if !self.async_controllers {
            self.controller_inline(i, &events, sim);
            return;
        }
        // Hard invariant: one cycle in flight per slot. The busy check in
        // `wake` and the completion re-poll make this unreachable; if it
        // ever fires, refuse the second cycle (the dirty bit re-polls the
        // already-drained events' successors) and count it, rather than
        // corrupting plan/land interleaving in release builds.
        if self.slots[i].busy {
            self.metrics.count("reconcile_invariant_violations", 1);
            self.slots[i].dirty = true;
            return;
        }
        let d = self.controller_reconcile.sample(&mut self.rng);
        let deferred = d > 0
            || self.slots[i].write_link.is_some()
            || self.admission != LatencyModel::FixedMs(0.0);
        if !deferred {
            self.controller_inline(i, &events, sim);
            return;
        }
        self.metrics
            .record("controller_reconcile_ms", d as f64 / 1e6);
        self.slots[i].busy = true;
        if !self.pipelined_controllers {
            self.stall_until = self.stall_until.max(sim.now() + d);
        }
        let mut component = self.slots[i].kind.take().expect("component present");
        // Parallel plan phase: mounter/syncer planning is a pure function
        // of the wake-time snapshots, so it ships to a worker lane as a
        // plan job; the component travels with the job and is reinstalled
        // by the landing continuation. The policer is excluded — its plan
        // narrows/extends its own watch subscription per event, which is
        // coordinator state.
        if self.parallel_plan && !matches!(component, Component::Policer(_)) {
            let mut ctx = self.plan_ctx(i, sim.now() + d);
            // Deferred landings always go through one `apply_batch`
            // transfer, so force batched mode.
            let job: PlanJobFn = match component {
                Component::Mounter(mut m) => Box::new(move || {
                    let plan = m.plan(&mut ctx.view, &*ctx.graph, &events, true);
                    PlanOutcome::Mounter(m, plan)
                }),
                Component::Syncer(mut s) => Box::new(move || {
                    let plan = s.plan(&mut ctx.view, &events, true);
                    PlanOutcome::Syncer(s, plan)
                }),
                _ => unreachable!("policer and non-controllers plan coordinator-side"),
            };
            self.plan_queue.push((i, job));
            if d == 0 {
                // Schedule-or-inline: an event scheduled at delay 0 would
                // land after other same-timestamp events and change
                // batching. The inline claim flushes the queue.
                self.controller_transmit_queued(i, sim);
            } else {
                sim.schedule(d, move |w: &mut World, sim| {
                    w.controller_transmit_queued(i, sim);
                });
            }
            return;
        }
        // Serial plan (the policer always; mounter/syncer when the
        // parallel plan phase is off): plan inline against the wake-time
        // live store — which the snapshot a plan job would see equals,
        // since planning only reads.
        let plan = match &mut component {
            Component::Mounter(m) => {
                ControllerPlan::Mounter(m.plan(&mut self.api, &*self.graph, &events, true))
            }
            Component::Syncer(s) => ControllerPlan::Syncer(s.plan(&mut self.api, &events, true)),
            Component::Policer(p) => {
                let watch = self.slots[i].watch;
                let mut trace = std::mem::take(&mut self.trace);
                let plan = p.plan(&mut self.api, watch, &events, &mut trace, sim.now());
                self.trace = trace;
                ControllerPlan::Policer(plan)
            }
            _ => unreachable!("only controller slots defer"),
        };
        self.slots[i].kind = Some(component);
        if d == 0 {
            // Schedule-or-inline: an event scheduled at delay 0 would land
            // after other same-timestamp events and change batching.
            self.controller_transmit(i, plan, 0, sim);
        } else {
            sim.schedule(d, move |w: &mut World, sim| {
                w.controller_transmit(i, plan, 0, sim);
            });
        }
    }

    /// Landing continuation of a pooled controller plan: claim the slot's
    /// outcome (flushing the queue if its job hasn't run yet), reinstall
    /// the component, and enter the unchanged transmit → admission → land
    /// pipeline. Continuations fire in the sim's deterministic
    /// `(time, ticket)` order — the same order the serial planner lands.
    fn controller_transmit_queued(&mut self, i: usize, sim: &mut Sim<World>) {
        let plan = match self.take_plan(i) {
            PlanOutcome::Mounter(m, p) => {
                self.slots[i].kind = Some(Component::Mounter(m));
                ControllerPlan::Mounter(p)
            }
            PlanOutcome::Syncer(s, p) => {
                self.slots[i].kind = Some(Component::Syncer(s));
                ControllerPlan::Syncer(p)
            }
            PlanOutcome::Driver(..) => unreachable!("driver plans land via land_reconcile"),
        };
        self.controller_transmit(i, plan, 0, sim);
    }

    /// Legacy synchronous controller processing (also the async fast path
    /// when every deferral stage is zero).
    fn controller_inline(
        &mut self,
        i: usize,
        events: &[dspace_apiserver::WatchEvent],
        sim: &mut Sim<World>,
    ) {
        let mut component = self.slots[i].kind.take().expect("component present");
        match &mut component {
            Component::Mounter(m) => {
                let mut trace = std::mem::take(&mut self.trace);
                m.process(&mut self.api, &self.graph, events, &mut trace, sim.now());
                self.trace = trace;
            }
            Component::Syncer(s) => s.process(&mut self.api, events),
            Component::Policer(p) => {
                let watch = self.slots[i].watch;
                let mut trace = std::mem::take(&mut self.trace);
                p.process(
                    &mut self.api,
                    &self.graph,
                    watch,
                    events,
                    &mut trace,
                    sim.now(),
                );
                self.trace = trace;
            }
            _ => unreachable!("only controller slots reach controller_inline"),
        }
        self.slots[i].kind = Some(component);
    }

    /// Offers a planned controller batch to the slot's write link.
    /// Delivered batches proceed to admission after the transfer delay;
    /// drops retry on the exponential backoff until the budget runs out
    /// (`controller_retries` / `controller_gave_up`).
    fn controller_transmit(
        &mut self,
        i: usize,
        plan: ControllerPlan,
        attempt: u32,
        sim: &mut Sim<World>,
    ) {
        if plan.is_empty() {
            // Nothing travels the wire: land directly (cache effects and
            // empty-batch bookkeeping still apply).
            self.controller_land(i, plan, sim);
            return;
        }
        let bytes = plan.wire_bytes();
        let link = self.slots[i]
            .write_link
            .as_ref()
            .unwrap_or(&self.slots[i].link)
            .clone();
        match link.transfer(bytes, sim.now(), &mut self.rng) {
            Delivery::After(0) => self.controller_admit(i, plan, sim),
            Delivery::After(delay) => {
                sim.schedule(delay, move |w: &mut World, sim| {
                    w.controller_admit(i, plan, sim);
                });
            }
            Delivery::Dropped if attempt < self.retry.budget => {
                self.metrics.count("controller_retries", 1);
                self.metrics.count(&self.slots[i].retries_key, 1);
                let backoff = self.retry.backoff(attempt);
                sim.schedule(backoff, move |w: &mut World, sim| {
                    w.controller_transmit(i, plan, attempt + 1, sim);
                });
            }
            Delivery::Dropped => {
                self.metrics.count("controller_gave_up", 1);
                self.metrics.count(&self.slots[i].gave_up_key, 1);
                let name = self.slots[i].name.clone();
                self.trace.push(
                    sim.now(),
                    TraceKind::Composition,
                    name,
                    format!("gave up after {attempt} retries"),
                );
                // The batch is lost; close the cycle without landing. Any
                // state the drained events should have produced is
                // re-derived when their objects next change.
                self.controller_complete(i, sim);
            }
        }
    }

    /// The batch arrived at the apiserver: spend the admission stage, then
    /// land. Modeled separately from the link so the two delays are
    /// independently attributable in metrics.
    fn controller_admit(&mut self, i: usize, plan: ControllerPlan, sim: &mut Sim<World>) {
        let a = self.admission.sample(&mut self.rng);
        self.metrics.record("admission_ms", a as f64 / 1e6);
        if a == 0 {
            self.controller_land(i, plan, sim);
        } else {
            sim.schedule(a, move |w: &mut World, sim| {
                w.controller_land(i, plan, sim);
            });
        }
    }

    /// Lands a deferred controller batch: OCC re-validation against the
    /// plan-time snapshot rvs, commit, success-gated effects — then the
    /// cycle completes.
    fn controller_land(&mut self, i: usize, plan: ControllerPlan, sim: &mut Sim<World>) {
        let sw = Stopwatch::start();
        let mut component = self.slots[i].kind.take().expect("component present");
        let conflicts = match (&mut component, plan) {
            (Component::Mounter(_), ControllerPlan::Mounter(p)) => {
                let mut trace = std::mem::take(&mut self.trace);
                let conflicts = p.land_occ(&mut self.api, &mut trace, sim.now());
                self.trace = trace;
                conflicts
            }
            (Component::Syncer(s), ControllerPlan::Syncer(p)) => s.land_occ(&mut self.api, p),
            (Component::Policer(p), ControllerPlan::Policer(plan)) => {
                let mut trace = std::mem::take(&mut self.trace);
                p.land(&mut self.api, &self.graph, plan, &mut trace, sim.now());
                self.trace = trace;
                0
            }
            _ => unreachable!("plan variant matches its slot's component"),
        };
        self.slots[i].kind = Some(component);
        self.metrics.record_elapsed("land_ns", sw);
        if conflicts > 0 {
            self.metrics.count("controller_conflicts", conflicts);
        }
        self.controller_complete(i, sim);
    }

    /// Ends a controller cycle. Wakes that arrived while busy drain
    /// through one re-poll — the single follow-up cycle the busy-state
    /// machine guarantees for an N-event mid-cycle burst.
    fn controller_complete(&mut self, i: usize, sim: &mut Sim<World>) {
        self.slots[i].busy = false;
        if !self.slots[i].dirty {
            return;
        }
        self.slots[i].dirty = false;
        // The wake that set the dirty bit already traveled the link, so
        // the re-poll is immediate.
        self.slots[i].woken = false;
        let events = self.api.poll(self.slots[i].watch);
        if events.is_empty() {
            return;
        }
        self.metrics.count("controller_followup_cycles", 1);
        self.metrics.count(&self.slots[i].followups_key, 1);
        self.controller_cycle(i, events, sim);
    }

    fn count_driver_delivery(&mut self, events: &[CoalescedEvent]) {
        self.metrics.count("driver_deliveries", events.len() as u64);
        let absorbed: u64 = events.iter().map(|e| e.coalesced - 1).sum();
        if absorbed > 0 {
            self.metrics.count("driver_coalesced_events", absorbed);
        }
    }

    /// Begins a driver reconcile cycle: the slot goes busy for a duration
    /// drawn from the reconcile latency model, then the cycle's decisions
    /// (effects, commits) land at completion time.
    fn start_reconcile(&mut self, i: usize, events: Vec<CoalescedEvent>, sim: &mut Sim<World>) {
        // Hard invariant: one cycle in flight per driver. The busy check
        // in `wake` and the completion re-poll make this unreachable; if
        // it ever fires, refuse the second cycle (the dirty bit re-polls)
        // and count it, rather than interleaving two reconciles' commits
        // in release builds.
        if self.slots[i].busy {
            self.metrics.count("reconcile_invariant_violations", 1);
            self.slots[i].dirty = true;
            return;
        }
        self.slots[i].busy = true;
        let duration = self.reconcile_latency.sample(&mut self.rng);
        self.metrics.record("reconcile_ms", duration as f64 / 1e6);
        if self.parallel_plan {
            // The reconcile compute is a pure function of the runtime's
            // cached model, the drained events, and the landing clock —
            // duration is sampled now (unchanged RNG order), so the
            // landing instant is already known and the whole cycle ships
            // to a worker lane. Traces, effects, and commits replay at the
            // landing continuation in deterministic ticket order.
            let Some(Component::Driver(mut rt)) = self.slots[i].kind.take() else {
                unreachable!("only driver slots run reconcile cycles");
            };
            let now_s = (sim.now() + duration) as f64 / 1e9;
            self.plan_queue.push((
                i,
                Box::new(move || {
                    let cycle = run_driver_cycle(&mut rt, &events, now_s);
                    PlanOutcome::Driver(rt, cycle)
                }),
            ));
            sim.schedule(duration, move |w: &mut World, sim| w.land_reconcile(i, sim));
            return;
        }
        sim.schedule(duration, move |w: &mut World, sim| {
            w.finish_reconcile(i, events, sim);
        });
    }

    /// Completion of the reconcile work on the serial path: runs the
    /// driver logic against the snapshots drained at wake time, then lands
    /// the cycle through the same replay code the parallel plan phase
    /// uses — which is what keeps the two modes bit-identical.
    fn finish_reconcile(&mut self, i: usize, events: Vec<CoalescedEvent>, sim: &mut Sim<World>) {
        let Some(Component::Driver(mut rt)) = self.slots[i].kind.take() else {
            unreachable!("only driver slots run reconcile cycles");
        };
        let cycle = run_driver_cycle(&mut rt, &events, sim.now() as f64 / 1e9);
        let oref = rt.oref.clone();
        self.slots[i].kind = Some(Component::Driver(rt));
        self.land_driver_cycle(i, oref, cycle, sim);
    }

    /// Landing continuation of a pooled driver cycle: claim the outcome
    /// (flushing the queue if the job hasn't run yet), reinstall the
    /// runtime, and replay the cycle coordinator-side.
    fn land_reconcile(&mut self, i: usize, sim: &mut Sim<World>) {
        let PlanOutcome::Driver(rt, cycle) = self.take_plan(i) else {
            unreachable!("driver slot landed a controller outcome");
        };
        let oref = rt.oref.clone();
        self.slots[i].kind = Some(Component::Driver(rt));
        self.land_driver_cycle(i, oref, cycle, sim);
    }

    /// Lands a completed driver cycle: replays traces, error counts, and
    /// device effects in step order — actuator RNG draws happen here, on
    /// the shared stream, in the same order the serial planner produced
    /// them — then transmits the queued commits over the driver link.
    fn land_driver_cycle(
        &mut self,
        i: usize,
        oref: ObjectRef,
        cycle: DriverCycle,
        sim: &mut Sim<World>,
    ) {
        let sw = Stopwatch::start();
        if cycle.foreign_events > 0 {
            self.metrics
                .count("driver_foreign_events", cycle.foreign_events);
        }
        let subject = oref.to_string();
        for step in cycle.steps {
            self.trace.push(
                sim.now(),
                TraceKind::DriverReconciled,
                subject.clone(),
                step.changed,
            );
            for err in step.errors {
                self.metrics.count("driver_errors", 1);
                self.trace.push(
                    sim.now(),
                    TraceKind::DriverReconciled,
                    subject.clone(),
                    format!("error: {err}"),
                );
            }
            for effect in step.effects {
                match effect {
                    Effect::Device(cmd) => {
                        self.trace.push(
                            sim.now(),
                            TraceKind::DeviceCommand,
                            subject.clone(),
                            dspace_value::json::to_string(&cmd),
                        );
                        self.actuate(oref.clone(), cmd, sim);
                    }
                    Effect::Log(msg) => {
                        self.trace.push(
                            sim.now(),
                            TraceKind::DriverReconciled,
                            subject.clone(),
                            format!("log: {msg}"),
                        );
                    }
                }
            }
        }
        self.metrics.record_elapsed("land_ns", sw);
        self.run_commits(i, cycle.commits, sim);
    }

    /// Sends the next queued commit, or closes the cycle when none remain.
    fn run_commits(
        &mut self,
        i: usize,
        mut commits: VecDeque<PendingCommit>,
        sim: &mut Sim<World>,
    ) {
        match commits.pop_front() {
            Some(commit) => self.attempt_commit(i, commit, 0, commits, sim),
            None => self.complete_cycle(i, sim),
        }
    }

    /// Offers one commit to the driver link. Delivered writes apply after
    /// the transfer delay; drops retry on an exponential backoff until the
    /// budget runs out (`driver_retries` / `driver_gave_up`).
    fn attempt_commit(
        &mut self,
        i: usize,
        commit: PendingCommit,
        attempt: u32,
        rest: VecDeque<PendingCommit>,
        sim: &mut Sim<World>,
    ) {
        let bytes = dspace_value::json::encoded_len(&commit.model);
        match self.slots[i].link.transfer(bytes, sim.now(), &mut self.rng) {
            Delivery::After(delay) => {
                sim.schedule(delay, move |w: &mut World, sim| {
                    w.apply_commit(i, commit, sim);
                    w.run_commits(i, rest, sim);
                });
            }
            Delivery::Dropped if attempt < self.retry.budget => {
                self.metrics.count("driver_retries", 1);
                self.metrics.count(&self.slots[i].retries_key, 1);
                let backoff = self.retry.backoff(attempt);
                sim.schedule(backoff, move |w: &mut World, sim| {
                    w.attempt_commit(i, commit, attempt + 1, rest, sim);
                });
            }
            Delivery::Dropped => {
                let name = self.slots[i].name.clone();
                self.metrics.count("driver_gave_up", 1);
                self.metrics.count(&self.slots[i].gave_up_key, 1);
                self.trace.push(
                    sim.now(),
                    TraceKind::DriverReconciled,
                    name,
                    format!("gave up after {attempt} retries"),
                );
                self.run_commits(i, rest, sim);
            }
        }
    }

    /// A commit arrived at the apiserver: apply it with OCC. A conflict
    /// means a newer event is already queued and will retrigger the cycle.
    fn apply_commit(&mut self, i: usize, commit: PendingCommit, sim: &mut Sim<World>) {
        let mut component = self.slots[i].kind.take().expect("component present");
        if let Component::Driver(rt) = &mut component {
            match self
                .api
                .client(&rt.subject)
                .namespace(&rt.oref.namespace)
                .update(
                    &rt.oref.kind,
                    &rt.oref.name,
                    commit.model.clone(),
                    Some(commit.expected),
                ) {
                Ok(rv) => {
                    rt.last_written = Some(rv);
                    rt.last_model = Shared::new(commit.model);
                }
                Err(dspace_apiserver::ApiError::Conflict { .. }) => {
                    self.metrics.count("reconcile_conflicts", 1);
                }
                Err(e) => {
                    self.metrics.count("driver_errors", 1);
                    self.trace.push(
                        sim.now(),
                        TraceKind::DriverReconciled,
                        rt.oref.to_string(),
                        format!("write failed: {e}"),
                    );
                }
            }
        }
        self.slots[i].kind = Some(component);
    }

    /// Ends a reconcile cycle. If wakes arrived while busy, everything
    /// that queued up mid-cycle drains through one coalesced re-poll —
    /// the single follow-up reconcile the busy-state machine guarantees.
    fn complete_cycle(&mut self, i: usize, sim: &mut Sim<World>) {
        self.slots[i].busy = false;
        if !self.slots[i].dirty {
            return;
        }
        self.slots[i].dirty = false;
        // The wake that set the dirty bit already traveled the link, so
        // the re-poll is immediate.
        self.slots[i].woken = false;
        let events = self.api.poll_coalesced(self.slots[i].watch);
        if events.is_empty() {
            return;
        }
        self.metrics.count("driver_followup_cycles", 1);
        self.count_driver_delivery(&events);
        self.start_reconcile(i, events, sim);
    }

    /// Sends a command to the actuator attached to `oref` and schedules the
    /// resulting patches.
    fn actuate(&mut self, oref: ObjectRef, cmd: Value, sim: &mut Sim<World>) {
        let Some(slot) = self.actuators.get_mut(&oref) else {
            self.metrics.count("commands_without_actuator", 1);
            return;
        };
        let Some(mut actuator) = slot.take() else {
            return;
        };
        let acts = actuator.actuate(sim.now(), &cmd, &mut self.rng);
        let name = actuator.name().to_string();
        *self.actuators.get_mut(&oref).expect("slot exists") = Some(actuator);
        self.schedule_actuations(oref, name, acts, sim);
    }

    /// Periodic device poll: spontaneous physical events (motion, manual
    /// toggles, robot movement) surface here.
    fn device_tick(&mut self, oref: ObjectRef, sim: &mut Sim<World>) {
        let Some(slot) = self.actuators.get_mut(&oref) else {
            return;
        };
        let Some(mut actuator) = slot.take() else {
            return;
        };
        let model = self
            .api
            .get(ApiServer::ADMIN, &oref)
            .map(|o| o.model)
            .unwrap_or_else(|_| Shared::new(Value::Null));
        let acts = actuator.step(sim.now(), &model, &mut self.rng);
        let name = actuator.name().to_string();
        let interval = actuator.poll_interval();
        *self.actuators.get_mut(&oref).expect("slot exists") = Some(actuator);
        self.schedule_actuations(oref.clone(), name, acts, sim);
        if let Some(interval) = interval {
            sim.schedule_background(interval, move |w: &mut World, sim| {
                w.device_tick(oref.clone(), sim);
            });
        }
    }

    fn schedule_actuations(
        &mut self,
        oref: ObjectRef,
        device: String,
        acts: Vec<crate::actuator::Actuation>,
        sim: &mut Sim<World>,
    ) {
        for act in acts {
            if act.bytes > 0 {
                self.metrics
                    .count(&format!("bytes:{device}"), act.bytes as u64);
            }
            // Pure bandwidth-accounting actuations carry no model change;
            // committing them would spam every watcher with no-op events.
            if act
                .patch
                .as_object()
                .map(|m| m.is_empty())
                .unwrap_or(act.patch.is_null())
            {
                continue;
            }
            let target = oref.clone();
            let dev = device.clone();
            let delay_ms = act.delay as f64 / 1e6;
            sim.schedule(act.delay, move |w: &mut World, sim| {
                let subject = format!("device:{}", target.name);
                let committed = w
                    .api
                    .client(subject)
                    .namespace(&target.namespace)
                    .patch(&target.kind, &target.name, act.patch.clone())
                    .is_ok();
                if committed {
                    w.trace.push(
                        sim.now(),
                        TraceKind::DeviceDone,
                        target.to_string(),
                        format!("{dev} {delay_ms:.1}ms"),
                    );
                    w.metrics
                        .record(&format!("dt_ms:{}", target.name), delay_ms);
                }
            });
        }
    }

    /// Injects a physical-world event directly on a digi's model (e.g. a
    /// user manually flips the lamp switch — scenario S2).
    pub fn physical_event(&mut self, oref: &ObjectRef, patch: Value, sim: &Sim<World>) {
        let subject = format!("device:{}", oref.name);
        let subject = if self.actuators.contains_key(oref) {
            subject
        } else {
            ApiServer::ADMIN.to_string()
        };
        let committed = self
            .api
            .client(subject)
            .namespace(&oref.namespace)
            .patch(&oref.kind, &oref.name, patch)
            .is_ok();
        if committed {
            self.trace.push(
                sim.now(),
                TraceKind::DeviceDone,
                oref.to_string(),
                "physical-event".to_string(),
            );
        }
    }

    /// Names of the registered components, in registration order.
    pub fn component_names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parallel plan phase ships components and their captured inputs
    // to shard worker lanes; everything that crosses must be Send. A
    // compile-time assert, phrased as a test so it can't rot silently.
    #[test]
    fn plan_jobs_are_send() {
        fn is_send<T: Send>() {}
        is_send::<PlanOutcome>();
        is_send::<PlanJobFn>();
        is_send::<PlanCtx>();
    }

    // Satellite: the one-cycle-in-flight invariant is a hard, counted
    // error path (not a debug_assert) — a second cycle against a busy
    // slot is refused, counted, and deferred via the dirty bit.
    #[test]
    fn double_cycle_is_refused_and_counted() {
        let mut world = World::new(LinkSet::default(), 1);
        let mut sim: Sim<World> = Sim::new();
        let mounter = world
            .slots
            .iter()
            .position(|s| s.name == "mounter")
            .expect("mounter slot");
        world.slots[mounter].busy = true;
        world.controller_cycle(mounter, Vec::new(), &mut sim);
        assert_eq!(world.metrics.counter("reconcile_invariant_violations"), 1);
        assert!(
            world.slots[mounter].dirty,
            "refused cycle must re-poll via the dirty bit"
        );
        // The driver path shares the invariant (any slot hits the guard
        // before driver-specific work).
        world.slots[mounter].dirty = false;
        world.start_reconcile(mounter, Vec::new(), &mut sim);
        assert_eq!(world.metrics.counter("reconcile_invariant_violations"), 2);
        assert!(world.slots[mounter].dirty);
    }
}

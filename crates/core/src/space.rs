//! The [`Space`]: the top-level facade tying the simulator and the world
//! together (§2.4 of the paper: "a developer selects digivices and
//! digidata, composes them into a hierarchy, and programs the space via
//! the declarative API exposed by the root digivice").

use dspace_apiserver::{ApiError, ApiServer, DurabilityOptions, ObjectRef, WalError};
use dspace_simnet::{millis, LatencyModel, RetryPolicy, Sim, Time};
use dspace_value::{KindSchema, Value};

use std::collections::BTreeMap;
use std::fmt;

use crate::actuator::Actuator;
use crate::driver::Driver;
use crate::graph::{EdgeState, MountMode};
use crate::syncer::SyncSpec;
use crate::trace::TraceKind;
use crate::verbs::{self, VerbError};
use crate::world::{LinkSet, World};

/// Configuration for a space.
#[derive(Debug, Clone)]
pub struct SpaceConfig {
    /// Network links for the deployment being simulated.
    pub links: LinkSet,
    /// RNG seed (experiments are deterministic per seed).
    pub seed: u64,
    /// Duration of one driver reconcile cycle. The zero default keeps
    /// reconciles instantaneous (the pre-async behavior).
    pub reconcile: LatencyModel,
    /// Duration of one controller reconcile cycle (mounter/syncer/
    /// policer). The zero default keeps controller cycles instantaneous
    /// and bit-identical to the legacy inline traces.
    pub controller_reconcile: LatencyModel,
    /// Apiserver-side admission latency for deferred controller batches —
    /// a separate stage from the write link, so the two delays are
    /// independently attributable.
    pub admission: LatencyModel,
    /// Run controllers through the async busy/dirty lifecycle (the
    /// default). Off restores the legacy inline processing; with the
    /// zero-latency defaults the two are bit-identical.
    pub async_controllers: bool,
    /// Pipelined wake delivery (the default). Off is the serial baseline:
    /// every in-flight controller cycle stalls wake delivery space-wide.
    pub pipelined_controllers: bool,
    /// Fan deferred plan phases (mounter/syncer planning, driver reconcile
    /// compute) out across the shard executor's worker lanes (the
    /// default). Off plans serially on the coordinator. Both modes leave
    /// bit-identical store dumps and traces at any thread count — this is
    /// purely a wall-clock knob.
    pub parallel_plan: bool,
    /// When set, deferred controller writes travel this link (with its
    /// full fault surface) instead of the controllers' wake link.
    pub controller_write: Option<dspace_simnet::Link>,
    /// Backoff schedule for driver→apiserver commits over faulty links.
    pub retry: RetryPolicy,
    /// Shard worker cap for the apiserver's batch paths. `0` keeps the
    /// process default (the `DSPACE_SHARD_THREADS` environment variable,
    /// or 1). Any setting yields bit-identical results — this is purely a
    /// wall-clock knob.
    pub threads: usize,
    /// Commit each controller pump cycle's writes as one `apply_batch`
    /// call (the default) instead of one serial verb per write. Both
    /// modes leave bit-identical store state — this too is purely a
    /// wall-clock knob.
    pub batch_controller_writes: bool,
    /// When set, the apiserver journals every commit to this WAL/checkpoint
    /// directory and recovers from it on open ([`Space::open`]). `None`
    /// (the default) keeps the store purely in-memory.
    pub durability: Option<DurabilityOptions>,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            links: LinkSet::default(),
            seed: 7,
            reconcile: LatencyModel::FixedMs(0.0),
            controller_reconcile: LatencyModel::FixedMs(0.0),
            admission: LatencyModel::FixedMs(0.0),
            async_controllers: true,
            pipelined_controllers: true,
            parallel_plan: true,
            controller_write: None,
            retry: RetryPolicy::default(),
            threads: 0,
            batch_controller_writes: true,
            durability: None,
        }
    }
}

/// Errors surfaced by [`Space`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// The apiserver rejected the request.
    Api(ApiError),
    /// A composition verb failed.
    Verb(VerbError),
    /// No digi with that name exists.
    UnknownDigi(String),
    /// The attribute spec could not be parsed (`"digi/attr"` expected).
    BadSpec(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::Api(e) => write!(f, "{e}"),
            SpaceError::Verb(e) => write!(f, "{e}"),
            SpaceError::UnknownDigi(n) => write!(f, "unknown digi: {n}"),
            SpaceError::BadSpec(s) => write!(f, "bad attribute spec: {s}"),
        }
    }
}

impl std::error::Error for SpaceError {}

impl From<ApiError> for SpaceError {
    fn from(e: ApiError) -> Self {
        SpaceError::Api(e)
    }
}

impl From<VerbError> for SpaceError {
    fn from(e: VerbError) -> Self {
        SpaceError::Verb(e)
    }
}

/// A running smart space: apiserver, controllers, digis, devices, and the
/// discrete-event clock.
pub struct Space {
    /// The event simulator.
    pub sim: Sim<World>,
    /// The runtime state.
    pub world: World,
    names: BTreeMap<String, ObjectRef>,
}

impl Default for Space {
    fn default() -> Self {
        Self::new(SpaceConfig::default())
    }
}

impl Space {
    /// The subject used for user-initiated operations.
    pub const USER: &'static str = "user";

    /// Creates a space. Panics if `config.durability` names a directory
    /// whose journal cannot be opened; use [`Space::open`] to handle that.
    pub fn new(config: SpaceConfig) -> Self {
        Self::open(config).expect("store recovery failed")
    }

    /// Creates a space, recovering durable state when
    /// `config.durability` is set. Digi models, revisions, graph edges,
    /// and Sync port claims come back; drivers and devices do not —
    /// re-attach them (by the same names) after opening.
    pub fn open(config: SpaceConfig) -> Result<Self, WalError> {
        let mut world = match config.durability {
            Some(opts) => World::open(config.links, config.seed, opts)?,
            None => World::new(config.links, config.seed),
        };
        world.set_reconcile_latency(config.reconcile);
        world.set_controller_reconcile_latency(config.controller_reconcile);
        world.set_admission_latency(config.admission);
        world.set_async_controllers(config.async_controllers);
        world.set_pipelined_controllers(config.pipelined_controllers);
        world.set_parallel_plan(config.parallel_plan);
        if let Some(link) = config.controller_write {
            for name in ["mounter", "syncer", "policer"] {
                world.set_controller_write_link(name, link.clone());
            }
        }
        world.set_retry_policy(config.retry);
        if config.threads > 0 {
            world.api.set_executor_threads(config.threads);
        }
        world.set_controller_batching(config.batch_controller_writes);
        // Recovered digis are addressable by name again (system objects
        // aren't digis and never enter the name table).
        let mut names = BTreeMap::new();
        for obj in world.api.dump() {
            if matches!(obj.oref.kind.as_str(), "Sync" | "Policy") {
                continue;
            }
            names.entry(obj.oref.name.clone()).or_insert(obj.oref);
        }
        Ok(Space {
            sim: Sim::new(),
            world,
            names,
        })
    }

    /// Forces a store checkpoint now (no-op on a non-durable space).
    pub fn checkpoint(&mut self) {
        self.world.api.checkpoint();
    }

    /// Registers a digi kind schema and widens the controllers' watch
    /// subscriptions to cover it.
    pub fn register_kind(&mut self, schema: KindSchema) {
        self.world.register_kind(schema);
    }

    /// Creates a digi of a registered kind in the `default` namespace and
    /// attaches its driver.
    ///
    /// Returns the digi's object reference. Names must be unique within
    /// the space.
    pub fn create_digi(
        &mut self,
        kind: &str,
        name: &str,
        driver: Driver,
    ) -> Result<ObjectRef, SpaceError> {
        self.create_digi_in(kind, "default", name, driver)
    }

    /// Creates a digi in an explicit namespace (multi-tenant spaces: each
    /// tenant's digis live in their own namespace shard, so one tenant's
    /// bursts never wake another's watchers).
    pub fn create_digi_in(
        &mut self,
        kind: &str,
        namespace: &str,
        name: &str,
        driver: Driver,
    ) -> Result<ObjectRef, SpaceError> {
        let schema = self
            .world
            .api
            .schema(kind)
            .ok_or_else(|| SpaceError::Api(ApiError::UnknownKind(kind.to_string())))?;
        let model = schema.new_model(name, namespace);
        let oref = ObjectRef::new(kind, namespace, name);
        // Widen controller subscriptions before the create commits, so
        // they observe the digi's `Added` event.
        self.world.ensure_namespace(namespace);
        self.world.api.create(ApiServer::ADMIN, &oref, model)?;
        self.world.add_driver(oref.clone(), driver);
        self.names.insert(name.to_string(), oref.clone());
        self.pump();
        Ok(oref)
    }

    /// Attaches a simulated device / data engine to a digi.
    pub fn attach_actuator(&mut self, oref: &ObjectRef, actuator: Box<dyn Actuator>) {
        self.world
            .attach_actuator(&mut self.sim, oref.clone(), actuator);
    }

    /// Resolves a digi name to its reference.
    pub fn resolve(&self, name: &str) -> Result<ObjectRef, SpaceError> {
        self.names
            .get(name)
            .cloned()
            .ok_or_else(|| SpaceError::UnknownDigi(name.to_string()))
    }

    fn split_spec<'a>(&self, spec: &'a str) -> Result<(ObjectRef, &'a str), SpaceError> {
        let (name, attr) = spec
            .split_once('/')
            .ok_or_else(|| SpaceError::BadSpec(spec.to_string()))?;
        Ok((self.resolve(name)?, attr))
    }

    // ----- Composition verbs (§3.2) ------------------------------------

    /// `mount(child, parent)` with a mode. Returns the created edge state
    /// (yielded when the child already had an active parent).
    pub fn mount(
        &mut self,
        child: &ObjectRef,
        parent: &ObjectRef,
        mode: MountMode,
    ) -> Result<EdgeState, SpaceError> {
        let graph = self.world.graph.borrow().clone();
        let st = verbs::mount(&mut self.world.api, &graph, Self::USER, child, parent, mode)?;
        self.pump();
        Ok(st)
    }

    /// Removes a mount.
    pub fn unmount(&mut self, child: &ObjectRef, parent: &ObjectRef) -> Result<(), SpaceError> {
        verbs::unmount(&mut self.world.api, Self::USER, child, parent)?;
        self.pump();
        Ok(())
    }

    /// Revokes the parent's write access over the child.
    pub fn yield_(&mut self, child: &ObjectRef, parent: &ObjectRef) -> Result<(), SpaceError> {
        verbs::yield_(&mut self.world.api, Self::USER, child, parent)?;
        self.pump();
        Ok(())
    }

    /// Restores the parent's write access over the child.
    pub fn unyield(&mut self, child: &ObjectRef, parent: &ObjectRef) -> Result<(), SpaceError> {
        verbs::unyield(&mut self.world.api, Self::USER, child, parent)?;
        self.pump();
        Ok(())
    }

    /// Creates a pipe (a `Sync` object) between two digidata attributes.
    pub fn pipe(
        &mut self,
        source: &ObjectRef,
        source_attr: &str,
        target: &ObjectRef,
        target_attr: &str,
    ) -> Result<ObjectRef, SpaceError> {
        let spec = SyncSpec {
            source: source.clone(),
            source_path: format!(".data.output.{source_attr}"),
            target: target.clone(),
            target_path: format!(".data.input.{target_attr}"),
        };
        let sref = verbs::pipe(&mut self.world.api, Self::USER, &spec)?;
        self.pump();
        Ok(sref)
    }

    /// Removes a pipe.
    pub fn unpipe(&mut self, sync: &ObjectRef) -> Result<(), SpaceError> {
        verbs::unpipe(&mut self.world.api, Self::USER, sync)?;
        self.pump();
        Ok(())
    }

    /// Installs a composition policy from its model document (see
    /// [`crate::policy::Policy`] for the shape).
    pub fn add_policy(&mut self, name: &str, model: Value) -> Result<ObjectRef, SpaceError> {
        let oref = ObjectRef::default_ns("Policy", name);
        self.world
            .api
            .client(Self::USER)
            .namespace("default")
            .create("Policy", name, model)?;
        self.pump();
        Ok(oref)
    }

    /// Adds (or reconfigures) an on-model reflex policy on a digi (§4.2).
    pub fn add_reflex(
        &mut self,
        target: &ObjectRef,
        name: &str,
        policy: &str,
        priority: i64,
    ) -> Result<(), SpaceError> {
        let body = dspace_value::object([
            ("policy", Value::from(policy)),
            ("priority", Value::from(priority as f64)),
            ("processor", Value::from("jq")),
        ]);
        self.world
            .api
            .patch_path(Self::USER, target, &format!(".reflex.{name}"), body)?;
        self.pump();
        Ok(())
    }

    // ----- User interaction ---------------------------------------------

    /// Issues an intent update from the user's CLI: `spec` is
    /// `"<digi>/<attr>"`. The write reaches the apiserver after the user
    /// link latency; this is the t₀ of a Figure-7 trial.
    pub fn set_intent(&mut self, spec: &str, value: Value) -> Result<(), SpaceError> {
        let (oref, attr) = self.split_spec(spec)?;
        let path = format!(".control.{attr}.intent");
        self.world.trace.push(
            self.sim.now(),
            TraceKind::UserIntent,
            oref.to_string(),
            path.clone(),
        );
        let delay = {
            let w = &mut self.world;
            w.links.user.clone().delay(256, &mut w.rng)
        };
        let value2 = value.clone();
        self.sim.schedule(delay, move |w: &mut World, sim| {
            if w.api
                .patch_path(Self::USER, &oref, &path, value2.clone())
                .is_ok()
            {
                w.trace
                    .push(sim.now(), TraceKind::Commit, oref.to_string(), path.clone());
            }
        });
        Ok(())
    }

    /// Sets an intent synchronously (test convenience; skips link latency).
    pub fn set_intent_now(&mut self, spec: &str, value: Value) -> Result<(), SpaceError> {
        let (oref, attr) = self.split_spec(spec)?;
        self.world
            .api
            .client(Self::USER)
            .namespace(&oref.namespace)
            .patch_path(
                &oref.kind,
                &oref.name,
                &format!(".control.{attr}.intent"),
                value,
            )?;
        self.pump();
        Ok(())
    }

    /// Reads `control.<attr>.status` of `"<digi>/<attr>"`.
    pub fn status(&self, spec: &str) -> Result<Value, SpaceError> {
        let (oref, attr) = self.split_spec(spec)?;
        self.read_oref(&oref, &format!(".control.{attr}.status"))
    }

    /// Reads `control.<attr>.intent` of `"<digi>/<attr>"`.
    pub fn intent(&self, spec: &str) -> Result<Value, SpaceError> {
        let (oref, attr) = self.split_spec(spec)?;
        self.read_oref(&oref, &format!(".control.{attr}.intent"))
    }

    /// Reads `obs.<attr>` of `"<digi>/<attr>"`.
    pub fn obs(&self, spec: &str) -> Result<Value, SpaceError> {
        let (oref, attr) = self.split_spec(spec)?;
        self.read_oref(&oref, &format!(".obs.{attr}"))
    }

    /// Reads an arbitrary model path of a digi by name.
    pub fn read(&self, name: &str, path: &str) -> Result<Value, SpaceError> {
        let oref = self.resolve(name)?;
        self.read_oref(&oref, path)
    }

    fn read_oref(&self, oref: &ObjectRef, path: &str) -> Result<Value, SpaceError> {
        Ok(self
            .world
            .api
            .reader(ApiServer::ADMIN)
            .namespace(&oref.namespace)
            .get_path(&oref.kind, &oref.name, path)?)
    }

    /// Deletes every digi in `namespace` (multi-tenant teardown): models
    /// are deleted one by one — watchers observe terminal `Deleted` events
    /// with the §3.5 guarantee intact — and the namespace's shard, drivers,
    /// devices, and mount edges are released. Returns the number of digis
    /// deleted.
    pub fn delete_namespace(&mut self, namespace: &str) -> Result<u64, SpaceError> {
        let deleted = self.world.delete_namespace(namespace)?;
        self.names.retain(|_, oref| oref.namespace != namespace);
        self.pump();
        Ok(deleted)
    }

    /// Injects a physical-world event on a digi (manual switch flip, etc.).
    pub fn physical_event(&mut self, name: &str, patch: Value) -> Result<(), SpaceError> {
        let oref = self.resolve(name)?;
        self.world.physical_event(&oref, patch, &self.sim);
        self.pump();
        Ok(())
    }

    // ----- Execution ----------------------------------------------------

    /// Schedules wakes for pending watch events (called automatically by
    /// the verbs; exposed for advanced drivers of the loop).
    pub fn pump(&mut self) {
        self.world.pump(&mut self.sim);
    }

    /// Executes one simulation event (plus notification pumping).
    pub fn step(&mut self) -> bool {
        let progressed = self.sim.step(&mut self.world);
        self.world.pump(&mut self.sim);
        progressed
    }

    /// Runs the space for `ms` milliseconds of virtual time.
    pub fn run_for_ms(&mut self, ms: u64) {
        self.run_for(millis(ms));
    }

    /// Runs the space for a virtual-time span, pumping watch notifications
    /// between every pair of events.
    pub fn run_for(&mut self, span: Time) {
        let deadline = self.sim.now().saturating_add(span);
        self.pump();
        while matches!(self.sim.next_at(), Some(t) if t <= deadline) {
            self.sim.step(&mut self.world);
            self.world.pump(&mut self.sim);
        }
        // Advance the clock to the deadline (no events remain before it).
        self.sim.run_until(&mut self.world, deadline);
    }

    /// Runs until no component has pending work and the event queue is
    /// quiet, up to `max_ms` of virtual time (devices with periodic ticks
    /// keep the queue non-empty, hence the bound).
    ///
    /// Returns as soon as the space is quiescent instead of burning the
    /// whole budget: if nothing is scheduled and no watcher has pending
    /// events, the clock stops where the last event left it.
    /// Periodic device ticks are *background* events: a queue that holds
    /// nothing but re-arming ticks counts as quiescent, so a space with
    /// polling devices settles as fast as one without.
    pub fn settle(&mut self, max_ms: u64) {
        let deadline = self.sim.now().saturating_add(millis(max_ms));
        self.pump();
        loop {
            if self.sim.foreground_pending() == 0 && !self.world.has_pending_work() {
                return; // Only background ticks (if anything) remain.
            }
            match self.sim.next_at() {
                Some(t) if t <= deadline => {
                    self.sim.step(&mut self.world);
                    self.world.pump(&mut self.sim);
                }
                // Foreground work exists but is past the horizon (or only
                // un-pumped watch events remain): burn out the budget.
                _ => break,
            }
        }
        self.sim.run_until(&mut self.world, deadline);
    }

    /// The current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.sim.now() as f64 / 1e6
    }
}

//! Structured runtime trace used by the evaluation harnesses.
//!
//! The Figure-7 experiment decomposes time-to-fulfillment into FPT
//! (forward propagation), DT (device actuation / data processing), and BPT
//! (backward propagation). The runtime appends [`TraceEntry`]s at the
//! relevant points; harnesses scan the trace to compute the components.

use dspace_simnet::Time;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// The user issued an intent update from the CLI.
    UserIntent,
    /// A model mutation committed on the apiserver.
    Commit,
    /// A digi driver ran a reconciliation cycle.
    DriverReconciled,
    /// A driver issued a device command.
    DeviceCommand,
    /// A device/data-engine actuation completed (its duration is in
    /// `detail` as fractional milliseconds).
    DeviceDone,
    /// The user's CLI observed a model update.
    UserObserved,
    /// A controller performed a composition action (mount/yield/...).
    Composition,
    /// A policy fired.
    PolicyFired,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Virtual timestamp.
    pub t: Time,
    /// Event kind.
    pub kind: TraceKind,
    /// The digi (or object) concerned, as `kind/ns/name`.
    pub subject: String,
    /// Free-form detail (attribute path, duration, reason).
    pub detail: String,
}

/// An append-only trace log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an entry.
    pub fn push(
        &mut self,
        t: Time,
        kind: TraceKind,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.entries.push(TraceEntry {
            t,
            kind,
            subject: subject.into(),
            detail: detail.into(),
        });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a TraceKind) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.kind == *kind)
    }

    /// First entry of `kind` for `subject` at or after `t0`.
    pub fn first_after(&self, kind: &TraceKind, subject: &str, t0: Time) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .find(|e| e.kind == *kind && e.subject == subject && e.t >= t0)
    }

    /// Last entry of `kind` for `subject`.
    pub fn last_of(&self, kind: &TraceKind, subject: &str) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.kind == *kind && e.subject == subject)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut tr = Trace::new();
        tr.push(
            10,
            TraceKind::UserIntent,
            "Lamp/default/l1",
            ".control.power.intent",
        );
        tr.push(20, TraceKind::DriverReconciled, "Lamp/default/l1", "");
        tr.push(30, TraceKind::DriverReconciled, "Lamp/default/l1", "");
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.of_kind(&TraceKind::DriverReconciled).count(), 2);
        assert_eq!(
            tr.first_after(&TraceKind::DriverReconciled, "Lamp/default/l1", 15)
                .unwrap()
                .t,
            20
        );
        assert_eq!(
            tr.last_of(&TraceKind::DriverReconciled, "Lamp/default/l1")
                .unwrap()
                .t,
            30
        );
        assert!(tr
            .first_after(&TraceKind::UserObserved, "Lamp/default/l1", 0)
            .is_none());
        tr.clear();
        assert!(tr.is_empty());
    }
}

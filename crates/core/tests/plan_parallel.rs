//! Bit-identity of the parallel plan phase: fanning deferred controller
//! planning and driver reconcile compute out across the shard executor's
//! worker lanes must leave the final clock, every counter, the full causal
//! trace, and the store dump bit-identical to the serial planner — at any
//! shard-thread cap, and under lossy links whose fault schedule is drawn
//! from the shared RNG (the draws must stay coordinator-side, in the same
//! order, whichever lane runs the plan compute).

use proptest::prelude::*;

use dspace_core::driver::{Driver, Filter};
use dspace_core::graph::MountMode;
use dspace_core::world::LinkSet;
use dspace_core::{Space, SpaceConfig};
use dspace_simnet::{LatencyModel, Link};
use dspace_value::{json, AttrType, KindSchema};

fn lamp_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Lamp")
        .control("brightness", AttrType::Number)
        .mounts("Lamp")
}

fn cam_schema() -> KindSchema {
    KindSchema::digidata("digi.dev", "v1", "Cam")
        .output("frames", AttrType::String)
        .obs("motion", AttrType::Bool)
}

fn scene_schema() -> KindSchema {
    KindSchema::digidata("digi.dev", "v1", "Scene").input("frames", AttrType::String)
}

fn ack_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "ack", |ctx| {
        let intent = ctx.digi().intent("brightness");
        if !intent.is_null() && intent != ctx.digi().status("brightness") {
            ctx.digi().set_status("brightness", intent);
        }
    });
    d
}

/// A scene exercising every plan venue: the mounter (mounted lamp pair),
/// the syncer (cam → scene pipe), the policer (motion policy — always
/// planned coordinator-side), and a driver with real reconcile compute.
fn build_scene(config: SpaceConfig) -> Space {
    let mut space = Space::new(config);
    space.register_kind(lamp_schema());
    space.register_kind(cam_schema());
    space.register_kind(scene_schema());
    let kid = space.create_digi("Lamp", "kid", ack_driver()).unwrap();
    let hub = space.create_digi("Lamp", "hub", Driver::new()).unwrap();
    let cam = space.create_digi("Cam", "cam", Driver::new()).unwrap();
    let sink = space.create_digi("Scene", "sink", Driver::new()).unwrap();
    space.settle(30_000);
    space.mount(&kid, &hub, MountMode::Expose).unwrap();
    space.pipe(&cam, "frames", &sink, "frames").unwrap();
    space
        .add_policy(
            "motion-lights",
            dspace_value::yaml::parse(
                r#"
meta: {kind: Policy, name: motion-lights, namespace: default}
spec:
  watch: ["Cam/default/cam"]
  condition: .cam.obs.motion == true
  on_rising:
    - {action: set-intent, target: Lamp/default/kid, attr: brightness, value: 1.0}
  on_falling:
    - {action: set-intent, target: Lamp/default/kid, attr: brightness, value: 0.25}
"#,
            )
            .unwrap(),
        )
        .unwrap();
    space.settle(30_000);
    space
}

fn drive(space: &mut Space, rounds: usize) {
    for i in 1..=rounds {
        space
            .set_intent_now("kid/brightness", (i as f64 / 100.0).into())
            .unwrap();
        space.settle(60_000);
        space
            .world
            .api
            .client(dspace_apiserver::ApiServer::ADMIN)
            .namespace("default")
            .patch_path(
                "Cam",
                "cam",
                ".data.output.frames",
                format!("frame-{i}").into(),
            )
            .unwrap();
        space.pump();
        space.settle(60_000);
        space
            .physical_event(
                "cam",
                dspace_value::json::parse(&format!(r#"{{"obs": {{"motion": {}}}}}"#, i % 2 == 1))
                    .unwrap(),
            )
            .unwrap();
        space.settle(60_000);
    }
}

/// Everything observable about one run. The parallel planner must leave
/// each field bit-identical to the serial planner: same counters (plan
/// timings are histograms, never counters), same trace in the same order,
/// same store bytes and resource versions, same final virtual clock.
#[derive(Debug, PartialEq)]
struct RunSummary {
    now_ms_bits: u64,
    counters: Vec<(String, u64)>,
    trace: Vec<(u64, String, String, String)>,
    store: Vec<(String, u64, String)>,
}

fn summarize(space: &Space) -> RunSummary {
    RunSummary {
        now_ms_bits: space.now_ms().to_bits(),
        counters: space
            .world
            .metrics
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        trace: space
            .world
            .trace
            .entries()
            .iter()
            .map(|e| {
                (
                    e.t,
                    format!("{:?}", e.kind),
                    e.subject.clone(),
                    e.detail.clone(),
                )
            })
            .collect(),
        store: space
            .world
            .api
            .dump()
            .into_iter()
            .map(|o| {
                (
                    o.oref.to_string(),
                    o.resource_version,
                    json::to_string(&o.model),
                )
            })
            .collect(),
    }
}

/// One full run under 5%-drop faults on BOTH fault surfaces: the driver
/// wake/commit link (dropped wakes retransmit after RTO, dropped commits
/// retry with backoff) and the deferred controller write link. Nonzero
/// reconcile/controller/admission latencies force every cycle through the
/// deferred plan → transmit → admit → land pipeline, so plan jobs really
/// run on worker lanes when `parallel` is on.
fn faulty_run(
    parallel: bool,
    threads: usize,
    seed: u64,
    drop_pct: u32,
    rounds: usize,
) -> RunSummary {
    let p = drop_pct as f64 / 100.0;
    let driver_link = Link::new("driver", LatencyModel::FixedMs(8.0))
        .with_jitter(LatencyModel::UniformMs(0.0, 4.0))
        .with_drop_probability(p);
    let write_link = Link::new("ctrl-write", LatencyModel::FixedMs(4.0))
        .with_jitter(LatencyModel::UniformMs(0.0, 3.0))
        .with_drop_probability(p);
    let mut space = build_scene(SpaceConfig {
        seed,
        parallel_plan: parallel,
        threads,
        links: LinkSet {
            driver: driver_link,
            ..LinkSet::default()
        },
        reconcile: LatencyModel::FixedMs(15.0),
        controller_reconcile: LatencyModel::FixedMs(10.0),
        admission: LatencyModel::FixedMs(1.0),
        controller_write: Some(write_link),
        ..SpaceConfig::default()
    });
    drive(&mut space, rounds);
    assert!(!space.world.has_pending_work(), "queue must quiesce");
    summarize(&space)
}

#[test]
fn parallel_plan_is_bit_identical_to_serial_under_faults() {
    // ISSUE acceptance: parallel-plan vs serial-plan store dump + trace
    // bit-identity at shard-thread caps 1 and max, under 5% drop faults.
    // The cap-1 leg is the degenerate-pool case (every job runs inline on
    // the coordinator, in queue order); the max leg actually spreads plan
    // jobs over worker lanes. Neither may perturb a single RNG draw, trace
    // entry, or store byte.
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let serial = faulty_run(false, 1, 7, 5, 8);
    assert!(
        serial
            .counters
            .iter()
            .any(|(k, v)| k == "wake_drops" && *v > 0)
            || serial
                .counters
                .iter()
                .any(|(k, v)| k.ends_with("_retries") && *v > 0),
        "the fault schedule must actually drop something"
    );
    for threads in [1, max] {
        let parallel = faulty_run(true, threads, 7, 5, 8);
        assert_eq!(
            serial, parallel,
            "parallel plan diverged from serial (threads={threads})"
        );
    }
    // And the serial planner itself must not care about the cap.
    let serial_max = faulty_run(false, max, 7, 5, 8);
    assert_eq!(serial, serial_max, "thread cap changed the serial run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the seed and drop rate, pooled planning replays the serial
    /// planner bit-for-bit at shard-thread caps 1 and max: same clock,
    /// counters, trace, and store. This is the guarantee that makes
    /// `parallel_plan` a pure wall-clock knob.
    #[test]
    fn parallel_plan_replays_serial_bit_identically(
        seed in 0u64..1_000_000,
        drop_pct in 0u32..=10,
    ) {
        let max = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let serial = faulty_run(false, 1, seed, drop_pct, 3);
        for threads in [1, max] {
            let parallel = faulty_run(true, threads, seed, drop_pct, 3);
            prop_assert_eq!(
                &serial,
                &parallel,
                "parallel plan diverged (threads={})",
                threads
            );
        }
    }
}

//! Failure injection: flaky devices, disconnects, rejected policy actions,
//! and write conflicts must degrade gracefully, never wedge the space.

use dspace_core::actuator::{Actuation, Actuator, EchoActuator};
use dspace_core::driver::{Driver, Filter};
use dspace_core::world::LinkSet;
use dspace_core::{Space, SpaceConfig};
use dspace_simnet::{millis, LatencyModel, Link, Rng, Time};
use dspace_value::{AttrType, KindSchema, Value};

/// Wraps an actuator; drops the first `drop_n` commands, reporting a
/// DISCONNECT observation instead (the Fig. 1b `obs.reason` field).
struct FlakyActuator {
    inner: EchoActuator,
    drop_n: usize,
    dropped: usize,
}

impl FlakyActuator {
    fn new(inner: EchoActuator, drop_n: usize) -> Self {
        FlakyActuator {
            inner,
            drop_n,
            dropped: 0,
        }
    }
}

impl Actuator for FlakyActuator {
    fn name(&self) -> &str {
        "flaky-device"
    }

    fn actuate(&mut self, now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        if self.dropped < self.drop_n {
            self.dropped += 1;
            let mut patch = dspace_value::obj();
            patch
                .set(&".obs.reason".parse().unwrap(), "DISCONNECT".into())
                .unwrap();
            return vec![Actuation::new(millis(50), patch)];
        }
        self.inner.actuate(now, cmd, rng)
    }
}

fn lamp_space(drop_n: usize) -> Space {
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Lamp")
            .control("power", AttrType::String)
            .obs("reason", AttrType::String),
    );
    let mut d = Driver::new();
    d.on(Filter::any(), 0, "actuate", |ctx| {
        let intent = ctx.digi().intent("power");
        if !intent.is_null() && intent != ctx.digi().status("power") {
            ctx.device(dspace_value::object([("power", intent)]));
        }
    });
    let lamp = space.create_digi("Lamp", "l1", d).unwrap();
    space.attach_actuator(
        &lamp,
        Box::new(FlakyActuator::new(
            EchoActuator::new("echo", millis(300)),
            drop_n,
        )),
    );
    space
}

#[test]
fn dropped_command_surfaces_disconnect_and_recovers_on_retry() {
    let mut space = lamp_space(1);
    space.set_intent("l1/power", "on".into()).unwrap();
    // Shortly after the drop: no status yet, but the disconnect
    // observation reached the model (and would reach any parent replica).
    space.run_for_ms(200);
    assert!(space.status("l1/power").unwrap().is_null());
    assert_eq!(space.obs("l1/reason").unwrap().as_str(), Some("DISCONNECT"));
    // The driver's next reconciliation (triggered by the obs change) sees
    // intent != status and re-issues the command; the device now works.
    space.run_for_ms(5_000);
    assert_eq!(space.status("l1/power").unwrap().as_str(), Some("on"));
}

#[test]
fn repeated_drops_eventually_converge() {
    let mut space = lamp_space(3);
    space.set_intent("l1/power", "on".into()).unwrap();
    // Each DISCONNECT observation retriggers the reconcile loop.
    space.run_for_ms(10_000);
    assert_eq!(space.status("l1/power").unwrap().as_str(), Some("on"));
}

#[test]
fn policy_with_failing_action_reports_and_continues() {
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Sensor").obs("alarm", AttrType::Bool),
    );
    let sensor = space.create_digi("Sensor", "s1", Driver::new()).unwrap();
    // The policy references a digi that does not exist; firing must log a
    // failure, not crash the policer.
    space
        .add_policy(
            "bad-action",
            dspace_value::yaml::parse(
                "
meta: {kind: Policy, name: bad-action, namespace: default}
spec:
  watch: [\"Sensor/default/s1\"]
  condition: .s1.obs.alarm == true
  on_rising:
    - {action: unmount, child: Lamp/default/ghost, parent: Room/default/ghost}
",
            )
            .unwrap(),
        )
        .unwrap();
    space.run_for_ms(500);
    space.world.physical_event(
        &sensor,
        dspace_value::json::parse(r#"{"obs": {"alarm": true}}"#).unwrap(),
        &space.sim,
    );
    space.pump();
    space.run_for_ms(2_000);
    let failures: Vec<_> = space
        .world
        .trace
        .entries()
        .iter()
        .filter(|e| e.detail.contains("action failed"))
        .collect();
    assert_eq!(failures.len(), 1, "failure should be traced once");
    // The policer is still alive: clearing and re-raising fires again.
    space.world.physical_event(
        &sensor,
        dspace_value::json::parse(r#"{"obs": {"alarm": false}}"#).unwrap(),
        &space.sim,
    );
    space.pump();
    space.run_for_ms(1_000);
    space.world.physical_event(
        &sensor,
        dspace_value::json::parse(r#"{"obs": {"alarm": true}}"#).unwrap(),
        &space.sim,
    );
    space.pump();
    space.run_for_ms(1_000);
    let failures = space
        .world
        .trace
        .entries()
        .iter()
        .filter(|e| e.detail.contains("action failed"))
        .count();
    assert_eq!(failures, 2);
}

#[test]
fn dropped_wake_reenters_shortlist_and_retransmits_after_rto() {
    // Regression for the pump's `Delivery::Dropped` arm: a slot whose wake
    // notification the link loses must re-enter `pending_slots` and be
    // retransmitted after the link's RTO — it cannot stay wedged with
    // `woken` set while events sit in its watch queue. An outage window
    // (rather than a drop probability) forces the drop, so no RNG draws
    // are consumed and the timeline below is exact.
    let driver_link = Link::new("driver", LatencyModel::FixedMs(8.0)).with_outage(0, millis(5));
    assert_eq!(
        driver_link.rto(),
        millis(16),
        "RTO is twice the 8 ms mean latency"
    );
    let mut space = Space::new(SpaceConfig {
        links: LinkSet {
            driver: driver_link,
            ..LinkSet::default()
        },
        ..SpaceConfig::default()
    });
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Lamp").control("power", AttrType::String),
    );
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "ack", |ctx| {
        let intent = ctx.digi().intent("power");
        if !intent.is_null() && intent != ctx.digi().status("power") {
            ctx.digi().set_status("power", intent);
        }
    });
    space.create_digi("Lamp", "l1", d).unwrap();
    space.set_intent_now("l1/power", "on".into()).unwrap();
    space.pump();

    // The wake was offered at t = 0, inside the outage: dropped and
    // counted once, against both the global and the per-slot key.
    assert_eq!(space.world.metrics.counter("wake_drops"), 1);
    assert_eq!(space.world.metrics.counter("wake_drops:driver:l1"), 1);

    // Before the RTO fires nothing can reach the driver — the only copy
    // of the wake was lost with the link down.
    space.run_for_ms(10);
    assert!(
        space.status("l1/power").unwrap().is_null(),
        "no delivery may happen before the RTO retransmit"
    );

    // The RTO closure at 16 ms clears `woken`, re-adds the slot to the
    // shortlist, and re-pumps; the outage is over, so the retransmit
    // arrives after the 8 ms link latency and the driver reconciles.
    space.run_for_ms(1_000);
    assert_eq!(space.status("l1/power").unwrap().as_str(), Some("on"));
    assert_eq!(
        space.world.metrics.counter("wake_drops"),
        1,
        "exactly one drop: the retransmit itself must get through"
    );
    assert!(!space.world.has_pending_work());
}

#[test]
fn conflicting_writers_converge_via_occ() {
    // Two "controllers" (the user and the device) hammer the same model;
    // the driver's OCC-based reconcile must converge without losing the
    // final intent, and conflicts are counted, not fatal.
    let mut space = lamp_space(0);
    for i in 0..20 {
        let v = if i % 2 == 0 { "on" } else { "off" };
        space.set_intent("l1/power", v.into()).unwrap();
        space.run_for_ms(40); // Deliberately shorter than actuation time.
    }
    space.run_for_ms(8_000);
    // Final intent was "off" (i = 19); the device settled there.
    assert_eq!(space.intent("l1/power").unwrap().as_str(), Some("off"));
    assert_eq!(space.status("l1/power").unwrap().as_str(), Some("off"));
}

#[test]
fn deleting_a_mounted_child_is_survivable() {
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Lamp").control("power", AttrType::String),
    );
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Room")
            .control("brightness", AttrType::Number)
            .mounts("Lamp"),
    );
    let lamp = space.create_digi("Lamp", "l1", Driver::new()).unwrap();
    let room = space.create_digi("Room", "r1", Driver::new()).unwrap();
    space
        .mount(&lamp, &room, dspace_core::graph::MountMode::Expose)
        .unwrap();
    space.run_for_ms(1_000);
    // The digi disappears (e.g. decommissioned) while still mounted.
    space
        .world
        .api
        .delete(dspace_apiserver::ApiServer::ADMIN, &lamp)
        .unwrap();
    space.pump();
    space.run_for_ms(2_000);
    // The runtime keeps going; the parent still exists and further writes
    // to the room work.
    space.set_intent_now("r1/brightness", 0.4.into()).unwrap();
    space.run_for_ms(1_000);
    assert_eq!(space.intent("r1/brightness").unwrap().as_f64(), Some(0.4));
}

//! End-to-end tests of the asynchronous, failure-aware reconcile path:
//! reconciles take simulated wall-clock time, writes landing mid-reconcile
//! coalesce into exactly one follow-up cycle, and driver↔apiserver traffic
//! survives lossy/jittery links through retries — deterministically.

use proptest::prelude::*;

use dspace_core::driver::{Driver, Filter};
use dspace_core::world::LinkSet;
use dspace_core::{Space, SpaceConfig};
use dspace_simnet::{LatencyModel, Link};
use dspace_value::json;

fn lamp_schema() -> dspace_value::KindSchema {
    dspace_value::KindSchema::digivice("digi.dev", "v1", "Lamp")
        .control("brightness", dspace_value::AttrType::Number)
}

/// A driver that acknowledges intent by writing status into its own model —
/// every reconcile that observes an unmet intent produces a commit, so the
/// driver→apiserver link actually carries write traffic (unlike the
/// device-effect-only drivers in `space_e2e`).
fn ack_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "ack", |ctx| {
        let intent = ctx.digi().intent("brightness");
        if !intent.is_null() && intent != ctx.digi().status("brightness") {
            ctx.digi().set_status("brightness", intent);
        }
    });
    d
}

fn build(config: SpaceConfig) -> Space {
    let mut space = Space::new(config);
    space.register_kind(lamp_schema());
    space.create_digi("Lamp", "solo", ack_driver()).unwrap();
    space.settle(10_000);
    space
}

/// Steps the simulation until the named driver is mid-reconcile.
fn step_until_busy(space: &mut Space, name: &str) {
    let mut guard = 0u32;
    while !space.world.driver_busy(name) {
        assert!(space.step(), "sim drained before {name} went busy");
        guard += 1;
        assert!(guard < 100_000, "driver {name} never went busy");
    }
}

/// Commits `n` brightness patches back-to-back (no pumping in between),
/// like a chatty controller writing faster than the driver's link.
fn admin_burst(space: &mut Space, n: usize) {
    for i in 0..n {
        space
            .world
            .api
            .client(dspace_apiserver::ApiServer::ADMIN)
            .namespace("default")
            .patch_path(
                "Lamp",
                "solo",
                ".control.brightness.intent",
                (i as f64 / n as f64).into(),
            )
            .unwrap();
    }
    space.pump();
}

#[test]
fn burst_while_busy_lands_as_one_followup_cycle() {
    // A 100-patch burst arriving while the driver is mid-reconcile must be
    // absorbed by the dirty bit and re-polled through the coalescer: ONE
    // follow-up cycle carrying one snapshot that accounts for all 100 raw
    // events (tentpole acceptance criterion, clean-link variant).
    let mut space = build(SpaceConfig {
        reconcile: LatencyModel::FixedMs(50.0),
        ..SpaceConfig::default()
    });
    let deliveries0 = space.world.metrics.counter("driver_deliveries");
    let coalesced0 = space.world.metrics.counter("driver_coalesced_events");

    space.set_intent_now("solo/brightness", 0.5.into()).unwrap();
    step_until_busy(&mut space, "solo");
    admin_burst(&mut space, 100);
    space.settle(30_000);

    assert_eq!(
        space.world.metrics.counter("driver_followup_cycles"),
        1,
        "burst mid-reconcile must land as exactly one follow-up cycle"
    );
    // Cycle 1 (intent 0.5) + follow-up (coalesced burst) + echo of the
    // follow-up's successful commit.
    assert_eq!(
        space.world.metrics.counter("driver_deliveries") - deliveries0,
        3
    );
    assert_eq!(
        space.world.metrics.counter("driver_coalesced_events") - coalesced0,
        99,
        "burst snapshot must account for all 100 raw events"
    );
    // Cycle 1's commit was built against the pre-burst snapshot; OCC must
    // reject it rather than clobber the burst.
    assert_eq!(space.world.metrics.counter("reconcile_conflicts"), 1);
    assert_eq!(
        space.status("solo/brightness").unwrap().as_f64(),
        Some(0.99),
        "follow-up reconcile must converge on the newest intent"
    );
    assert!(!space.world.has_pending_work());
}

#[test]
fn reconcile_duration_is_observable_and_zero_by_default() {
    // Default config keeps reconciles instantaneous (legacy behavior);
    // a LatencyModel stretches them and records the reconcile_ms histogram.
    let mut fast = build(SpaceConfig::default());
    fast.set_intent_now("solo/brightness", 0.3.into()).unwrap();
    assert!(!fast.world.driver_busy("solo"));
    fast.settle(10_000);
    let h = fast.world.metrics.histogram("reconcile_ms").unwrap();
    assert!(h.mean().abs() < f64::EPSILON, "mean={}", h.mean());

    let mut slow = build(SpaceConfig {
        reconcile: LatencyModel::FixedMs(25.0),
        ..SpaceConfig::default()
    });
    slow.set_intent_now("solo/brightness", 0.3.into()).unwrap();
    step_until_busy(&mut slow, "solo");
    slow.settle(10_000);
    let h = slow.world.metrics.histogram("reconcile_ms").unwrap();
    assert!((h.mean() - 25.0).abs() < 1e-9, "mean={}", h.mean());
    assert_eq!(slow.status("solo/brightness").unwrap().as_f64(), Some(0.3));
}

/// Everything observable about one faulty-link run, for bit-identical
/// same-seed comparison.
#[derive(Debug, PartialEq)]
struct RunSummary {
    status: String,
    intent: String,
    now_ms_bits: u64,
    followup_cycles: u64,
    retries: u64,
    gave_up: u64,
    wake_drops: u64,
    deliveries: u64,
    coalesced: u64,
    conflicts: u64,
    store: Vec<(String, u64, String)>,
}

fn faulty_links() -> LinkSet {
    LinkSet {
        driver: Link::new("driver", LatencyModel::FixedMs(8.0))
            .with_jitter(LatencyModel::UniformMs(0.0, 6.0))
            .with_drop_probability(0.05),
        ..LinkSet::default()
    }
}

/// The ISSUE acceptance scenario: a 5%-drop jittered driver link, a warm-up
/// of sequential intents (each a commit over the lossy link), then a
/// 100-patch burst injected mid-reconcile.
fn faulty_run(seed: u64) -> RunSummary {
    let mut space = build(SpaceConfig {
        links: faulty_links(),
        seed,
        reconcile: LatencyModel::FixedMs(50.0),
        ..SpaceConfig::default()
    });
    for i in 1..=12 {
        space
            .set_intent_now("solo/brightness", (i as f64 / 100.0).into())
            .unwrap();
        space.settle(30_000);
    }
    let followups0 = space.world.metrics.counter("driver_followup_cycles");
    space.set_intent_now("solo/brightness", 0.5.into()).unwrap();
    step_until_busy(&mut space, "solo");
    admin_burst(&mut space, 100);
    space.settle(60_000);

    let m = &space.world.metrics;
    RunSummary {
        status: json::to_string(&space.status("solo/brightness").unwrap()),
        intent: json::to_string(&space.intent("solo/brightness").unwrap()),
        now_ms_bits: space.now_ms().to_bits(),
        followup_cycles: m.counter("driver_followup_cycles") - followups0,
        retries: m.counter("driver_retries"),
        gave_up: m.counter("driver_gave_up"),
        wake_drops: m.counter("wake_drops"),
        deliveries: m.counter("driver_deliveries"),
        coalesced: m.counter("driver_coalesced_events"),
        conflicts: m.counter("reconcile_conflicts"),
        store: space
            .world
            .api
            .dump()
            .into_iter()
            .map(|o| {
                (
                    o.oref.to_string(),
                    o.resource_version,
                    json::to_string(&o.model),
                )
            })
            .collect(),
    }
}

#[test]
fn faulty_link_burst_converges_with_retries_and_is_deterministic() {
    // ISSUE acceptance: 5%-drop jittered driver link, 100-patch burst
    // mid-reconcile → converges to the final intent with exactly one
    // coalesced follow-up cycle, driver_retries > 0, driver_gave_up == 0,
    // and the whole run is bit-identical across two same-seed executions.
    let a = faulty_run(7);
    assert_eq!(a.status, "0.99", "must converge on the final burst intent");
    assert_eq!(a.intent, "0.99");
    assert_eq!(
        a.followup_cycles, 1,
        "burst mid-reconcile must land as exactly one follow-up cycle"
    );
    assert!(
        a.retries > 0,
        "lossy link must have forced at least one retry"
    );
    assert_eq!(a.gave_up, 0, "retry budget must absorb a 5% drop rate");

    let b = faulty_run(7);
    assert_eq!(a, b, "same seed must replay bit-identically");

    // A different seed draws a different fault schedule (timing differs)
    // but reaches the same fixed point.
    let c = faulty_run(8);
    assert_eq!(c.status, "0.99");
    assert_eq!(c.gave_up, 0);
    assert_ne!(a.now_ms_bits, c.now_ms_bits, "seeds should diverge in time");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the fault schedule — drop rate up to 25%, jitter, slow
    /// reconciles, arbitrary burst sizes — the driver converges on the
    /// final intent without exhausting its retry budget, and the event
    /// queue quiesces.
    #[test]
    fn reconcile_converges_under_random_faults(
        seed in 0u64..1_000_000,
        drop_pct in 0u32..=25,
        jitter_ms in 0u32..=10,
        reconcile_ms in 0u32..=80,
        burst in 1usize..=120,
    ) {
        let mut driver_link = Link::new("driver", LatencyModel::FixedMs(8.0))
            .with_drop_probability(drop_pct as f64 / 100.0);
        if jitter_ms > 0 {
            driver_link =
                driver_link.with_jitter(LatencyModel::UniformMs(0.0, jitter_ms as f64));
        }
        let mut space = build(SpaceConfig {
            links: LinkSet { driver: driver_link, ..LinkSet::default() },
            seed,
            reconcile: LatencyModel::FixedMs(reconcile_ms as f64),
            ..SpaceConfig::default()
        });
        admin_burst(&mut space, burst);
        space.settle(120_000);

        let want = (burst - 1) as f64 / burst as f64;
        prop_assert_eq!(space.status("solo/brightness").unwrap().as_f64(), Some(want));
        prop_assert_eq!(space.world.metrics.counter("driver_gave_up"), 0);
        prop_assert!(!space.world.has_pending_work(), "queue must quiesce");
    }
}

//! End-to-end tests of the Space runtime: user intent → apiserver → mounter
//! → driver → device → status propagation back up the hierarchy.

use dspace_core::actuator::EchoActuator;
use dspace_core::driver::{Driver, Filter};
use dspace_core::graph::MountMode;
use dspace_core::trace::TraceKind;
use dspace_core::{Space, SpaceConfig};
use dspace_simnet::millis;
use dspace_value::{AttrType, KindSchema, Value};

fn lamp_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Lamp")
        .control("power", AttrType::String)
        .control("brightness", AttrType::Number)
}

fn room_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Room")
        .control("brightness", AttrType::Number)
        .mounts("Lamp")
}

/// A leaf lamp driver: forwards intents to the device, acknowledges status.
fn lamp_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "actuate", |ctx| {
        for attr in ["power", "brightness"] {
            let intent = ctx.digi().intent(attr);
            let status = ctx.digi().status(attr);
            if !intent.is_null() && intent != status {
                ctx.device(dspace_value::object([(attr, intent)]));
            }
        }
    });
    d
}

/// A room driver: propagates room brightness to every mounted lamp and
/// aggregates lamp statuses into the room status.
fn room_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::any(), 0, "reconcile", |ctx| {
        let target = ctx.digi().intent("brightness");
        let names = ctx.digi().mounted_names("Lamp");
        // Southbound: set each lamp's intent through its replica.
        if let Some(t) = target.as_f64() {
            for n in &names {
                let cur = ctx.digi().replica("Lamp", n, ".control.brightness.intent");
                if cur.as_f64() != Some(t) {
                    ctx.digi()
                        .set_replica("Lamp", n, ".control.brightness.intent", t.into());
                }
            }
        }
        // Northbound: room status = mean of lamp statuses.
        let mut sum = 0.0;
        let mut count = 0.0;
        for n in &names {
            if let Some(b) = ctx
                .digi()
                .replica("Lamp", n, ".control.brightness.status")
                .as_f64()
            {
                sum += b;
                count += 1.0;
            }
        }
        if count > 0.0 {
            let mean = sum / count;
            if ctx.digi().status("brightness").as_f64() != Some(mean) {
                ctx.digi().set_status("brightness", mean.into());
            }
        }
    });
    d
}

fn build_room_with_lamps(n: usize) -> (Space, Vec<dspace_apiserver::ObjectRef>) {
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(lamp_schema());
    space.register_kind(room_schema());
    let room = space.create_digi("Room", "room", room_driver()).unwrap();
    let mut lamps = Vec::new();
    for i in 0..n {
        let name = format!("lamp{i}");
        let lamp = space.create_digi("Lamp", &name, lamp_driver()).unwrap();
        space.attach_actuator(&lamp, Box::new(EchoActuator::new("echo-lamp", millis(400))));
        space.mount(&lamp, &room, MountMode::Expose).unwrap();
        lamps.push(lamp);
    }
    space.run_for_ms(2_000); // Let replicas initialize.
    (space, lamps)
}

#[test]
fn lamp_intent_reaches_device_and_status_returns() {
    let (mut space, _lamps) = build_room_with_lamps(1);
    space.set_intent("lamp0/power", "on".into()).unwrap();
    space.run_for_ms(3_000);
    assert_eq!(space.status("lamp0/power").unwrap().as_str(), Some("on"));
    // The trace shows the full causal chain.
    let trace = &space.world.trace;
    assert!(trace.of_kind(&TraceKind::UserIntent).count() >= 1);
    assert!(trace.of_kind(&TraceKind::DeviceCommand).count() >= 1);
    assert!(trace.of_kind(&TraceKind::DeviceDone).count() >= 1);
    // Device time was recorded.
    let dt = space.world.metrics.histogram("dt_ms:lamp0").unwrap();
    assert!(dt.mean() >= 399.0 && dt.mean() <= 401.0, "dt={}", dt.mean());
}

#[test]
fn room_brightness_fans_out_to_all_lamps() {
    let (mut space, _lamps) = build_room_with_lamps(3);
    space.set_intent("room/brightness", 0.8.into()).unwrap();
    space.run_for_ms(5_000);
    for i in 0..3 {
        assert_eq!(
            space
                .status(&format!("lamp{i}/brightness"))
                .unwrap()
                .as_f64(),
            Some(0.8),
            "lamp{i} did not converge"
        );
    }
    // Room status aggregates back (within float rounding of the mean).
    let room_status = space.status("room/brightness").unwrap().as_f64().unwrap();
    assert!(
        (room_status - 0.8).abs() < 1e-9,
        "room status {room_status}"
    );
}

#[test]
fn adding_a_lamp_later_converges_to_room_intent() {
    let (mut space, _lamps) = build_room_with_lamps(2);
    space.set_intent("room/brightness", 0.5.into()).unwrap();
    space.run_for_ms(5_000);
    // A third lamp joins (S1's "later, the user adds L3").
    let lamp = space
        .create_digi("Lamp", "lamp-late", lamp_driver())
        .unwrap();
    space.attach_actuator(&lamp, Box::new(EchoActuator::new("echo-lamp", millis(400))));
    let room = space.resolve("room").unwrap();
    space.mount(&lamp, &room, MountMode::Expose).unwrap();
    space.run_for_ms(5_000);
    assert_eq!(
        space.status("lamp-late/brightness").unwrap().as_f64(),
        Some(0.5)
    );
}

#[test]
fn physical_event_flows_northbound_to_parent_replica() {
    let (mut space, lamps) = build_room_with_lamps(1);
    // Someone flips the physical switch: status + the lamp's own intent
    // change from the device side (S2's setup).
    space
        .physical_event(
            "lamp0",
            dspace_value::json::parse(
                r#"{"control": {"power": {"intent": "off", "status": "off"}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
    space.run_for_ms(2_000);
    // The room's replica of the lamp saw both fields.
    let replica_status = space
        .read("room", ".mount.Lamp.lamp0.control.power.status")
        .unwrap();
    assert_eq!(replica_status.as_str(), Some("off"));
    let replica_intent = space
        .read("room", ".mount.Lamp.lamp0.control.power.intent")
        .unwrap();
    assert_eq!(replica_intent.as_str(), Some("off"));
    drop(lamps);
}

#[test]
fn yielded_parent_cannot_write_but_still_reads() {
    let (mut space, lamps) = build_room_with_lamps(1);
    let room = space.resolve("room").unwrap();
    space.yield_(&lamps[0], &room).unwrap();
    space.run_for_ms(1_000);
    // Parent sets room brightness; the lamp must NOT move.
    space.set_intent("room/brightness", 0.9.into()).unwrap();
    space.run_for_ms(4_000);
    assert_ne!(
        space.intent("lamp0/brightness").unwrap().as_f64(),
        Some(0.9)
    );
    // But status still flows northbound into the replica.
    space
        .physical_event(
            "lamp0",
            dspace_value::json::parse(r#"{"control": {"power": {"status": "on"}}}"#).unwrap(),
        )
        .unwrap();
    space.run_for_ms(2_000);
    assert_eq!(
        space
            .read("room", ".mount.Lamp.lamp0.control.power.status")
            .unwrap()
            .as_str(),
        Some("on")
    );
}

#[test]
fn reflex_added_at_runtime_changes_behaviour() {
    let (mut space, lamps) = build_room_with_lamps(1);
    // Fig. 3's motion-brightness policy, adapted to the lamp digi.
    space
        .add_reflex(
            &lamps[0],
            "motion-brightness",
            "if $time - (.obs.last_motion // 0) <= 600 \
             then .control.brightness.intent = 1 else . end",
            1,
        )
        .unwrap();
    space.run_for_ms(1_000);
    // Motion observed "now": the reflex raises the intent to 1.
    let now_s = space.now_ms() / 1000.0;
    space
        .physical_event(
            "lamp0",
            dspace_value::object([(
                "obs",
                dspace_value::object([("last_motion", Value::from(now_s))]),
            )]),
        )
        .unwrap();
    space.run_for_ms(3_000);
    assert_eq!(
        space.intent("lamp0/brightness").unwrap().as_f64(),
        Some(1.0)
    );
    assert_eq!(
        space.status("lamp0/brightness").unwrap().as_f64(),
        Some(1.0)
    );
}

#[test]
fn trace_supports_fpt_dt_decomposition() {
    let (mut space, _lamps) = build_room_with_lamps(1);
    space.world.trace.clear();
    let t0 = space.sim.now();
    space.set_intent("lamp0/power", "on".into()).unwrap();
    space.run_for_ms(3_000);
    let trace = &space.world.trace;
    let intent = trace
        .first_after(&TraceKind::UserIntent, "Lamp/default/lamp0", t0)
        .expect("user intent traced");
    let cmd = trace
        .first_after(&TraceKind::DeviceCommand, "Lamp/default/lamp0", t0)
        .expect("device command traced");
    let done = trace
        .first_after(&TraceKind::DeviceDone, "Lamp/default/lamp0", t0)
        .expect("device done traced");
    let observed = trace
        .entries()
        .iter()
        .find(|e| {
            e.kind == TraceKind::UserObserved
                && e.subject == "Lamp/default/lamp0"
                && e.detail.contains(".control.power.status")
        })
        .expect("user observed status");
    // Causal ordering: intent -> command -> done -> observed.
    assert!(intent.t <= cmd.t, "intent after command");
    assert!(cmd.t < done.t, "command after completion");
    assert!(done.t < observed.t, "completion after user observation");
    // FPT (intent to command) is link latency, far below device time.
    let fpt = (cmd.t - intent.t) as f64 / 1e6;
    let dt = (done.t - cmd.t) as f64 / 1e6;
    assert!(fpt > 0.0 && fpt < 100.0, "fpt={fpt}ms");
    assert!((399.0..=401.0).contains(&dt), "dt={dt}ms");
}

#[test]
fn drivers_receive_no_foreign_events() {
    // With per-object watch subscriptions, a busy multi-digi space never
    // delivers one digi's events to another digi's driver.
    let (mut space, _lamps) = build_room_with_lamps(4);
    space.set_intent("room/brightness", 0.6.into()).unwrap();
    space.run_for_ms(6_000);
    // Plenty of cross-digi traffic happened...
    assert_eq!(
        space.status("lamp0/brightness").unwrap().as_f64(),
        Some(0.6)
    );
    // ...but no driver ever saw an event for a model other than its own.
    assert_eq!(
        space.world.metrics.counter("driver_foreign_events"),
        0,
        "drivers must only receive their own model's events"
    );
}

#[test]
fn controllers_receive_no_foreign_events() {
    // Controller subscriptions are narrowed to the kinds they own: the
    // syncer never sees Policy objects, the policer never sees Sync
    // objects, and the mounter sees neither — even in a space where both
    // system kinds exist and plenty of digi traffic flows.
    let (mut space, lamps) = build_room_with_lamps(2);
    // A Sync object (pipe) and a Policy object both get created and
    // updated while digis churn.
    let room = space.resolve("room").unwrap();
    space.pipe(&lamps[0], "ignored", &room, "ignored").unwrap();
    space
        .add_policy(
            "lamp-policy",
            dspace_value::json::parse(
                r#"{"meta": {"kind": "Policy", "name": "lamp-policy", "namespace": "default"},
                    "spec": {"target": {"kind": "Lamp"}, "mode": "expose"}}"#,
            )
            .unwrap(),
        )
        .unwrap();
    space.set_intent("room/brightness", 0.7.into()).unwrap();
    space.run_for_ms(6_000);
    for counter in [
        "mounter_foreign_events",
        "syncer_foreign_events",
        "policer_foreign_events",
        "driver_foreign_events",
    ] {
        assert_eq!(
            space.world.metrics.counter(counter),
            0,
            "{counter} must stay zero with narrowed subscriptions"
        );
    }
}

#[test]
fn burst_is_coalesced_into_one_driver_wake() {
    // A 100-mutation burst committed between two driver wakes must yield
    // exactly ONE delivery at the driver, carrying the newest snapshot and
    // accounting for all 100 raw events (ISSUE 2 acceptance criterion).
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(lamp_schema());
    let lamp = space.create_digi("Lamp", "solo", lamp_driver()).unwrap();
    space.settle(5_000);
    let deliveries_before = space.world.metrics.counter("driver_deliveries");
    // Commit the burst synchronously — no pumping in between, like a
    // chatty parent or sensor writing faster than the driver's link.
    for i in 0..100 {
        space
            .world
            .api
            .client(dspace_apiserver::ApiServer::ADMIN)
            .namespace("default")
            .patch_path(
                &lamp.kind,
                &lamp.name,
                ".control.brightness.intent",
                (i as f64 / 100.0).into(),
            )
            .unwrap();
    }
    space.settle(5_000);
    let deliveries = space.world.metrics.counter("driver_deliveries") - deliveries_before;
    assert_eq!(deliveries, 1, "burst must collapse to one delivery");
    assert_eq!(
        space.world.metrics.counter("driver_coalesced_events"),
        99,
        "all 100 raw events accounted for in one delivery"
    );
    // The driver reconciled against the newest snapshot.
    assert_eq!(
        space.intent("solo/brightness").unwrap().as_f64(),
        Some(0.99)
    );
}

#[test]
fn digis_in_separate_namespaces_converge_without_cross_talk() {
    // Two tenants, one namespace each. Both converge, and the apiserver
    // confirms the tenants' event logs lived in separate shards.
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(lamp_schema());
    for ns in ["tenant-a", "tenant-b"] {
        let name = format!("lamp-{ns}");
        let lamp = space
            .create_digi_in("Lamp", ns, &name, lamp_driver())
            .unwrap();
        space.attach_actuator(&lamp, Box::new(EchoActuator::new("echo-lamp", millis(400))));
    }
    space
        .set_intent("lamp-tenant-a/power", "on".into())
        .unwrap();
    space
        .set_intent("lamp-tenant-b/power", "on".into())
        .unwrap();
    space.run_for_ms(3_000);
    for ns in ["tenant-a", "tenant-b"] {
        assert_eq!(
            space.status(&format!("lamp-{ns}/power")).unwrap().as_str(),
            Some("on"),
            "tenant {ns} did not converge"
        );
    }
    assert_eq!(space.world.metrics.counter("driver_foreign_events"), 0);
}

/// A device that ticks periodically but never produces any actuation —
/// e.g. a sensor polling hardware that reports nothing new.
struct IdleTicker;

impl dspace_core::actuator::Actuator for IdleTicker {
    fn name(&self) -> &str {
        "idle-ticker"
    }
    fn actuate(
        &mut self,
        _now: dspace_simnet::Time,
        _cmd: &Value,
        _rng: &mut dspace_simnet::Rng,
    ) -> Vec<dspace_core::actuator::Actuation> {
        Vec::new()
    }
    fn poll_interval(&self) -> Option<dspace_simnet::Time> {
        Some(millis(250))
    }
}

#[test]
fn settle_returns_early_despite_periodic_device_ticks() {
    // Regression (ROADMAP): periodic ticks keep the event queue non-empty
    // forever, and settle used to burn its whole budget walking them.
    // Ticks are background activity; settle must return at propagation
    // quiescence.
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(lamp_schema());
    let lamp = space.create_digi("Lamp", "solo", lamp_driver()).unwrap();
    space.attach_actuator(&lamp, Box::new(IdleTicker));
    space.set_intent("solo/power", "on".into()).unwrap();
    space.settle(60_000);
    assert!(
        space.now_ms() < 1_000.0,
        "settle burned the budget under tick-only activity: now={}ms",
        space.now_ms()
    );
    assert!(!space.world.has_pending_work());
    // The intent still propagated before settle returned.
    assert_eq!(space.intent("solo/power").unwrap().as_str(), Some("on"));
}

#[test]
fn settle_returns_early_when_quiescent() {
    // Without periodic device ticks the event queue drains completely;
    // settle must stop there instead of burning the whole budget.
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(lamp_schema());
    space.create_digi("Lamp", "solo", lamp_driver()).unwrap();
    space.set_intent("solo/power", "on".into()).unwrap();
    space.settle(60_000);
    assert!(
        space.now_ms() < 1_000.0,
        "settle burned virtual time past quiescence: now={}ms",
        space.now_ms()
    );
    // Quiescent means quiescent: nothing is pending anywhere.
    assert!(!space.world.has_pending_work());
}

//! Focused tests of the Mounter's §5.2 semantics: hide/expose modes,
//! status-never-flows-southbound, child-intent northbound flow, and the
//! version gate.

use dspace_core::actuator::EchoActuator;
use dspace_core::driver::Driver;
use dspace_core::graph::MountMode;
use dspace_core::{Space, SpaceConfig};
use dspace_simnet::millis;
use dspace_value::{AttrType, KindSchema, Value};

fn space_with_chain(mode: MountMode) -> (Space, dspace_apiserver::ObjectRef) {
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Node")
            .control("level", AttrType::Number)
            .obs("note", AttrType::String)
            .mounts("Node"),
    );
    // grandchild -> child -> parent, with the child mounted under `mode`.
    let gc = space.create_digi("Node", "gc", Driver::new()).unwrap();
    let ch = space.create_digi("Node", "ch", Driver::new()).unwrap();
    let pa = space.create_digi("Node", "pa", Driver::new()).unwrap();
    space.mount(&gc, &ch, MountMode::Expose).unwrap();
    space.run_for_ms(500);
    space.mount(&ch, &pa, mode).unwrap();
    space.run_for_ms(1_000);
    (space, pa)
}

#[test]
fn expose_mode_reveals_grandchild_replicas() {
    let (space, pa) = space_with_chain(MountMode::Expose);
    let nested = space
        .world
        .api
        .get_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.mount.Node.gc",
        )
        .unwrap();
    assert!(!nested.is_null(), "grandchild replica should be exposed");
}

#[test]
fn hide_mode_conceals_grandchild_replicas() {
    let (space, pa) = space_with_chain(MountMode::Hide);
    let nested = space
        .world
        .api
        .get_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.mount",
        )
        .unwrap();
    assert!(
        nested.is_null(),
        "hide mode must conceal the child's own mounts, got {nested}"
    );
    // But the child's control state is still visible.
    let control = space
        .world
        .api
        .get_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.control",
        )
        .unwrap();
    assert!(!control.is_null());
}

#[test]
fn nested_intent_write_through_exposed_replicas() {
    let (mut space, pa) = space_with_chain(MountMode::Expose);
    // The parent writes the *grandchild's* intent through two replica
    // levels; the mounter relays hop by hop.
    space
        .world
        .api
        .patch_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.mount.Node.gc.control.level.intent",
            Value::from(0.42),
        )
        .unwrap();
    space.pump();
    space.run_for_ms(3_000);
    assert_eq!(space.intent("gc/level").unwrap().as_f64(), Some(0.42));
}

#[test]
fn status_never_flows_southbound() {
    let (mut space, pa) = space_with_chain(MountMode::Expose);
    // A (buggy or malicious) parent writes a *status* into the replica.
    space
        .world
        .api
        .patch_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.control.level.status",
            Value::from(0.99),
        )
        .unwrap();
    space.pump();
    space.run_for_ms(3_000);
    // The child's real status is untouched ("status information should
    // never flow southbound", §5.2); the mounter's next northbound sync
    // repairs the replica.
    assert!(space.status("ch/level").unwrap().is_null());
    let replica_status = space
        .world
        .api
        .get_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.control.level.status",
        )
        .unwrap();
    assert!(
        replica_status.is_null(),
        "replica should be repaired, got {replica_status}"
    );
}

#[test]
fn child_intent_flows_northbound_for_reconciliation() {
    let (mut space, pa) = space_with_chain(MountMode::Expose);
    // The child's own intent changes (e.g. a physical interaction): the
    // mounter copies it into the parent's replica so the parent driver
    // can reconcile (§5.2: "It will, however, sync .intent updates from
    // MA to the model replica to allow intent reconciliation").
    space.set_intent_now("ch/level", 0.7.into()).unwrap();
    space.run_for_ms(2_000);
    let replica_intent = space
        .world
        .api
        .get_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.control.level.intent",
        )
        .unwrap();
    assert_eq!(replica_intent.as_f64(), Some(0.7));
}

#[test]
fn replica_tracks_child_generation() {
    let (mut space, pa) = space_with_chain(MountMode::Expose);
    let read_gen = |space: &Space| {
        space
            .world
            .api
            .get_path(
                dspace_apiserver::ApiServer::ADMIN,
                &pa,
                ".mount.Node.ch.gen",
            )
            .unwrap()
            .as_f64()
            .unwrap()
    };
    let g1 = read_gen(&space);
    space.set_intent_now("ch/level", 0.3.into()).unwrap();
    space.run_for_ms(2_000);
    let g2 = read_gen(&space);
    assert!(
        g2 > g1,
        "replica gen must advance with the child ({g1} -> {g2})"
    );
}

#[test]
fn parent_write_survives_concurrent_child_update() {
    // The three-way-merge/version-gate path: the parent writes an intent
    // into the replica in the same instant the child's model changes; the
    // parent's write must not be lost to the northbound refresh.
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Node")
            .control("level", AttrType::Number)
            .obs("note", AttrType::String)
            .mounts("Node"),
    );
    let ch = space.create_digi("Node", "ch", Driver::new()).unwrap();
    space.attach_actuator(&ch, Box::new(EchoActuator::new("echo", millis(100))));
    let pa = space.create_digi("Node", "pa", Driver::new()).unwrap();
    space.mount(&ch, &pa, MountMode::Expose).unwrap();
    space.run_for_ms(1_000);
    // Same instant: the parent decides an intent while the child posts an
    // observation (its model version bumps).
    space
        .world
        .api
        .patch_path(
            dspace_apiserver::ApiServer::ADMIN,
            &pa,
            ".mount.Node.ch.control.level.intent",
            Value::from(0.55),
        )
        .unwrap();
    space
        .world
        .api
        .patch_path(
            dspace_apiserver::ApiServer::ADMIN,
            &ch,
            ".obs.note",
            Value::from("concurrent"),
        )
        .unwrap();
    space.pump();
    space.run_for_ms(3_000);
    // Both effects land: the child has the parent's intent AND the obs.
    assert_eq!(space.intent("ch/level").unwrap().as_f64(), Some(0.55));
    assert_eq!(space.obs("ch/note").unwrap().as_str(), Some("concurrent"));
}

#[test]
fn version_gate_is_exact_past_f64_precision() {
    // Generations live in `meta.gen` of a JSON model; the gate used to
    // round-trip them through `f64`, where 2^53 and 2^53+1 collapse to the
    // same number — so a replica exactly one version stale slipped the
    // gate. Store and compare them as u64 end-to-end.
    use dspace_apiserver::{ApiServer, ObjectRef, Query, Role, Rule};
    use dspace_core::mounter::{Mounter, SUBJECT};
    use std::cell::RefCell;
    use std::rc::Rc;

    const BIG: u64 = 1 << 53;

    let mut api = ApiServer::new();
    api.rbac_mut()
        .add_role(Role::new("controller", vec![Rule::allow_all()]));
    api.rbac_mut().bind(SUBJECT, "controller");
    let admin = ApiServer::ADMIN;
    let w = api.watch_query(admin, &Query::all()).unwrap();

    let graph = Rc::new(RefCell::new(dspace_core::DigiGraph::new()));
    let mut mounter = Mounter::new();

    let ch = ObjectRef::default_ns("Node", "ch");
    let pa = ObjectRef::default_ns("Node", "pa");
    let model = |name: &str| {
        dspace_value::json::parse(&format!(
            r#"{{"meta": {{"kind": "Node", "name": "{name}", "namespace": "default"}},
                 "control": {{"level": {{}}}}}}"#
        ))
        .unwrap()
    };
    api.create(admin, &ch, model("ch")).unwrap();
    api.create(admin, &pa, model("pa")).unwrap();
    graph.borrow_mut().mount(&ch, &pa, MountMode::Hide).unwrap();

    // Place the child deep into its mutation history, then advance it one
    // more step: its generation becomes 2^53 + 1 (string-encoded, exact).
    api.fast_forward(admin, &ch, BIG).unwrap();
    api.patch_path(admin, &ch, ".obs.note", "fresh".into())
        .unwrap();
    assert_eq!(
        api.get_path(admin, &ch, ".meta.gen")
            .unwrap()
            .as_exact_u64(),
        Some(BIG + 1),
        "generation must survive storage exactly"
    );
    api.poll(w);

    // The parent holds a replica captured at gen 2^53 — one version
    // stale, but indistinguishable from 2^53+1 after an f64 round-trip.
    let mut replica = dspace_value::json::parse(
        r#"{"mode": "hide", "status": "active",
            "control": {"level": {"intent": 0.9}}}"#,
    )
    .unwrap();
    replica
        .set(&".gen".parse().unwrap(), Value::from_exact_u64(BIG))
        .unwrap();
    api.patch_path(admin, &pa, ".mount.Node.ch", replica)
        .unwrap();

    let mut trace = dspace_core::Trace::new();
    let events = api.poll(w);
    mounter.process(&mut api, &graph, &events, &mut trace, 0);
    assert!(
        api.get_path(admin, &ch, ".control.level.intent")
            .unwrap()
            .is_null(),
        "replica at gen 2^53 is stale against child gen 2^53+1 and must not sync"
    );

    // After the northbound refresh advances the replica's gen, the
    // pending intent syncs — delayed, not lost.
    for _ in 0..8 {
        let events = api.poll(w);
        if events.is_empty() {
            break;
        }
        mounter.process(&mut api, &graph, &events, &mut trace, 0);
    }
    assert_eq!(
        api.get_path(admin, &ch, ".control.level.intent")
            .unwrap()
            .as_f64(),
        Some(0.9)
    );
    // And the replica's gen now mirrors the child's exactly, past 2^53.
    let replica_gen = api
        .get_path(admin, &pa, ".mount.Node.ch.gen")
        .unwrap()
        .as_exact_u64()
        .unwrap();
    let child_gen = api
        .get_path(admin, &ch, ".meta.gen")
        .unwrap()
        .as_exact_u64()
        .unwrap();
    assert_eq!(replica_gen, child_gen);
    assert!(replica_gen > BIG);
}

#[test]
fn stale_replica_does_not_sync_southbound() {
    // The §5.2 version gate, driven directly: a replica whose `gen` lags
    // the child's model version carries decisions made against an outdated
    // view, and must NOT be written southbound until the northbound
    // refresh has landed.
    use dspace_apiserver::{ApiServer, ObjectRef, Query, Role, Rule};
    use dspace_core::mounter::{Mounter, SUBJECT};
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut api = ApiServer::new();
    api.rbac_mut()
        .add_role(Role::new("controller", vec![Rule::allow_all()]));
    api.rbac_mut().bind(SUBJECT, "controller");
    let admin = ApiServer::ADMIN;
    let w = api.watch_query(admin, &Query::all()).unwrap();

    let graph = Rc::new(RefCell::new(dspace_core::DigiGraph::new()));
    let mut mounter = Mounter::new();

    let ch = ObjectRef::default_ns("Node", "ch");
    let pa = ObjectRef::default_ns("Node", "pa");
    let model = |name: &str| {
        dspace_value::json::parse(&format!(
            r#"{{"meta": {{"kind": "Node", "name": "{name}", "namespace": "default"}},
                 "control": {{"level": {{}}}}}}"#
        ))
        .unwrap()
    };
    api.create(admin, &ch, model("ch")).unwrap();
    api.create(admin, &pa, model("pa")).unwrap();
    graph.borrow_mut().mount(&ch, &pa, MountMode::Hide).unwrap();

    // The child moves ahead: its model version advances past the replica.
    api.patch_path(admin, &ch, ".obs.note", "v2".into())
        .unwrap();
    api.patch_path(admin, &ch, ".obs.note", "v3".into())
        .unwrap();
    let child_gen = api
        .get_path(admin, &ch, ".meta.gen")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(child_gen > 1.0);

    // Drain the setup events so the mounter's next batch contains only
    // the parent's stale write (no child event to refresh from first).
    api.poll(w);

    // The parent holds a STALE replica (gen 1, from before the child
    // moved) carrying an intent decided against that outdated view.
    let replica = dspace_value::json::parse(
        r#"{"mode": "hide", "status": "active", "gen": 1,
            "control": {"level": {"intent": 0.9}}}"#,
    )
    .unwrap();
    api.patch_path(admin, &pa, ".mount.Node.ch", replica)
        .unwrap();

    let mut trace = dspace_core::Trace::new();
    let events = api.poll(w);
    mounter.process(&mut api, &graph, &events, &mut trace, 0);
    assert!(
        api.get_path(admin, &ch, ".control.level.intent")
            .unwrap()
            .is_null(),
        "stale replica (gen 1 < child gen {child_gen}) must not sync southbound"
    );

    // The northbound refresh advanced the replica's gen; the parent's
    // still-pending intent syncs on the next event round — the gate delays
    // it, it doesn't lose it.
    for _ in 0..8 {
        let events = api.poll(w);
        if events.is_empty() {
            break;
        }
        mounter.process(&mut api, &graph, &events, &mut trace, 0);
    }
    assert_eq!(
        api.get_path(admin, &ch, ".control.level.intent")
            .unwrap()
            .as_f64(),
        Some(0.9)
    );
}

//! Property tests for the digi-graph invariants (§3.3–3.4): no sequence
//! of mount/unmount/yield/unyield operations — accepted or rejected — can
//! ever leave the graph outside the multitree + single-writer envelope.

use proptest::prelude::*;

use dspace_apiserver::ObjectRef;
use dspace_core::graph::{DigiGraph, MountMode};

#[derive(Debug, Clone)]
enum Op {
    Mount(usize, usize),
    Unmount(usize, usize),
    Yield(usize, usize),
    Unyield(usize, usize),
}

fn arb_ops(nodes: usize) -> impl Strategy<Value = Vec<Op>> {
    let idx = 0..nodes;
    prop::collection::vec(
        prop_oneof![
            (idx.clone(), idx.clone()).prop_map(|(a, b)| Op::Mount(a, b)),
            (idx.clone(), idx.clone()).prop_map(|(a, b)| Op::Unmount(a, b)),
            (idx.clone(), idx.clone()).prop_map(|(a, b)| Op::Yield(a, b)),
            (idx.clone(), idx.clone()).prop_map(|(a, b)| Op::Unyield(a, b)),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn random_ops_preserve_multitree_and_single_writer(ops in arb_ops(8)) {
        let nodes: Vec<ObjectRef> =
            (0..8).map(|i| ObjectRef::default_ns("D", format!("n{i}"))).collect();
        let mut g = DigiGraph::new();
        for op in ops {
            // Every operation may succeed or fail; the invariants must
            // hold either way.
            let _ = match op {
                Op::Mount(a, b) => g.mount(&nodes[a], &nodes[b], MountMode::Expose).map(|_| ()),
                Op::Unmount(a, b) => g.unmount(&nodes[a], &nodes[b]),
                Op::Yield(a, b) => g.yield_edge(&nodes[a], &nodes[b]),
                Op::Unyield(a, b) => g.unyield_edge(&nodes[a], &nodes[b]),
            };
            if let Err((x, y)) = g.verify_multitree() {
                prop_assert!(false, "multitree violated between {x} and {y}");
            }
            if let Err(c) = g.verify_single_writer() {
                prop_assert!(false, "two active parents over {c}");
            }
        }
    }

    /// check_mount is consistent with mount: whenever the check passes,
    /// the mount succeeds, and vice versa.
    #[test]
    fn check_mount_predicts_mount(ops in arb_ops(6)) {
        let nodes: Vec<ObjectRef> =
            (0..6).map(|i| ObjectRef::default_ns("D", format!("n{i}"))).collect();
        let mut g = DigiGraph::new();
        for op in ops {
            match op {
                Op::Mount(a, b) => {
                    let predicted = g.check_mount(&nodes[a], &nodes[b]).is_ok();
                    let actual = g.mount(&nodes[a], &nodes[b], MountMode::Expose).is_ok();
                    prop_assert_eq!(predicted, actual);
                }
                Op::Unmount(a, b) => {
                    let _ = g.unmount(&nodes[a], &nodes[b]);
                }
                Op::Yield(a, b) => {
                    let _ = g.yield_edge(&nodes[a], &nodes[b]);
                }
                Op::Unyield(a, b) => {
                    let _ = g.unyield_edge(&nodes[a], &nodes[b]);
                }
            }
        }
    }

    /// Descendants and ancestors are duals: y is a descendant of x iff x
    /// is an ancestor of y.
    #[test]
    fn descendants_ancestors_duality(ops in arb_ops(6)) {
        let nodes: Vec<ObjectRef> =
            (0..6).map(|i| ObjectRef::default_ns("D", format!("n{i}"))).collect();
        let mut g = DigiGraph::new();
        for op in ops {
            if let Op::Mount(a, b) = op {
                let _ = g.mount(&nodes[a], &nodes[b], MountMode::Expose);
            }
        }
        for x in &nodes {
            for y in &nodes {
                let down = g.descendants(x).contains(y);
                let up = g.ancestors(y).contains(x);
                prop_assert_eq!(down, up, "duality broken for {} / {}", x, y);
            }
        }
    }
}

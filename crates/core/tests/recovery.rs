//! Space-level recovery: a space reopened from a durable directory gets
//! its digi models, revisions, graph edges, and Sync port claims back,
//! and the runtime (controllers, drivers, admission) keeps working on top
//! of the recovered state.

use std::fs;
use std::path::{Path, PathBuf};

use dspace_apiserver::DurabilityOptions;
use dspace_core::driver::{Driver, Filter};
use dspace_core::graph::{EdgeState, MountMode};
use dspace_core::{Space, SpaceConfig};
use dspace_value::{json, AttrType, KindSchema};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dspace-core-recovery-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn lamp_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Lamp").control("power", AttrType::String)
}

fn room_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Room")
        .control("brightness", AttrType::Number)
        .mounts("Lamp")
}

fn lamp_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "ack", |ctx| {
        let intent = ctx.digi().intent("power");
        if !intent.is_null() && intent != ctx.digi().status("power") {
            ctx.digi().set_status("power", intent);
        }
    });
    d
}

fn durable_config(dir: &Path) -> SpaceConfig {
    SpaceConfig {
        durability: Some(DurabilityOptions::new(dir.to_path_buf())),
        ..SpaceConfig::default()
    }
}

/// The durable facts a space must get back: store revision and every
/// model, plus the graph's edge list.
fn fingerprint(space: &Space) -> Vec<String> {
    let mut out = vec![format!("revision={}", space.world.api.revision())];
    for obj in space.world.api.dump() {
        out.push(format!(
            "{} rv={} {}",
            obj.oref,
            obj.resource_version,
            json::to_string(&obj.model)
        ));
    }
    for e in space.world.graph.borrow().edges() {
        out.push(format!(
            "edge {} -> {} {:?}/{:?}",
            e.child, e.parent, e.mode, e.state
        ));
    }
    out
}

#[test]
fn space_recovers_models_graph_and_keeps_working() {
    let dir = scratch_dir("space");

    // First life: two lamps in a room, one mounted, state settled.
    let mut space = Space::open(durable_config(&dir)).unwrap();
    space.register_kind(lamp_schema());
    space.register_kind(room_schema());
    let room = space.create_digi("Room", "room", Driver::new()).unwrap();
    let l1 = space.create_digi("Lamp", "l1", lamp_driver()).unwrap();
    let l2 = space.create_digi("Lamp", "l2", lamp_driver()).unwrap();
    space.mount(&l1, &room, MountMode::Expose).unwrap();
    space.set_intent("l1/power", "on".into()).unwrap();
    space.run_for_ms(2_000);
    assert_eq!(space.status("l1/power").unwrap().as_str(), Some("on"));
    let live = fingerprint(&space);
    drop(space); // crash

    // Second life: models, revisions, and the graph come back without a
    // single write.
    let mut space = Space::open(durable_config(&dir)).unwrap();
    assert_eq!(fingerprint(&space), live);
    assert_eq!(
        space.world.graph.borrow().children_of(&room),
        vec![l1.clone()],
        "mount edge survived the restart"
    );
    assert_eq!(space.status("l1/power").unwrap().as_str(), Some("on"));

    // The runtime still works on top: schemas and drivers re-register
    // (they are code, not state), and new mounts pass admission against
    // the recovered graph.
    space.register_kind(lamp_schema());
    space.register_kind(room_schema());
    space.world.add_driver(l2.clone(), lamp_driver());
    space.mount(&l2, &room, MountMode::Expose).unwrap();
    space.run_for_ms(2_000);
    assert_eq!(
        space.world.graph.borrow().children_of(&room),
        vec![l1.clone(), l2.clone()]
    );
    // The mount verb consults the recovered graph, not an empty one: a
    // second parent for l1 must start yielded because the recovered edge
    // shows `room` already holds the writer slot.
    let room2 = space.create_digi("Room", "room2", Driver::new()).unwrap();
    assert_eq!(
        space.mount(&l1, &room2, MountMode::Expose).unwrap(),
        EdgeState::Yielded
    );
    // And the recovered digi is addressable by name.
    assert_eq!(space.resolve("l1").unwrap(), l1);

    space.world.add_driver(l1.clone(), lamp_driver());
    space.set_intent("l1/power", "off".into()).unwrap();
    space.run_for_ms(2_000);
    assert_eq!(space.status("l1/power").unwrap().as_str(), Some("off"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn pipe_port_claims_survive_restart() {
    let dir = scratch_dir("pipe");
    let mut space = Space::open(durable_config(&dir)).unwrap();
    space.register_kind(lamp_schema());
    let l1 = space.create_digi("Lamp", "l1", Driver::new()).unwrap();
    let l2 = space.create_digi("Lamp", "l2", Driver::new()).unwrap();
    let l3 = space.create_digi("Lamp", "l3", Driver::new()).unwrap();
    space.pipe(&l1, "power", &l2, "power").unwrap();
    space.run_for_ms(500);
    drop(space);

    let mut space = Space::open(durable_config(&dir)).unwrap();
    space.register_kind(lamp_schema());
    // The port is still claimed by the recovered Sync: a second writer to
    // the same target attribute is rejected.
    let second = space.pipe(&l3, "power", &l2, "power");
    assert!(
        second.is_err(),
        "recovered Sync must still hold the single-writer port"
    );
    // A different target port is fine.
    space.pipe(&l2, "power", &l3, "power").unwrap();
    let _ = fs::remove_dir_all(&dir);
}

//! Property tests over the live runtime: any interleaving of user intents
//! and physical-world events converges — statuses meet intents, the
//! digi-graph invariants hold, and the event queue quiesces.

use proptest::prelude::*;

use dspace_core::actuator::EchoActuator;
use dspace_core::driver::{Driver, Filter};
use dspace_core::graph::MountMode;
use dspace_core::{Space, SpaceConfig};
use dspace_simnet::millis;
use dspace_value::{AttrType, KindSchema, Value};

#[derive(Debug, Clone)]
enum Action {
    /// User sets the lamp brightness intent (0..=10 scaled to 0..=1).
    UserIntent(u8),
    /// Physical toggle: the device reports a new status + own intent.
    Physical(u8),
    /// Let time pass.
    Wait(u8),
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..=10).prop_map(Action::UserIntent),
            (0u8..=10).prop_map(Action::Physical),
            (1u8..=5).prop_map(Action::Wait),
        ],
        1..12,
    )
}

fn build() -> Space {
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(
        KindSchema::digivice("digi.dev", "v1", "Lamp").control("brightness", AttrType::Number),
    );
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "actuate", |ctx| {
        let intent = ctx.digi().intent("brightness");
        if !intent.is_null() && intent != ctx.digi().status("brightness") {
            ctx.device(dspace_value::object([("brightness", intent)]));
        }
    });
    let lamp = space.create_digi("Lamp", "l1", d).unwrap();
    space.attach_actuator(&lamp, Box::new(EchoActuator::new("echo", millis(150))));
    space
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the interleaving, after quiescence the lamp's status
    /// equals its intent (the declarative-control contract).
    #[test]
    fn lamp_always_converges(actions in arb_actions()) {
        let mut space = build();
        for action in &actions {
            match action {
                Action::UserIntent(v) => {
                    space
                        .set_intent("l1/brightness", (*v as f64 / 10.0).into())
                        .unwrap();
                    space.run_for_ms(30);
                }
                Action::Physical(v) => {
                    let val = Value::from(*v as f64 / 10.0);
                    let patch = dspace_value::object([(
                        "control",
                        dspace_value::object([(
                            "brightness",
                            dspace_value::object([
                                ("intent", val.clone()),
                                ("status", val),
                            ]),
                        )]),
                    )]);
                    space.physical_event("l1", patch).unwrap();
                    space.run_for_ms(30);
                }
                Action::Wait(ms) => space.run_for_ms(*ms as u64 * 100),
            }
        }
        // Quiesce.
        space.run_for_ms(5_000);
        let touched = actions
            .iter()
            .any(|a| !matches!(a, Action::Wait(_)));
        let intent = space.intent("l1/brightness").unwrap();
        let status = space.status("l1/brightness").unwrap();
        if touched {
            prop_assert!(!intent.is_null(), "an action set an intent");
        }
        prop_assert_eq!(intent, status, "converged state");
        // No conflict ever became an error; conflicts only retried.
        prop_assert_eq!(space.world.metrics.counter("driver_errors"), 0);
    }

    /// The same, through a mounted hierarchy: room intent wins whatever
    /// the interleaving, and the graph invariants hold throughout.
    #[test]
    fn mounted_lamp_converges_to_last_room_intent(values in prop::collection::vec(0u8..=10, 1..6)) {
        let mut space = Space::new(SpaceConfig::default());
        space.register_kind(
            KindSchema::digivice("digi.dev", "v1", "Lamp")
                .control("brightness", AttrType::Number),
        );
        space.register_kind(
            KindSchema::digivice("digi.dev", "v1", "Room")
                .control("brightness", AttrType::Number)
                .mounts("Lamp"),
        );
        let mut lamp_driver = Driver::new();
        lamp_driver.on(Filter::on_control(), 0, "actuate", |ctx| {
            let intent = ctx.digi().intent("brightness");
            if !intent.is_null() && intent != ctx.digi().status("brightness") {
                ctx.device(dspace_value::object([("brightness", intent)]));
            }
        });
        let mut room_driver = Driver::new();
        room_driver.on(Filter::any(), 0, "distribute", |ctx| {
            let target = ctx.digi().intent("brightness");
            if target.is_null() { return; }
            for (kind, name) in ctx.digi().mounts() {
                let cur = ctx.digi().replica(&kind, &name, ".control.brightness.intent");
                if cur != target {
                    ctx.digi().set_replica(&kind, &name, ".control.brightness.intent", target.clone());
                }
            }
        });
        let lamp = space.create_digi("Lamp", "l1", lamp_driver).unwrap();
        space.attach_actuator(&lamp, Box::new(EchoActuator::new("echo", millis(150))));
        let room = space.create_digi("Room", "r1", room_driver).unwrap();
        space.mount(&lamp, &room, MountMode::Expose).unwrap();
        space.run_for_ms(1_000);
        let mut last = 0.0;
        for v in &values {
            last = *v as f64 / 10.0;
            space.set_intent("r1/brightness", last.into()).unwrap();
            space.run_for_ms(80);
        }
        space.run_for_ms(8_000);
        prop_assert_eq!(space.status("l1/brightness").unwrap().as_f64(), Some(last));
        space.world.graph.borrow().verify_multitree().map_err(|e| {
            TestCaseError::fail(format!("multitree broken: {e:?}"))
        })?;
        space.world.graph.borrow().verify_single_writer().map_err(|e| {
            TestCaseError::fail(format!("single-writer broken: {e:?}"))
        })?;
    }
}

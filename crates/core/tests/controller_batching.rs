//! Controller write batching is a wall-clock knob ONLY.
//!
//! The mounter and syncer commit each pump cycle's writes as one
//! `apply_batch` call by default; `SpaceConfig::batch_controller_writes
//! = false` restores the legacy one-serial-verb-per-write behavior.
//! Whatever the mode — and whatever the shard worker count — a scenario
//! must end in a bit-identical store, with an identical structured
//! trace: the batch's read-through overlay makes every mid-cycle read
//! see exactly what per-op commits would have made visible.

use dspace_core::driver::{Driver, Filter};
use dspace_core::graph::MountMode;
use dspace_core::{Space, SpaceConfig};
use dspace_value::{json, AttrType, KindSchema, Value};

fn lamp_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Lamp")
        .control("power", AttrType::String)
        .control("brightness", AttrType::Number)
}

fn room_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Room")
        .control("brightness", AttrType::Number)
        .mounts("Lamp")
}

fn feed_schema() -> KindSchema {
    KindSchema::digidata("digi.dev", "v1", "Feed")
        .input("url", AttrType::String)
        .output("url", AttrType::String)
}

fn lamp_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "ack", |ctx| {
        for attr in ["power", "brightness"] {
            let intent = ctx.digi().intent(attr);
            if !intent.is_null() && intent != ctx.digi().status(attr) {
                ctx.digi().set_status(attr, intent);
            }
        }
    });
    d
}

fn room_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::any(), 0, "fan-out", |ctx| {
        let target = ctx.digi().intent("brightness");
        if let Some(t) = target.as_f64() {
            for n in ctx.digi().mounted_names("Lamp") {
                let cur = ctx.digi().replica("Lamp", &n, ".control.brightness.intent");
                if cur.as_f64() != Some(t) {
                    ctx.digi()
                        .set_replica("Lamp", &n, ".control.brightness.intent", t.into());
                }
            }
        }
    });
    d
}

/// Builds the scenario, runs a fixed script, and serializes everything
/// observable: the final store dump and the structured trace.
fn run_scenario(batched: bool, threads: usize) -> Vec<String> {
    let mut space = Space::new(SpaceConfig {
        threads,
        batch_controller_writes: batched,
        ..SpaceConfig::default()
    });
    space.register_kind(lamp_schema());
    space.register_kind(room_schema());
    space.register_kind(feed_schema());

    // Mounter workload: a room fanning brightness out to three lamps.
    let room = space.create_digi("Room", "room", room_driver()).unwrap();
    let mut lamps = Vec::new();
    for i in 0..3 {
        let lamp = space
            .create_digi("Lamp", &format!("lamp{i}"), lamp_driver())
            .unwrap();
        space.mount(&lamp, &room, MountMode::Expose).unwrap();
        lamps.push(lamp);
    }
    // Syncer workload: one feed piped to two consumers (fan-out means
    // several syncer writes land in a single pump cycle).
    let src = space.create_digi("Feed", "src", Driver::new()).unwrap();
    let sink_a = space.create_digi("Feed", "sink-a", Driver::new()).unwrap();
    let sink_b = space.create_digi("Feed", "sink-b", Driver::new()).unwrap();
    space.pipe(&src, "url", &sink_a, "url").unwrap();
    space.pipe(&src, "url", &sink_b, "url").unwrap();
    space.run_for_ms(2_000);

    space.set_intent("room/brightness", 0.7.into()).unwrap();
    space.run_for_ms(2_000);
    space.set_intent("lamp1/power", "on".into()).unwrap();
    space.run_for_ms(2_000);
    for round in 0..3 {
        space
            .world
            .api
            .patch_path(
                dspace_apiserver::ApiServer::ADMIN,
                &src,
                ".data.output.url",
                format!("rtsp://feed/{round}").into(),
            )
            .unwrap();
        space.pump();
        space.run_for_ms(1_000);
    }
    space.set_intent("room/brightness", 0.3.into()).unwrap();
    space.run_for_ms(3_000);

    let mut out = Vec::new();
    for obj in space.world.api.dump() {
        out.push(format!(
            "{} rv={} {}",
            obj.oref,
            obj.resource_version,
            json::to_string(&obj.model)
        ));
    }
    for e in space.world.trace.entries() {
        out.push(format!("t={} {:?} {} {}", e.t, e.kind, e.subject, e.detail));
    }
    out
}

#[test]
fn batched_and_per_op_controllers_are_bit_identical() {
    let reference = run_scenario(true, 1);
    // Sanity: the scenario actually converged.
    assert!(
        reference
            .iter()
            .any(|l| l.contains("sink-b") && l.contains("rtsp://feed/2")),
        "pipes must have propagated"
    );
    assert!(
        reference.iter().any(|l| l.contains("southbound sync")),
        "the mounter must have synced southbound"
    );
    for (batched, threads) in [(false, 1), (true, 4), (false, 4)] {
        let other = run_scenario(batched, threads);
        assert_eq!(
            reference, other,
            "batched={batched} threads={threads} diverged"
        );
    }
}

/// Under batching, controller writes commit through `apply_batch`:
/// per-op serial patches from the controllers drop to zero while the
/// scenario still converges (the writes all ride the batch path).
#[test]
fn batched_controllers_go_through_apply_batch() {
    let mut space = Space::new(SpaceConfig::default());
    space.register_kind(lamp_schema());
    space.register_kind(room_schema());
    let room = space.create_digi("Room", "room", room_driver()).unwrap();
    let lamp = space.create_digi("Lamp", "lamp0", lamp_driver()).unwrap();
    space.mount(&lamp, &room, MountMode::Expose).unwrap();
    space.run_for_ms(2_000);
    let batches_before = space.world.api.watch_stats().batch_compaction_passes;
    space.set_intent("room/brightness", 0.5.into()).unwrap();
    space.run_for_ms(3_000);
    assert_eq!(
        space.status("lamp0/brightness").unwrap().as_f64(),
        Some(0.5)
    );
    assert!(
        space.world.api.watch_stats().batch_compaction_passes > batches_before,
        "controller writes must ride the batch path"
    );
}

#[test]
fn value_from_exact_u64_survives_gen_comparison() {
    // Guard for the version gate the mounter relies on: gen values are
    // stored and compared as exact u64 through batched writes too.
    let v = Value::from_exact_u64((1 << 53) + 1);
    assert_eq!(v.as_exact_u64(), Some((1 << 53) + 1));
}

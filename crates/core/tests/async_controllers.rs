//! End-to-end tests of the async controller runtime: mounter/syncer/policer
//! cycles take simulated time, mid-cycle bursts coalesce into exactly one
//! follow-up cycle, controller writes survive lossy links through retries
//! plus OCC re-validation — and with every latency stage at zero the whole
//! machinery is bit-identical to the legacy inline path.

use proptest::prelude::*;

use dspace_core::driver::{Driver, Filter};
use dspace_core::graph::MountMode;
use dspace_core::{Space, SpaceConfig};
use dspace_simnet::{LatencyModel, Link};
use dspace_value::{json, AttrType, KindSchema};

fn lamp_schema() -> KindSchema {
    KindSchema::digivice("digi.dev", "v1", "Lamp")
        .control("brightness", AttrType::Number)
        .mounts("Lamp")
}

fn cam_schema() -> KindSchema {
    KindSchema::digidata("digi.dev", "v1", "Cam")
        .output("frames", AttrType::String)
        .obs("motion", AttrType::Bool)
}

fn scene_schema() -> KindSchema {
    KindSchema::digidata("digi.dev", "v1", "Scene").input("frames", AttrType::String)
}

/// A driver that acknowledges intent by writing status into its own model.
fn ack_driver() -> Driver {
    let mut d = Driver::new();
    d.on(Filter::on_control(), 0, "ack", |ctx| {
        let intent = ctx.digi().intent("brightness");
        if !intent.is_null() && intent != ctx.digi().status("brightness") {
            ctx.digi().set_status("brightness", intent);
        }
    });
    d
}

/// A scene that exercises all three controllers: a mounted lamp pair (the
/// mounter maintains the hub's replica), a camera piped into a scene digi
/// (the syncer propagates frames), and a motion policy whose rising edge
/// fires two consecutive set-intents (the policer's batched action path).
fn build_scene(config: SpaceConfig) -> Space {
    let mut space = Space::new(config);
    space.register_kind(lamp_schema());
    space.register_kind(cam_schema());
    space.register_kind(scene_schema());
    let kid = space.create_digi("Lamp", "kid", ack_driver()).unwrap();
    let hub = space.create_digi("Lamp", "hub", Driver::new()).unwrap();
    let cam = space.create_digi("Cam", "cam", Driver::new()).unwrap();
    let sink = space.create_digi("Scene", "sink", Driver::new()).unwrap();
    space.settle(30_000);
    space.mount(&kid, &hub, MountMode::Expose).unwrap();
    space.pipe(&cam, "frames", &sink, "frames").unwrap();
    space
        .add_policy(
            "motion-lights",
            dspace_value::yaml::parse(
                r#"
meta: {kind: Policy, name: motion-lights, namespace: default}
spec:
  watch: ["Cam/default/cam"]
  condition: .cam.obs.motion == true
  on_rising:
    - {action: set-intent, target: Lamp/default/kid, attr: brightness, value: 1.0}
    - {action: set-intent, target: Lamp/default/hub, attr: brightness, value: 1.0}
  on_falling:
    - {action: set-intent, target: Lamp/default/kid, attr: brightness, value: 0.25}
"#,
            )
            .unwrap(),
        )
        .unwrap();
    space.settle(30_000);
    space
}

/// One round of user/world activity: an intent on the mounted child, a new
/// camera frame through the pipe, and a motion edge for the policy.
fn drive(space: &mut Space, rounds: usize) {
    for i in 1..=rounds {
        space
            .set_intent_now("kid/brightness", (i as f64 / 100.0).into())
            .unwrap();
        space.settle(60_000);
        space
            .world
            .api
            .client(dspace_apiserver::ApiServer::ADMIN)
            .namespace("default")
            .patch_path(
                "Cam",
                "cam",
                ".data.output.frames",
                format!("frame-{i}").into(),
            )
            .unwrap();
        space.pump();
        space.settle(60_000);
        space
            .physical_event(
                "cam",
                dspace_value::json::parse(&format!(r#"{{"obs": {{"motion": {}}}}}"#, i % 2 == 1))
                    .unwrap(),
            )
            .unwrap();
        space.settle(60_000);
    }
}

/// Everything observable about one run, for bit-identical same-seed (and
/// async-on vs legacy) comparison: final virtual clock, all counters, the
/// full causal trace, and a dump of every stored object with its rv.
#[derive(Debug, PartialEq)]
struct RunSummary {
    now_ms_bits: u64,
    counters: Vec<(String, u64)>,
    trace: Vec<(u64, String, String, String)>,
    store: Vec<(String, u64, String)>,
}

fn summarize(space: &Space) -> RunSummary {
    RunSummary {
        now_ms_bits: space.now_ms().to_bits(),
        counters: space
            .world
            .metrics
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        trace: space
            .world
            .trace
            .entries()
            .iter()
            .map(|e| {
                (
                    e.t,
                    format!("{:?}", e.kind),
                    e.subject.clone(),
                    e.detail.clone(),
                )
            })
            .collect(),
        store: space
            .world
            .api
            .dump()
            .into_iter()
            .map(|o| {
                (
                    o.oref.to_string(),
                    o.resource_version,
                    json::to_string(&o.model),
                )
            })
            .collect(),
    }
}

fn step_until_controller_busy(space: &mut Space, name: &str) {
    let mut guard = 0u32;
    while !space.world.controller_busy(name) {
        assert!(space.step(), "sim drained before {name} went busy");
        guard += 1;
        assert!(guard < 100_000, "controller {name} never went busy");
    }
}

#[test]
fn burst_while_busy_lands_as_one_followup_cycle() {
    // A 100-patch burst arriving while the mounter is mid-cycle must be
    // absorbed by the dirty bit and re-polled at completion: ONE follow-up
    // cycle per controller slot (tentpole acceptance, clean-link variant).
    let mut space = Space::new(SpaceConfig {
        controller_reconcile: LatencyModel::FixedMs(20.0),
        ..SpaceConfig::default()
    });
    space.register_kind(lamp_schema());
    // Handler-less drivers: nothing but the controllers writes, so the
    // per-slot follow-up counters are attributable to the burst alone.
    let kid = space.create_digi("Lamp", "kid", Driver::new()).unwrap();
    let hub = space.create_digi("Lamp", "hub", Driver::new()).unwrap();
    space.settle(30_000);
    space.mount(&kid, &hub, MountMode::Expose).unwrap();
    space.settle(30_000);

    space.set_intent_now("kid/brightness", 0.5.into()).unwrap();
    step_until_controller_busy(&mut space, "mounter");
    for i in 0..100 {
        space
            .world
            .api
            .client(dspace_apiserver::ApiServer::ADMIN)
            .namespace("default")
            .patch_path(
                "Lamp",
                "kid",
                ".control.brightness.intent",
                (i as f64 / 100.0).into(),
            )
            .unwrap();
    }
    space.pump();
    space.settle(60_000);

    assert_eq!(
        space.world.metrics.counter("controller_followups:mounter"),
        1,
        "burst mid-cycle must land as exactly one mounter follow-up"
    );
    assert!(space.world.metrics.counter("controller_followup_cycles") >= 1);
    assert_eq!(
        space
            .read("hub", ".mount.Lamp.kid.control.brightness.intent")
            .unwrap()
            .as_f64(),
        Some(0.99),
        "replica must converge on the newest burst intent"
    );
    assert_eq!(
        space
            .world
            .metrics
            .counter("reconcile_invariant_violations"),
        0
    );
    assert!(!space.world.has_pending_work());
}

fn faulty_run(seed: u64) -> (RunSummary, u64, u64) {
    let write_link = Link::new("ctrl-write", LatencyModel::FixedMs(4.0))
        .with_jitter(LatencyModel::UniformMs(0.0, 3.0))
        .with_drop_probability(0.05);
    let mut space = build_scene(SpaceConfig {
        seed,
        controller_reconcile: LatencyModel::FixedMs(10.0),
        admission: LatencyModel::FixedMs(1.0),
        controller_write: Some(write_link),
        ..SpaceConfig::default()
    });
    drive(&mut space, 12);
    // Converged fixed point after round 12 (motion fell): the policy's
    // falling action set kid to 0.25, the ack driver confirmed it, and the
    // mounter carried both into the hub's replica despite dropped writes.
    assert_eq!(
        space
            .read("kid", ".control.brightness.status")
            .unwrap()
            .as_f64(),
        Some(0.25)
    );
    assert_eq!(
        space
            .read("hub", ".mount.Lamp.kid.control.brightness.status")
            .unwrap()
            .as_f64(),
        Some(0.25)
    );
    assert_eq!(
        space.read("sink", ".data.input.frames").unwrap().as_str(),
        Some("frame-12"),
        "pipe must deliver the final frame through the lossy syncer link"
    );
    assert!(!space.world.has_pending_work());
    let retries = space.world.metrics.counter("controller_retries");
    let gave_up = space.world.metrics.counter("controller_gave_up");
    (summarize(&space), retries, gave_up)
}

#[test]
fn faulty_controller_link_retries_and_is_deterministic() {
    // ISSUE acceptance: a 5%-drop jittered controller write link forces
    // retries but never exhausts the budget, the space converges, and the
    // whole run — clock, counters, trace, store — replays bit-identically
    // under the same seed.
    let (a, retries, gave_up) = faulty_run(7);
    assert!(
        retries > 0,
        "lossy link must have forced controller retries"
    );
    assert_eq!(gave_up, 0, "retry budget must absorb a 5% drop rate");

    let (b, _, _) = faulty_run(7);
    assert_eq!(a, b, "same seed must replay bit-identically");

    let (c, _, c_gave_up) = faulty_run(8);
    assert_eq!(c_gave_up, 0);
    assert_ne!(
        a.now_ms_bits, c.now_ms_bits,
        "a different seed should draw a different fault schedule"
    );
}

fn scene_run(async_on: bool, write_link: Option<Link>, threads: usize) -> RunSummary {
    let mut space = build_scene(SpaceConfig {
        async_controllers: async_on,
        controller_write: write_link,
        threads,
        ..SpaceConfig::default()
    });
    drive(&mut space, 6);
    summarize(&space)
}

#[test]
fn async_runtime_is_bit_identical_to_legacy() {
    // Replay acceptance: async controllers with all-zero latency must be
    // bit-identical (clock, counters, trace, store dump) to the legacy
    // inline path, at shard-thread caps 1 and max. The `Link::instant()`
    // variant is the non-vacuous half: it forces every cycle through the
    // full deferred plan→transmit→admit→land pipeline (zero RNG draws,
    // zero delay) rather than short-circuiting to the inline path.
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let baseline = scene_run(false, None, 1);
    for threads in [1, max] {
        let legacy = scene_run(false, None, threads);
        let fast_path = scene_run(true, None, threads);
        let deferred = scene_run(true, Some(Link::instant()), threads);
        assert_eq!(
            legacy, fast_path,
            "zero-latency async != legacy (threads={threads})"
        );
        assert_eq!(
            legacy, deferred,
            "deferred pipeline != legacy (threads={threads})"
        );
        assert_eq!(
            legacy, baseline,
            "thread cap changed the run (threads={threads})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the fault schedule — drop rate up to 20%, jitter, slow
    /// controller cycles, admission delay, arbitrary burst sizes — the
    /// mounted pair converges (hub replica reflects the final acked
    /// intent), no controller exhausts its retry budget, and the event
    /// queue quiesces.
    #[test]
    fn controllers_converge_under_random_faults(
        seed in 0u64..1_000_000,
        drop_pct in 0u32..=20,
        jitter_ms in 0u32..=8,
        ctrl_ms in 0u32..=40,
        burst in 1usize..=60,
    ) {
        let mut link = Link::new("ctrl-write", LatencyModel::FixedMs(4.0))
            .with_drop_probability(drop_pct as f64 / 100.0);
        if jitter_ms > 0 {
            link = link.with_jitter(LatencyModel::UniformMs(0.0, jitter_ms as f64));
        }
        let mut space = Space::new(SpaceConfig {
            seed,
            controller_reconcile: LatencyModel::FixedMs(ctrl_ms as f64),
            admission: LatencyModel::FixedMs(1.0),
            controller_write: Some(link),
            ..SpaceConfig::default()
        });
        space.register_kind(lamp_schema());
        let kid = space.create_digi("Lamp", "kid", ack_driver()).unwrap();
        let hub = space.create_digi("Lamp", "hub", Driver::new()).unwrap();
        space.settle(30_000);
        space.mount(&kid, &hub, MountMode::Expose).unwrap();
        space.settle(30_000);
        for i in 0..burst {
            space
                .world
                .api
                .client(dspace_apiserver::ApiServer::ADMIN)
                .namespace("default")
                .patch_path(
                    "Lamp",
                    "kid",
                    ".control.brightness.intent",
                    (i as f64 / burst as f64).into(),
                )
                .unwrap();
        }
        space.pump();
        space.settle(240_000);

        let want = (burst - 1) as f64 / burst as f64;
        prop_assert_eq!(
            space
                .read("hub", ".mount.Lamp.kid.control.brightness.status")
                .unwrap()
                .as_f64(),
            Some(want)
        );
        prop_assert_eq!(space.world.metrics.counter("controller_gave_up"), 0);
        prop_assert_eq!(
            space.world.metrics.counter("reconcile_invariant_violations"),
            0
        );
        prop_assert!(!space.world.has_pending_work(), "queue must quiesce");
    }
}

//! The three vendor lamps of Table 2, each with its native API.
//!
//! The deliberately incompatible parameter spaces (Tuya integer `dps`,
//! LIFX 16-bit HSBK, Hue 0–254 `bri`) are what scenario S1 exercises:
//! "the lamps come from different vendors each with different APIs; e.g.,
//! Geeni and Lifx lamps have different luminous intensity and color
//! schemes."

use dspace_core::actuator::{Actuation, Actuator};
use dspace_simnet::{Rng, Time};
use dspace_value::Value;

use crate::access::AccessPath;

fn status_patch(pairs: &[(&str, Value)]) -> Value {
    let mut patch = dspace_value::obj();
    for (attr, v) in pairs {
        let p = format!(".control.{attr}.status")
            .parse()
            .expect("attr path");
        patch.set(&p, v.clone()).expect("object");
    }
    patch
}

/// GEENI LUX800 (Tuya platform): commands are Tuya *data point* tables.
///
/// `dps.1` is power (bool), `dps.2` is brightness in Tuya's 10–1000 range.
/// Out-of-range brightness is clamped like the real firmware does.
#[derive(Debug, Clone)]
pub struct GeeniLamp {
    power: bool,
    /// Tuya brightness, 10–1000.
    brightness: u32,
    settle: Time,
}

impl GeeniLamp {
    /// Tuya brightness lower bound.
    pub const BRI_MIN: u32 = 10;
    /// Tuya brightness upper bound.
    pub const BRI_MAX: u32 = 1000;

    /// Creates a lamp that is off.
    pub fn new() -> Self {
        GeeniLamp {
            power: false,
            brightness: Self::BRI_MIN,
            settle: dspace_simnet::millis(380),
        }
    }

    /// Current power state.
    pub fn power(&self) -> bool {
        self.power
    }

    /// Current Tuya-scale brightness.
    pub fn brightness(&self) -> u32 {
        self.brightness
    }
}

impl Default for GeeniLamp {
    fn default() -> Self {
        Self::new()
    }
}

impl Actuator for GeeniLamp {
    fn name(&self) -> &str {
        "GEENI LUX800"
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let Some(dps) = cmd.get_path(".dps") else {
            return Vec::new();
        };
        let mut changed = Vec::new();
        if let Some(p) = dps.get_path("1").and_then(Value::as_bool) {
            self.power = p;
            changed.push(("power", Value::from(if p { "on" } else { "off" })));
        }
        if let Some(b) = dps.get_path("2").and_then(Value::as_f64) {
            self.brightness = (b as u32).clamp(Self::BRI_MIN, Self::BRI_MAX);
            changed.push(("brightness", Value::from(self.brightness as f64)));
        }
        if changed.is_empty() {
            return Vec::new();
        }
        let delay = AccessPath::Lan.rpc_delay(rng) + self.settle;
        vec![Actuation::new(delay, status_patch(&changed))]
    }
}

/// LIFX Mini: 16-bit HSBK over lifxlan-style messages.
///
/// Commands: `{"set_power": 0|65535}` and
/// `{"set_color": {"brightness": u16, "kelvin": 2500..9000}}`.
#[derive(Debug, Clone)]
pub struct LifxLamp {
    power: u16,
    /// 16-bit brightness.
    brightness: u16,
    /// Colour temperature in Kelvin (2500–9000).
    kelvin: u32,
    settle: Time,
}

impl LifxLamp {
    /// Creates a lamp that is off at 3500 K.
    pub fn new() -> Self {
        LifxLamp {
            power: 0,
            brightness: 0,
            kelvin: 3500,
            settle: dspace_simnet::millis(350),
        }
    }

    /// Current 16-bit power value (0 or 65535).
    pub fn power(&self) -> u16 {
        self.power
    }

    /// Current 16-bit brightness.
    pub fn brightness(&self) -> u16 {
        self.brightness
    }

    /// Current colour temperature.
    pub fn kelvin(&self) -> u32 {
        self.kelvin
    }
}

impl Default for LifxLamp {
    fn default() -> Self {
        Self::new()
    }
}

impl Actuator for LifxLamp {
    fn name(&self) -> &str {
        "LIFX Mini"
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let mut changed = Vec::new();
        if let Some(p) = cmd.get_path(".set_power").and_then(Value::as_f64) {
            self.power = if p >= 32768.0 { 65535 } else { 0 };
            changed.push(("power", Value::from(self.power as f64)));
        }
        if let Some(color) = cmd.get_path(".set_color") {
            if let Some(b) = color.get_path("brightness").and_then(Value::as_f64) {
                self.brightness = b.clamp(0.0, 65535.0) as u16;
                changed.push(("brightness", Value::from(self.brightness as f64)));
            }
            if let Some(k) = color.get_path("kelvin").and_then(Value::as_f64) {
                self.kelvin = (k as u32).clamp(2500, 9000);
                changed.push(("kelvin", Value::from(self.kelvin as f64)));
            }
        }
        if changed.is_empty() {
            return Vec::new();
        }
        let delay = AccessPath::Lan.rpc_delay(rng) + self.settle;
        vec![Actuation::new(delay, status_patch(&changed))]
    }
}

/// Philips Hue bulb behind its bridge (basestation access).
///
/// Commands use phue's field names: `{"on": bool, "bri": 0..254,
/// "hue": 0..65535, "sat": 0..254}`.
#[derive(Debug, Clone)]
pub struct HueLamp {
    on: bool,
    bri: u16,
    hue: u32,
    sat: u16,
    settle: Time,
}

impl HueLamp {
    /// Creates a bulb that is off.
    pub fn new() -> Self {
        HueLamp {
            on: false,
            bri: 0,
            hue: 8402,
            sat: 140,
            settle: dspace_simnet::millis(300),
        }
    }

    /// Current on/off state.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Current 0–254 brightness.
    pub fn bri(&self) -> u16 {
        self.bri
    }

    /// Current hue (0–65535).
    pub fn hue(&self) -> u32 {
        self.hue
    }

    /// Current saturation (0–254).
    pub fn sat(&self) -> u16 {
        self.sat
    }
}

impl Default for HueLamp {
    fn default() -> Self {
        Self::new()
    }
}

impl Actuator for HueLamp {
    fn name(&self) -> &str {
        "Philips Hue"
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let mut changed = Vec::new();
        if let Some(on) = cmd.get_path(".on").and_then(Value::as_bool) {
            self.on = on;
            changed.push(("power", Value::from(if on { "on" } else { "off" })));
        }
        if let Some(b) = cmd.get_path(".bri").and_then(Value::as_f64) {
            self.bri = b.clamp(0.0, 254.0) as u16;
            changed.push(("brightness", Value::from(self.bri as f64)));
        }
        if let Some(h) = cmd.get_path(".hue").and_then(Value::as_f64) {
            self.hue = h.clamp(0.0, 65535.0) as u32;
            changed.push(("hue", Value::from(self.hue as f64)));
        }
        if let Some(s) = cmd.get_path(".sat").and_then(Value::as_f64) {
            self.sat = s.clamp(0.0, 254.0) as u16;
            changed.push(("sat", Value::from(self.sat as f64)));
        }
        if changed.is_empty() {
            return Vec::new();
        }
        // Hue transits the bridge: basestation access path.
        let delay = AccessPath::Basestation.rpc_delay(rng) + self.settle;
        vec![Actuation::new(delay, status_patch(&changed))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::json;

    #[test]
    fn geeni_speaks_tuya_dps() {
        let mut lamp = GeeniLamp::new();
        let mut rng = Rng::new(1);
        let cmd = json::parse(r#"{"dps": {"1": true, "2": 800}}"#).unwrap();
        let acts = lamp.actuate(0, &cmd, &mut rng);
        assert_eq!(acts.len(), 1);
        assert!(lamp.power());
        assert_eq!(lamp.brightness(), 800);
        assert_eq!(
            acts[0]
                .patch
                .get_path(".control.power.status")
                .unwrap()
                .as_str(),
            Some("on")
        );
        assert_eq!(
            acts[0]
                .patch
                .get_path(".control.brightness.status")
                .unwrap()
                .as_f64(),
            Some(800.0)
        );
        // DT includes LAN RPC + settle, i.e. hundreds of ms.
        assert!(acts[0].delay > dspace_simnet::millis(300));
    }

    #[test]
    fn geeni_clamps_brightness_to_tuya_range() {
        let mut lamp = GeeniLamp::new();
        let mut rng = Rng::new(1);
        let cmd = json::parse(r#"{"dps": {"2": 99999}}"#).unwrap();
        lamp.actuate(0, &cmd, &mut rng);
        assert_eq!(lamp.brightness(), GeeniLamp::BRI_MAX);
        let cmd = json::parse(r#"{"dps": {"2": 1}}"#).unwrap();
        lamp.actuate(0, &cmd, &mut rng);
        assert_eq!(lamp.brightness(), GeeniLamp::BRI_MIN);
    }

    #[test]
    fn geeni_ignores_foreign_commands() {
        let mut lamp = GeeniLamp::new();
        let mut rng = Rng::new(1);
        // A LIFX-style command must not move a Tuya lamp.
        let cmd = json::parse(r#"{"set_power": 65535}"#).unwrap();
        assert!(lamp.actuate(0, &cmd, &mut rng).is_empty());
        assert!(!lamp.power());
    }

    #[test]
    fn lifx_uses_16bit_ranges() {
        let mut lamp = LifxLamp::new();
        let mut rng = Rng::new(2);
        let cmd = json::parse(
            r#"{"set_power": 65535, "set_color": {"brightness": 52428, "kelvin": 4000}}"#,
        )
        .unwrap();
        let acts = lamp.actuate(0, &cmd, &mut rng);
        assert_eq!(lamp.power(), 65535);
        assert_eq!(lamp.brightness(), 52428);
        assert_eq!(lamp.kelvin(), 4000);
        assert_eq!(acts.len(), 1);
        // Kelvin clamps to the Mini's range.
        let cmd = json::parse(r#"{"set_color": {"kelvin": 99000}}"#).unwrap();
        lamp.actuate(0, &cmd, &mut rng);
        assert_eq!(lamp.kelvin(), 9000);
    }

    #[test]
    fn hue_uses_254_scale_and_basestation_path() {
        let mut lamp = HueLamp::new();
        let mut rng = Rng::new(3);
        let cmd = json::parse(r#"{"on": true, "bri": 254, "hue": 46920, "sat": 254}"#).unwrap();
        let acts = lamp.actuate(0, &cmd, &mut rng);
        assert!(lamp.is_on());
        assert_eq!(lamp.bri(), 254);
        assert_eq!(lamp.hue(), 46920);
        // Basestation hop makes Hue slower than a pure-LAN lamp's RPC.
        assert!(acts[0].delay > dspace_simnet::millis(310));
        let cmd = json::parse(r#"{"bri": 900}"#).unwrap();
        lamp.actuate(0, &cmd, &mut rng);
        assert_eq!(lamp.bri(), 254, "bri must clamp to 254");
    }
}

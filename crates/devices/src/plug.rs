//! Teckin SP10 smart plug (Tuya platform) with energy metering.

use dspace_core::actuator::{Actuation, Actuator};
use dspace_simnet::{millis, Rng, Time};
use dspace_value::Value;

use crate::access::AccessPath;

/// The simulated Teckin SP10 plug.
///
/// Like the Geeni lamp it speaks Tuya `dps`: `dps.1` is power. The plug
/// also meters the attached load and periodically reports accumulated
/// energy (`obs.energy_wh`) and instantaneous power (`obs.power_w`) —
/// which is what scenario S9's power controller watches.
#[derive(Debug, Clone)]
pub struct TeckinPlug {
    on: bool,
    /// Wattage of the attached (simulated) load when on.
    pub load_w: f64,
    energy_wh: f64,
    last_tick: Time,
    report_phase: u64,
}

impl TeckinPlug {
    /// Creates a plug that is off, with a given attached load.
    pub fn new(load_w: f64) -> Self {
        TeckinPlug {
            on: false,
            load_w,
            energy_wh: 0.0,
            last_tick: 0,
            report_phase: 0,
        }
    }

    /// Whether the relay is closed.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Total accumulated energy in watt-hours.
    pub fn energy_wh(&self) -> f64 {
        self.energy_wh
    }
}

impl Actuator for TeckinPlug {
    fn name(&self) -> &str {
        "Teckin SP10"
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let Some(p) = cmd.get_path(".dps.1").and_then(Value::as_bool) else {
            return Vec::new();
        };
        self.on = p;
        let mut patch = dspace_value::obj();
        patch
            .set(
                &".control.power.status".parse().unwrap(),
                Value::from(if p { "on" } else { "off" }),
            )
            .unwrap();
        vec![Actuation::new(
            AccessPath::Lan.rpc_delay(rng) + millis(150),
            patch,
        )]
    }

    fn step(&mut self, now: Time, _model: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let elapsed_h = (now - self.last_tick) as f64 / 1e9 / 3600.0;
        self.last_tick = now;
        if self.on {
            self.energy_wh += self.load_w * elapsed_h;
        }
        self.report_phase += 1;
        if !self.report_phase.is_multiple_of(10) {
            return Vec::new();
        }
        let mut patch = dspace_value::obj();
        patch
            .set(&".obs.energy_wh".parse().unwrap(), self.energy_wh.into())
            .unwrap();
        patch
            .set(
                &".obs.power_w".parse().unwrap(),
                Value::from(if self.on { self.load_w } else { 0.0 }),
            )
            .unwrap();
        vec![Actuation::new(AccessPath::Lan.rpc_delay(rng), patch)]
    }

    fn poll_interval(&self) -> Option<Time> {
        Some(millis(500))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_simnet::secs;
    use dspace_value::json;

    #[test]
    fn tuya_dps_switches_relay() {
        let mut plug = TeckinPlug::new(60.0);
        let mut rng = Rng::new(1);
        let acts = plug.actuate(
            0,
            &json::parse(r#"{"dps": {"1": true}}"#).unwrap(),
            &mut rng,
        );
        assert!(plug.is_on());
        assert_eq!(
            acts[0]
                .patch
                .get_path(".control.power.status")
                .unwrap()
                .as_str(),
            Some("on")
        );
        assert!(plug
            .actuate(0, &json::parse(r#"{"volume": 3}"#).unwrap(), &mut rng)
            .is_empty());
    }

    #[test]
    fn energy_accumulates_only_while_on() {
        let mut plug = TeckinPlug::new(120.0);
        let mut rng = Rng::new(2);
        plug.step(secs(1800), &Value::Null, &mut rng); // 30 min off
        assert_eq!(plug.energy_wh(), 0.0);
        plug.actuate(
            secs(1800),
            &json::parse(r#"{"dps": {"1": true}}"#).unwrap(),
            &mut rng,
        );
        plug.step(secs(5400), &Value::Null, &mut rng); // 60 min on at 120 W
        assert!(
            (plug.energy_wh() - 120.0).abs() < 1.0,
            "wh={}",
            plug.energy_wh()
        );
    }

    #[test]
    fn periodic_energy_reports() {
        let mut plug = TeckinPlug::new(60.0);
        let mut rng = Rng::new(3);
        let mut reports = 0;
        for i in 1..=20u64 {
            reports += plug.step(millis(i * 500), &Value::Null, &mut rng).len();
        }
        assert_eq!(reports, 2);
    }
}

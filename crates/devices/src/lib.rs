//! Simulated IoT devices: the nine retail devices of Table 2.
//!
//! The paper's testbed uses real devices from nine vendors, each with its
//! own library, parameter space, and access path (LAN, basestation relay,
//! or vendor cloud). This crate reproduces that heterogeneity with
//! simulated devices implementing [`dspace_core::Actuator`]:
//!
//! | Device | Vendor | Paper's library | Access | Module |
//! |---|---|---|---|---|
//! | Light bulb L1 | GEENI LUX800 | tuyapi | LAN | [`lamps::GeeniLamp`] |
//! | Light bulb L2 | LIFX Mini | lifxlan | LAN | [`lamps::LifxLamp`] |
//! | Light bulb L3 | Philips Hue | phue | basestation/LAN | [`lamps::HueLamp`] |
//! | Motion sensor | Ring kit | ring-client-api | basestation/LAN | [`sensors::RingMotionSensor`] |
//! | Camera | Wyze CP1 | RTSP stream | LAN | [`media::WyzeCam`] |
//! | Robot vacuum | iRobot Roomba 675 | dorita980 | LAN | [`vacuum::Roomba`] |
//! | Speaker | Bose ST10 | soundtouch | vendor cloud | [`media::BoseSpeaker`] |
//! | Fan/heater | Dyson HP01 | libpurecoollink | LAN | [`sensors::DysonFan`] |
//! | Plug | Teckin SP10 | tuyapi | LAN | [`plug::TeckinPlug`] |
//!
//! Each device keeps its vendor's *native* parameter space (Tuya `dps`
//! tables, LIFX 16-bit HSBK, Hue 0–254 `bri`, Dyson's zero-padded string
//! codes). Translating those to a universal model is exactly the job the
//! paper gives the UniLamp digivice (§2.3) — the devices must stay
//! idiosyncratic for that evaluation to be meaningful.

pub mod access;
pub mod lamps;
pub mod media;
pub mod plug;
pub mod sensors;
pub mod vacuum;

pub use access::AccessPath;
pub use lamps::{GeeniLamp, HueLamp, LifxLamp};
pub use media::{BoseSpeaker, WyzeCam};
pub use plug::TeckinPlug;
pub use sensors::{DysonFan, RingMotionSensor};
pub use vacuum::Roomba;

//! Sensors: the Ring motion detector and the Dyson HP01 fan/heater.

use std::collections::VecDeque;

use dspace_core::actuator::{Actuation, Actuator};
use dspace_simnet::{millis, Rng, Time};
use dspace_value::Value;

use crate::access::AccessPath;

/// Ring Alarm Motion Detector (basestation access).
///
/// Purely event-driven: motion events come either from a scripted schedule
/// (deterministic experiments) or a Poisson process (workload generation).
/// Each event patches `obs.last_triggered_time` (seconds) and
/// `obs.motion` — the attributes the Fig. 3 reflex reads.
#[derive(Debug, Clone)]
pub struct RingMotionSensor {
    schedule: VecDeque<Time>,
    /// Mean seconds between Poisson motion events; `None` = scripted only.
    poisson_mean_s: Option<f64>,
    next_poisson: Option<Time>,
    battery_pct: f64,
}

impl RingMotionSensor {
    /// Creates a sensor with a scripted list of motion times.
    pub fn with_schedule(mut times: Vec<Time>) -> Self {
        times.sort_unstable();
        RingMotionSensor {
            schedule: times.into(),
            poisson_mean_s: None,
            next_poisson: None,
            battery_pct: 100.0,
        }
    }

    /// Creates a sensor emitting Poisson-distributed motion events.
    pub fn with_poisson(mean_seconds_between: f64) -> Self {
        RingMotionSensor {
            schedule: VecDeque::new(),
            poisson_mean_s: Some(mean_seconds_between),
            next_poisson: None,
            battery_pct: 100.0,
        }
    }

    /// Remaining battery percentage (drains slowly per event).
    pub fn battery(&self) -> f64 {
        self.battery_pct
    }
}

impl Actuator for RingMotionSensor {
    fn name(&self) -> &str {
        "Ring Motion Detector"
    }

    fn actuate(&mut self, _now: Time, _cmd: &Value, _rng: &mut Rng) -> Vec<Actuation> {
        Vec::new() // Sensors are not actuated.
    }

    fn step(&mut self, now: Time, _model: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let mut fired = false;
        while self.schedule.front().is_some_and(|t| *t <= now) {
            self.schedule.pop_front();
            fired = true;
        }
        if let Some(mean) = self.poisson_mean_s {
            match self.next_poisson {
                None => {
                    self.next_poisson = Some(now + (rng.exponential(mean) * 1e9) as Time);
                }
                Some(t) if t <= now => {
                    fired = true;
                    self.next_poisson = Some(now + (rng.exponential(mean) * 1e9) as Time);
                }
                _ => {}
            }
        }
        if !fired {
            return Vec::new();
        }
        self.battery_pct = (self.battery_pct - 0.01).max(0.0);
        let mut patch = dspace_value::obj();
        let now_s = now as f64 / 1e9;
        patch
            .set(&".obs.last_triggered_time".parse().unwrap(), now_s.into())
            .unwrap();
        patch
            .set(&".obs.motion".parse().unwrap(), true.into())
            .unwrap();
        patch
            .set(&".obs.battery".parse().unwrap(), self.battery_pct.into())
            .unwrap();
        vec![Actuation::new(
            AccessPath::Basestation.rpc_delay(rng),
            patch,
        )]
    }

    fn poll_interval(&self) -> Option<Time> {
        Some(millis(200))
    }
}

/// Dyson HP01 fan/heater (LAN, libpurecoollink-style string codes).
///
/// The real library encodes fan speed as zero-padded strings (`"0004"`)
/// and heat target as decikelvin strings (`"2930"`); the simulation keeps
/// those quirks. It also reports air-quality observations periodically.
#[derive(Debug, Clone)]
pub struct DysonFan {
    /// Fan speed 0–10.
    speed: u8,
    /// Heat target in decikelvin (e.g. 2930 = 293.0 K).
    heat_target_dk: u32,
    heating: bool,
    aq_phase: u64,
}

impl DysonFan {
    /// Creates a stopped fan.
    pub fn new() -> Self {
        DysonFan {
            speed: 0,
            heat_target_dk: 2930,
            heating: false,
            aq_phase: 0,
        }
    }

    /// Current fan speed (0–10).
    pub fn speed(&self) -> u8 {
        self.speed
    }

    /// Current heat target in decikelvin.
    pub fn heat_target_dk(&self) -> u32 {
        self.heat_target_dk
    }

    /// Whether heating mode is on.
    pub fn heating(&self) -> bool {
        self.heating
    }
}

impl Default for DysonFan {
    fn default() -> Self {
        Self::new()
    }
}

impl Actuator for DysonFan {
    fn name(&self) -> &str {
        "Dyson HP01"
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let mut changed = Vec::new();
        if let Some(code) = cmd.get_path(".fan_speed").and_then(Value::as_str) {
            // libpurecoollink sends "0001".."0010".
            if let Ok(speed) = code.parse::<u8>() {
                self.speed = speed.min(10);
                changed.push((".control.fan_speed.status", Value::from(self.speed as f64)));
            }
        }
        if let Some(code) = cmd.get_path(".heat_target").and_then(Value::as_str) {
            if let Ok(dk) = code.parse::<u32>() {
                self.heat_target_dk = dk.clamp(2740, 3100);
                changed.push((
                    ".control.heat_target.status",
                    Value::from(self.heat_target_dk as f64),
                ));
            }
        }
        if let Some(mode) = cmd.get_path(".heat_mode").and_then(Value::as_str) {
            self.heating = mode == "HEAT";
            changed.push((
                ".control.heat_mode.status",
                Value::from(if self.heating { "HEAT" } else { "OFF" }),
            ));
        }
        if changed.is_empty() {
            return Vec::new();
        }
        let mut patch = dspace_value::obj();
        for (path, v) in changed {
            patch.set(&path.parse().unwrap(), v).unwrap();
        }
        vec![Actuation::new(
            AccessPath::Lan.rpc_delay(rng) + millis(320),
            patch,
        )]
    }

    fn step(&mut self, _now: Time, _model: &Value, rng: &mut Rng) -> Vec<Actuation> {
        // Air-quality report every ~10 ticks.
        self.aq_phase += 1;
        if !self.aq_phase.is_multiple_of(10) {
            return Vec::new();
        }
        let pm25 = 5.0 + rng.uniform(0.0, 20.0);
        let mut patch = dspace_value::obj();
        patch
            .set(&".obs.pm25".parse().unwrap(), pm25.into())
            .unwrap();
        vec![Actuation::new(AccessPath::Lan.rpc_delay(rng), patch)]
    }

    fn poll_interval(&self) -> Option<Time> {
        Some(millis(500))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::json;

    #[test]
    fn scripted_motion_fires_at_schedule() {
        let mut sensor = RingMotionSensor::with_schedule(vec![dspace_simnet::secs(5)]);
        let mut rng = Rng::new(1);
        assert!(sensor
            .step(dspace_simnet::secs(1), &Value::Null, &mut rng)
            .is_empty());
        let acts = sensor.step(dspace_simnet::secs(5), &Value::Null, &mut rng);
        assert_eq!(acts.len(), 1);
        assert_eq!(
            acts[0]
                .patch
                .get_path(".obs.last_triggered_time")
                .unwrap()
                .as_f64(),
            Some(5.0)
        );
        assert_eq!(
            acts[0].patch.get_path(".obs.motion").unwrap().as_bool(),
            Some(true)
        );
        // Consumed: does not fire twice.
        assert!(sensor
            .step(dspace_simnet::secs(6), &Value::Null, &mut rng)
            .is_empty());
    }

    #[test]
    fn poisson_motion_fires_repeatedly() {
        let mut sensor = RingMotionSensor::with_poisson(10.0);
        let mut rng = Rng::new(2);
        let mut events = 0;
        for tick in 0..3000u64 {
            events += sensor
                .step(dspace_simnet::millis(tick * 200), &Value::Null, &mut rng)
                .len();
        }
        // 600 s at one event per ~10 s: about 60, allow wide slack.
        assert!((30..120).contains(&events), "events={events}");
    }

    #[test]
    fn motion_sensor_ignores_commands() {
        let mut sensor = RingMotionSensor::with_schedule(vec![]);
        let mut rng = Rng::new(3);
        assert!(sensor
            .actuate(0, &json::parse(r#"{"power": "on"}"#).unwrap(), &mut rng)
            .is_empty());
    }

    #[test]
    fn dyson_parses_string_codes() {
        let mut fan = DysonFan::new();
        let mut rng = Rng::new(4);
        let cmd =
            json::parse(r#"{"fan_speed": "0007", "heat_target": "2980", "heat_mode": "HEAT"}"#)
                .unwrap();
        let acts = fan.actuate(0, &cmd, &mut rng);
        assert_eq!(fan.speed(), 7);
        assert_eq!(fan.heat_target_dk(), 2980);
        assert!(fan.heating());
        assert_eq!(acts.len(), 1);
        // Heat target clamps to the HP01 range.
        let cmd = json::parse(r#"{"heat_target": "9999"}"#).unwrap();
        fan.actuate(0, &cmd, &mut rng);
        assert_eq!(fan.heat_target_dk(), 3100);
    }

    #[test]
    fn dyson_reports_air_quality_periodically() {
        let mut fan = DysonFan::new();
        let mut rng = Rng::new(5);
        let mut reports = 0;
        for i in 0..40 {
            reports += fan
                .step(dspace_simnet::millis(i * 500), &Value::Null, &mut rng)
                .len();
        }
        assert_eq!(reports, 4);
    }
}

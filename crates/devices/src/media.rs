//! Media devices: the Wyze camera and the Bose SoundTouch speaker.

use dspace_core::actuator::{Actuation, Actuator};
use dspace_simnet::{millis, Rng, Time};
use dspace_value::Value;

use crate::access::AccessPath;

/// Wyze Cam CP1: an RTSP camera (LAN).
///
/// The camera digi is a data *source*: once online it publishes its RTSP
/// URL to `data.output.url`. The stream itself (≈4.3 Mb/s in the paper's
/// hybrid experiment, §6.5) is consumed by whatever engine the URL is
/// piped to; this device accounts the stream bandwidth while streaming.
#[derive(Debug, Clone)]
pub struct WyzeCam {
    url: String,
    online: bool,
    /// Stream bitrate in bits per second (paper: 4.3 Mb/s).
    pub bitrate_bps: f64,
}

impl WyzeCam {
    /// Creates a camera that will publish `rtsp://<host>/live`.
    pub fn new(host: impl Into<String>) -> Self {
        WyzeCam {
            url: format!("rtsp://{}/live", host.into()),
            online: false,
            bitrate_bps: 4.3e6,
        }
    }

    /// The camera's stream URL.
    pub fn url(&self) -> &str {
        &self.url
    }
}

impl Actuator for WyzeCam {
    fn name(&self) -> &str {
        "Wyze CP1"
    }

    fn actuate(&mut self, _now: Time, _cmd: &Value, _rng: &mut Rng) -> Vec<Actuation> {
        Vec::new() // The camera exposes no control surface here.
    }

    fn step(&mut self, _now: Time, _model: &Value, rng: &mut Rng) -> Vec<Actuation> {
        if self.online {
            // Account stream bandwidth for this poll interval (500 ms).
            let bytes = (self.bitrate_bps * 0.5 / 8.0) as usize;
            return vec![Actuation::new(0, dspace_value::obj()).with_bytes(bytes)];
        }
        self.online = true;
        let mut patch = dspace_value::obj();
        patch
            .set(
                &".data.output.url".parse().unwrap(),
                Value::from(self.url.as_str()),
            )
            .unwrap();
        patch
            .set(&".obs.online".parse().unwrap(), true.into())
            .unwrap();
        vec![Actuation::new(AccessPath::Lan.rpc_delay(rng), patch)]
    }

    fn poll_interval(&self) -> Option<Time> {
        Some(millis(500))
    }
}

/// Bose SoundTouch 10 — the one vendor-cloud device of Table 2.
///
/// "The speaker can only be accessed via the vendor (Bose) cloud and hence
/// RPC calls have to be sent to/from the vendor's server and then relayed
/// to/from the device." Commands use SoundTouch key/volume semantics:
/// `{"key": "PLAY"|"PAUSE"}`, `{"volume": 0..100}`,
/// `{"source_url": "..."}`.
#[derive(Debug, Clone)]
pub struct BoseSpeaker {
    playing: bool,
    volume: u8,
    source_url: String,
}

impl BoseSpeaker {
    /// Creates a paused speaker at volume 30.
    pub fn new() -> Self {
        BoseSpeaker {
            playing: false,
            volume: 30,
            source_url: String::new(),
        }
    }

    /// Whether audio is playing.
    pub fn playing(&self) -> bool {
        self.playing
    }

    /// Current volume (0–100).
    pub fn volume(&self) -> u8 {
        self.volume
    }

    /// Current source stream URL.
    pub fn source_url(&self) -> &str {
        &self.source_url
    }
}

impl Default for BoseSpeaker {
    fn default() -> Self {
        Self::new()
    }
}

impl Actuator for BoseSpeaker {
    fn name(&self) -> &str {
        "Bose ST10"
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let mut patch = dspace_value::obj();
        let mut changed = false;
        if let Some(key) = cmd.get_path(".key").and_then(Value::as_str) {
            match key {
                "PLAY" => self.playing = true,
                "PAUSE" => self.playing = false,
                _ => return Vec::new(), // Unknown SoundTouch key.
            }
            patch
                .set(
                    &".control.mode.status".parse().unwrap(),
                    Value::from(if self.playing { "play" } else { "pause" }),
                )
                .unwrap();
            changed = true;
        }
        if let Some(v) = cmd.get_path(".volume").and_then(Value::as_f64) {
            self.volume = v.clamp(0.0, 100.0) as u8;
            patch
                .set(
                    &".control.volume.status".parse().unwrap(),
                    Value::from(self.volume as f64),
                )
                .unwrap();
            changed = true;
        }
        if let Some(url) = cmd.get_path(".source_url").and_then(Value::as_str) {
            self.source_url = url.to_string();
            patch
                .set(
                    &".control.source_url.status".parse().unwrap(),
                    Value::from(url),
                )
                .unwrap();
            changed = true;
        }
        if !changed {
            return Vec::new();
        }
        // Vendor-cloud round trip plus the speaker's own settle time.
        let delay = AccessPath::VendorCloud.rpc_delay(rng) + millis(250);
        vec![Actuation::new(delay, patch)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::json;

    #[test]
    fn camera_publishes_url_once_then_streams() {
        let mut cam = WyzeCam::new("10.0.0.42");
        let mut rng = Rng::new(1);
        let first = cam.step(0, &Value::Null, &mut rng);
        assert_eq!(first.len(), 1);
        assert_eq!(
            first[0]
                .patch
                .get_path(".data.output.url")
                .unwrap()
                .as_str(),
            Some("rtsp://10.0.0.42/live")
        );
        // Subsequent polls account bandwidth only.
        let next = cam.step(millis(500), &Value::Null, &mut rng);
        assert_eq!(next.len(), 1);
        assert!(next[0].patch.as_object().unwrap().is_empty());
        let expected = (4.3e6 * 0.5 / 8.0) as usize;
        assert_eq!(next[0].bytes, expected);
    }

    #[test]
    fn speaker_commands_via_vendor_cloud_are_slow() {
        let mut spk = BoseSpeaker::new();
        let mut rng = Rng::new(2);
        let acts = spk.actuate(0, &json::parse(r#"{"key": "PLAY"}"#).unwrap(), &mut rng);
        assert!(spk.playing());
        assert_eq!(acts.len(), 1);
        // Cloud relay: notably slower than LAN devices.
        assert!(acts[0].delay > millis(300), "delay={}", acts[0].delay);
        assert_eq!(
            acts[0]
                .patch
                .get_path(".control.mode.status")
                .unwrap()
                .as_str(),
            Some("play")
        );
    }

    #[test]
    fn speaker_volume_and_source() {
        let mut spk = BoseSpeaker::new();
        let mut rng = Rng::new(3);
        spk.actuate(
            0,
            &json::parse(r#"{"volume": 250, "source_url": "http://news/stream"}"#).unwrap(),
            &mut rng,
        );
        assert_eq!(spk.volume(), 100, "volume clamps to 100");
        assert_eq!(spk.source_url(), "http://news/stream");
    }

    #[test]
    fn speaker_rejects_unknown_keys() {
        let mut spk = BoseSpeaker::new();
        let mut rng = Rng::new(4);
        assert!(spk
            .actuate(0, &json::parse(r#"{"key": "EXPLODE"}"#).unwrap(), &mut rng)
            .is_empty());
        assert!(!spk.playing());
    }
}

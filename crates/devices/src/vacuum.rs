//! iRobot Roomba 675 (dorita980-style LAN API) with a movement model.
//!
//! Scenario S5 pauses the robot when a human is present; S8 remounts its
//! digivice as it moves between rooms. The simulated Roomba has a
//! dorita980 command surface (`start`/`pause`/`dock`), a battery model,
//! and a scripted patrol route that reports the robot's current room as an
//! observation.

use dspace_core::actuator::{Actuation, Actuator};
use dspace_simnet::{millis, Rng, Time};
use dspace_value::Value;

use crate::access::AccessPath;

/// Cleaning phase, mirroring dorita980's `cleanMissionStatus.phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Docked and charging.
    Charge,
    /// Actively cleaning.
    Run,
    /// Paused mid-mission.
    Stop,
}

impl Phase {
    /// The dorita980 phase string.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Charge => "charge",
            Phase::Run => "run",
            Phase::Stop => "stop",
        }
    }
}

/// The simulated Roomba 675.
#[derive(Debug, Clone)]
pub struct Roomba {
    phase: Phase,
    battery_pct: f64,
    /// Scripted patrol: `(time, room)` waypoints; the robot is "in" the
    /// room of the latest waypoint that has passed — but only progresses
    /// while running.
    route: Vec<(Time, String)>,
    route_idx: usize,
    current_room: String,
    last_tick: Time,
}

impl Roomba {
    /// Creates a docked Roomba in `start_room` with a patrol route.
    pub fn new(start_room: impl Into<String>, route: Vec<(Time, String)>) -> Self {
        Roomba {
            phase: Phase::Charge,
            battery_pct: 100.0,
            route,
            route_idx: 0,
            current_room: start_room.into(),
            last_tick: 0,
        }
    }

    /// Current mission phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current battery percentage.
    pub fn battery(&self) -> f64 {
        self.battery_pct
    }

    /// The room the robot currently occupies.
    pub fn current_room(&self) -> &str {
        &self.current_room
    }
}

impl Actuator for Roomba {
    fn name(&self) -> &str {
        "iRobot Roomba 675"
    }

    fn actuate(&mut self, _now: Time, cmd: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let Some(command) = cmd.get_path(".command").and_then(Value::as_str) else {
            return Vec::new();
        };
        let new_phase = match command {
            "start" | "resume" => Phase::Run,
            "pause" | "stop" => Phase::Stop,
            "dock" => Phase::Charge,
            _ => return Vec::new(),
        };
        self.phase = new_phase;
        let mut patch = dspace_value::obj();
        patch
            .set(
                &".control.mode.status".parse().unwrap(),
                Value::from(self.phase.as_str()),
            )
            .unwrap();
        // Robot command execution is slow: motor spin-up etc.
        let delay = AccessPath::Lan.rpc_delay(rng) + millis(700);
        vec![Actuation::new(delay, patch)]
    }

    fn step(&mut self, now: Time, _model: &Value, rng: &mut Rng) -> Vec<Actuation> {
        let elapsed_s = (now - self.last_tick) as f64 / 1e9;
        self.last_tick = now;
        let mut patch = dspace_value::obj();
        let mut changed = false;
        match self.phase {
            Phase::Run => {
                self.battery_pct = (self.battery_pct - 0.05 * elapsed_s).max(0.0);
                // Progress along the route only while running.
                while self
                    .route
                    .get(self.route_idx)
                    .is_some_and(|(t, _)| *t <= now)
                {
                    let (_, room) = &self.route[self.route_idx];
                    if *room != self.current_room {
                        self.current_room = room.clone();
                        patch
                            .set(
                                &".obs.current_room".parse().unwrap(),
                                Value::from(self.current_room.as_str()),
                            )
                            .unwrap();
                        changed = true;
                    }
                    self.route_idx += 1;
                }
                if self.battery_pct <= 5.0 {
                    // Auto-dock on low battery.
                    self.phase = Phase::Charge;
                    patch
                        .set(&".control.mode.status".parse().unwrap(), "charge".into())
                        .unwrap();
                    changed = true;
                }
            }
            Phase::Charge => {
                self.battery_pct = (self.battery_pct + 0.5 * elapsed_s).min(100.0);
            }
            Phase::Stop => {}
        }
        if changed {
            let mut full = patch;
            full.set(&".obs.battery".parse().unwrap(), self.battery_pct.into())
                .unwrap();
            vec![Actuation::new(AccessPath::Lan.rpc_delay(rng), full)]
        } else {
            Vec::new()
        }
    }

    fn poll_interval(&self) -> Option<Time> {
        Some(millis(500))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_simnet::secs;
    use dspace_value::json;

    #[test]
    fn dorita980_commands_change_phase() {
        let mut rb = Roomba::new("kitchen", vec![]);
        let mut rng = Rng::new(1);
        let acts = rb.actuate(
            0,
            &json::parse(r#"{"command": "start"}"#).unwrap(),
            &mut rng,
        );
        assert_eq!(rb.phase(), Phase::Run);
        assert_eq!(
            acts[0]
                .patch
                .get_path(".control.mode.status")
                .unwrap()
                .as_str(),
            Some("run")
        );
        rb.actuate(
            0,
            &json::parse(r#"{"command": "pause"}"#).unwrap(),
            &mut rng,
        );
        assert_eq!(rb.phase(), Phase::Stop);
        rb.actuate(0, &json::parse(r#"{"command": "dock"}"#).unwrap(), &mut rng);
        assert_eq!(rb.phase(), Phase::Charge);
        // Unknown commands ignored.
        assert!(rb
            .actuate(0, &json::parse(r#"{"command": "fly"}"#).unwrap(), &mut rng)
            .is_empty());
    }

    #[test]
    fn route_progresses_only_while_running() {
        let route = vec![
            (secs(10), "living".to_string()),
            (secs(20), "bedroom".to_string()),
        ];
        let mut rb = Roomba::new("kitchen", route);
        let mut rng = Rng::new(2);
        // Docked: time passes, no movement.
        rb.step(secs(15), &Value::Null, &mut rng);
        assert_eq!(rb.current_room(), "kitchen");
        // Start cleaning: waypoints that have passed apply.
        rb.actuate(
            secs(15),
            &json::parse(r#"{"command": "start"}"#).unwrap(),
            &mut rng,
        );
        let acts = rb.step(secs(16), &Value::Null, &mut rng);
        assert_eq!(rb.current_room(), "living");
        assert_eq!(
            acts[0]
                .patch
                .get_path(".obs.current_room")
                .unwrap()
                .as_str(),
            Some("living")
        );
        rb.step(secs(21), &Value::Null, &mut rng);
        assert_eq!(rb.current_room(), "bedroom");
    }

    #[test]
    fn battery_drains_cleaning_and_charges_docked() {
        let mut rb = Roomba::new("kitchen", vec![]);
        let mut rng = Rng::new(3);
        rb.actuate(
            0,
            &json::parse(r#"{"command": "start"}"#).unwrap(),
            &mut rng,
        );
        rb.step(secs(100), &Value::Null, &mut rng);
        assert!(rb.battery() < 100.0);
        let low = rb.battery();
        rb.actuate(
            secs(100),
            &json::parse(r#"{"command": "dock"}"#).unwrap(),
            &mut rng,
        );
        rb.step(secs(150), &Value::Null, &mut rng);
        assert!(rb.battery() > low);
    }

    #[test]
    fn auto_docks_on_low_battery() {
        let mut rb = Roomba::new("kitchen", vec![]);
        rb.battery_pct = 6.0;
        let mut rng = Rng::new(4);
        rb.actuate(
            0,
            &json::parse(r#"{"command": "start"}"#).unwrap(),
            &mut rng,
        );
        // Drain below the threshold: 0.05%/s, needs ~30s.
        let acts = rb.step(secs(60), &Value::Null, &mut rng);
        assert_eq!(rb.phase(), Phase::Charge);
        assert!(!acts.is_empty());
    }
}

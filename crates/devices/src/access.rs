//! Device access paths (§6.1): LAN RPC, basestation relay, vendor cloud.
//!
//! "Most of these devices (8/9) can be accessed via local RPCs … The one
//! exception is the Bose ST10 speaker, which "can only be accessed via the
//! vendor (Bose) cloud." Access latency is the first component of the
//! paper's *device actuation time* (DT); the second is the device's own
//! settle time, modelled per device.

use dspace_simnet::{LatencyModel, Rng, Time};

/// How a device is reached from the digi driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Direct LAN RPC (Tuya local keys, lifxlan UDP, dorita980, RTSP…).
    Lan,
    /// Through a local basestation/bridge (Philips Hue bridge, Ring kit).
    Basestation,
    /// Relayed through the vendor's cloud (Bose SoundTouch).
    VendorCloud,
}

impl AccessPath {
    /// The RPC round-trip latency model for this path, calibrated to
    /// home-networking magnitudes.
    pub fn latency(&self) -> LatencyModel {
        match self {
            AccessPath::Lan => LatencyModel::NormalMs(12.0, 3.0),
            AccessPath::Basestation => LatencyModel::NormalMs(45.0, 10.0),
            AccessPath::VendorCloud => LatencyModel::NormalMs(160.0, 35.0),
        }
    }

    /// Samples one round-trip over this path.
    pub fn rpc_delay(&self, rng: &mut Rng) -> Time {
        self.latency().sample(rng)
    }

    /// Short label used in traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            AccessPath::Lan => "LAN",
            AccessPath::Basestation => "BS/LAN",
            AccessPath::VendorCloud => "VC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_is_slower_than_basestation_is_slower_than_lan() {
        let mut rng = Rng::new(1);
        let avg = |p: AccessPath, rng: &mut Rng| -> f64 {
            (0..500).map(|_| p.rpc_delay(rng) as f64).sum::<f64>() / 500.0
        };
        let lan = avg(AccessPath::Lan, &mut rng);
        let bs = avg(AccessPath::Basestation, &mut rng);
        let vc = avg(AccessPath::VendorCloud, &mut rng);
        assert!(lan < bs && bs < vc, "lan={lan} bs={bs} vc={vc}");
    }

    #[test]
    fn labels_match_table2() {
        assert_eq!(AccessPath::Lan.as_str(), "LAN");
        assert_eq!(AccessPath::Basestation.as_str(), "BS/LAN");
        assert_eq!(AccessPath::VendorCloud.as_str(), "VC");
    }
}

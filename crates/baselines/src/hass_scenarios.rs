//! Best-attempt ports of S1, S3, and S4 to the mini Home Assistant
//! (§6.3: "we made a best attempt at implementing three scenarios — S1,
//! S3, and S4 — in Home Assistant").
//!
//! The `// --- sN begin/end ---` markers delimit the code attributable to
//! each scenario; the Table-4/Table-5 harness counts those lines and
//! compares them against the dSpace scenario implementations. As in the
//! paper, the bulk of the code is *workarounds*: Home Assistant's group
//! APIs cannot express a heterogeneous brightness aggregate, so S1 needs a
//! hand-rolled "room service" component — complete with the integration
//! plumbing a real custom component carries: a YAML configuration schema
//! with validation, service registration, per-vendor attribute
//! conversions, availability handling, state polling (there is no
//! declarative status to subscribe to), and configuration reload for any
//! membership change.

use std::collections::BTreeMap;

use dspace_value::{yaml, Value};

use crate::hass::{Automation, Hass, HassError, ServiceCall};

// --- s1 begin ---
/// Errors raised while setting up the custom room component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// The YAML configuration did not parse.
    BadConfig(String),
    /// A configured member entity does not exist.
    UnknownEntity(String),
    /// A configured member is not a light.
    NotALight(String),
    /// A service call failed during fan-out.
    Service(String),
}

impl From<HassError> for SetupError {
    fn from(e: HassError) -> Self {
        SetupError::Service(e.to_string())
    }
}

/// Vendor quirk table the component must maintain by hand: attribute
/// scale and whether the integration reports brightness while off.
struct VendorQuirks {
    scale: f64,
    reports_brightness_when_off: bool,
}

fn vendor_quirks(entity_id: &str) -> VendorQuirks {
    if entity_id.contains("geeni") || entity_id.contains("tuya") {
        VendorQuirks {
            scale: 1000.0,
            reports_brightness_when_off: false,
        }
    } else if entity_id.contains("lifx") {
        VendorQuirks {
            scale: 65535.0,
            reports_brightness_when_off: true,
        }
    } else if entity_id.contains("hue") {
        VendorQuirks {
            scale: 254.0,
            reports_brightness_when_off: false,
        }
    } else {
        VendorQuirks {
            scale: 255.0,
            reports_brightness_when_off: false,
        }
    }
}

/// The configuration schema of the room component, e.g.:
///
/// ```yaml
/// room:
///   name: living
///   members:
///     - light.geeni_1
///     - light.lifx_1
/// ```
pub struct RoomConfig {
    /// Room name.
    pub name: String,
    /// Member light entity ids.
    pub members: Vec<String>,
}

impl RoomConfig {
    /// Parses and validates the configuration file contents.
    pub fn parse(config_yaml: &str, hass: &Hass) -> Result<RoomConfig, SetupError> {
        let doc = yaml::parse(config_yaml).map_err(|e| SetupError::BadConfig(e.to_string()))?;
        let name = doc
            .get_path(".room.name")
            .and_then(Value::as_str)
            .ok_or_else(|| SetupError::BadConfig("room.name missing".into()))?
            .to_string();
        let members_val = doc
            .get_path(".room.members")
            .and_then(Value::as_array)
            .ok_or_else(|| SetupError::BadConfig("room.members missing".into()))?;
        let mut members = Vec::new();
        for m in members_val {
            let id = m
                .as_str()
                .ok_or_else(|| SetupError::BadConfig("member must be a string".into()))?;
            let ent = hass
                .entity(id)
                .ok_or_else(|| SetupError::UnknownEntity(id.to_string()))?;
            if ent.domain() != "light" {
                return Err(SetupError::NotALight(id.to_string()));
            }
            members.push(id.to_string());
        }
        Ok(RoomConfig { name, members })
    }
}

/// The hand-rolled "room service" component for S1.
pub struct RoomService {
    config: RoomConfig,
    /// Target room brightness, 0–1.
    pub target: f64,
    /// Members that failed their last service call (availability).
    pub unavailable: Vec<String>,
}

impl RoomService {
    /// Component setup: parse + validate the config, then register the
    /// services the rest of the system will call.
    pub fn setup(hass: &Hass, config_yaml: &str) -> Result<RoomService, SetupError> {
        let config = RoomConfig::parse(config_yaml, hass)?;
        Ok(RoomService {
            config,
            target: 0.0,
            unavailable: Vec::new(),
        })
    }

    /// The room name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Configuration reload — the only way to change membership
    /// ("though awkward, this can be done at runtime by reloading the
    /// configuration file of the room service", §6.3).
    pub fn reload(&mut self, hass: &Hass, config_yaml: &str) -> Result<(), SetupError> {
        self.config = RoomConfig::parse(config_yaml, hass)?;
        // Re-apply the current target so new members converge.
        Ok(())
    }

    /// The `room.set_brightness` service: fans out imperative calls with
    /// inline per-vendor conversion, tracking unavailable members.
    pub fn set_brightness(&mut self, hass: &mut Hass, target: f64) -> Result<(), SetupError> {
        self.target = target.clamp(0.0, 1.0);
        self.unavailable.clear();
        for member in self.config.members.clone() {
            let quirks = vendor_quirks(&member);
            let scaled = (self.target * quirks.scale).round();
            let result = if self.target > 0.0 {
                let mut data = BTreeMap::new();
                data.insert("brightness".to_string(), Value::from(scaled));
                hass.call_service("light", "turn_on", &member, data)
            } else {
                hass.call_service("light", "turn_off", &member, BTreeMap::new())
            };
            if result.is_err() {
                // Keep going: one unavailable bulb must not wedge the room.
                self.unavailable.push(member);
            }
        }
        Ok(())
    }

    /// The `room.get_brightness` poll: there is no declarative status to
    /// subscribe to, so the room re-reads every member and re-normalizes
    /// each vendor's scale (honouring per-vendor reporting quirks).
    pub fn read_brightness(&self, hass: &Hass) -> f64 {
        let mut sum = 0.0;
        let mut n = 0.0;
        for member in &self.config.members {
            let Some(ent) = hass.entity(member) else {
                continue;
            };
            let quirks = vendor_quirks(member);
            if ent.state == "on" {
                if let Some(b) = ent.attributes.get("brightness").and_then(Value::as_f64) {
                    sum += b / quirks.scale;
                    n += 1.0;
                }
            } else if quirks.reports_brightness_when_off {
                // LIFX-style: brightness retained while off; room reads 0.
                n += 1.0;
            } else {
                n += 1.0;
            }
        }
        if n > 0.0 {
            sum / n
        } else {
            0.0
        }
    }
}
// --- s1 end ---

// --- s3 begin ---
/// S3 as a flat-file automation: the YAML an end user must write, one
/// action per lamp (the rule cannot address "the room", §6.3), plus the
/// loader that turns it into runtime rules.
pub fn s3_automation_yaml(members: &[&str]) -> String {
    let mut out = String::from(
        "automation:\n  - alias: motion-brightness\n    trigger:\n      \
         entity: binary_sensor.ring_motion\n      to: \"on\"\n    actions:\n",
    );
    for m in members {
        let scale = vendor_quirks(m).scale;
        out.push_str(&format!(
            "      - {{service: light.turn_on, entity: {m}, brightness: {scale}}}\n"
        ));
    }
    out
}

/// Loads the automation YAML into runtime rules (the reload step).
pub fn s3_load_automation(config_yaml: &str) -> Result<Vec<Automation>, SetupError> {
    let doc = yaml::parse(config_yaml).map_err(|e| SetupError::BadConfig(e.to_string()))?;
    let rules = doc
        .get_path(".automation")
        .and_then(Value::as_array)
        .ok_or_else(|| SetupError::BadConfig("automation list missing".into()))?;
    let mut out = Vec::new();
    for rule in rules {
        let alias = rule
            .get_path("alias")
            .and_then(Value::as_str)
            .unwrap_or("rule");
        let entity = rule
            .get_path("trigger.entity")
            .and_then(Value::as_str)
            .ok_or_else(|| SetupError::BadConfig("trigger.entity missing".into()))?;
        let to = rule
            .get_path("trigger.to")
            .and_then(Value::as_str)
            .ok_or_else(|| SetupError::BadConfig("trigger.to missing".into()))?;
        let mut actions = Vec::new();
        for a in rule
            .get_path("actions")
            .and_then(Value::as_array)
            .unwrap_or(&vec![])
        {
            let service = a.get_path("service").and_then(Value::as_str).unwrap_or("");
            let (domain, service) = service.split_once('.').unwrap_or(("light", "turn_on"));
            let mut data = BTreeMap::new();
            if let Some(b) = a.get_path("brightness") {
                data.insert("brightness".to_string(), b.clone());
            }
            actions.push(ServiceCall {
                domain: domain.to_string(),
                service: service.to_string(),
                entity_id: a
                    .get_path("entity")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                data,
            });
        }
        out.push(Automation {
            name: alias.to_string(),
            trigger_entity: entity.to_string(),
            trigger_to: to.to_string(),
            actions,
            enabled: true,
        });
    }
    Ok(out)
}
// --- s3 end ---

// --- s4 begin ---
/// The S4 "home" workaround: another hand-rolled service coordinating
/// room services, again from frozen file configuration.
pub struct HomeService {
    rooms: Vec<RoomService>,
    /// Mode → per-room brightness table, parsed from configuration.
    mode_table: BTreeMap<String, f64>,
    /// The current mode.
    pub mode: String,
}

impl HomeService {
    /// Parses the home configuration (mode table) and adopts the rooms.
    pub fn setup(rooms: Vec<RoomService>, config_yaml: &str) -> Result<HomeService, SetupError> {
        let doc = yaml::parse(config_yaml).map_err(|e| SetupError::BadConfig(e.to_string()))?;
        let modes = doc
            .get_path(".home.modes")
            .and_then(Value::as_object)
            .ok_or_else(|| SetupError::BadConfig("home.modes missing".into()))?;
        let mut mode_table = BTreeMap::new();
        for (mode, v) in modes {
            let b = v
                .as_f64()
                .ok_or_else(|| SetupError::BadConfig(format!("mode {mode} needs a number")))?;
            mode_table.insert(mode.clone(), b.clamp(0.0, 1.0));
        }
        if mode_table.is_empty() {
            return Err(SetupError::BadConfig("home.modes empty".into()));
        }
        Ok(HomeService {
            rooms,
            mode_table,
            mode: "active".into(),
        })
    }

    /// The `home.set_mode` service: resolves the mode through the table
    /// and drives every room service imperatively.
    pub fn set_mode(&mut self, hass: &mut Hass, mode: &str) -> Result<(), SetupError> {
        let target = *self
            .mode_table
            .get(mode)
            .ok_or_else(|| SetupError::BadConfig(format!("unknown mode {mode}")))?;
        self.mode = mode.to_string();
        for room in &mut self.rooms {
            room.set_brightness(hass, target)?;
        }
        Ok(())
    }

    /// Polls every room for the home-level brightness report.
    pub fn read_brightness(&self, hass: &Hass) -> f64 {
        if self.rooms.is_empty() {
            return 0.0;
        }
        self.rooms
            .iter()
            .map(|r| r.read_brightness(hass))
            .sum::<f64>()
            / self.rooms.len() as f64
    }
}
// --- s4 end ---

#[cfg(test)]
mod tests {
    use super::*;

    const ROOM_CONFIG: &str = "
room:
  name: living
  members:
    - light.geeni_1
    - light.lifx_1
";

    fn hass_with_lamps() -> Hass {
        let mut h = Hass::new();
        h.add_entity("light.geeni_1", "off");
        h.add_entity("light.lifx_1", "off");
        h.add_entity("binary_sensor.ring_motion", "off");
        h
    }

    #[test]
    fn s1_room_service_workaround_works_but_imperatively() {
        let mut h = hass_with_lamps();
        let mut room = RoomService::setup(&h, ROOM_CONFIG).unwrap();
        assert_eq!(room.name(), "living");
        room.set_brightness(&mut h, 0.5).unwrap();
        assert_eq!(
            h.entity("light.geeni_1").unwrap().attributes["brightness"].as_f64(),
            Some(500.0)
        );
        assert_eq!(
            h.entity("light.lifx_1").unwrap().attributes["brightness"].as_f64(),
            Some(32768.0)
        );
        assert!((room.read_brightness(&h) - 0.5).abs() < 0.01);
        // Adding a lamp needs a config-file reload, not a mount.
        h.add_entity("light.hue_1", "off");
        room.reload(
            &h,
            "
room:
  name: living
  members:
    - light.geeni_1
    - light.lifx_1
    - light.hue_1
",
        )
        .unwrap();
        room.set_brightness(&mut h, 0.5).unwrap();
        assert_eq!(
            h.entity("light.hue_1").unwrap().attributes["brightness"].as_f64(),
            Some(127.0)
        );
    }

    #[test]
    fn s1_config_validation_rejects_bad_members() {
        let h = hass_with_lamps();
        let bad = RoomService::setup(&h, "\nroom:\n  name: x\n  members: [light.ghost]\n");
        assert!(matches!(bad, Err(SetupError::UnknownEntity(_))));
        let not_light = RoomService::setup(
            &h,
            "\nroom:\n  name: x\n  members: [binary_sensor.ring_motion]\n",
        );
        assert!(matches!(not_light, Err(SetupError::NotALight(_))));
        assert!(matches!(
            RoomService::setup(&h, "room: {}"),
            Err(SetupError::BadConfig(_))
        ));
    }

    #[test]
    fn s3_yaml_roundtrip_and_rule_fires() {
        let mut h = hass_with_lamps();
        let yaml_text = s3_automation_yaml(&["light.geeni_1", "light.lifx_1"]);
        let rules = s3_load_automation(&yaml_text).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].actions.len(), 2);
        h.reload_automations(rules);
        h.set_state("binary_sensor.ring_motion", "on").unwrap();
        assert_eq!(h.entity("light.geeni_1").unwrap().state, "on");
        assert_eq!(
            h.entity("light.geeni_1").unwrap().attributes["brightness"].as_f64(),
            Some(1000.0)
        );
    }

    #[test]
    fn s4_home_service_cascades_modes() {
        let mut h = hass_with_lamps();
        let room = RoomService::setup(&h, ROOM_CONFIG).unwrap();
        let mut home = HomeService::setup(
            vec![room],
            "\nhome:\n  modes:\n    sleep: 0.0\n    active: 0.7\n",
        )
        .unwrap();
        home.set_mode(&mut h, "sleep").unwrap();
        assert_eq!(h.entity("light.geeni_1").unwrap().state, "off");
        home.set_mode(&mut h, "active").unwrap();
        assert_eq!(
            h.entity("light.lifx_1").unwrap().attributes["brightness"].as_f64(),
            Some((0.7f64 * 65535.0).round())
        );
        assert!((home.read_brightness(&h) - 0.7).abs() < 0.01);
        assert!(home.set_mode(&mut h, "party").is_err());
    }
}

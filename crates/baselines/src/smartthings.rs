//! A miniature SmartThings: capability-typed devices plus the Rules API.
//!
//! SmartThings models devices as bundles of fixed *capabilities* (switch,
//! switchLevel, motionSensor, …) exposed through imperative commands, and
//! automation as if-then Rules (§6.3, reference 48 in the paper). There is no
//! user-defined composition: rules can only reference concrete devices.

use std::collections::BTreeMap;
use std::fmt;

/// A device capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Capability {
    /// on/off.
    Switch,
    /// dimming level 0–100.
    SwitchLevel,
    /// motion active/inactive.
    MotionSensor,
    /// playback control.
    MediaPlayback,
}

/// A device: a set of capabilities plus attribute values.
#[derive(Debug, Clone)]
pub struct Device {
    /// Device id.
    pub id: String,
    /// The fixed capability set.
    pub capabilities: Vec<Capability>,
    /// Attribute values (`switch`, `level`, `motion`, …).
    pub attributes: BTreeMap<String, String>,
}

/// Rules-API rule: when `device.attribute == value`, run commands.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name.
    pub name: String,
    /// Condition device.
    pub if_device: String,
    /// Condition attribute.
    pub if_attribute: String,
    /// Condition value.
    pub equals: String,
    /// Commands to execute.
    pub then: Vec<Command>,
}

/// An imperative command to a device.
#[derive(Debug, Clone)]
pub struct Command {
    /// Target device.
    pub device: String,
    /// Capability the command belongs to.
    pub capability: Capability,
    /// Command name (`on`, `off`, `setLevel`, …).
    pub command: String,
    /// Optional numeric argument.
    pub argument: Option<f64>,
}

/// Errors from the mini SmartThings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StError {
    /// Unknown device id.
    NoSuchDevice(String),
    /// The device lacks the capability.
    MissingCapability(String, Capability),
    /// Unknown command for the capability.
    BadCommand(String),
}

impl fmt::Display for StError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StError::NoSuchDevice(d) => write!(f, "no such device: {d}"),
            StError::MissingCapability(d, c) => {
                write!(f, "device {d} lacks capability {c:?}")
            }
            StError::BadCommand(c) => write!(f, "bad command: {c}"),
        }
    }
}

impl std::error::Error for StError {}

/// The mini SmartThings hub.
#[derive(Debug, Default)]
pub struct SmartThings {
    devices: BTreeMap<String, Device>,
    rules: Vec<Rule>,
}

impl SmartThings {
    /// Creates an empty hub.
    pub fn new() -> Self {
        SmartThings::default()
    }

    /// Registers a device with its capabilities.
    pub fn add_device(&mut self, id: &str, capabilities: Vec<Capability>) {
        let mut attributes = BTreeMap::new();
        if capabilities.contains(&Capability::Switch) {
            attributes.insert("switch".into(), "off".into());
        }
        if capabilities.contains(&Capability::SwitchLevel) {
            attributes.insert("level".into(), "0".into());
        }
        if capabilities.contains(&Capability::MotionSensor) {
            attributes.insert("motion".into(), "inactive".into());
        }
        self.devices.insert(
            id.to_string(),
            Device {
                id: id.to_string(),
                capabilities,
                attributes,
            },
        );
    }

    /// Reads a device.
    pub fn device(&self, id: &str) -> Option<&Device> {
        self.devices.get(id)
    }

    /// Installs the rule set.
    pub fn set_rules(&mut self, rules: Vec<Rule>) {
        self.rules = rules;
    }

    /// Executes a command against a device.
    pub fn execute(&mut self, cmd: &Command) -> Result<(), StError> {
        {
            let dev = self
                .devices
                .get_mut(&cmd.device)
                .ok_or_else(|| StError::NoSuchDevice(cmd.device.clone()))?;
            if !dev.capabilities.contains(&cmd.capability) {
                return Err(StError::MissingCapability(
                    cmd.device.clone(),
                    cmd.capability,
                ));
            }
            match (cmd.capability, cmd.command.as_str()) {
                (Capability::Switch, "on") => {
                    dev.attributes.insert("switch".into(), "on".into());
                }
                (Capability::Switch, "off") => {
                    dev.attributes.insert("switch".into(), "off".into());
                }
                (Capability::SwitchLevel, "setLevel") => {
                    let level = cmd.argument.unwrap_or(0.0).clamp(0.0, 100.0);
                    dev.attributes.insert("level".into(), format!("{level}"));
                    dev.attributes.insert(
                        "switch".into(),
                        if level > 0.0 {
                            "on".into()
                        } else {
                            "off".into()
                        },
                    );
                }
                (Capability::MediaPlayback, "play") => {
                    dev.attributes.insert("playback".into(), "playing".into());
                }
                (Capability::MediaPlayback, "pause") => {
                    dev.attributes.insert("playback".into(), "paused".into());
                }
                _ => return Err(StError::BadCommand(cmd.command.clone())),
            }
        }
        Ok(())
    }

    /// A device-side attribute change (sensor event); evaluates rules.
    pub fn device_event(&mut self, id: &str, attribute: &str, value: &str) -> Result<(), StError> {
        {
            let dev = self
                .devices
                .get_mut(id)
                .ok_or_else(|| StError::NoSuchDevice(id.to_string()))?;
            dev.attributes
                .insert(attribute.to_string(), value.to_string());
        }
        let fired: Vec<Rule> = self
            .rules
            .iter()
            .filter(|r| r.if_device == id && r.if_attribute == attribute && r.equals == value)
            .cloned()
            .collect();
        for rule in fired {
            for cmd in &rule.then {
                let _ = self.execute(cmd);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capabilities_gate_commands() {
        let mut st = SmartThings::new();
        st.add_device("lamp", vec![Capability::Switch, Capability::SwitchLevel]);
        st.add_device("sensor", vec![Capability::MotionSensor]);
        st.execute(&Command {
            device: "lamp".into(),
            capability: Capability::SwitchLevel,
            command: "setLevel".into(),
            argument: Some(70.0),
        })
        .unwrap();
        assert_eq!(st.device("lamp").unwrap().attributes["level"], "70");
        // A sensor cannot be switched.
        let err = st
            .execute(&Command {
                device: "sensor".into(),
                capability: Capability::Switch,
                command: "on".into(),
                argument: None,
            })
            .unwrap_err();
        assert!(matches!(err, StError::MissingCapability(..)));
    }

    #[test]
    fn rules_fire_on_device_events() {
        let mut st = SmartThings::new();
        st.add_device("lamp", vec![Capability::Switch, Capability::SwitchLevel]);
        st.add_device("motion", vec![Capability::MotionSensor]);
        st.set_rules(vec![Rule {
            name: "motion-on".into(),
            if_device: "motion".into(),
            if_attribute: "motion".into(),
            equals: "active".into(),
            then: vec![Command {
                device: "lamp".into(),
                capability: Capability::SwitchLevel,
                command: "setLevel".into(),
                argument: Some(100.0),
            }],
        }]);
        st.device_event("motion", "motion", "active").unwrap();
        assert_eq!(st.device("lamp").unwrap().attributes["level"], "100");
        assert_eq!(st.device("lamp").unwrap().attributes["switch"], "on");
    }

    #[test]
    fn unknown_device_errors() {
        let mut st = SmartThings::new();
        assert!(st.device_event("ghost", "motion", "active").is_err());
    }
}

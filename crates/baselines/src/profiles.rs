//! Framework feature profiles, encoding the §6.3 analysis.
//!
//! The paper attributes the expressivity gap to three roots: (1) no clean
//! separation of device state from driver code / no declarative state,
//! (2) no native composition or aggregate programming, and (3) flat,
//! runtime-owned automation rules. The profiles below translate the
//! paper's per-framework findings into feature sets from which Table 5 is
//! derived (see [`crate::support`]).

use std::collections::BTreeSet;

/// A capability a scenario may require of a framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Feature {
    /// Declarative (desired-state) device programming.
    DeclarativeState,
    /// Native composition verbs / first-class aggregates.
    NativeComposition,
    /// Aggregating *heterogeneous* devices under one abstraction.
    HeterogeneousAggregates,
    /// Some grouping of same-type devices.
    SameTypeGroups,
    /// Trigger/condition/action automation rules.
    AutomationRules,
    /// Reconciling physical-world actions against virtual intents.
    IntentReconciliation,
    /// Multi-level abstractions (room → home hierarchies).
    MultiLevelHierarchy,
    /// Data-processing pipelines integrated with control (pipe).
    DataPipelines,
    /// Integration hooks for learned/AI policies.
    LearnedPolicies,
    /// Runtime (policy-driven) re-composition: mobility, handover.
    DynamicComposition,
    /// Multiple simultaneous control hierarchies over one device.
    SharedControl,
    /// Controlled delegation of write access (yield).
    DelegationYield,
    /// User-defined components/services can be added to the framework.
    CustomComponents,
    /// Policies embedded in (and scoped by) the object they govern.
    EmbeddedPolicies,
}

/// A framework's feature set.
#[derive(Debug, Clone)]
pub struct FrameworkProfile {
    /// Framework name as in Table 5.
    pub name: &'static str,
    /// Supported features.
    pub features: BTreeSet<Feature>,
}

impl FrameworkProfile {
    fn new(name: &'static str, features: &[Feature]) -> Self {
        FrameworkProfile {
            name,
            features: features.iter().copied().collect(),
        }
    }

    /// Returns `true` if the framework has the feature.
    pub fn has(&self, f: Feature) -> bool {
        self.features.contains(&f)
    }
}

/// The frameworks compared in Table 5, in the paper's row order.
pub fn all_frameworks() -> Vec<FrameworkProfile> {
    use Feature::*;
    vec![
        // EdgeX: device services + rules engine; southbound/northbound
        // plumbing, no home-automation abstractions.
        FrameworkProfile::new("EdgeX", &[AutomationRules, DataPipelines]),
        // HomeOS: PC-like abstractions and cross-device tasks (enough for
        // the S7 handover), but imperative and single-hierarchy.
        FrameworkProfile::new("HomeOS", &[AutomationRules, DynamicComposition]),
        // AWS IoT: device shadows ARE declarative desired/reported state;
        // Things Graph + ML services cover data-driven automation; no
        // home hierarchy or presence-following.
        FrameworkProfile::new(
            "AWS IoT",
            &[
                DeclarativeState,
                AutomationRules,
                DataPipelines,
                LearnedPolicies,
            ],
        ),
        // Home Assistant: entity registry, same-type groups, flat
        // automations, and open-source extensibility (custom components —
        // how the paper's S1 port was possible at all).
        FrameworkProfile::new(
            "HASS",
            &[
                SameTypeGroups,
                AutomationRules,
                DynamicComposition,
                CustomComponents,
            ],
        ),
        // SmartThings: capabilities + Rules API.
        FrameworkProfile::new("ST", &[SameTypeGroups, AutomationRules, DynamicComposition]),
        // dSpace: the full feature set (§3).
        FrameworkProfile::new(
            "dSpace",
            &[
                DeclarativeState,
                NativeComposition,
                HeterogeneousAggregates,
                SameTypeGroups,
                AutomationRules,
                IntentReconciliation,
                MultiLevelHierarchy,
                DataPipelines,
                LearnedPolicies,
                DynamicComposition,
                SharedControl,
                DelegationYield,
                CustomComponents,
                EmbeddedPolicies,
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dspace_has_every_feature() {
        let frameworks = all_frameworks();
        let dspace = frameworks.iter().find(|f| f.name == "dSpace").unwrap();
        use Feature::*;
        for f in [
            DeclarativeState,
            NativeComposition,
            HeterogeneousAggregates,
            IntentReconciliation,
            DataPipelines,
            DynamicComposition,
            SharedControl,
            DelegationYield,
        ] {
            assert!(dspace.has(f), "{f:?}");
        }
    }

    #[test]
    fn baselines_lack_composition_and_yield() {
        for fw in all_frameworks() {
            if fw.name == "dSpace" {
                continue;
            }
            assert!(!fw.has(Feature::NativeComposition), "{}", fw.name);
            assert!(!fw.has(Feature::DelegationYield), "{}", fw.name);
            assert!(!fw.has(Feature::SharedControl), "{}", fw.name);
            assert!(!fw.has(Feature::IntentReconciliation), "{}", fw.name);
        }
    }

    #[test]
    fn table5_row_order_matches_paper() {
        let names: Vec<&str> = all_frameworks().iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec!["EdgeX", "HomeOS", "AWS IoT", "HASS", "ST", "dSpace"]
        );
    }
}

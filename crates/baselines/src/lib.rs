//! Baseline IoT frameworks for the §6.3 comparison.
//!
//! The paper examines five existing frameworks (SmartThings, Home
//! Assistant, AWS IoT, EdgeX, HomeOS) and implements S1/S3/S4 in Home
//! Assistant to quantify the expressivity gap (Table 5, and the 3–4×
//! lines-of-code comparisons). Since those systems cannot run here, this
//! crate builds *miniature but faithful* reproductions of the two the
//! paper implements against, plus feature profiles for the rest:
//!
//! - [`hass`]: a mini Home Assistant — entity registry, string states with
//!   attribute maps, imperative service calls, same-type groups (the
//!   "Light Group" limitation), flat-file automations, and config reload.
//! - [`smartthings`]: a mini SmartThings — devices with fixed
//!   *capabilities* and an if-this-then-that Rules engine.
//! - [`profiles`]: framework feature profiles encoding the §6.3 analysis.
//! - [`support`]: the scenario-requirements model that derives Table 5.
//! - [`hass_scenarios`]: working implementations of S1, S3, and S4 on the
//!   mini Home Assistant (the paper's best-attempt ports), with source
//!   markers so the effort comparison measures real code.

pub mod hass;
pub mod hass_scenarios;
pub mod profiles;
pub mod smartthings;
pub mod support;

pub use profiles::{Feature, FrameworkProfile};
pub use support::{scenario_requirements, support_level, Support};

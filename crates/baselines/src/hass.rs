//! A miniature Home Assistant.
//!
//! Reproduces the architectural traits the paper's comparison hinges on
//! (§6.3): entities hold flat string states plus attribute maps; *all*
//! actuation goes through imperative service calls; groups are limited —
//! a typed group (e.g. "Light Group") requires same-domain members, and
//! the generic group supports only `turn_on`/`turn_off`; automations are
//! a flat file of trigger/condition/action rules run by the runtime (not
//! by the devices); configuration changes require a reload.

use std::collections::BTreeMap;
use std::fmt;

use dspace_value::Value;

/// An entity: `domain.object_id`, a state string, and attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Entity id, e.g. `light.geeni_1`.
    pub id: String,
    /// The current state, e.g. `"on"`.
    pub state: String,
    /// Attribute map (brightness etc.).
    pub attributes: BTreeMap<String, Value>,
}

impl Entity {
    /// The entity's domain (the part before the dot).
    pub fn domain(&self) -> &str {
        self.id.split('.').next().unwrap_or("")
    }
}

/// A service call: `domain.service` with target + data.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCall {
    /// Service domain, e.g. `light`.
    pub domain: String,
    /// Service name, e.g. `turn_on`.
    pub service: String,
    /// Target entity id.
    pub entity_id: String,
    /// Service data (e.g. brightness).
    pub data: BTreeMap<String, Value>,
}

/// An automation rule (the flat-file kind).
#[derive(Debug, Clone)]
pub struct Automation {
    /// Rule name.
    pub name: String,
    /// Trigger: entity id + the state it must change to.
    pub trigger_entity: String,
    /// State value that fires the trigger.
    pub trigger_to: String,
    /// Actions executed when triggered.
    pub actions: Vec<ServiceCall>,
    /// Whether the rule is enabled.
    pub enabled: bool,
}

/// Errors from the mini Home Assistant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HassError {
    /// Unknown entity id.
    NoSuchEntity(String),
    /// The service does not exist for that domain.
    NoSuchService(String, String),
    /// Group constraint violated.
    BadGroup(String),
}

impl fmt::Display for HassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HassError::NoSuchEntity(e) => write!(f, "no such entity: {e}"),
            HassError::NoSuchService(d, s) => write!(f, "no such service: {d}.{s}"),
            HassError::BadGroup(m) => write!(f, "bad group: {m}"),
        }
    }
}

impl std::error::Error for HassError {}

/// A typed or generic group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Group entity id, e.g. `group.living_lights`.
    pub id: String,
    /// Members.
    pub members: Vec<String>,
    /// For typed groups: the required member domain (`Some("light")`).
    /// Generic groups (`None`) only support turn_on/turn_off.
    pub typed_domain: Option<String>,
}

/// The mini Home Assistant core.
#[derive(Debug, Default)]
pub struct Hass {
    entities: BTreeMap<String, Entity>,
    groups: BTreeMap<String, Group>,
    automations: Vec<Automation>,
    /// Service-call log (tests use it to verify behaviour).
    pub call_log: Vec<ServiceCall>,
}

impl Hass {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Hass::default()
    }

    /// Registers an entity.
    pub fn add_entity(&mut self, id: &str, state: &str) {
        self.entities.insert(
            id.to_string(),
            Entity {
                id: id.to_string(),
                state: state.to_string(),
                attributes: BTreeMap::new(),
            },
        );
    }

    /// Reads an entity.
    pub fn entity(&self, id: &str) -> Option<&Entity> {
        self.entities.get(id)
    }

    /// Creates a typed group; members must share the domain.
    pub fn add_typed_group(
        &mut self,
        id: &str,
        domain: &str,
        members: &[&str],
    ) -> Result<(), HassError> {
        for m in members {
            let ent = self
                .entities
                .get(*m)
                .ok_or_else(|| HassError::NoSuchEntity(m.to_string()))?;
            if ent.domain() != domain {
                return Err(HassError::BadGroup(format!(
                    "{m} is not in domain {domain} (typed groups require same-type members)"
                )));
            }
        }
        self.groups.insert(
            id.to_string(),
            Group {
                id: id.to_string(),
                members: members.iter().map(|s| s.to_string()).collect(),
                typed_domain: Some(domain.to_string()),
            },
        );
        Ok(())
    }

    /// Creates a generic group (mixed domains allowed, but only
    /// `turn_on`/`turn_off` work on it).
    pub fn add_generic_group(&mut self, id: &str, members: &[&str]) -> Result<(), HassError> {
        for m in members {
            if !self.entities.contains_key(*m) {
                return Err(HassError::NoSuchEntity(m.to_string()));
            }
        }
        self.groups.insert(
            id.to_string(),
            Group {
                id: id.to_string(),
                members: members.iter().map(|s| s.to_string()).collect(),
                typed_domain: None,
            },
        );
        Ok(())
    }

    /// Performs a service call — the only way to actuate anything.
    pub fn call_service(
        &mut self,
        domain: &str,
        service: &str,
        entity_id: &str,
        data: BTreeMap<String, Value>,
    ) -> Result<(), HassError> {
        let call = ServiceCall {
            domain: domain.to_string(),
            service: service.to_string(),
            entity_id: entity_id.to_string(),
            data: data.clone(),
        };
        self.call_log.push(call);
        // Group dispatch.
        if let Some(group) = self.groups.get(entity_id).cloned() {
            match (&group.typed_domain, service) {
                // Typed group: any service of its domain fans out.
                (Some(d), _) if d == domain => {
                    for m in group.members {
                        self.apply_service(domain, service, &m, &data)?;
                    }
                    return Ok(());
                }
                // Generic group: only homeassistant.turn_on/turn_off.
                (None, "turn_on") | (None, "turn_off") if domain == "homeassistant" => {
                    for m in group.members.clone() {
                        let d = m.split('.').next().unwrap_or("").to_string();
                        self.apply_service(&d, service, &m, &BTreeMap::new())?;
                    }
                    return Ok(());
                }
                _ => {
                    return Err(HassError::NoSuchService(
                        domain.to_string(),
                        format!("{service} (unsupported on this group)"),
                    ))
                }
            }
        }
        self.apply_service(domain, service, entity_id, &data)
    }

    fn apply_service(
        &mut self,
        domain: &str,
        service: &str,
        entity_id: &str,
        data: &BTreeMap<String, Value>,
    ) -> Result<(), HassError> {
        let changed_to;
        {
            let ent = self
                .entities
                .get_mut(entity_id)
                .ok_or_else(|| HassError::NoSuchEntity(entity_id.to_string()))?;
            match (domain, service) {
                ("light", "turn_on") | ("switch", "turn_on") | ("homeassistant", "turn_on") => {
                    ent.state = "on".into();
                    for (k, v) in data {
                        ent.attributes.insert(k.clone(), v.clone());
                    }
                }
                ("light", "turn_off") | ("switch", "turn_off") | ("homeassistant", "turn_off") => {
                    ent.state = "off".into();
                }
                ("media_player", "play_media") | ("media_player", "media_pause") => {
                    ent.state = if service == "play_media" {
                        "playing".into()
                    } else {
                        "paused".into()
                    };
                    for (k, v) in data {
                        ent.attributes.insert(k.clone(), v.clone());
                    }
                }
                _ => {
                    return Err(HassError::NoSuchService(
                        domain.to_string(),
                        service.to_string(),
                    ))
                }
            }
            changed_to = ent.state.clone();
        }
        self.run_automations(entity_id, &changed_to);
        Ok(())
    }

    /// Sets a sensor-style state directly (device updates).
    pub fn set_state(&mut self, entity_id: &str, state: &str) -> Result<(), HassError> {
        {
            let ent = self
                .entities
                .get_mut(entity_id)
                .ok_or_else(|| HassError::NoSuchEntity(entity_id.to_string()))?;
            ent.state = state.to_string();
        }
        self.run_automations(entity_id, state);
        Ok(())
    }

    /// Loads (or reloads) the automation configuration — the flat file.
    pub fn reload_automations(&mut self, automations: Vec<Automation>) {
        self.automations = automations;
    }

    fn run_automations(&mut self, entity_id: &str, new_state: &str) {
        let fired: Vec<Automation> = self
            .automations
            .iter()
            .filter(|a| a.enabled && a.trigger_entity == entity_id && a.trigger_to == new_state)
            .cloned()
            .collect();
        for rule in fired {
            for action in rule.actions {
                let _ = self.call_service(
                    &action.domain,
                    &action.service,
                    &action.entity_id,
                    action.data,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn service_calls_mutate_entities() {
        let mut h = Hass::new();
        h.add_entity("light.geeni_1", "off");
        h.call_service(
            "light",
            "turn_on",
            "light.geeni_1",
            data(&[("brightness", 200.into())]),
        )
        .unwrap();
        let e = h.entity("light.geeni_1").unwrap();
        assert_eq!(e.state, "on");
        assert_eq!(e.attributes["brightness"].as_f64(), Some(200.0));
    }

    #[test]
    fn typed_group_requires_same_domain() {
        let mut h = Hass::new();
        h.add_entity("light.a", "off");
        h.add_entity("switch.b", "off");
        let err = h
            .add_typed_group("group.mixed", "light", &["light.a", "switch.b"])
            .unwrap_err();
        assert!(matches!(err, HassError::BadGroup(_)));
        // Same-type works and fans out.
        h.add_entity("light.c", "off");
        h.add_typed_group("group.lights", "light", &["light.a", "light.c"])
            .unwrap();
        h.call_service(
            "light",
            "turn_on",
            "group.lights",
            data(&[("brightness", 128.into())]),
        )
        .unwrap();
        assert_eq!(h.entity("light.a").unwrap().state, "on");
        assert_eq!(h.entity("light.c").unwrap().state, "on");
    }

    #[test]
    fn generic_group_only_supports_on_off() {
        let mut h = Hass::new();
        h.add_entity("light.a", "off");
        h.add_entity("switch.b", "off");
        h.add_generic_group("group.room", &["light.a", "switch.b"])
            .unwrap();
        h.call_service("homeassistant", "turn_on", "group.room", BTreeMap::new())
            .unwrap();
        assert_eq!(h.entity("light.a").unwrap().state, "on");
        assert_eq!(h.entity("switch.b").unwrap().state, "on");
        // Anything richer is unsupported — the paper's S1 pain point.
        let err = h
            .call_service(
                "light",
                "turn_on",
                "group.room",
                data(&[("brightness", 100.into())]),
            )
            .unwrap_err();
        assert!(matches!(err, HassError::NoSuchService(..)));
    }

    #[test]
    fn automations_fire_on_state_change() {
        let mut h = Hass::new();
        h.add_entity("binary_sensor.motion", "off");
        h.add_entity("light.a", "off");
        h.reload_automations(vec![Automation {
            name: "motion-light".into(),
            trigger_entity: "binary_sensor.motion".into(),
            trigger_to: "on".into(),
            actions: vec![ServiceCall {
                domain: "light".into(),
                service: "turn_on".into(),
                entity_id: "light.a".into(),
                data: data(&[("brightness", 255.into())]),
            }],
            enabled: true,
        }]);
        h.set_state("binary_sensor.motion", "on").unwrap();
        assert_eq!(h.entity("light.a").unwrap().state, "on");
        // Disabled rules do nothing.
        h.call_service("light", "turn_off", "light.a", BTreeMap::new())
            .unwrap();
        let mut rules = h.automations.clone();
        rules[0].enabled = false;
        h.reload_automations(rules);
        h.set_state("binary_sensor.motion", "off").unwrap();
        h.set_state("binary_sensor.motion", "on").unwrap();
        assert_eq!(h.entity("light.a").unwrap().state, "off");
    }

    #[test]
    fn unknown_entity_and_service_error() {
        let mut h = Hass::new();
        assert!(matches!(
            h.call_service("light", "turn_on", "light.ghost", BTreeMap::new()),
            Err(HassError::NoSuchEntity(_))
        ));
        h.add_entity("light.a", "off");
        assert!(matches!(
            h.call_service("light", "disco", "light.a", BTreeMap::new()),
            Err(HassError::NoSuchService(..))
        ));
    }
}

//! Deriving the Table-5 support matrix from scenario requirements.
//!
//! Each scenario demands a set of features for *full* support (the ✓ of
//! Table 5) and a smaller set for *partial* support (the '-'); a
//! framework missing even the partial set cannot support the scenario at
//! all (the ✗). The requirement sets encode the analysis in §6.3 and the
//! paper's technical report.

use crate::profiles::{Feature, FrameworkProfile};

/// Support level, matching Table 5's three symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// ✓ — easy to implement.
    Easy,
    /// \- — partial support / missing or difficult features.
    Partial,
    /// ✗ — not supportable.
    No,
}

impl Support {
    /// Table 5's symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Support::Easy => "v",
            Support::Partial => "-",
            Support::No => "x",
        }
    }
}

/// What a scenario requires: `(full, partial)` feature sets.
pub struct Requirements {
    /// Scenario label, e.g. `"S1"`.
    pub scenario: &'static str,
    /// Feature group label used by Table 5's header.
    pub group: &'static str,
    /// Features needed for full (✓) support.
    pub full: Vec<Feature>,
    /// Features needed for partial (-) support.
    pub partial: Vec<Feature>,
}

/// The requirement sets for S1–S10.
pub fn scenario_requirements() -> Vec<Requirements> {
    use Feature::*;
    vec![
        Requirements {
            scenario: "S1",
            group: "HL abstraction and policies",
            // A heterogeneous-brightness room needs grouping plus either
            // native heterogeneous aggregates or the ability to hand-roll
            // a component (the paper's Home Assistant workaround).
            full: vec![SameTypeGroups, CustomComponents],
            partial: vec![AutomationRules],
        },
        Requirements {
            scenario: "S2",
            group: "HL abstraction and policies",
            full: vec![IntentReconciliation],
            partial: vec![IntentReconciliation],
        },
        Requirements {
            scenario: "S3",
            group: "HL abstraction and policies",
            // Everyone has rules; only embedded, digi-scoped policies make
            // it clean (the rule must follow the room, not the runtime).
            full: vec![AutomationRules, EmbeddedPolicies],
            partial: vec![AutomationRules],
        },
        Requirements {
            scenario: "S4",
            group: "HL abstraction and policies",
            full: vec![MultiLevelHierarchy],
            partial: vec![SameTypeGroups],
        },
        Requirements {
            scenario: "S5",
            group: "Data-driven policies",
            full: vec![DataPipelines, LearnedPolicies],
            partial: vec![AutomationRules],
        },
        Requirements {
            scenario: "S6",
            group: "Data-driven policies",
            full: vec![DataPipelines, LearnedPolicies],
            partial: vec![AutomationRules],
        },
        Requirements {
            scenario: "S7",
            group: "Data-driven policies",
            full: vec![DynamicComposition],
            partial: vec![DynamicComposition],
        },
        Requirements {
            scenario: "S8",
            group: "Access policies",
            full: vec![DynamicComposition, SharedControl, DelegationYield],
            partial: vec![DynamicComposition, SharedControl, DelegationYield],
        },
        Requirements {
            scenario: "S9",
            group: "Access policies",
            full: vec![SharedControl, DelegationYield],
            partial: vec![SharedControl, DelegationYield],
        },
        Requirements {
            scenario: "S10",
            group: "Access policies",
            full: vec![SharedControl, DelegationYield],
            partial: vec![SharedControl, DelegationYield],
        },
    ]
}

/// Computes one cell of Table 5.
pub fn support_level(framework: &FrameworkProfile, req: &Requirements) -> Support {
    if req.full.iter().all(|f| framework.has(*f)) {
        Support::Easy
    } else if req.partial.iter().all(|f| framework.has(*f)) {
        Support::Partial
    } else {
        Support::No
    }
}

/// S4's special case: AWS IoT's declarative shadows give it partial
/// multi-level support even without groups (the paper marks it '-').
/// Applied as a post-rule so the base derivation stays simple.
pub fn support_level_adjusted(framework: &FrameworkProfile, req: &Requirements) -> Support {
    let base = support_level(framework, req);
    if req.scenario == "S4" && base == Support::No && framework.has(Feature::DeclarativeState) {
        return Support::Partial;
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::all_frameworks;

    /// Regenerates Table 5 and checks it against the paper's published
    /// matrix, grouped the way the paper groups scenarios.
    #[test]
    fn derived_matrix_matches_paper_table5() {
        // Columns: S1 S2 S3 S4 (S5,S6) S7 (S8,S9,S10) — the paper's
        // grouping collapses equal columns.
        let expected: &[(&str, [&str; 7])] = &[
            ("EdgeX", ["-", "x", "-", "x", "-", "x", "x"]),
            ("HomeOS", ["-", "x", "-", "x", "-", "v", "x"]),
            ("AWS IoT", ["-", "x", "-", "-", "v", "x", "x"]),
            ("HASS", ["v", "x", "-", "-", "-", "v", "x"]),
            ("ST", ["-", "x", "-", "-", "-", "v", "x"]),
            ("dSpace", ["v", "v", "v", "v", "v", "v", "v"]),
        ];
        let reqs = scenario_requirements();
        let pick = |name: &str| reqs.iter().find(|r| r.scenario == name).unwrap();
        for fw in all_frameworks() {
            let row = expected.iter().find(|(n, _)| *n == fw.name).unwrap().1;
            let cols = [
                pick("S1"),
                pick("S2"),
                pick("S3"),
                pick("S4"),
                pick("S5"),
                pick("S7"),
                pick("S8"),
            ];
            for (i, req) in cols.iter().enumerate() {
                let got = support_level_adjusted(&fw, req).symbol();
                assert_eq!(
                    got, row[i],
                    "{} / {} expected {} got {}",
                    fw.name, req.scenario, row[i], got
                );
            }
        }
    }

    #[test]
    fn grouped_scenarios_share_requirements() {
        let reqs = scenario_requirements();
        let pick = |name: &str| reqs.iter().find(|r| r.scenario == name).unwrap();
        assert_eq!(pick("S5").full, pick("S6").full);
        assert_eq!(pick("S9").full, pick("S10").full);
    }

    #[test]
    fn forty_percent_of_scenarios_unsupported_by_all_baselines() {
        // §1: "40% of our scenarios cannot be supported by any of these
        // other frameworks."
        let reqs = scenario_requirements();
        let frameworks = all_frameworks();
        let unsupported = reqs
            .iter()
            .filter(|r| {
                frameworks
                    .iter()
                    .filter(|f| f.name != "dSpace")
                    .all(|f| support_level_adjusted(f, r) == Support::No)
            })
            .count();
        assert_eq!(unsupported, 4, "S2, S8, S9, S10");
        assert_eq!(unsupported as f64 / reqs.len() as f64, 0.4);
    }
}

//! Composable queries over the store: one builder for list *and* watch,
//! with `reflex` as the predicate language.
//!
//! A [`Query`] names a slice of the object space (`kind` / namespace /
//! object name) plus an optional filter predicate compiled from reflex
//! source. The planner extracts a *restricted subset* of the predicate —
//! comparisons of a literal against a root field path, composed with
//! `and` / `or` — into a [`Plan`] of index probes. The plan is only ever
//! a **superset** approximation: the store narrows candidates through
//! secondary indexes and then re-evaluates the full predicate with
//! reflex on each survivor, so planner and evaluator can never disagree.
//! Anything the planner does not understand (`not`, `!=`, computed
//! indices, pipes, calls, …) degrades to a full scan of the kind slice,
//! never to a wrong answer.
//!
//! The same [`QueryPred`] doubles as a *predicate watch selector*: the
//! commit path evaluates it against the committed model (pre-filtered by
//! the index delta it just computed) so non-matching events never go
//! pending for the watcher.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Bound;

use dspace_reflex::ast::{BinOp, Expr, PathStep};
use dspace_reflex::{Env, Program};
use dspace_value::{Path, Segment, Value};

use crate::object::ObjectRef;
use crate::store::WatchSelector;

/// A single value's position in an index: the total order every
/// secondary index is keyed by.
///
/// Scalars order within their own type; across types the rank is
/// `Null < Bool < Num < Str < Complex`. Arrays and objects collapse to
/// [`IndexKey::Complex`]: they are indexed (so posting lists stay
/// complete) but the planner never probes for them with anything other
/// than a superset range, and the reflex re-evaluation decides. An
/// absent path is [`IndexKey::Null`], matching reflex path semantics
/// (missing fields evaluate to `null`).
#[derive(Debug, Clone)]
pub enum IndexKey {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Complex,
}

impl IndexKey {
    /// Keys the value at an indexed path. `None` (absent path) and
    /// `null` are deliberately the same key — reflex evaluates both to
    /// `null`.
    pub fn of(v: Option<&Value>) -> IndexKey {
        match v {
            None | Some(Value::Null) => IndexKey::Null,
            Some(Value::Bool(b)) => IndexKey::Bool(*b),
            Some(Value::Num(n)) => IndexKey::num(*n),
            Some(Value::Str(s)) => IndexKey::Str(s.clone()),
            Some(Value::Array(_)) | Some(Value::Object(_)) => IndexKey::Complex,
        }
    }

    /// Normalizes `-0.0` to `0.0` so `IndexKey` equality (via
    /// `total_cmp`) agrees with `Value` equality (via `f64 ==`).
    fn num(n: f64) -> IndexKey {
        IndexKey::Num(if n == 0.0 { 0.0 } else { n })
    }

    fn rank(&self) -> u8 {
        match self {
            IndexKey::Null => 0,
            IndexKey::Bool(_) => 1,
            IndexKey::Num(_) => 2,
            IndexKey::Str(_) => 3,
            IndexKey::Complex => 4,
        }
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (IndexKey::Bool(a), IndexKey::Bool(b)) => a.cmp(b),
            (IndexKey::Num(a), IndexKey::Num(b)) => a.total_cmp(b),
            (IndexKey::Str(a), IndexKey::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for IndexKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for IndexKey {}

impl fmt::Display for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKey::Null => write!(f, "null"),
            IndexKey::Bool(b) => write!(f, "{b}"),
            IndexKey::Num(n) => write!(f, "{n:?}"),
            IndexKey::Str(s) => write!(f, "{s:?}"),
            IndexKey::Complex => write!(f, "<complex>"),
        }
    }
}

/// The index-probe plan extracted from a predicate. Candidate sets are
/// supersets of the true matches; the full predicate is re-evaluated on
/// every candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Nothing extractable: scan the kind slice.
    Full,
    /// `path == literal` (either operand order).
    Eq { path: Path, key: IndexKey },
    /// `path < / <= / > / >= literal`. Bounds are in `IndexKey` order,
    /// which deliberately over-approximates mixed-type comparisons —
    /// reflex errors those out at re-evaluation.
    Range {
        path: Path,
        lo: Bound<IndexKey>,
        hi: Bound<IndexKey>,
    },
    /// Intersection of sub-plans (none of which is `Full`).
    And(Vec<Plan>),
    /// Union of sub-plans (none of which is `Full`).
    Or(Vec<Plan>),
}

impl Plan {
    pub fn is_full(&self) -> bool {
        matches!(self, Plan::Full)
    }

    /// Collects every path the plan probes, i.e. the indexes it wants.
    pub fn paths(&self, out: &mut BTreeSet<Path>) {
        match self {
            Plan::Full => {}
            Plan::Eq { path, .. } | Plan::Range { path, .. } => {
                out.insert(path.clone());
            }
            Plan::And(ps) | Plan::Or(ps) => {
                for p in ps {
                    p.paths(out);
                }
            }
        }
    }

    /// Could a model whose value at `path` keys to `key` possibly match?
    /// `false` is a proof of non-membership in the candidate superset
    /// (and therefore of a non-match); `true` just means "evaluate it".
    /// This is what the commit path uses to skip predicate evaluation
    /// against the index delta it already computed.
    pub fn admits(&self, path: &Path, key: &IndexKey) -> bool {
        match self {
            Plan::Full => true,
            Plan::Eq { path: p, key: k } => p != path || key == k,
            Plan::Range { path: p, lo, hi } => p != path || (above(lo, key) && below(hi, key)),
            Plan::And(ps) => ps.iter().all(|p| p.admits(path, key)),
            Plan::Or(ps) => ps.iter().any(|p| p.admits(path, key)),
        }
    }
}

fn above(lo: &Bound<IndexKey>, k: &IndexKey) -> bool {
    match lo {
        Bound::Unbounded => true,
        Bound::Included(l) => k >= l,
        Bound::Excluded(l) => k > l,
    }
}

fn below(hi: &Bound<IndexKey>, k: &IndexKey) -> bool {
    match hi {
        Bound::Unbounded => true,
        Bound::Included(h) => k <= h,
        Bound::Excluded(h) => k < h,
    }
}

/// Extracts the plannable subset of an expression. Soundness invariant:
/// the returned plan's candidate set is a superset of the models for
/// which `e` evaluates truthy (evaluation errors count as non-matches).
fn plan_expr(e: &Expr) -> Plan {
    match e {
        Expr::And(a, b) => and(plan_expr(a), plan_expr(b)),
        Expr::Or(a, b) => or(plan_expr(a), plan_expr(b)),
        Expr::Binary(op, a, b) => plan_cmp(*op, a, b),
        _ => Plan::Full,
    }
}

fn and(a: Plan, b: Plan) -> Plan {
    match (a, b) {
        (Plan::Full, x) | (x, Plan::Full) => x,
        (Plan::And(mut v), Plan::And(w)) => {
            v.extend(w);
            Plan::And(v)
        }
        (Plan::And(mut v), x) => {
            v.push(x);
            Plan::And(v)
        }
        (x, Plan::And(mut v)) => {
            v.insert(0, x);
            Plan::And(v)
        }
        (x, y) => Plan::And(vec![x, y]),
    }
}

fn or(a: Plan, b: Plan) -> Plan {
    match (a, b) {
        (Plan::Full, _) | (_, Plan::Full) => Plan::Full,
        (Plan::Or(mut v), Plan::Or(w)) => {
            v.extend(w);
            Plan::Or(v)
        }
        (Plan::Or(mut v), x) => {
            v.push(x);
            Plan::Or(v)
        }
        (x, Plan::Or(mut v)) => {
            v.insert(0, x);
            Plan::Or(v)
        }
        (x, y) => Plan::Or(vec![x, y]),
    }
}

fn plan_cmp(op: BinOp, lhs: &Expr, rhs: &Expr) -> Plan {
    // `path OP literal` or, flipped, `literal OP path`.
    let (path, lit, op) = match (root_field_path(lhs), literal(rhs)) {
        (Some(p), Some(l)) => (p, l, op),
        _ => match (literal(lhs), root_field_path(rhs)) {
            (Some(l), Some(p)) => {
                let Some(flipped) = flip(op) else {
                    return Plan::Full;
                };
                (p, l, flipped)
            }
            _ => return Plan::Full,
        },
    };
    let key = IndexKey::of(Some(&lit));
    match op {
        BinOp::Eq => Plan::Eq { path, key },
        // `null` sorts below every other key, so `path < lit` keeps the
        // absent-path models (reflex: `null < anything` is true) and
        // `path > lit` excludes them — exactly mirroring `compare()`.
        BinOp::Lt => Plan::Range {
            path,
            lo: Bound::Unbounded,
            hi: Bound::Excluded(key),
        },
        BinOp::Le => Plan::Range {
            path,
            lo: Bound::Unbounded,
            hi: Bound::Included(key),
        },
        BinOp::Gt => Plan::Range {
            path,
            lo: Bound::Excluded(key),
            hi: Bound::Unbounded,
        },
        BinOp::Ge => Plan::Range {
            path,
            lo: Bound::Included(key),
            hi: Bound::Unbounded,
        },
        // `!=` is a complement — not a contiguous probe; arithmetic
        // never yields a boolean worth planning.
        _ => Plan::Full,
    }
}

/// `literal OP path` ≡ `path flip(OP) literal`.
fn flip(op: BinOp) -> Option<BinOp> {
    match op {
        BinOp::Eq => Some(BinOp::Eq),
        BinOp::Lt => Some(BinOp::Gt),
        BinOp::Le => Some(BinOp::Ge),
        BinOp::Gt => Some(BinOp::Lt),
        BinOp::Ge => Some(BinOp::Le),
        _ => None,
    }
}

/// `.a.b.c` — a path rooted at the document with static field steps
/// only. Computed indices (`.a[.i]`) depend on more than the path and
/// are left to the evaluator.
fn root_field_path(e: &Expr) -> Option<Path> {
    let Expr::Path(base, steps) = e else {
        return None;
    };
    if !matches!(base.as_ref(), Expr::Identity) || steps.is_empty() {
        return None;
    }
    let mut segs = Vec::with_capacity(steps.len());
    for s in steps {
        match s {
            PathStep::Field(name) => segs.push(Segment::Key(name.clone())),
            PathStep::Index(_) => return None,
        }
    }
    Some(Path::new(segs))
}

fn literal(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        // The lexer parses `-5` as negation of a literal.
        Expr::Neg(inner) => match inner.as_ref() {
            Expr::Literal(Value::Num(n)) => Some(Value::Num(-n)),
            _ => None,
        },
        _ => None,
    }
}

/// A compiled filter predicate: the reflex program (single source of
/// truth for matching) plus the index plan extracted from it.
#[derive(Debug, Clone)]
pub struct QueryPred {
    program: Program,
    plan: Plan,
}

impl QueryPred {
    pub fn compile(src: &str) -> Result<QueryPred, QueryError> {
        let program = Program::compile(src).map_err(|e| QueryError::Compile(e.to_string()))?;
        let plan = plan_expr(program.expr());
        Ok(QueryPred { program, plan })
    }

    pub fn source(&self) -> &str {
        &self.program.source
    }

    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Evaluates the full predicate against a model. Must be a pure
    /// function of the model: it runs with an empty environment, and the
    /// watch path relies on commit-time and poll-time evaluation
    /// agreeing. Evaluation errors (type mismatches on mixed-type
    /// comparisons, …) are non-matches, not failures.
    pub fn matches(&self, model: &Value) -> bool {
        matches!(self.program.eval(model, &Env::new()), Ok(v) if v.truthy())
    }

    /// Commit-path matcher: `keys` is the index delta the caller just
    /// computed (path → new key) for the committed model. Any key the
    /// plan refuses proves a non-match without touching the evaluator.
    /// Paths arrive as the store's interned `Arc<Path>` handles: the
    /// per-candidate probes here are pointer bumps, never fresh `String`
    /// or `Path` allocations.
    pub(crate) fn matches_indexed(
        &self,
        model: &Value,
        keys: &[(std::sync::Arc<Path>, IndexKey)],
    ) -> bool {
        for (p, k) in keys {
            if !self.plan.admits(p, k) {
                return false;
            }
        }
        self.matches(model)
    }
}

impl PartialEq for QueryPred {
    fn eq(&self, other: &Self) -> bool {
        self.program.source == other.program.source
    }
}

impl Eq for QueryPred {}

/// A predicate watch subscription: `kind` in `namespace`, filtered by
/// `pred`. Namespace-homed like `KindInNamespace` (cancelled with its
/// namespace, never auto-joined to new shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateSelector {
    pub kind: String,
    pub namespace: String,
    pub pred: QueryPred,
}

/// Errors from building or running a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The filter expression failed to compile.
    Compile(String),
    /// The query shape is not expressible (e.g. a filtered watch
    /// without a kind and namespace to scope it).
    Unsupported(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Compile(e) => write!(f, "filter does not compile: {e}"),
            QueryError::Unsupported(e) => write!(f, "unsupported query: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One composable builder for every read and watch shape:
///
/// ```
/// # use dspace_apiserver::Query;
/// let q = Query::kind("Lamp")
///     .in_ns("home0")
///     .filter(".control.brightness.intent > 0.8")
///     .unwrap();
/// ```
///
/// Omitted dimensions widen the query: no namespace means every
/// namespace, no kind means every kind (then no filter is allowed —
/// predicates index per kind). `named` narrows to a single object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    pub kind: Option<String>,
    pub namespace: Option<String>,
    pub name: Option<String>,
    pub pred: Option<QueryPred>,
}

impl Query {
    /// Everything, everywhere.
    pub fn all() -> Query {
        Query::default()
    }

    /// All objects of one kind (across namespaces until [`in_ns`](Query::in_ns)).
    pub fn kind(kind: impl Into<String>) -> Query {
        Query {
            kind: Some(kind.into()),
            ..Query::default()
        }
    }

    /// Scope to one namespace.
    pub fn in_ns(mut self, namespace: impl Into<String>) -> Query {
        self.namespace = Some(namespace.into());
        self
    }

    /// Narrow to a single object name.
    pub fn named(mut self, name: impl Into<String>) -> Query {
        self.name = Some(name.into());
        self
    }

    /// Attach a reflex filter predicate, compiled eagerly.
    pub fn filter(mut self, expr: &str) -> Result<Query, QueryError> {
        if self.kind.is_none() {
            return Err(QueryError::Unsupported(
                "a filter needs a kind to index against".into(),
            ));
        }
        self.pred = Some(QueryPred::compile(expr)?);
        Ok(self)
    }

    /// Attach an already-compiled predicate.
    pub fn filter_pred(mut self, pred: QueryPred) -> Query {
        self.pred = Some(pred);
        self
    }

    /// Does an object (by identity and model) fall inside this query?
    /// This is the brute-force semantics every indexed path must agree
    /// with.
    pub fn matches(&self, oref: &ObjectRef, model: &Value) -> bool {
        if let Some(k) = &self.kind {
            if oref.kind != *k {
                return false;
            }
        }
        if let Some(ns) = &self.namespace {
            if oref.namespace != *ns {
                return false;
            }
        }
        if let Some(n) = &self.name {
            if oref.name != *n {
                return false;
            }
        }
        match &self.pred {
            Some(p) => p.matches(model),
            None => true,
        }
    }

    /// Lowers the query to a watch selector. Filtered watches must be
    /// scoped to a kind and namespace (predicates live in one shard's
    /// commit path) and cannot also name a single object.
    pub fn to_selector(&self) -> Result<WatchSelector, QueryError> {
        if let Some(pred) = &self.pred {
            let (Some(kind), Some(namespace)) = (&self.kind, &self.namespace) else {
                return Err(QueryError::Unsupported(
                    "a filtered watch needs both a kind and a namespace".into(),
                ));
            };
            if self.name.is_some() {
                return Err(QueryError::Unsupported(
                    "a filtered watch cannot also name a single object".into(),
                ));
            }
            return Ok(WatchSelector::Predicate(PredicateSelector {
                kind: kind.clone(),
                namespace: namespace.clone(),
                pred: pred.clone(),
            }));
        }
        match (&self.kind, &self.namespace, &self.name) {
            (Some(k), Some(ns), Some(n)) => Ok(WatchSelector::Object(ObjectRef::new(k, ns, n))),
            (Some(k), Some(ns), None) => Ok(WatchSelector::KindInNamespace {
                kind: k.clone(),
                namespace: ns.clone(),
            }),
            (Some(k), None, None) => Ok(WatchSelector::Kind(k.clone())),
            (None, None, None) => Ok(WatchSelector::All),
            _ => Err(QueryError::Unsupported(
                "watch selectors narrow kind → namespace → name in order".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_num(n: f64) -> IndexKey {
        IndexKey::of(Some(&Value::Num(n)))
    }

    #[test]
    fn index_key_total_order() {
        let keys = vec![
            IndexKey::Null,
            IndexKey::Bool(false),
            IndexKey::Bool(true),
            key_num(-1.5),
            key_num(0.0),
            key_num(7.0),
            IndexKey::Str("a".into()),
            IndexKey::Str("b".into()),
            IndexKey::Complex,
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a} vs {b}");
            }
        }
        // Negative zero keys identically to zero, as Value equality does.
        assert_eq!(key_num(-0.0), key_num(0.0));
    }

    fn plan_of(src: &str) -> Plan {
        QueryPred::compile(src).unwrap().plan().clone()
    }

    #[test]
    fn planner_extracts_eq_and_ranges() {
        assert_eq!(
            plan_of(".state.power == \"on\""),
            Plan::Eq {
                path: "state.power".parse().unwrap(),
                key: IndexKey::Str("on".into()),
            }
        );
        // Flipped operands flip the comparison.
        assert_eq!(
            plan_of("0.8 < .control.brightness.intent"),
            Plan::Range {
                path: "control.brightness.intent".parse().unwrap(),
                lo: Bound::Excluded(key_num(0.8)),
                hi: Bound::Unbounded,
            }
        );
        assert_eq!(
            plan_of(".x <= -2"),
            Plan::Range {
                path: "x".parse().unwrap(),
                lo: Bound::Unbounded,
                hi: Bound::Included(key_num(-2.0)),
            }
        );
    }

    #[test]
    fn planner_composes_and_or_and_degrades_to_full() {
        let p = plan_of(".a == 1 and .b > 2");
        assert!(matches!(p, Plan::And(ref v) if v.len() == 2), "{p:?}");
        let p = plan_of(".a == 1 or .b == 2");
        assert!(matches!(p, Plan::Or(ref v) if v.len() == 2), "{p:?}");
        // A Full disjunct poisons the union; a Full conjunct is dropped.
        assert_eq!(plan_of(".a == 1 or .b != 2"), Plan::Full);
        assert_eq!(
            plan_of(".a == 1 and .b != 2"),
            Plan::Eq {
                path: "a".parse().unwrap(),
                key: key_num(1.0),
            }
        );
        assert_eq!(plan_of(".a != 1"), Plan::Full);
        assert_eq!(plan_of(".a[0] == 1"), Plan::Full);
    }

    #[test]
    fn admits_is_a_sound_prefilter() {
        let pred = QueryPred::compile(".x > 3 and .y == \"hot\"").unwrap();
        let path_x: Path = "x".parse().unwrap();
        let path_y: Path = "y".parse().unwrap();
        assert!(pred.plan().admits(&path_x, &key_num(4.0)));
        assert!(!pred.plan().admits(&path_x, &key_num(3.0)));
        assert!(!pred.plan().admits(&path_x, &IndexKey::Null));
        assert!(!pred.plan().admits(&path_y, &IndexKey::Str("cold".into())));
        // Unknown paths never refuse.
        assert!(pred.plan().admits(&"z".parse().unwrap(), &IndexKey::Null));
    }

    #[test]
    fn query_lowers_to_selectors() {
        assert_eq!(Query::all().to_selector().unwrap(), WatchSelector::All);
        assert_eq!(
            Query::kind("Lamp").to_selector().unwrap(),
            WatchSelector::Kind("Lamp".into())
        );
        assert_eq!(
            Query::kind("Lamp").in_ns("home0").to_selector().unwrap(),
            WatchSelector::KindInNamespace {
                kind: "Lamp".into(),
                namespace: "home0".into(),
            }
        );
        assert_eq!(
            Query::kind("Lamp")
                .in_ns("home0")
                .named("l1")
                .to_selector()
                .unwrap(),
            WatchSelector::Object(ObjectRef::new("Lamp", "home0", "l1"))
        );
        let q = Query::kind("Lamp")
            .in_ns("home0")
            .filter(".x == 1")
            .unwrap();
        assert!(matches!(
            q.to_selector().unwrap(),
            WatchSelector::Predicate(_)
        ));
        // Filtered watches must be fully scoped.
        assert!(Query::kind("Lamp")
            .filter(".x == 1")
            .unwrap()
            .to_selector()
            .is_err());
        assert!(Query::all().filter(".x == 1").is_err());
    }
}

//! Role-based access control (§3.6 of the paper).
//!
//! Each digi driver is associated with a role that constrains its access to
//! its own model; dSpace controllers get roles granting the access needed
//! to enforce composition (the mounter gets write access to parents and
//! their children); users and third-party digis are granted access by the
//! admin following standard k8s RBAC practice.

use std::collections::{BTreeMap, BTreeSet};

use crate::object::ObjectRef;

/// The API verbs RBAC rules can grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verb {
    /// Read one object.
    Get,
    /// List objects of a kind.
    List,
    /// Subscribe to changes.
    Watch,
    /// Create an object.
    Create,
    /// Replace an object.
    Update,
    /// Merge into an object.
    Patch,
    /// Delete an object.
    Delete,
}

impl Verb {
    /// All verbs, for `verbs: ["*"]`-style rules.
    pub const ALL: [Verb; 7] = [
        Verb::Get,
        Verb::List,
        Verb::Watch,
        Verb::Create,
        Verb::Update,
        Verb::Patch,
        Verb::Delete,
    ];

    /// Returns `true` for verbs that mutate state.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Verb::Create | Verb::Update | Verb::Patch | Verb::Delete
        )
    }
}

/// One RBAC rule: a set of verbs over kinds (and optionally names).
///
/// `kinds`/`names` support the wildcard `"*"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Granted verbs.
    pub verbs: BTreeSet<Verb>,
    /// Kinds the rule applies to (`"*"` = all).
    pub kinds: BTreeSet<String>,
    /// Object names the rule applies to (`"*"` = all).
    pub names: BTreeSet<String>,
}

impl Rule {
    /// Builds a rule from iterators; pass `["*"]` for wildcards.
    pub fn new<V, K, N>(verbs: V, kinds: K, names: N) -> Self
    where
        V: IntoIterator<Item = Verb>,
        K: IntoIterator<Item = &'static str>,
        N: IntoIterator<Item = &'static str>,
    {
        Rule {
            verbs: verbs.into_iter().collect(),
            kinds: kinds.into_iter().map(str::to_string).collect(),
            names: names.into_iter().map(str::to_string).collect(),
        }
    }

    /// A rule granting every verb on every object.
    pub fn allow_all() -> Self {
        Rule::new(Verb::ALL, ["*"], ["*"])
    }

    /// Read-only access (get/list/watch) to the given kinds.
    pub fn read_only<K: IntoIterator<Item = &'static str>>(kinds: K) -> Self {
        Rule::new([Verb::Get, Verb::List, Verb::Watch], kinds, ["*"])
    }

    /// A rule scoped to one object (runtime-computed kind and name).
    pub fn for_object<V: IntoIterator<Item = Verb>>(
        verbs: V,
        kind: impl Into<String>,
        name: impl Into<String>,
    ) -> Self {
        Rule {
            verbs: verbs.into_iter().collect(),
            kinds: std::iter::once(kind.into()).collect(),
            names: std::iter::once(name.into()).collect(),
        }
    }

    /// Returns `true` if this rule permits `verb` on `oref`.
    pub fn permits(&self, verb: Verb, oref: &ObjectRef) -> bool {
        self.verbs.contains(&verb)
            && (self.kinds.contains("*") || self.kinds.contains(&oref.kind))
            && (self.names.contains("*") || self.names.contains(&oref.name))
    }
}

/// A named collection of rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Role {
    /// Role name, e.g. `digi:room` or `controller:mounter`.
    pub name: String,
    /// The rules this role grants.
    pub rules: Vec<Rule>,
}

impl Role {
    /// Creates a role.
    pub fn new(name: impl Into<String>, rules: Vec<Rule>) -> Self {
        Role {
            name: name.into(),
            rules,
        }
    }
}

/// Binds a subject (user, digi driver, controller) to a role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleBinding {
    /// The subject name.
    pub subject: String,
    /// The bound role name.
    pub role: String,
}

/// The RBAC authorizer: roles plus subject→role bindings.
#[derive(Debug, Clone, Default)]
pub struct Rbac {
    roles: BTreeMap<String, Role>,
    bindings: BTreeMap<String, BTreeSet<String>>,
}

impl Rbac {
    /// Creates an empty authorizer.
    pub fn new() -> Self {
        Rbac::default()
    }

    /// Registers (or replaces) a role.
    pub fn add_role(&mut self, role: Role) {
        self.roles.insert(role.name.clone(), role);
    }

    /// Binds `subject` to role `role`.
    pub fn bind(&mut self, subject: impl Into<String>, role: impl Into<String>) {
        self.bindings
            .entry(subject.into())
            .or_default()
            .insert(role.into());
    }

    /// Removes a binding; no-op if absent.
    pub fn unbind(&mut self, subject: &str, role: &str) {
        if let Some(set) = self.bindings.get_mut(subject) {
            set.remove(role);
        }
    }

    /// Returns `true` if `subject` may perform `verb` on `oref`.
    pub fn authorize(&self, subject: &str, verb: Verb, oref: &ObjectRef) -> bool {
        let Some(roles) = self.bindings.get(subject) else {
            return false;
        };
        roles
            .iter()
            .filter_map(|r| self.roles.get(r))
            .flat_map(|r| r.rules.iter())
            .any(|rule| rule.permits(verb, oref))
    }

    /// Lists the roles bound to a subject.
    pub fn roles_of(&self, subject: &str) -> Vec<&str> {
        self.bindings
            .get(subject)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lamp() -> ObjectRef {
        ObjectRef::default_ns("Lamp", "l1")
    }

    #[test]
    fn unbound_subject_is_denied() {
        let rbac = Rbac::new();
        assert!(!rbac.authorize("nobody", Verb::Get, &lamp()));
    }

    #[test]
    fn allow_all_role_grants_everything() {
        let mut rbac = Rbac::new();
        rbac.add_role(Role::new("admin", vec![Rule::allow_all()]));
        rbac.bind("alice", "admin");
        for v in Verb::ALL {
            assert!(rbac.authorize("alice", v, &lamp()));
        }
    }

    #[test]
    fn read_only_role_denies_writes() {
        let mut rbac = Rbac::new();
        rbac.add_role(Role::new("viewer", vec![Rule::read_only(["Lamp"])]));
        rbac.bind("bob", "viewer");
        assert!(rbac.authorize("bob", Verb::Get, &lamp()));
        assert!(rbac.authorize("bob", Verb::Watch, &lamp()));
        assert!(!rbac.authorize("bob", Verb::Update, &lamp()));
        // Different kind is denied too.
        let room = ObjectRef::default_ns("Room", "r1");
        assert!(!rbac.authorize("bob", Verb::Get, &room));
    }

    #[test]
    fn name_scoped_rule() {
        let mut rbac = Rbac::new();
        rbac.add_role(Role::new(
            "own-model",
            vec![Rule::new([Verb::Get, Verb::Patch], ["Lamp"], ["l1"])],
        ));
        rbac.bind("lamp-driver", "own-model");
        assert!(rbac.authorize("lamp-driver", Verb::Patch, &lamp()));
        let other = ObjectRef::default_ns("Lamp", "l2");
        assert!(!rbac.authorize("lamp-driver", Verb::Patch, &other));
    }

    #[test]
    fn multiple_roles_union() {
        let mut rbac = Rbac::new();
        rbac.add_role(Role::new("viewer", vec![Rule::read_only(["*"])]));
        rbac.add_role(Role::new(
            "lamp-writer",
            vec![Rule::new([Verb::Patch], ["Lamp"], ["*"])],
        ));
        rbac.bind("carol", "viewer");
        rbac.bind("carol", "lamp-writer");
        assert!(rbac.authorize("carol", Verb::Get, &lamp()));
        assert!(rbac.authorize("carol", Verb::Patch, &lamp()));
        assert!(!rbac.authorize("carol", Verb::Delete, &lamp()));
        rbac.unbind("carol", "lamp-writer");
        assert!(!rbac.authorize("carol", Verb::Patch, &lamp()));
    }

    #[test]
    fn mutation_classification() {
        assert!(Verb::Create.is_mutation());
        assert!(Verb::Delete.is_mutation());
        assert!(!Verb::Get.is_mutation());
        assert!(!Verb::Watch.is_mutation());
    }
}

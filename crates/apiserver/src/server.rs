//! The apiserver facade: verbs routed through RBAC, schema validation,
//! and the admission chain before hitting the store.

use std::collections::BTreeMap;

use dspace_value::{KindSchema, Path, Value};

use crate::admission::{AdmissionResponse, AdmissionReview, AdmissionWebhook};
use crate::client::{Client, ReadClient};
use crate::error::ApiError;
use crate::object::{Object, ObjectRef};
use crate::query::{Query, QueryError};
use crate::rbac::{Rbac, Role, Rule, Verb};
use crate::store::{
    stamp_gen, CoalescedEvent, Store, StoreOp, StoreSnapshot, WatchEvent, WatchId, WatchSelector,
    WatchStats,
};
use crate::wal::{DurabilityOptions, WalError};

/// A post-commit webhook notification queued by the prepared batch path:
/// `(ticket, verb, oref, old model, new model)`.
type Review = (usize, Verb, ObjectRef, Option<Value>, Option<Value>);

/// The API server.
///
/// Every request names its *subject* (the authenticated caller, §3.6); the
/// request pipeline is: RBAC check → schema validation → admission chain →
/// store commit → webhook `observe` notifications.
pub struct ApiServer {
    store: Store,
    /// Shared copy-on-write: plan-phase [`SnapshotView`]s hold an `Arc`
    /// clone, so role edits mid-flight copy rather than race.
    rbac: std::sync::Arc<Rbac>,
    schemas: std::collections::BTreeMap<String, KindSchema>,
    webhooks: Vec<Box<dyn AdmissionWebhook>>,
    /// When `false`, schema validation is skipped for unregistered kinds
    /// (used for system objects like `Sync` and `Policy`).
    strict_kinds: bool,
}

impl Default for ApiServer {
    fn default() -> Self {
        Self::new()
    }
}

impl ApiServer {
    /// The built-in administrative subject, bound to an allow-all role.
    pub const ADMIN: &'static str = "system:admin";

    /// Creates a server with the admin subject pre-bound.
    pub fn new() -> Self {
        let mut rbac = Rbac::new();
        rbac.add_role(Role::new("cluster-admin", vec![Rule::allow_all()]));
        rbac.bind(Self::ADMIN, "cluster-admin");
        ApiServer {
            store: Store::new(),
            rbac: std::sync::Arc::new(rbac),
            schemas: Default::default(),
            webhooks: Vec::new(),
            strict_kinds: false,
        }
    }

    /// Creates a durable server backed by the WAL/checkpoint directory in
    /// `opts`, recovering any state a previous incarnation committed
    /// there. Schemas, RBAC bindings, and webhooks are *not* persisted —
    /// re-register them after opening, exactly as on a fresh server.
    pub fn open(opts: DurabilityOptions) -> Result<Self, WalError> {
        let mut api = Self::new();
        api.store = Store::open(opts)?;
        Ok(api)
    }

    /// Forces a checkpoint now (no-op on a non-durable server). Normally
    /// checkpoints happen automatically every `checkpoint_every` commits.
    pub fn checkpoint(&mut self) {
        self.store.checkpoint();
    }

    /// Registers a kind schema (the CRD analogue). Models of registered
    /// kinds are validated on every write.
    pub fn register_schema(&mut self, schema: KindSchema) {
        self.schemas.insert(schema.kind.clone(), schema);
    }

    /// Returns the schema for `kind`, if registered.
    pub fn schema(&self, kind: &str) -> Option<&KindSchema> {
        self.schemas.get(kind)
    }

    /// Iterates over all registered schemas.
    pub fn schemas(&self) -> impl Iterator<Item = &KindSchema> {
        self.schemas.values()
    }

    /// Registers an admission webhook; consulted in registration order.
    pub fn register_webhook(&mut self, hook: Box<dyn AdmissionWebhook>) {
        self.webhooks.push(hook);
    }

    /// Mutable access to the RBAC authorizer (role/binding management).
    ///
    /// Copy-on-write: if a plan-phase [`SnapshotView`] still holds the
    /// current table, this clones it first, so in-flight plan jobs keep
    /// authorizing against their wake-time view.
    pub fn rbac_mut(&mut self) -> &mut Rbac {
        std::sync::Arc::make_mut(&mut self.rbac)
    }

    /// Read access to the RBAC authorizer.
    pub fn rbac(&self) -> &Rbac {
        &self.rbac
    }

    /// An RBAC-checked read view over a wake-time store snapshot, detached
    /// from the server's borrow (see [`SnapshotView`]).
    pub fn snapshot_view(&self) -> SnapshotView {
        SnapshotView {
            snapshot: self.store.snapshot(),
            rbac: std::sync::Arc::clone(&self.rbac),
        }
    }

    /// Runs `work` over `items` on the store's shard worker pool (the
    /// coordinator thread doubles as lane 0), returning results in item
    /// order. This is the plan-phase fan-out entry point: the worker cap
    /// and pool are shared with batch commits, so parked lanes do double
    /// duty. At a cap of 1 (or a single item) everything runs inline on
    /// the caller's thread.
    pub fn run_pooled<T, R, F>(&mut self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.store.run_pooled(items, work)
    }

    /// Current global store revision.
    pub fn revision(&self) -> u64 {
        self.store.revision()
    }

    fn authorize(&self, subject: &str, verb: Verb, oref: &ObjectRef) -> Result<(), ApiError> {
        if self.rbac.authorize(subject, verb, oref) {
            Ok(())
        } else {
            Err(ApiError::Forbidden {
                subject: subject.to_string(),
                reason: format!("{verb:?} on {oref} not permitted"),
            })
        }
    }

    fn validate(&self, oref: &ObjectRef, model: &Value) -> Result<(), ApiError> {
        match self.schemas.get(&oref.kind) {
            Some(schema) => schema
                .validate(model)
                .map_err(|e| ApiError::Invalid(e.to_string())),
            None if self.strict_kinds => Err(ApiError::UnknownKind(oref.kind.clone())),
            None => Ok(()),
        }
    }

    fn admit(
        &mut self,
        subject: &str,
        verb: Verb,
        oref: &ObjectRef,
        old: Option<&Value>,
        new: Option<&Value>,
    ) -> Result<(), ApiError> {
        let review = AdmissionReview {
            subject,
            verb,
            oref,
            old,
            new,
        };
        for hook in &mut self.webhooks {
            if let AdmissionResponse::Deny(reason) = hook.review(&review) {
                return Err(ApiError::AdmissionDenied {
                    webhook: hook.name().to_string(),
                    reason,
                });
            }
        }
        Ok(())
    }

    fn observe(
        &mut self,
        subject: &str,
        verb: Verb,
        oref: &ObjectRef,
        old: Option<&Value>,
        new: Option<&Value>,
    ) {
        let review = AdmissionReview {
            subject,
            verb,
            oref,
            old,
            new,
        };
        for hook in &mut self.webhooks {
            hook.observe(&review);
        }
    }

    /// Creates an object.
    pub fn create(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        model: Value,
    ) -> Result<u64, ApiError> {
        self.authorize(subject, Verb::Create, oref)?;
        self.validate(oref, &model)?;
        if self.store.get(oref).is_some() {
            return Err(ApiError::AlreadyExists(oref.clone()));
        }
        self.admit(subject, Verb::Create, oref, None, Some(&model))?;
        let obj = self.store.create(oref.clone(), model)?;
        let committed = obj.model.clone();
        self.observe(subject, Verb::Create, oref, None, Some(&*committed));
        Ok(1)
    }

    /// Applies a batch of mutations in one round trip, committing each
    /// namespace's slice on its shard's worker
    /// (see [`Store::apply_batch`](crate::store::Store::apply_batch)).
    ///
    /// Per-op semantics — RBAC, schema validation, admission, versioning —
    /// match the serial verbs, and results come back in op order. Ops later
    /// in the batch see the writes of earlier ops, like back-to-back serial
    /// calls. The batch is not a transaction: each op commits or fails
    /// independently.
    pub fn apply_batch(&mut self, subject: &str, ops: Vec<BatchOp>) -> Vec<Result<u64, ApiError>> {
        let mut results: Vec<Option<Result<u64, ApiError>>> = ops.iter().map(|_| None).collect();
        let mut admitted: Vec<(usize, BatchOp)> = Vec::with_capacity(ops.len());
        for (i, op) in ops.into_iter().enumerate() {
            match self.authorize(subject, op.verb(), op.oref()) {
                Ok(()) => admitted.push((i, op)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        // The fast path ships raw ops to the shard workers. It is only
        // valid when no coordinator-side pipeline stage can fire: webhooks
        // and schema validation need old/new models, so their presence
        // routes through the prepared path, which simulates the batch on
        // the coordinator first.
        let prepared = !self.webhooks.is_empty()
            || self.strict_kinds
            || admitted
                .iter()
                .any(|(_, op)| self.schemas.contains_key(&op.oref().kind));
        if prepared {
            self.apply_batch_prepared(subject, admitted, &mut results);
        } else {
            self.apply_batch_fast(admitted, &mut results);
        }
        results
            .into_iter()
            .map(|r| r.expect("every op resolved"))
            .collect()
    }

    fn apply_batch_fast(
        &mut self,
        ops: Vec<(usize, BatchOp)>,
        results: &mut [Option<Result<u64, ApiError>>],
    ) {
        let mut store_ops: Vec<(usize, StoreOp)> = Vec::with_capacity(ops.len());
        for (i, op) in ops {
            match batch_to_store_op(op) {
                Ok(sop) => store_ops.push((i, sop)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        for (i, r) in self.store.apply_ops(store_ops) {
            results[i] = Some(r);
        }
    }

    /// Batch path with coordinator-side pipeline stages: each op is
    /// simulated against an overlay of the batch's earlier writes so
    /// validation and admission see the same old/new models the serial
    /// verbs would, then the surviving ops commit on the shard workers and
    /// webhooks observe the outcomes in op order.
    fn apply_batch_prepared(
        &mut self,
        subject: &str,
        ops: Vec<(usize, BatchOp)>,
        results: &mut [Option<Result<u64, ApiError>>],
    ) {
        // The batch's view of each touched object: `None` = deleted.
        let mut overlay: BTreeMap<ObjectRef, Option<(Value, u64)>> = BTreeMap::new();
        let mut store_ops: Vec<(usize, StoreOp)> = Vec::with_capacity(ops.len());
        let mut reviews: Vec<Review> = Vec::new();
        for (i, op) in ops {
            let verb = op.verb();
            let oref = op.oref().clone();
            let current = match overlay.get(&oref) {
                Some(entry) => entry.clone(),
                None => self
                    .store
                    .get(&oref)
                    .map(|o| ((*o.model).clone(), o.resource_version)),
            };
            match self.prepare_batch_op(subject, op, current) {
                Ok((sop, old, new, entry)) => {
                    overlay.insert(oref.clone(), entry);
                    reviews.push((i, verb, oref, old, new));
                    store_ops.push((i, sop));
                }
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        for (i, r) in self.store.apply_ops(store_ops) {
            results[i] = Some(r);
        }
        for (i, verb, oref, old, new) in reviews {
            if matches!(results[i], Some(Ok(_))) {
                self.observe(subject, verb, &oref, old.as_ref(), new.as_ref());
            }
        }
    }

    /// Runs one batch op through validation and admission against the
    /// batch overlay, returning the store op to commit, the (old, new)
    /// models for the post-commit `observe`, and the overlay entry the op
    /// leaves behind.
    #[allow(clippy::type_complexity)]
    fn prepare_batch_op(
        &mut self,
        subject: &str,
        op: BatchOp,
        current: Option<(Value, u64)>,
    ) -> Result<(StoreOp, Option<Value>, Option<Value>, Option<(Value, u64)>), ApiError> {
        match op {
            BatchOp::Create { oref, model } => {
                self.validate(&oref, &model)?;
                if current.is_some() {
                    return Err(ApiError::AlreadyExists(oref));
                }
                self.admit(subject, Verb::Create, &oref, None, Some(&model))?;
                let mut stamped = model.clone();
                stamp_gen(&mut stamped, 1);
                Ok((
                    StoreOp::Create { oref, model },
                    None,
                    Some(stamped.clone()),
                    Some((stamped, 1)),
                ))
            }
            BatchOp::Update {
                oref,
                model,
                expected_rv,
            } => {
                self.validate(&oref, &model)?;
                let (old, rv) = current.ok_or_else(|| ApiError::NotFound(oref.clone()))?;
                if let Some(expected) = expected_rv {
                    if expected != rv {
                        return Err(ApiError::Conflict {
                            oref,
                            expected,
                            actual: rv,
                        });
                    }
                }
                self.admit(subject, Verb::Update, &oref, Some(&old), Some(&model))?;
                let mut stamped = model.clone();
                stamp_gen(&mut stamped, rv + 1);
                Ok((
                    StoreOp::Put {
                        oref,
                        model,
                        expected_rv,
                    },
                    Some(old),
                    Some(stamped.clone()),
                    Some((stamped, rv + 1)),
                ))
            }
            BatchOp::Patch { oref, patch } => {
                let (old, rv) = current.ok_or_else(|| ApiError::NotFound(oref.clone()))?;
                let mut new = old.clone();
                new.merge(&patch);
                self.validate(&oref, &new)?;
                self.admit(subject, Verb::Patch, &oref, Some(&old), Some(&new))?;
                stamp_gen(&mut new, rv + 1);
                Ok((
                    StoreOp::Merge { oref, patch },
                    Some(old),
                    Some(new.clone()),
                    Some((new, rv + 1)),
                ))
            }
            BatchOp::PatchPath { oref, path, value } => {
                let parsed: Path = path
                    .parse()
                    .map_err(|e| ApiError::BadRequest(format!("bad path {path}: {e}")))?;
                let (old, rv) = current.ok_or_else(|| ApiError::NotFound(oref.clone()))?;
                let mut new = old.clone();
                new.set(&parsed, value.clone())
                    .map_err(|e| ApiError::BadRequest(e.to_string()))?;
                self.validate(&oref, &new)?;
                self.admit(subject, Verb::Patch, &oref, Some(&old), Some(&new))?;
                stamp_gen(&mut new, rv + 1);
                Ok((
                    StoreOp::SetPath {
                        oref,
                        path: parsed,
                        value,
                    },
                    Some(old),
                    Some(new.clone()),
                    Some((new, rv + 1)),
                ))
            }
            BatchOp::Delete { oref } => {
                let (old, _) = current.ok_or_else(|| ApiError::NotFound(oref.clone()))?;
                self.admit(subject, Verb::Delete, &oref, Some(&old), None)?;
                Ok((StoreOp::Delete { oref }, Some(old), None, None))
            }
        }
    }

    /// Reads an object.
    pub fn get(&self, subject: &str, oref: &ObjectRef) -> Result<Object, ApiError> {
        self.authorize(subject, Verb::Get, oref)?;
        self.store
            .get(oref)
            .cloned()
            .ok_or_else(|| ApiError::NotFound(oref.clone()))
    }

    /// Reads a single attribute from an object's model.
    pub fn get_path(&self, subject: &str, oref: &ObjectRef, path: &str) -> Result<Value, ApiError> {
        let obj = self.get(subject, oref)?;
        Ok(obj.model.get_path(path).cloned().unwrap_or(Value::Null))
    }

    /// Lists objects of a kind.
    #[deprecated(note = "use `ApiServer::query` with a `Query`")]
    pub fn list(&self, subject: &str, kind: &str) -> Result<Vec<Object>, ApiError> {
        let probe = ObjectRef::new(kind, "*", "*");
        self.authorize(subject, Verb::List, &probe)
            .map_err(|_| ApiError::Forbidden {
                subject: subject.to_string(),
                reason: format!("List on kind {kind} not permitted"),
            })?;
        Ok(self.store.scan(kind).into_iter().cloned().collect())
    }

    /// Lists objects of a kind within one namespace.
    #[deprecated(note = "use `ApiServer::query` with a `Query`")]
    pub fn list_namespaced(
        &self,
        subject: &str,
        kind: &str,
        namespace: &str,
    ) -> Result<Vec<Object>, ApiError> {
        let probe = ObjectRef::new(kind, namespace, "*");
        self.authorize(subject, Verb::List, &probe)
            .map_err(|_| ApiError::Forbidden {
                subject: subject.to_string(),
                reason: format!("List on kind {kind} in namespace {namespace} not permitted"),
            })?;
        Ok(self
            .store
            .scan_in(kind, namespace)
            .into_iter()
            .cloned()
            .collect())
    }

    /// Authorizes `List` against the narrowest ref a query covers.
    fn authorize_query(&self, subject: &str, q: &Query) -> Result<(), ApiError> {
        let probe = ObjectRef::new(
            q.kind.as_deref().unwrap_or("*"),
            q.namespace.as_deref().unwrap_or("*"),
            q.name.as_deref().unwrap_or("*"),
        );
        self.authorize(subject, Verb::List, &probe)
            .map_err(|_| ApiError::Forbidden {
                subject: subject.to_string(),
                reason: format!("List on {probe} not permitted"),
            })
    }

    /// Runs a [`Query`] — the one read verb behind which `list`/
    /// `list_namespaced`/`dump` shapes collapsed. Filter predicates ride
    /// the store's secondary indexes when plannable; the full predicate
    /// is always re-evaluated, so results match a brute-force scan
    /// exactly. Needs `&mut` because first use of a `(kind, path)` pair
    /// builds its index; hot *read-only* paths should query a
    /// [`StoreSnapshot`](crate::StoreSnapshot) instead.
    pub fn query(&mut self, subject: &str, q: &Query) -> Result<Vec<Object>, ApiError> {
        self.authorize_query(subject, q)?;
        Ok(self.store.query(q))
    }

    /// Replaces an object's model with optimistic concurrency control.
    pub fn update(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        model: Value,
        expected_rv: Option<u64>,
    ) -> Result<u64, ApiError> {
        self.authorize(subject, Verb::Update, oref)?;
        self.validate(oref, &model)?;
        let old = self
            .store
            .get(oref)
            .map(|o| o.model.clone())
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        self.admit(subject, Verb::Update, oref, Some(&*old), Some(&model))?;
        let rv = self.store.update(oref, model, expected_rv)?;
        let committed = self.store.get(oref).expect("just updated").model.clone();
        self.observe(subject, Verb::Update, oref, Some(&*old), Some(&*committed));
        Ok(rv)
    }

    /// Deletes a namespace: every object in it is deleted through the
    /// admission pipeline (so e.g. the topology webhook unwires each digi),
    /// watch selectors homed in the namespace are cancelled, and the
    /// namespace's shard is dropped once its terminal `Deleted` events
    /// drain. Global watchers see those events ordered and gap-free.
    ///
    /// Requires delete rights over the whole namespace. Returns the number
    /// of objects deleted.
    pub fn delete_namespace(&mut self, subject: &str, namespace: &str) -> Result<u64, ApiError> {
        let probe = ObjectRef::new("*", namespace, "*");
        self.authorize(subject, Verb::Delete, &probe)?;
        let orefs = self.store.begin_delete_namespace(namespace);
        let mut deleted = 0;
        let mut failure: Option<ApiError> = None;
        for oref in &orefs {
            let Some(old) = self.store.get(oref).map(|o| o.model.clone()) else {
                continue;
            };
            if let Err(e) = self.admit(subject, Verb::Delete, oref, Some(&*old), None) {
                failure = Some(e);
                break;
            }
            self.store.delete(oref)?;
            self.observe(subject, Verb::Delete, oref, Some(&*old), None);
            deleted += 1;
        }
        // Finish even on a veto: the shard stays retiring and is dropped
        // only if everything was in fact removed.
        self.store.finish_delete_namespace(namespace);
        match failure {
            Some(e) => Err(e),
            None => Ok(deleted),
        }
    }

    /// `true` when no coordinator-side pipeline stage needs the candidate
    /// model for a patch to `oref`: no webhooks, kinds are not strict, and
    /// no schema covers the kind. The patch verbs then skip materializing
    /// old/new documents entirely, so a patch to a watched object is
    /// O(delta) end to end — the store merges/sets in place, sizes the
    /// event incrementally, and journals only the patch.
    fn patch_pipeline_idle(&self, oref: &ObjectRef) -> bool {
        self.webhooks.is_empty() && !self.strict_kinds && !self.schemas.contains_key(&oref.kind)
    }

    /// Merges `patch` into the current model (strategic-merge semantics of
    /// [`Value::merge`]). Runs as a read–modify–write without OCC — the
    /// merge is applied atomically on the server side.
    pub fn patch(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        patch: Value,
    ) -> Result<u64, ApiError> {
        self.authorize(subject, Verb::Patch, oref)?;
        if self.patch_pipeline_idle(oref) {
            return self.store.update_via_merge(oref, &patch);
        }
        let old = self
            .store
            .get(oref)
            .map(|o| o.model.clone())
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        let mut new = (*old).clone();
        new.merge(&patch);
        self.validate(oref, &new)?;
        self.admit(subject, Verb::Patch, oref, Some(&*old), Some(&new))?;
        // Journals the patch, not the merged document.
        let rv = self.store.update_via_merge(oref, &patch)?;
        let committed = self.store.get(oref).expect("just patched").model.clone();
        self.observe(subject, Verb::Patch, oref, Some(&*old), Some(&*committed));
        Ok(rv)
    }

    /// Sets one attribute of an object's model.
    pub fn patch_path(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        path: &str,
        value: Value,
    ) -> Result<u64, ApiError> {
        self.authorize(subject, Verb::Patch, oref)?;
        if self.patch_pipeline_idle(oref) {
            if self.store.get(oref).is_none() {
                return Err(ApiError::NotFound(oref.clone()));
            }
            let parsed: dspace_value::Path = path
                .parse()
                .map_err(|e| ApiError::BadRequest(format!("bad path {path}: {e}")))?;
            return self.store.update_via_set(oref, &parsed, &value);
        }
        let old = self
            .store
            .get(oref)
            .map(|o| o.model.clone())
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        let parsed: dspace_value::Path = path
            .parse()
            .map_err(|e| ApiError::BadRequest(format!("bad path {path}: {e}")))?;
        let mut new = (*old).clone();
        new.set(&parsed, value.clone())
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        self.validate(oref, &new)?;
        self.admit(subject, Verb::Patch, oref, Some(&*old), Some(&new))?;
        // Journals path + value — a few dozen bytes for the hottest verb
        // in the system, instead of the whole model.
        let rv = self.store.update_via_set(oref, &parsed, &value)?;
        let committed = self.store.get(oref).expect("just patched").model.clone();
        self.observe(subject, Verb::Patch, oref, Some(&*old), Some(&*committed));
        Ok(rv)
    }

    /// Removes an attribute from an object's model.
    pub fn delete_path(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        path: &str,
    ) -> Result<u64, ApiError> {
        self.authorize(subject, Verb::Patch, oref)?;
        let old = self
            .store
            .get(oref)
            .map(|o| o.model.clone())
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        let parsed: dspace_value::Path = path
            .parse()
            .map_err(|e| ApiError::BadRequest(format!("bad path {path}: {e}")))?;
        let mut new = (*old).clone();
        new.remove(&parsed);
        self.validate(oref, &new)?;
        self.admit(subject, Verb::Patch, oref, Some(&*old), Some(&new))?;
        let rv = self.store.update(oref, new, None)?;
        let committed = self.store.get(oref).expect("just patched").model.clone();
        self.observe(subject, Verb::Patch, oref, Some(&*old), Some(&*committed));
        Ok(rv)
    }

    /// Deletes an object.
    pub fn delete(&mut self, subject: &str, oref: &ObjectRef) -> Result<Object, ApiError> {
        self.authorize(subject, Verb::Delete, oref)?;
        let old = self
            .store
            .get(oref)
            .map(|o| o.model.clone())
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        self.admit(subject, Verb::Delete, oref, Some(&*old), None)?;
        let gone = self.store.delete(oref)?;
        self.observe(subject, Verb::Delete, oref, Some(&*old), None);
        Ok(gone)
    }

    /// Jumps an object's resource version forward without changing its
    /// model (see [`Store::fast_forward`](crate::store::Store::fast_forward)).
    /// A simulation aid for placing an object deep into its mutation
    /// history; requires update rights.
    pub fn fast_forward(
        &mut self,
        subject: &str,
        oref: &ObjectRef,
        rv: u64,
    ) -> Result<u64, ApiError> {
        self.authorize(subject, Verb::Update, oref)?;
        self.store.fast_forward(oref, rv)
    }

    /// Opens a watch over `kind` (or everything when `None`).
    #[deprecated(note = "use `ApiServer::watch_query` with a `Query`")]
    pub fn watch(&mut self, subject: &str, kind: Option<&str>) -> Result<WatchId, ApiError> {
        let selector = match kind {
            None => WatchSelector::All,
            Some(k) => WatchSelector::Kind(k.to_string()),
        };
        self.authorize_watch(subject, &selector)?;
        Ok(self.store.open_watch(vec![selector]))
    }

    /// Opens a watch scoped to exactly one object. This is what digi
    /// drivers use: they only ever need their own model's events.
    #[deprecated(note = "use `ApiServer::watch_query` with a `Query`")]
    pub fn watch_object(&mut self, subject: &str, oref: &ObjectRef) -> Result<WatchId, ApiError> {
        let selector = WatchSelector::Object(oref.clone());
        self.authorize_watch(subject, &selector)?;
        Ok(self.store.open_watch(vec![selector]))
    }

    /// Authorizes a watch by probing the narrowest ref the selector
    /// covers, so a subject allowed to watch only its own object can
    /// still hold an `Object` subscription. Predicate selectors probe
    /// their kind-in-namespace scope: the filter only narrows it.
    fn authorize_watch(&self, subject: &str, selector: &WatchSelector) -> Result<(), ApiError> {
        let probe = match selector {
            WatchSelector::All => ObjectRef::new("*", "*", "*"),
            WatchSelector::Kind(k) => ObjectRef::new(k, "*", "*"),
            WatchSelector::KindInNamespace { kind, namespace } => {
                ObjectRef::new(kind, namespace, "*")
            }
            WatchSelector::Object(r) => r.clone(),
            WatchSelector::Predicate(p) => ObjectRef::new(&p.kind, &p.namespace, "*"),
        };
        if self.rbac.authorize(subject, Verb::Watch, &probe) {
            Ok(())
        } else {
            Err(ApiError::Forbidden {
                subject: subject.to_string(),
                reason: format!("Watch on {probe} not permitted"),
            })
        }
    }

    /// Opens a watch with an explicit selector.
    #[deprecated(note = "use `ApiServer::watch_query` with a `Query`")]
    pub fn watch_selector(
        &mut self,
        subject: &str,
        selector: WatchSelector,
    ) -> Result<WatchId, ApiError> {
        self.authorize_watch(subject, &selector)?;
        Ok(self.store.open_watch(vec![selector]))
    }

    /// Opens one watch subscription over the union of `selectors`. An
    /// event matching several of them is still delivered once.
    #[deprecated(note = "use `ApiServer::watch_queries` with `Query` values")]
    pub fn watch_selectors(
        &mut self,
        subject: &str,
        selectors: Vec<WatchSelector>,
    ) -> Result<WatchId, ApiError> {
        for selector in &selectors {
            self.authorize_watch(subject, selector)?;
        }
        Ok(self.store.open_watch(selectors))
    }

    /// Widens an existing subscription with another selector (only future
    /// events of the newly covered scope are delivered).
    #[deprecated(note = "use `ApiServer::extend_watch` with a `Query`")]
    pub fn add_watch_selector(
        &mut self,
        subject: &str,
        id: WatchId,
        selector: WatchSelector,
    ) -> Result<(), ApiError> {
        self.authorize_watch(subject, &selector)?;
        if self.store.attach_selector(id, selector) {
            Ok(())
        } else {
            Err(ApiError::UnknownWatch(id))
        }
    }

    fn lower_query(q: &Query) -> Result<WatchSelector, ApiError> {
        q.to_selector()
            .map_err(|e: QueryError| ApiError::BadRequest(e.to_string()))
    }

    /// Opens a watch over one [`Query`] — the subscription half of the
    /// composable query surface. Filtered queries become *predicate
    /// watches*: the store matches them at commit time against the index
    /// delta it just computed, so events failing the filter never go
    /// pending for this subscription.
    pub fn watch_query(&mut self, subject: &str, q: &Query) -> Result<WatchId, ApiError> {
        self.watch_queries(subject, std::slice::from_ref(q))
    }

    /// Opens one watch subscription over the union of `queries`. An event
    /// matching several of them is still delivered once. The empty union
    /// is a valid, never-firing subscription that can be widened later
    /// with [`ApiServer::extend_watch`].
    pub fn watch_queries(&mut self, subject: &str, queries: &[Query]) -> Result<WatchId, ApiError> {
        let selectors = queries
            .iter()
            .map(Self::lower_query)
            .collect::<Result<Vec<_>, _>>()?;
        for selector in &selectors {
            self.authorize_watch(subject, selector)?;
        }
        Ok(self.store.open_watch(selectors))
    }

    /// Widens an existing subscription with another query (only future
    /// events of the newly covered scope are delivered).
    pub fn extend_watch(&mut self, subject: &str, id: WatchId, q: &Query) -> Result<(), ApiError> {
        let selector = Self::lower_query(q)?;
        self.authorize_watch(subject, &selector)?;
        if self.store.attach_selector(id, selector) {
            Ok(())
        } else {
            Err(ApiError::UnknownWatch(id))
        }
    }

    /// Removes one occurrence of a query's selector from a subscription,
    /// re-settling its pending accounting (events only the removed
    /// selector matched stop being owed). Narrowing needs no
    /// authorization — it can only shrink what the subject already holds.
    /// Returns `Ok(false)` when the selector was not part of the
    /// subscription.
    pub fn narrow_watch(&mut self, id: WatchId, q: &Query) -> Result<bool, ApiError> {
        let selector = Self::lower_query(q)?;
        if !self.store.watch_exists(id) {
            return Err(ApiError::UnknownWatch(id));
        }
        Ok(self.store.detach_selector(id, &selector))
    }

    /// Drains pending events for a watch subscription.
    pub fn poll(&mut self, id: WatchId) -> Vec<WatchEvent> {
        self.store.poll(id)
    }

    /// Drains pending events, collapsing rapid mutations of the same
    /// object into one delivery carrying the newest snapshot plus the
    /// number of raw events it absorbed (see
    /// [`Store::poll_coalesced`](crate::store::Store::poll_coalesced)).
    pub fn poll_coalesced(&mut self, id: WatchId) -> Vec<CoalescedEvent> {
        self.store.poll_coalesced(id)
    }

    /// Returns `true` if the subscription has undelivered events.
    pub fn has_pending(&self, id: WatchId) -> bool {
        self.store.has_pending(id)
    }

    /// The serialized size of the subscription's undelivered events — what
    /// the next notification would put on the wire.
    pub fn pending_bytes(&self, id: WatchId) -> u64 {
        self.store.pending_bytes(id)
    }

    /// Undelivered `(events, bytes)` in one derivation pass (see
    /// [`Store::pending_totals`](crate::store::Store::pending_totals)).
    pub fn pending_totals(&self, id: WatchId) -> (u64, u64) {
        self.store.pending_totals(id)
    }

    /// Drains the set of watchers that may have gone pending since the
    /// last call (see
    /// [`Store::drain_dirty_watchers`](crate::store::Store::drain_dirty_watchers)).
    pub fn drain_dirty_watchers(&mut self) -> Vec<WatchId> {
        self.store.drain_dirty_watchers()
    }

    /// Cancels a watch subscription, releasing its log-compaction hold.
    pub fn cancel_watch(&mut self, id: WatchId) {
        self.store.cancel_watch(id)
    }

    /// Watch/notification traffic counters (bench + diagnostics).
    pub fn watch_stats(&self) -> WatchStats {
        self.store.watch_stats()
    }

    /// Re-walks every size hint at append time and asserts it (see
    /// [`Store::set_verify_sizes`](crate::store::Store::set_verify_sizes)).
    /// Equivalence-test instrumentation; off by default.
    pub fn set_verify_sizes(&mut self, verify: bool) {
        self.store.set_verify_sizes(verify)
    }

    /// Cross-checks every cached/stamped size and derived pending counter
    /// against freshly computed truth (see
    /// [`Store::audit_sizes`](crate::store::Store::audit_sizes)).
    #[doc(hidden)]
    pub fn audit_sizes(&self) -> Result<(), String> {
        self.store.audit_sizes()
    }

    /// Current in-memory watch log length (bounded by live watcher lag).
    pub fn log_len(&self) -> usize {
        self.store.log_len()
    }

    /// Current in-memory watch log length of one namespace's shard.
    pub fn shard_log_len(&self, namespace: &str) -> usize {
        self.store.shard_log_len(namespace)
    }

    /// Number of live namespace shards.
    pub fn shard_count(&self) -> usize {
        self.store.shard_count()
    }

    /// Lists every stored object (admin/debug use).
    pub fn dump(&self) -> Vec<Object> {
        self.store.scan_all().into_iter().cloned().collect()
    }

    /// Takes a consistent, immutable snapshot of the whole store (see
    /// [`Store::snapshot`](crate::store::Store::snapshot)): O(shards), no
    /// model copies, detached from the server's borrow. This is the read
    /// path for CLIs and scenario readers — a reader chewing on a snapshot
    /// can never stall the write coordinator.
    pub fn snapshot(&self) -> StoreSnapshot {
        self.store.snapshot()
    }

    /// Reads ever served by snapshots of this server's store.
    pub fn snapshot_reads(&self) -> u64 {
        self.store.snapshot_reads()
    }

    /// Reads ever served through the store's own accessors (on the
    /// coordinator's borrow).
    pub fn direct_reads(&self) -> u64 {
        self.store.direct_reads()
    }

    /// Opens a scoped client handle acting as `subject`. Chain with
    /// [`Client::namespace`] to get a
    /// [`NamespacedClient`](crate::client::NamespacedClient) whose verbs
    /// take `(kind, name)` instead of hand-assembled
    /// `(subject, ObjectRef)` tuples.
    pub fn client(&mut self, subject: impl Into<String>) -> Client<'_> {
        Client::new(self, subject.into())
    }

    /// Opens a read-only client handle acting as `subject`. Unlike
    /// [`ApiServer::client`] this borrows the server immutably, so
    /// controllers can hold one while something else drives mutations.
    pub fn reader(&self, subject: impl Into<String>) -> ReadClient<'_> {
        ReadClient::new(self, subject.into())
    }

    /// The shard worker cap (see
    /// [`SHARD_THREADS_ENV`](crate::executor::SHARD_THREADS_ENV)).
    pub fn executor_threads(&self) -> usize {
        self.store.executor_threads()
    }

    /// Sets the shard worker cap. Batch results are bit-identical at any
    /// setting; this only changes how many shards commit concurrently.
    pub fn set_executor_threads(&mut self, threads: usize) {
        self.store.set_executor_threads(threads)
    }

    /// Number of pooled shard-worker threads currently alive.
    pub fn pooled_workers(&self) -> usize {
        self.store.pooled_workers()
    }

    /// Benchmarking baseline knob: spawn scoped threads per batch instead
    /// of using the persistent pool. Bit-identical results.
    pub fn set_executor_spawn_per_batch(&mut self, spawn: bool) {
        self.store.set_executor_spawn_per_batch(spawn)
    }
}

/// One mutation of an [`ApiServer::apply_batch`] call, phrased in the same
/// vocabulary as the serial verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp {
    /// Create an object (see [`ApiServer::create`]).
    Create {
        /// The object to create.
        oref: ObjectRef,
        /// Its initial model.
        model: Value,
    },
    /// Replace a model with optional OCC (see [`ApiServer::update`]).
    Update {
        /// The object to replace.
        oref: ObjectRef,
        /// The replacement model.
        model: Value,
        /// Optimistic-concurrency guard.
        expected_rv: Option<u64>,
    },
    /// Deep-merge a patch (see [`ApiServer::patch`]).
    Patch {
        /// The object to patch.
        oref: ObjectRef,
        /// The patch document.
        patch: Value,
    },
    /// Set one attribute (see [`ApiServer::patch_path`]).
    PatchPath {
        /// The object to mutate.
        oref: ObjectRef,
        /// Dotted attribute path, e.g. `.control.power.intent`.
        path: String,
        /// The new value.
        value: Value,
    },
    /// Delete an object (see [`ApiServer::delete`]).
    Delete {
        /// The object to delete.
        oref: ObjectRef,
    },
}

impl BatchOp {
    /// The object this op addresses.
    pub fn oref(&self) -> &ObjectRef {
        match self {
            BatchOp::Create { oref, .. }
            | BatchOp::Update { oref, .. }
            | BatchOp::Patch { oref, .. }
            | BatchOp::PatchPath { oref, .. }
            | BatchOp::Delete { oref } => oref,
        }
    }

    /// The RBAC verb the op is authorized as (mirrors the serial verbs).
    fn verb(&self) -> Verb {
        match self {
            BatchOp::Create { .. } => Verb::Create,
            BatchOp::Update { .. } => Verb::Update,
            BatchOp::Patch { .. } | BatchOp::PatchPath { .. } => Verb::Patch,
            BatchOp::Delete { .. } => Verb::Delete,
        }
    }
}

/// Lowers a batch op to its store form; only `PatchPath` can fail (path
/// parse), with the same error text as the serial verb.
fn batch_to_store_op(op: BatchOp) -> Result<StoreOp, ApiError> {
    Ok(match op {
        BatchOp::Create { oref, model } => StoreOp::Create { oref, model },
        BatchOp::Update {
            oref,
            model,
            expected_rv,
        } => StoreOp::Put {
            oref,
            model,
            expected_rv,
        },
        BatchOp::Patch { oref, patch } => StoreOp::Merge { oref, patch },
        BatchOp::PatchPath { oref, path, value } => {
            let parsed: Path = path
                .parse()
                .map_err(|e| ApiError::BadRequest(format!("bad path {path}: {e}")))?;
            StoreOp::SetPath {
                oref,
                path: parsed,
                value,
            }
        }
        BatchOp::Delete { oref } => StoreOp::Delete { oref },
    })
}

/// An RBAC-checked read view over a [`StoreSnapshot`]: serves
/// [`ApiServer::get`]-equivalent reads — same authorization, same error
/// shapes — without borrowing the server, so plan-phase jobs can read the
/// wake-time state from worker threads while the coordinator moves on.
///
/// Both halves are immutable captures: the snapshot is batch-boundary
/// exact and the RBAC table is a copy-on-write `Arc` (see
/// [`ApiServer::rbac_mut`]), so a view's answers never change after it is
/// taken.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    snapshot: StoreSnapshot,
    rbac: std::sync::Arc<Rbac>,
}

// Plan jobs move views onto shard workers; keep that statically true.
#[allow(dead_code)]
fn assert_snapshot_view_send_sync(v: SnapshotView) -> impl Send + Sync {
    v
}

impl SnapshotView {
    /// Reads an object, mirroring [`ApiServer::get`] exactly: RBAC denial
    /// is `Forbidden` with the server's reason text, a missing object is
    /// `NotFound`.
    pub fn get(&self, subject: &str, oref: &ObjectRef) -> Result<Object, ApiError> {
        self.authorize(subject, Verb::Get, oref)?;
        self.snapshot
            .get(oref)
            .cloned()
            .ok_or_else(|| ApiError::NotFound(oref.clone()))
    }

    /// Checks `subject` against the captured RBAC table.
    pub fn authorized(&self, subject: &str, verb: Verb, oref: &ObjectRef) -> bool {
        self.rbac.authorize(subject, verb, oref)
    }

    /// The captured store revision.
    pub fn revision(&self) -> u64 {
        self.snapshot.revision()
    }

    fn authorize(&self, subject: &str, verb: Verb, oref: &ObjectRef) -> Result<(), ApiError> {
        if self.rbac.authorize(subject, verb, oref) {
            Ok(())
        } else {
            Err(ApiError::Forbidden {
                subject: subject.to_string(),
                reason: format!("{verb:?} on {oref} not permitted"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    // The deprecated verbs (`list`/`watch`/`watch_selector`/…) stay covered
    // here until they are removed.
    #![allow(deprecated)]

    use super::*;
    use crate::admission::testing::RejectForbiddenFlag;
    use dspace_value::{AttrType, KindSchema};

    fn server_with_plug() -> (ApiServer, ObjectRef) {
        let mut api = ApiServer::new();
        api.register_schema(
            KindSchema::digivice("digi.dev", "v1", "Plug").control("power", AttrType::String),
        );
        let oref = ObjectRef::default_ns("Plug", "p1");
        let model = api.schema("Plug").unwrap().new_model("p1", "default");
        api.create(ApiServer::ADMIN, &oref, model).unwrap();
        (api, oref)
    }

    #[test]
    fn create_and_read() {
        let (api, oref) = server_with_plug();
        let obj = api.get(ApiServer::ADMIN, &oref).unwrap();
        assert_eq!(obj.resource_version, 1);
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &oref, ".meta.kind")
                .unwrap()
                .as_str(),
            Some("Plug")
        );
    }

    #[test]
    fn schema_validation_on_write() {
        let (mut api, oref) = server_with_plug();
        // Wrong type for a declared control attribute.
        let err = api
            .patch_path(ApiServer::ADMIN, &oref, ".control.power.intent", 5.0.into())
            .unwrap_err();
        assert!(matches!(err, ApiError::Invalid(_)), "{err}");
        // Correct type passes.
        api.patch_path(
            ApiServer::ADMIN,
            &oref,
            ".control.power.intent",
            "on".into(),
        )
        .unwrap();
    }

    #[test]
    fn rbac_gates_requests() {
        let (mut api, oref) = server_with_plug();
        let err = api.get("intruder", &oref).unwrap_err();
        assert!(matches!(err, ApiError::Forbidden { .. }));
        // Grant read-only and retry.
        api.rbac_mut()
            .add_role(Role::new("viewer", vec![Rule::read_only(["Plug"])]));
        api.rbac_mut().bind("intruder", "viewer");
        assert!(api.get("intruder", &oref).is_ok());
        // Writes still denied.
        assert!(api
            .patch_path("intruder", &oref, ".control.power.intent", "on".into())
            .is_err());
    }

    #[test]
    fn admission_webhook_vetoes() {
        let (mut api, oref) = server_with_plug();
        api.register_webhook(Box::new(RejectForbiddenFlag));
        let err = api
            .patch_path(ApiServer::ADMIN, &oref, ".forbidden", true.into())
            .unwrap_err();
        assert!(matches!(err, ApiError::AdmissionDenied { .. }));
        // The store is untouched.
        assert!(api
            .get_path(ApiServer::ADMIN, &oref, ".forbidden")
            .unwrap()
            .is_null());
    }

    #[test]
    fn update_with_occ() {
        let (mut api, oref) = server_with_plug();
        let obj = api.get(ApiServer::ADMIN, &oref).unwrap();
        let mut m = (*obj.model).clone();
        m.set(&".control.power.intent".parse().unwrap(), "on".into())
            .unwrap();
        api.update(
            ApiServer::ADMIN,
            &oref,
            m.clone(),
            Some(obj.resource_version),
        )
        .unwrap();
        // Same base version again: conflict.
        let err = api
            .update(ApiServer::ADMIN, &oref, m, Some(obj.resource_version))
            .unwrap_err();
        assert!(matches!(err, ApiError::Conflict { .. }));
    }

    #[test]
    fn patch_merges() {
        let (mut api, oref) = server_with_plug();
        let patch =
            dspace_value::json::parse(r#"{"control": {"power": {"intent": "on"}}}"#).unwrap();
        api.patch(ApiServer::ADMIN, &oref, patch).unwrap();
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &oref, ".control.power.intent")
                .unwrap()
                .as_str(),
            Some("on")
        );
        // Untouched attributes survive.
        assert_eq!(
            api.get_path(ApiServer::ADMIN, &oref, ".meta.name")
                .unwrap()
                .as_str(),
            Some("p1")
        );
    }

    #[test]
    fn watch_streams_patches() {
        let (mut api, oref) = server_with_plug();
        let w = api.watch(ApiServer::ADMIN, Some("Plug")).unwrap();
        api.patch_path(
            ApiServer::ADMIN,
            &oref,
            ".control.power.intent",
            "on".into(),
        )
        .unwrap();
        api.patch_path(
            ApiServer::ADMIN,
            &oref,
            ".control.power.status",
            "on".into(),
        )
        .unwrap();
        let evs = api.poll(w);
        assert_eq!(evs.len(), 2);
        assert!(evs[0].resource_version < evs[1].resource_version);
    }

    #[test]
    fn delete_path_removes_attribute() {
        let (mut api, oref) = server_with_plug();
        api.patch_path(ApiServer::ADMIN, &oref, ".obs.note", "x".into())
            .unwrap();
        api.delete_path(ApiServer::ADMIN, &oref, ".obs.note")
            .unwrap();
        assert!(api
            .get_path(ApiServer::ADMIN, &oref, ".obs.note")
            .unwrap()
            .is_null());
    }

    #[test]
    fn list_by_kind() {
        let (mut api, _) = server_with_plug();
        let p2 = ObjectRef::default_ns("Plug", "p2");
        let model = api.schema("Plug").unwrap().new_model("p2", "default");
        api.create(ApiServer::ADMIN, &p2, model).unwrap();
        assert_eq!(api.list(ApiServer::ADMIN, "Plug").unwrap().len(), 2);
        assert!(api.list(ApiServer::ADMIN, "Room").unwrap().is_empty());
    }

    #[test]
    fn unknown_object_operations_fail() {
        let (mut api, _) = server_with_plug();
        let ghost = ObjectRef::default_ns("Plug", "ghost");
        assert!(matches!(
            api.get(ApiServer::ADMIN, &ghost),
            Err(ApiError::NotFound(_))
        ));
        assert!(matches!(
            api.patch_path(ApiServer::ADMIN, &ghost, ".x", 1.0.into()),
            Err(ApiError::NotFound(_))
        ));
        assert!(matches!(
            api.delete(ApiServer::ADMIN, &ghost),
            Err(ApiError::NotFound(_))
        ));
    }
}

//! Parallel shard executor: thread-per-shard up to a configurable cap.
//!
//! Namespace shards are structurally independent (PR 2), which makes them
//! the unit of parallelism: a mutation batch that spans namespaces can run
//! each shard's slice on its own worker thread, with the coordinator thread
//! only assigning global commit tickets in arrival order and merging the
//! per-shard outcomes in a deterministic (shard-name) order.
//!
//! The executor is deliberately dumb: it knows nothing about stores or
//! shards, only how to map `Send` work items across up to `threads` scoped
//! worker threads. Determinism falls out of the structure around it — each
//! item is a whole shard (so per-shard event order is the ticket order the
//! coordinator assigned), items never share state, and results come back in
//! item order regardless of which thread ran them or how they interleaved.

use std::num::NonZeroUsize;

/// Environment variable configuring the shard worker cap for a process.
///
/// Accepts a positive integer, or `max` / `0` for the machine's available
/// parallelism. Unset or unparsable values mean 1 (inline execution), which
/// keeps tests and single-threaded tools deterministic-by-default.
pub const SHARD_THREADS_ENV: &str = "DSPACE_SHARD_THREADS";

/// Maps work items across up to a fixed number of worker threads.
///
/// With more items than threads, items are multiplexed round-robin onto the
/// workers (item `i` runs on lane `i % workers`), each lane running its
/// items in order. With `threads <= 1` (or a single item) everything runs
/// inline on the caller's thread — no spawn, no overhead, and trivially
/// bit-identical to the multi-threaded schedule because items are
/// independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardExecutor {
    threads: usize,
}

impl Default for ShardExecutor {
    fn default() -> Self {
        ShardExecutor::new(1)
    }
}

impl ShardExecutor {
    /// Creates an executor with a worker cap (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ShardExecutor {
            threads: threads.max(1),
        }
    }

    /// Creates an executor from [`SHARD_THREADS_ENV`] (default: 1).
    pub fn from_env() -> Self {
        let threads = match std::env::var(SHARD_THREADS_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("max") || v == "0" => available_parallelism(),
            Ok(v) => v.parse().unwrap_or(1),
            Err(_) => 1,
        };
        ShardExecutor::new(threads)
    }

    /// The worker cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the worker cap (clamped to at least 1).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Runs `work` over every item, returning results in item order.
    ///
    /// Items are distributed round-robin over `min(threads, items)` lanes;
    /// lane 0 runs on the calling thread so a single-lane run never spawns.
    pub fn run<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.into_iter().map(work).collect();
        }
        let mut lanes: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            lanes[i % workers].push((i, item));
        }
        let mut indexed: Vec<(usize, R)> = Vec::new();
        let work = &work;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest = lanes.drain(1..).collect::<Vec<_>>();
            for lane in rest.drain(..) {
                handles.push(scope.spawn(move || {
                    lane.into_iter()
                        .map(|(i, item)| (i, work(item)))
                        .collect::<Vec<_>>()
                }));
            }
            // Lane 0 runs here: the coordinator thread is a worker too.
            for (i, item) in lanes.remove(0) {
                indexed.push((i, work(item)));
            }
            for h in handles {
                indexed.extend(h.join().expect("shard worker panicked"));
            }
        });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 8] {
            let ex = ShardExecutor::new(threads);
            let items: Vec<usize> = (0..37).collect();
            let out = ex.run(items, |i| i * 2);
            assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let ex = ShardExecutor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(ex.run(empty, |i| i).is_empty());
        assert_eq!(ex.run(vec![7u32], |i| i + 1), vec![8]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let ex = ShardExecutor::new(0);
        assert_eq!(ex.threads(), 1);
    }

    #[test]
    fn mutating_owned_state_is_safe_per_lane() {
        // Each item owns its state; workers only touch disjoint items.
        let ex = ShardExecutor::new(4);
        let items: Vec<Vec<u64>> = (0..16).map(|i| vec![i]).collect();
        let out = ex.run(items, |mut v| {
            v.push(v[0] * 10);
            v
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i as u64, i as u64 * 10]);
        }
    }
}

//! Parallel shard executor: a persistent worker pool, thread-per-shard up
//! to a configurable cap.
//!
//! Namespace shards are structurally independent (PR 2), which makes them
//! the unit of parallelism: a mutation batch that spans namespaces can run
//! each shard's slice on its own worker thread, with the coordinator thread
//! only assigning global commit tickets in arrival order and merging the
//! per-shard outcomes in a deterministic (shard-name) order.
//!
//! The executor is deliberately dumb: it knows nothing about stores or
//! shards, only how to map `Send` work items across up to `threads` worker
//! threads. Determinism falls out of the structure around it — each item is
//! a whole shard (so per-shard event order is the ticket order the
//! coordinator assigned), items never share state, and results come back in
//! item order regardless of which thread ran them or how they interleaved.
//!
//! Workers are *pooled*: they are spawned lazily on the first batch that
//! needs more than one lane, then parked on their per-lane channels between
//! batches. A pump loop committing thousands of small cross-namespace
//! batches pays the thread-spawn cost once, not once per batch. Resizing
//! the cap (or dropping the executor) drains the channels and joins every
//! worker; a single-lane batch never touches the pool at all.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Environment variable configuring the shard worker cap for a process.
///
/// Accepts a positive integer, or `max` / `0` for the machine's available
/// parallelism. Unset or unparsable values mean 1 (inline execution), which
/// keeps tests and single-threaded tools deterministic-by-default.
pub const SHARD_THREADS_ENV: &str = "DSPACE_SHARD_THREADS";

/// A unit of pooled work: one lane's item slice, type-erased so the same
/// long-lived worker can serve batches of any item/result type.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One parked worker: its job channel plus the handle to join on shutdown.
#[derive(Debug)]
struct Worker {
    tx: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// The persistent lane workers. Lane 0 is always the coordinator thread,
/// so a pool serving `threads` lanes holds `threads - 1` workers.
#[derive(Debug)]
struct WorkerPool {
    workers: Vec<Worker>,
    /// Live worker threads; each worker decrements it on exit, so tests
    /// can observe that a dropped pool joined cleanly.
    live: Arc<AtomicUsize>,
}

impl WorkerPool {
    fn new() -> Self {
        WorkerPool {
            workers: Vec::new(),
            live: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Grows the pool to at least `n` workers (never shrinks; shrinking
    /// happens by dropping the whole pool on a cap change).
    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let (tx, rx) = mpsc::channel::<Job>();
            let live = Arc::clone(&self.live);
            live.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("dspace-shard-{}", self.workers.len() + 1))
                .spawn(move || {
                    // Park on the channel between batches; a dropped sender
                    // is the shutdown signal.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                })
                .expect("spawn shard worker");
            self.workers.push(Worker {
                tx,
                handle: Some(handle),
            });
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close every channel first so all workers unpark, then join.
        for w in &mut self.workers {
            let (closed, _) = mpsc::channel::<Job>();
            w.tx = closed;
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                h.join().expect("shard worker panicked");
            }
        }
    }
}

/// Maps work items across up to a fixed number of worker threads.
///
/// With more items than threads, items are multiplexed round-robin onto the
/// workers (item `i` runs on lane `i % workers`), each lane running its
/// items in order. With `threads <= 1` (or a single item) everything runs
/// inline on the caller's thread — no pool, no channels, and trivially
/// bit-identical to the multi-threaded schedule because items are
/// independent.
#[derive(Debug)]
pub struct ShardExecutor {
    threads: usize,
    /// Lazily created on the first multi-lane batch; parked between
    /// batches; dropped (joining its threads) on resize and on drop.
    pool: Option<WorkerPool>,
    /// Benchmarking baseline: when set, multi-lane batches spawn scoped
    /// threads per batch (the pre-pool behavior) instead of using the pool.
    spawn_per_batch: bool,
}

impl Default for ShardExecutor {
    fn default() -> Self {
        ShardExecutor::new(1)
    }
}

impl ShardExecutor {
    /// Creates an executor with a worker cap (clamped to at least 1). No
    /// threads are spawned until a batch actually needs them.
    pub fn new(threads: usize) -> Self {
        ShardExecutor {
            threads: threads.max(1),
            pool: None,
            spawn_per_batch: false,
        }
    }

    /// Creates an executor from [`SHARD_THREADS_ENV`] (default: 1).
    pub fn from_env() -> Self {
        let threads = match std::env::var(SHARD_THREADS_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("max") || v == "0" => available_parallelism(),
            Ok(v) => v.parse().unwrap_or(1),
            Err(_) => 1,
        };
        ShardExecutor::new(threads)
    }

    /// The worker cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the worker cap (clamped to at least 1). The existing pool is
    /// shut down — every worker joins — and a right-sized one is built
    /// lazily on the next multi-lane batch.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.threads {
            self.threads = threads;
            self.pool = None;
        }
    }

    /// Number of pooled worker threads currently alive (0 while the pool
    /// is cold). Diagnostics/bench: `> 0` means the pool is warm.
    pub fn pooled_workers(&self) -> usize {
        self.pool
            .as_ref()
            .map(|p| p.live.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Benchmarking baseline knob: `true` restores the pre-pool behavior of
    /// spawning scoped threads for every multi-lane batch. Results are
    /// bit-identical either way; only wall-clock differs.
    pub fn set_spawn_per_batch(&mut self, spawn: bool) {
        self.spawn_per_batch = spawn;
        if spawn {
            self.pool = None;
        }
    }

    /// Runs `work` over every item, returning results in item order.
    ///
    /// Items are distributed round-robin over `min(threads, items)` lanes;
    /// lane 0 runs on the calling thread, so a single-lane run touches
    /// neither the pool nor any channel (and never spawns).
    pub fn run<T, R, F>(&mut self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.into_iter().map(work).collect();
        }
        let mut lanes: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            lanes[i % workers].push((i, item));
        }
        if self.spawn_per_batch {
            return run_scoped(lanes, work);
        }
        let pool = self.pool.get_or_insert_with(WorkerPool::new);
        pool.ensure(workers - 1);
        let work = Arc::new(work);
        let (done_tx, done_rx) = mpsc::channel::<Vec<(usize, R)>>();
        let mut rest = lanes.drain(1..);
        for worker in &pool.workers[..workers - 1] {
            let lane = rest.next().expect("one lane per dispatched worker");
            let work = Arc::clone(&work);
            let done = done_tx.clone();
            let job: Job = Box::new(move || {
                let out: Vec<(usize, R)> =
                    lane.into_iter().map(|(i, item)| (i, work(item))).collect();
                let _ = done.send(out);
            });
            worker.tx.send(job).expect("shard worker channel open");
        }
        drop(done_tx);
        drop(rest);
        // Lane 0 runs here: the coordinator thread is a worker too.
        let mut indexed: Vec<(usize, R)> = Vec::new();
        for (i, item) in lanes.remove(0) {
            indexed.push((i, work(item)));
        }
        for _ in 0..workers - 1 {
            indexed.extend(done_rx.recv().expect("shard worker panicked"));
        }
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    #[cfg(test)]
    fn liveness_handle(&mut self) -> Arc<AtomicUsize> {
        Arc::clone(&self.pool.get_or_insert_with(WorkerPool::new).live)
    }
}

/// The pre-pool execution strategy: scoped threads spawned per batch. Kept
/// as a measurable baseline for the pump-throughput bench.
fn run_scoped<T, R, F>(mut lanes: Vec<Vec<(usize, T)>>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut indexed: Vec<(usize, R)> = Vec::new();
    let work = &work;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = lanes.drain(1..).collect::<Vec<_>>();
        for lane in rest.drain(..) {
            handles.push(scope.spawn(move || {
                lane.into_iter()
                    .map(|(i, item)| (i, work(item)))
                    .collect::<Vec<_>>()
            }));
        }
        for (i, item) in lanes.remove(0) {
            indexed.push((i, work(item)));
        }
        for h in handles {
            indexed.extend(h.join().expect("shard worker panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The machine's available parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 8] {
            let mut ex = ShardExecutor::new(threads);
            let items: Vec<usize> = (0..37).collect();
            let out = ex.run(items, |i| i * 2);
            assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let mut ex = ShardExecutor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(ex.run(empty, |i| i).is_empty());
        assert_eq!(ex.run(vec![7u32], |i| i + 1), vec![8]);
        // Inline runs never warm the pool.
        assert_eq!(ex.pooled_workers(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let ex = ShardExecutor::new(0);
        assert_eq!(ex.threads(), 1);
    }

    #[test]
    fn mutating_owned_state_is_safe_per_lane() {
        // Each item owns its state; workers only touch disjoint items.
        let mut ex = ShardExecutor::new(4);
        let items: Vec<Vec<u64>> = (0..16).map(|i| vec![i]).collect();
        let out = ex.run(items, |mut v| {
            v.push(v[0] * 10);
            v
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i as u64, i as u64 * 10]);
        }
    }

    #[test]
    fn scoped_baseline_matches_pooled_results() {
        let mut pooled = ShardExecutor::new(4);
        let mut scoped = ShardExecutor::new(4);
        scoped.set_spawn_per_batch(true);
        let items: Vec<usize> = (0..23).collect();
        assert_eq!(
            pooled.run(items.clone(), |i| i * 3),
            scoped.run(items, |i| i * 3)
        );
        assert_eq!(scoped.pooled_workers(), 0, "scoped mode never pools");
    }

    /// Runs a batch and records which thread served each item.
    fn thread_ids(ex: &mut ShardExecutor, items: usize) -> Vec<ThreadId> {
        ex.run((0..items).collect(), |_| std::thread::current().id())
    }

    #[test]
    fn pool_reuses_the_same_threads_across_batches() {
        let mut ex = ShardExecutor::new(3);
        let first = thread_ids(&mut ex, 12);
        assert_eq!(ex.pooled_workers(), 2, "two workers beside the caller");
        let second = thread_ids(&mut ex, 12);
        // Item i runs on lane i % workers, and each lane is pinned to one
        // pooled thread: the schedule is identical batch over batch.
        assert_eq!(first, second, "lanes must stay pinned to their threads");
        let distinct: HashSet<ThreadId> = first.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "3 lanes on 3 distinct threads");
        assert!(
            first.contains(&std::thread::current().id()),
            "lane 0 runs on the coordinator"
        );
    }

    #[test]
    fn drop_joins_all_workers() {
        let mut ex = ShardExecutor::new(4);
        let _ = thread_ids(&mut ex, 8);
        let live = ex.liveness_handle();
        assert_eq!(live.load(Ordering::SeqCst), 3);
        drop(ex);
        // Drop joins synchronously, so by now every worker has exited.
        assert_eq!(live.load(Ordering::SeqCst), 0, "drop must join workers");
    }

    #[test]
    fn resize_shuts_down_and_rebuilds_the_pool() {
        let mut ex = ShardExecutor::new(4);
        let _ = thread_ids(&mut ex, 8);
        let live = ex.liveness_handle();
        assert_eq!(live.load(Ordering::SeqCst), 3);
        ex.set_threads(2);
        assert_eq!(live.load(Ordering::SeqCst), 0, "resize joins old workers");
        assert_eq!(ex.pooled_workers(), 0, "pool is cold after resize");
        let ids = thread_ids(&mut ex, 8);
        let distinct: HashSet<ThreadId> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 2, "rebuilt at the new cap");
        assert_eq!(ex.pooled_workers(), 1);
    }
}

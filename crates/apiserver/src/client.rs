//! Scoped client handles: `api.client(subject).namespace(ns)`.
//!
//! Callers used to hand-assemble `(subject, ObjectRef)` tuples at every
//! call site. A [`NamespacedClient`] fixes the subject and namespace once,
//! so the verbs take just `(kind, name)` — and the namespace a component
//! operates in is visible at the point the handle is created, not spread
//! across string literals.

use dspace_value::Value;

use crate::error::ApiError;
use crate::object::{Object, ObjectRef};
use crate::query::Query;
use crate::rbac::Verb;
use crate::server::ApiServer;
use crate::store::{CoalescedEvent, StoreSnapshot, WatchEvent, WatchId, WatchSelector};

/// A client handle bound to one subject. Borrow the server mutably, pick a
/// namespace, issue verbs, and drop it; the borrow is as short as a direct
/// call would be.
pub struct Client<'a> {
    api: &'a mut ApiServer,
    subject: String,
}

impl<'a> Client<'a> {
    pub(crate) fn new(api: &'a mut ApiServer, subject: String) -> Self {
        Client { api, subject }
    }

    /// The subject this handle acts as.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Scopes the handle to one namespace.
    pub fn namespace(self, namespace: impl Into<String>) -> NamespacedClient<'a> {
        NamespacedClient {
            api: self.api,
            subject: self.subject,
            namespace: namespace.into(),
        }
    }

    /// Runs a [`Query`] as this subject, across namespaces.
    pub fn query(&mut self, q: &Query) -> Result<Vec<Object>, ApiError> {
        self.api.query(&self.subject, q)
    }

    /// Opens a watch over one [`Query`] as this subject.
    pub fn watch(&mut self, q: &Query) -> Result<WatchId, ApiError> {
        self.api.watch_query(&self.subject, q)
    }
}

/// A client handle bound to one subject *and* one namespace: the typed API
/// surface components are written against.
pub struct NamespacedClient<'a> {
    api: &'a mut ApiServer,
    subject: String,
    namespace: String,
}

impl NamespacedClient<'_> {
    /// The subject this handle acts as.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The namespace this handle is scoped to.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Builds the full reference for `(kind, name)` in this namespace.
    pub fn oref(&self, kind: &str, name: &str) -> ObjectRef {
        ObjectRef::new(kind, self.namespace.clone(), name)
    }

    /// Creates an object.
    pub fn create(&mut self, kind: &str, name: &str, model: Value) -> Result<u64, ApiError> {
        let oref = self.oref(kind, name);
        self.api.create(&self.subject, &oref, model)
    }

    /// Reads an object.
    pub fn get(&self, kind: &str, name: &str) -> Result<Object, ApiError> {
        self.api.get(&self.subject, &self.oref(kind, name))
    }

    /// Reads a single attribute from an object's model.
    pub fn get_path(&self, kind: &str, name: &str, path: &str) -> Result<Value, ApiError> {
        self.api
            .get_path(&self.subject, &self.oref(kind, name), path)
    }

    /// Lists objects of a kind in this namespace.
    #[deprecated(note = "use `NamespacedClient::query` with a `Query`")]
    #[allow(deprecated)]
    pub fn list(&self, kind: &str) -> Result<Vec<Object>, ApiError> {
        self.api
            .list_namespaced(&self.subject, kind, &self.namespace)
    }

    /// Runs a [`Query`] pinned to this handle's namespace (whatever
    /// namespace the query carried is overridden).
    pub fn query(&mut self, q: &Query) -> Result<Vec<Object>, ApiError> {
        let q = q.clone().in_ns(self.namespace.as_str());
        self.api.query(&self.subject, &q)
    }

    /// Replaces an object's model with optimistic concurrency control.
    pub fn update(
        &mut self,
        kind: &str,
        name: &str,
        model: Value,
        expected_rv: Option<u64>,
    ) -> Result<u64, ApiError> {
        let oref = self.oref(kind, name);
        self.api.update(&self.subject, &oref, model, expected_rv)
    }

    /// Merges `patch` into the current model (strategic-merge semantics).
    pub fn patch(&mut self, kind: &str, name: &str, patch: Value) -> Result<u64, ApiError> {
        let oref = self.oref(kind, name);
        self.api.patch(&self.subject, &oref, patch)
    }

    /// Sets one attribute of an object's model.
    pub fn patch_path(
        &mut self,
        kind: &str,
        name: &str,
        path: &str,
        value: Value,
    ) -> Result<u64, ApiError> {
        let oref = self.oref(kind, name);
        self.api.patch_path(&self.subject, &oref, path, value)
    }

    /// Removes an attribute from an object's model.
    pub fn delete_path(&mut self, kind: &str, name: &str, path: &str) -> Result<u64, ApiError> {
        let oref = self.oref(kind, name);
        self.api.delete_path(&self.subject, &oref, path)
    }

    /// Deletes an object.
    pub fn delete(&mut self, kind: &str, name: &str) -> Result<Object, ApiError> {
        let oref = self.oref(kind, name);
        self.api.delete(&self.subject, &oref)
    }

    /// Opens a watch over one [`Query`] pinned to this handle's namespace.
    /// The subscription registers in exactly this namespace's shard, so
    /// activity elsewhere can never wake it.
    pub fn watch(&mut self, q: &Query) -> Result<WatchId, ApiError> {
        let q = q.clone().in_ns(self.namespace.as_str());
        self.api.watch_query(&self.subject, &q)
    }

    /// Opens a watch over one kind *in this namespace*.
    #[deprecated(note = "use `NamespacedClient::watch` with a `Query`")]
    #[allow(deprecated)]
    pub fn watch_kind(&mut self, kind: &str) -> Result<WatchId, ApiError> {
        let selector = WatchSelector::KindInNamespace {
            kind: kind.to_string(),
            namespace: self.namespace.clone(),
        };
        self.api.watch_selector(&self.subject, selector)
    }

    /// Opens a watch scoped to exactly one object.
    #[deprecated(note = "use `NamespacedClient::watch` with a named `Query`")]
    #[allow(deprecated)]
    pub fn watch_object(&mut self, kind: &str, name: &str) -> Result<WatchId, ApiError> {
        let oref = self.oref(kind, name);
        self.api.watch_object(&self.subject, &oref)
    }

    /// Drains pending events for a watch subscription.
    pub fn poll(&mut self, id: WatchId) -> Vec<WatchEvent> {
        self.api.poll(id)
    }

    /// Drains pending events, coalescing bursts per object.
    pub fn poll_coalesced(&mut self, id: WatchId) -> Vec<CoalescedEvent> {
        self.api.poll_coalesced(id)
    }

    /// Returns `true` if the subscription has undelivered events.
    pub fn has_pending(&self, id: WatchId) -> bool {
        self.api.has_pending(id)
    }

    /// Cancels a watch subscription.
    pub fn cancel_watch(&mut self, id: WatchId) {
        self.api.cancel_watch(id)
    }
}

/// A read-only client handle bound to one subject. Unlike [`Client`] this
/// borrows the server immutably, so many readers can coexist (and a reader
/// can be held while inspecting results of a previous mutation).
///
/// Reads are served from a [`StoreSnapshot`] taken when the handle is
/// created: they are consistent as of that commit boundary, never touch
/// the store's own accessors, and therefore never contend with the write
/// coordinator. RBAC is still enforced per read.
pub struct ReadClient<'a> {
    api: &'a ApiServer,
    snap: StoreSnapshot,
    subject: String,
}

impl<'a> ReadClient<'a> {
    pub(crate) fn new(api: &'a ApiServer, subject: String) -> Self {
        ReadClient {
            snap: api.snapshot(),
            api,
            subject,
        }
    }

    /// The subject this handle acts as.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Scopes the handle to one namespace.
    pub fn namespace(self, namespace: impl Into<String>) -> NamespacedReadClient<'a> {
        NamespacedReadClient {
            api: self.api,
            snap: self.snap,
            subject: self.subject,
            namespace: namespace.into(),
        }
    }
}

/// A read-only handle bound to one subject *and* one namespace, serving
/// reads from the snapshot its parent [`ReadClient`] pinned.
pub struct NamespacedReadClient<'a> {
    api: &'a ApiServer,
    snap: StoreSnapshot,
    subject: String,
    namespace: String,
}

impl NamespacedReadClient<'_> {
    /// The subject this handle acts as.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The namespace this handle is scoped to.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Builds the full reference for `(kind, name)` in this namespace.
    pub fn oref(&self, kind: &str, name: &str) -> ObjectRef {
        ObjectRef::new(kind, self.namespace.clone(), name)
    }

    fn authorize(&self, verb: Verb, oref: &ObjectRef) -> Result<(), ApiError> {
        if self.api.rbac().authorize(&self.subject, verb, oref) {
            Ok(())
        } else {
            Err(ApiError::Forbidden {
                subject: self.subject.clone(),
                reason: format!("{verb:?} on {oref} not permitted"),
            })
        }
    }

    /// Reads an object (as of the handle's snapshot).
    pub fn get(&self, kind: &str, name: &str) -> Result<Object, ApiError> {
        let oref = self.oref(kind, name);
        self.authorize(Verb::Get, &oref)?;
        self.snap
            .get(&oref)
            .cloned()
            .ok_or(ApiError::NotFound(oref))
    }

    /// Reads a single attribute from an object's model.
    pub fn get_path(&self, kind: &str, name: &str, path: &str) -> Result<Value, ApiError> {
        let obj = self.get(kind, name)?;
        Ok(obj.model.get_path(path).cloned().unwrap_or(Value::Null))
    }

    /// Lists objects of a kind in this namespace (as of the snapshot).
    #[deprecated(note = "use `NamespacedReadClient::query` with a `Query`")]
    pub fn list(&self, kind: &str) -> Result<Vec<Object>, ApiError> {
        let probe = ObjectRef::new(kind, self.namespace.clone(), "*");
        self.authorize(Verb::List, &probe)
            .map_err(|_| ApiError::Forbidden {
                subject: self.subject.clone(),
                reason: format!(
                    "List on kind {kind} in namespace {} not permitted",
                    self.namespace
                ),
            })?;
        Ok(self
            .snap
            .scan_in(kind, &self.namespace)
            .into_iter()
            .cloned()
            .collect())
    }

    /// Runs a [`Query`] pinned to this handle's namespace, served from the
    /// snapshot. Snapshots carry no indexes, so this is always a filtered
    /// scan — consistent, contention-free, and off the write coordinator.
    pub fn query(&self, q: &Query) -> Result<Vec<Object>, ApiError> {
        let q = q.clone().in_ns(self.namespace.as_str());
        let probe = ObjectRef::new(
            q.kind.as_deref().unwrap_or("*"),
            self.namespace.clone(),
            q.name.as_deref().unwrap_or("*"),
        );
        self.authorize(Verb::List, &probe)
            .map_err(|_| ApiError::Forbidden {
                subject: self.subject.clone(),
                reason: format!(
                    "List on kind {} in namespace {} not permitted",
                    q.kind.as_deref().unwrap_or("*"),
                    self.namespace
                ),
            })?;
        Ok(self.snap.query(&q).into_iter().cloned().collect())
    }

    /// Returns `true` if the subscription has undelivered events. This is
    /// watch state, not object state: it is read live, not from the
    /// snapshot.
    pub fn has_pending(&self, id: WatchId) -> bool {
        self.api.has_pending(id)
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shims (`list`/`watch_kind`/`watch_object`) stay covered
    // here until they are removed.
    #![allow(deprecated)]

    use super::*;
    use dspace_value::{AttrType, KindSchema};

    fn api_with_lamp() -> ApiServer {
        let mut api = ApiServer::new();
        api.register_schema(
            KindSchema::digivice("digi.dev", "v1", "Lamp").control("power", AttrType::String),
        );
        api
    }

    #[test]
    fn namespaced_verbs_roundtrip() {
        let mut api = api_with_lamp();
        let model = api.schema("Lamp").unwrap().new_model("l1", "bedroom");
        let mut c = api.client(ApiServer::ADMIN).namespace("bedroom");
        assert_eq!(c.create("Lamp", "l1", model).unwrap(), 1);
        assert_eq!(c.get("Lamp", "l1").unwrap().oref.namespace, "bedroom");
        c.patch_path("Lamp", "l1", ".control.power.intent", "on".into())
            .unwrap();
        assert_eq!(
            c.get_path("Lamp", "l1", ".control.power.intent")
                .unwrap()
                .as_str(),
            Some("on")
        );
        let gone = c.delete("Lamp", "l1").unwrap();
        assert_eq!(gone.oref, ObjectRef::new("Lamp", "bedroom", "l1"));
    }

    #[test]
    fn list_is_namespace_scoped() {
        let mut api = api_with_lamp();
        for ns in ["bedroom", "kitchen"] {
            let model = api.schema("Lamp").unwrap().new_model("l1", ns);
            api.client(ApiServer::ADMIN)
                .namespace(ns)
                .create("Lamp", "l1", model)
                .unwrap();
        }
        let c = api.client(ApiServer::ADMIN).namespace("bedroom");
        let objs = c.list("Lamp").unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].oref.namespace, "bedroom");
    }

    #[test]
    fn watch_kind_is_shard_scoped() {
        let mut api = api_with_lamp();
        for ns in ["bedroom", "kitchen"] {
            let model = api.schema("Lamp").unwrap().new_model("l1", ns);
            api.client(ApiServer::ADMIN)
                .namespace(ns)
                .create("Lamp", "l1", model)
                .unwrap();
        }
        let w = api
            .client(ApiServer::ADMIN)
            .namespace("bedroom")
            .watch_kind("Lamp")
            .unwrap();
        api.client(ApiServer::ADMIN)
            .namespace("kitchen")
            .patch_path("Lamp", "l1", ".control.power.intent", "on".into())
            .unwrap();
        assert!(!api.has_pending(w), "kitchen event leaked into bedroom");
        api.client(ApiServer::ADMIN)
            .namespace("bedroom")
            .patch_path("Lamp", "l1", ".control.power.intent", "on".into())
            .unwrap();
        let evs = api.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref.namespace, "bedroom");
    }

    #[test]
    fn client_enforces_rbac() {
        let mut api = api_with_lamp();
        let model = api.schema("Lamp").unwrap().new_model("l1", "default");
        api.client(ApiServer::ADMIN)
            .namespace("default")
            .create("Lamp", "l1", model)
            .unwrap();
        let c = api.client("intruder").namespace("default");
        assert!(matches!(
            c.get("Lamp", "l1"),
            Err(ApiError::Forbidden { .. })
        ));
    }
}

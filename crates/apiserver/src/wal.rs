//! Per-namespace write-ahead log and snapshot checkpoints for the store.
//!
//! Each namespace shard journals to its own append-only file
//! (`wal-<ns>.log`), so the log inherits the store's sharding: writers in
//! different namespaces never contend for a file, and a namespace's
//! history is totally ordered within one file. Records are framed as
//!
//! ```text
//! [u32 le payload length][u32 le checksum][JSON payload]
//! ```
//!
//! over the `dspace_value::json` codec; a torn final record (short frame
//! or checksum mismatch) ends the readable prefix, and recovery truncates
//! the file there so appends resume on a whole-record boundary.
//!
//! Payloads are one of three record types, each carrying the namespace
//! and a per-namespace monotonic sequence number (the `seq` survives
//! shard drop/recreate cycles, which is what lets a checkpoint state
//! exactly how much of each file it has absorbed):
//!
//! - `commit` — one shard slice of a mutation verb: the shard revision it
//!   started from (`base`), whether the verb (re)ensured the shard (which
//!   clears a pending retirement), how many events it appended, and the
//!   successful ops in ticket order.
//! - `retire` — the namespace entered deletion draining.
//! - `drop` — the drained shard was dropped (its revision counter resets
//!   if the namespace is ever recreated).
//!
//! A checkpoint (`checkpoint.json`, written to a temp file, fsynced, and
//! renamed) captures every shard's objects and revision counter plus the
//! per-namespace sequence floor; records at or below the floor are
//! skipped on replay, and the logs are truncated once the checkpoint is
//! durable. Recovery is therefore checkpoint-load + tail-replay.
//!
//! Append and flush failures panic: a store that silently stops
//! journaling is strictly worse than one that crashes and recovers.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use dspace_value::{json, Value};

/// When appended records are pushed toward disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// Buffer appends in user space (the default): bytes reach the
    /// operating system when the writer's buffer drains, at checkpoints,
    /// and when the store is dropped. A hard kill can lose the buffered
    /// tail, and recovery then stops cleanly at the last whole record —
    /// the same contract as losing the OS page cache to a power cut.
    Batch,
    /// Additionally `fdatasync` every touched log once per mutation verb.
    /// Survives power loss, at a large per-commit cost.
    Commit,
}

/// Where and how a [`crate::store::Store`] journals.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding the `wal-*.log` files and `checkpoint.json`.
    pub dir: PathBuf,
    /// Sync policy for appends.
    pub sync: WalSync,
    /// Roll a checkpoint after this many logged commit records.
    pub checkpoint_every: u64,
}

impl DurabilityOptions {
    /// Durability rooted at `dir` with the default policy: per-verb OS
    /// flush, checkpoint every 1024 commits.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            dir: dir.into(),
            sync: WalSync::Batch,
            checkpoint_every: 1024,
        }
    }
}

/// A recovery failure: an I/O error, or a log/checkpoint whose contents
/// are inconsistent with replaying onto the recovered state.
#[derive(Debug)]
pub struct WalError {
    message: String,
}

impl WalError {
    pub(crate) fn corrupt(message: impl Into<String>) -> Self {
        WalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wal: {}", self.message)
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError {
            message: e.to_string(),
        }
    }
}

/// One replayable log record (the namespace is the map key in
/// [`Recovered::records`]).
#[derive(Debug)]
pub enum WalRecord {
    /// One shard slice of a mutation verb.
    Commit {
        /// Per-namespace sequence number.
        seq: u64,
        /// Shard revision when the slice began; replay asserts it.
        base: u64,
        /// The verb (re)ensured the shard: create it if absent and clear
        /// a pending retirement, exactly like the live path.
        ensure: bool,
        /// Events the slice appended (replay cross-checks its own count).
        appended: u64,
        /// Successful ops in ticket order, as parsed JSON payloads.
        ops: Vec<Value>,
    },
    /// The namespace entered deletion draining.
    Retire {
        /// Per-namespace sequence number.
        seq: u64,
    },
    /// The drained shard was dropped (revision resets on recreation).
    Drop {
        /// Per-namespace sequence number.
        seq: u64,
    },
}

impl WalRecord {
    fn seq(&self) -> u64 {
        match self {
            WalRecord::Commit { seq, .. } | WalRecord::Retire { seq } | WalRecord::Drop { seq } => {
                *seq
            }
        }
    }
}

/// One object in a checkpoint.
#[derive(Debug)]
pub struct CheckpointObject {
    /// Object kind.
    pub kind: String,
    /// Object namespace.
    pub namespace: String,
    /// Object name.
    pub name: String,
    /// Resource version at checkpoint time.
    pub resource_version: u64,
    /// The committed model.
    pub model: Value,
}

/// One shard in a checkpoint.
#[derive(Debug)]
pub struct CheckpointShard {
    /// The shard's namespace.
    pub namespace: String,
    /// Events ever committed in the shard.
    pub committed: u64,
    /// The namespace was draining toward deletion.
    pub retiring: bool,
    /// The shard's objects.
    pub objects: Vec<CheckpointObject>,
}

/// A parsed `checkpoint.json` (empty when none was ever written).
#[derive(Debug, Default)]
pub struct Checkpoint {
    /// Global commit counter at checkpoint time.
    pub committed_total: u64,
    /// Per-namespace sequence floor: records at or below it are already
    /// reflected in the checkpoint state.
    pub seqs: BTreeMap<String, u64>,
    /// Every live shard at checkpoint time.
    pub shards: Vec<CheckpointShard>,
}

/// Everything [`Wal::open`] read back from the durability directory.
#[derive(Debug)]
pub struct Recovered {
    /// The newest durable checkpoint (default/empty when none exists).
    pub checkpoint: Checkpoint,
    /// Per-namespace log tails, each in file (= commit) order, already
    /// filtered down to records above the checkpoint's sequence floor.
    pub records: BTreeMap<String, Vec<WalRecord>>,
}

/// One namespace's open appender.
#[derive(Debug)]
struct NsLog {
    w: io::BufWriter<File>,
    /// Appends since the last commit-mode sync.
    dirty: bool,
    /// The namespace pre-escaped as a JSON string, reused by every
    /// record so the hot path never re-escapes it.
    ns_json: String,
}

/// The open journal: per-namespace appenders plus the sequence counters.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    sync: WalSync,
    checkpoint_every: u64,
    /// Open appenders, keyed by namespace (opened lazily on first append).
    files: BTreeMap<String, NsLog>,
    /// Last sequence number handed out per namespace. Monotonic across
    /// shard drop/recreate cycles and across restarts.
    seqs: BTreeMap<String, u64>,
    /// Reusable payload buffer for the commit hot path: grows to the
    /// working record size once, then every commit builds in place.
    scratch: String,
}

impl Wal {
    /// Opens the durability directory: loads the checkpoint, scans every
    /// log (truncating torn tails in place), and returns the journal
    /// handle alongside everything the store must replay.
    pub fn open(opts: &DurabilityOptions) -> Result<(Wal, Recovered), WalError> {
        fs::create_dir_all(&opts.dir)?;
        // A leftover temp file is a checkpoint that never got renamed
        // into place; its state is fully covered by the logs.
        let _ = fs::remove_file(opts.dir.join("checkpoint.json.tmp"));
        let checkpoint = load_checkpoint(&opts.dir)?;
        let mut records: BTreeMap<String, Vec<WalRecord>> = BTreeMap::new();
        let mut seqs = checkpoint.seqs.clone();
        // One scratch buffer serves every log file: recovery of a
        // many-namespace space re-reads into the same allocation instead
        // of paying a fresh `Vec` per shard log.
        let mut buf = Vec::new();
        for path in wal_files(&opts.dir)? {
            buf.clear();
            File::open(&path)?.read_to_end(&mut buf)?;
            let (recs, valid_len) = scan_records(&buf);
            if valid_len < buf.len() {
                // Torn tail: drop the partial record so future appends
                // start on a whole-record boundary.
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid_len as u64)?;
            }
            for (ns, rec) in recs {
                let floor = checkpoint.seqs.get(&ns).copied().unwrap_or(0);
                let seq = rec.seq();
                let s = seqs.entry(ns.clone()).or_insert(0);
                *s = (*s).max(seq);
                if seq > floor {
                    records.entry(ns).or_default().push(rec);
                }
            }
        }
        let wal = Wal {
            dir: opts.dir.clone(),
            sync: opts.sync,
            checkpoint_every: opts.checkpoint_every.max(1),
            files: BTreeMap::new(),
            seqs,
            scratch: String::new(),
        };
        Ok((
            wal,
            Recovered {
                checkpoint,
                records,
            },
        ))
    }

    /// The configured checkpoint interval (in commit records).
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// Appends a `commit` record for one shard slice from op strings the
    /// mutators rendered at commit time (sharing the encoding walk with
    /// the event sizing). One call per journaled verb or batch slice; the
    /// payload is built in a single reused buffer.
    pub fn commit(&mut self, ns: &str, base: u64, ensure: bool, appended: u64, ops: &[String]) {
        let seq = self.next_seq(ns);
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        let log = self.log_mut(ns);
        payload.push_str("{\"t\":\"commit\",\"seq\":");
        push_exact(&mut payload, seq);
        payload.push_str(",\"ns\":");
        payload.push_str(&log.ns_json);
        payload.push_str(",\"base\":");
        push_exact(&mut payload, base);
        payload.push_str(",\"ensure\":");
        payload.push_str(if ensure { "true" } else { "false" });
        payload.push_str(",\"appended\":");
        push_exact(&mut payload, appended);
        payload.push_str(",\"ops\":[");
        for (i, op) in ops.iter().enumerate() {
            if i > 0 {
                payload.push(',');
            }
            payload.push_str(op);
        }
        payload.push_str("]}");
        write_frame(&mut log.w, ns, &payload);
        log.dirty = true;
        self.scratch = payload;
    }

    /// Appends a `retire` record (the namespace entered deletion).
    pub fn retire(&mut self, ns: &str) {
        let seq = self.next_seq(ns);
        let payload = format!(r#"{{"t":"retire","seq":{},"ns":{}}}"#, exact(seq), jstr(ns));
        self.append(ns, &payload);
    }

    /// Appends a `drop` record (the drained shard was removed).
    pub fn drop_shard(&mut self, ns: &str) {
        let seq = self.next_seq(ns);
        let payload = format!(r#"{{"t":"drop","seq":{},"ns":{}}}"#, exact(seq), jstr(ns));
        self.append(ns, &payload);
    }

    /// Pushes appended records toward disk per the sync policy. Called
    /// once per mutation verb by the store: a no-op in batch mode (the
    /// buffer drains on its own schedule), flush + `fdatasync` in commit
    /// mode.
    pub fn flush(&mut self) {
        if self.sync != WalSync::Commit {
            return;
        }
        for (ns, log) in &mut self.files {
            if !log.dirty {
                continue;
            }
            log.w
                .flush()
                .unwrap_or_else(|e| panic!("wal: flush for namespace '{ns}' failed: {e}"));
            log.w
                .get_ref()
                .sync_data()
                .unwrap_or_else(|e| panic!("wal: fsync for namespace '{ns}' failed: {e}"));
            log.dirty = false;
        }
    }

    /// Unconditionally drains every writer's buffer to the OS. Runs
    /// before a checkpoint truncates the logs, so no buffered pre-
    /// checkpoint record can land after the truncation point.
    fn flush_all(&mut self) {
        for (ns, log) in &mut self.files {
            log.w
                .flush()
                .unwrap_or_else(|e| panic!("wal: flush for namespace '{ns}' failed: {e}"));
            log.dirty = false;
        }
    }

    /// The per-namespace sequence floor as a JSON object, for embedding
    /// into a checkpoint document.
    pub fn seqs_json(&self) -> String {
        let entries: Vec<String> = self
            .seqs
            .iter()
            .map(|(ns, s)| format!("{}:{}", jstr(ns), exact(*s)))
            .collect();
        format!("{{{}}}", entries.join(","))
    }

    /// Durably installs `doc` as the newest checkpoint (write-temp,
    /// fsync, rename, fsync-dir) and truncates every log: all their
    /// records are at or below the floor the document embeds.
    pub fn write_checkpoint(&mut self, doc: &str) {
        self.flush_all();
        let tmp = self.dir.join("checkpoint.json.tmp");
        let target = self.dir.join("checkpoint.json");
        let write = || -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(doc.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &target)?;
            // Make the rename itself durable; best effort on filesystems
            // where directories cannot be opened.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
            // Every logged record is covered by the checkpoint now. Open
            // appenders use O_APPEND, so they keep writing at the (new)
            // end after the truncate.
            for path in wal_files(&self.dir)? {
                OpenOptions::new().write(true).open(&path)?.set_len(0)?;
            }
            Ok(())
        };
        write().unwrap_or_else(|e| panic!("wal: checkpoint failed: {e}"));
    }

    fn next_seq(&mut self, ns: &str) -> u64 {
        if let Some(s) = self.seqs.get_mut(ns) {
            *s += 1;
            return *s;
        }
        self.seqs.insert(ns.to_string(), 1);
        1
    }

    /// The namespace's appender, opened (and its JSON name cached) on
    /// first use.
    fn log_mut(&mut self, ns: &str) -> &mut NsLog {
        if !self.files.contains_key(ns) {
            let path = self.dir.join(format!("wal-{}.log", escape_ns(ns)));
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("wal: cannot open {}: {e}", path.display()));
            self.files.insert(
                ns.to_string(),
                NsLog {
                    // 64 KiB: batch mode drains on buffer fill, so a
                    // bigger buffer means fewer write syscalls per verb
                    // (the buffered tail is already forfeit on hard kill).
                    w: io::BufWriter::with_capacity(64 << 10, file),
                    dirty: false,
                    ns_json: jstr(ns),
                },
            );
        }
        self.files.get_mut(ns).expect("just inserted")
    }

    fn append(&mut self, ns: &str, payload: &str) {
        let log = self.log_mut(ns);
        write_frame(&mut log.w, ns, payload);
        log.dirty = true;
    }
}

/// Writes one length-prefixed, checksummed frame.
fn write_frame(w: &mut io::BufWriter<File>, ns: &str, payload: &str) {
    let bytes = payload.as_bytes();
    let frame = |w: &mut io::BufWriter<File>| -> io::Result<()> {
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(&checksum(bytes).to_le_bytes())?;
        w.write_all(bytes)
    };
    frame(w).unwrap_or_else(|e| panic!("wal: append for namespace '{ns}' failed: {e}"));
}

/// Appends `n` in the journal's exact-u64 encoding: plain decimal while
/// exactly representable as `f64`, a quoted decimal string beyond 2^53
/// (mirroring [`Value::from_exact_u64`]), without building a `Value`.
fn push_exact(out: &mut String, n: u64) {
    use std::fmt::Write;
    if n <= (1u64 << 53) {
        let _ = write!(out, "{n}");
    } else {
        let _ = write!(out, "\"{n}\"");
    }
}

/// Renders a `u64` exactly, via [`Value::from_exact_u64`]: a JSON number
/// up to 2^53, a decimal string literal beyond.
pub(crate) fn exact(n: u64) -> String {
    json::to_string(&Value::from_exact_u64(n))
}

/// Renders a JSON string literal.
pub(crate) fn jstr(s: &str) -> String {
    json::to_string(&Value::Str(s.to_string()))
}

/// 32-bit frame checksum: 64-bit FNV-1a over 8-byte words (length mixed
/// into the seed, tail zero-padded) folded to 32 bits. Word-at-a-time
/// keeps the serial multiply chain ~8x shorter than byte-wise FNV on the
/// append hot path; a torn or corrupt tail only needs a well-mixed
/// fingerprint, not a cryptographic digest.
fn checksum(bytes: &[u8]) -> u32 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h = (h ^ u64::from_le_bytes(w.try_into().expect("8 bytes"))).wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    (h ^ (h >> 32)) as u32
}

/// Escapes a namespace into a filename: `[A-Za-z0-9_-]` verbatim,
/// everything else `%XX`. Collisions are impossible and the mapping need
/// not be reversed — every record carries its namespace.
fn escape_ns(ns: &str) -> String {
    let mut out = String::with_capacity(ns.len());
    for b in ns.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Lists the `wal-*.log` files under `dir`, sorted for determinism.
fn wal_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("wal-") && name.ends_with(".log") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Scans one log's bytes into records, returning them with the length of
/// the valid prefix. A short frame, checksum mismatch, or unparseable
/// payload ends the scan — by construction that is a torn tail.
fn scan_records(data: &[u8]) -> (Vec<(String, WalRecord)>, usize) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        if data.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let sum = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if data.len() - pos - 8 < len {
            break;
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if checksum(payload) != sum {
            break;
        }
        let Some(rec) = parse_record(payload) else {
            break;
        };
        out.push(rec);
        pos += 8 + len;
    }
    (out, pos)
}

fn parse_record(payload: &[u8]) -> Option<(String, WalRecord)> {
    let text = std::str::from_utf8(payload).ok()?;
    let Ok(Value::Object(mut map)) = json::parse(text) else {
        return None;
    };
    // Resolve the tag by borrow: replay parses one record per frame and
    // must not clone a fresh `String` for each just to branch on it.
    enum Tag {
        Commit,
        Retire,
        Drop,
    }
    let tag = match map.get("t") {
        Some(Value::Str(s)) => match s.as_str() {
            "commit" => Tag::Commit,
            "retire" => Tag::Retire,
            "drop" => Tag::Drop,
            _ => return None,
        },
        _ => return None,
    };
    let ns = match map.remove("ns") {
        Some(Value::Str(s)) => s,
        _ => return None,
    };
    let seq = map.get("seq")?.as_exact_u64()?;
    let record = match tag {
        Tag::Commit => {
            let base = map.get("base")?.as_exact_u64()?;
            let ensure = map.get("ensure")?.as_bool()?;
            let appended = map.get("appended")?.as_exact_u64()?;
            let ops = match map.remove("ops") {
                Some(Value::Array(a)) => a,
                _ => return None,
            };
            WalRecord::Commit {
                seq,
                base,
                ensure,
                appended,
                ops,
            }
        }
        Tag::Retire => WalRecord::Retire { seq },
        Tag::Drop => WalRecord::Drop { seq },
    };
    Some((ns, record))
}

fn load_checkpoint(dir: &Path) -> Result<Checkpoint, WalError> {
    let path = dir.join("checkpoint.json");
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Checkpoint::default()),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |what: &str| WalError::corrupt(format!("checkpoint.json: {what}"));
    let Ok(Value::Object(mut map)) = json::parse(&text) else {
        return Err(corrupt("not a JSON object"));
    };
    let committed_total = map
        .get("committed_total")
        .and_then(Value::as_exact_u64)
        .ok_or_else(|| corrupt("missing committed_total"))?;
    let mut seqs = BTreeMap::new();
    match map.remove("seqs") {
        Some(Value::Object(m)) => {
            for (ns, v) in m {
                let seq = v
                    .as_exact_u64()
                    .ok_or_else(|| corrupt("non-integer sequence floor"))?;
                seqs.insert(ns, seq);
            }
        }
        _ => return Err(corrupt("missing seqs")),
    }
    let mut shards = Vec::new();
    let Some(Value::Array(shard_docs)) = map.remove("shards") else {
        return Err(corrupt("missing shards"));
    };
    for doc in shard_docs {
        let Value::Object(mut sm) = doc else {
            return Err(corrupt("shard entry is not an object"));
        };
        let namespace = match sm.remove("ns") {
            Some(Value::Str(s)) => s,
            _ => return Err(corrupt("shard entry missing ns")),
        };
        let committed = sm
            .get("committed")
            .and_then(Value::as_exact_u64)
            .ok_or_else(|| corrupt("shard entry missing committed"))?;
        let retiring = sm
            .get("retiring")
            .and_then(Value::as_bool)
            .ok_or_else(|| corrupt("shard entry missing retiring"))?;
        let mut objects = Vec::new();
        let Some(Value::Array(object_docs)) = sm.remove("objects") else {
            return Err(corrupt("shard entry missing objects"));
        };
        for doc in object_docs {
            let Value::Object(mut om) = doc else {
                return Err(corrupt("object entry is not an object"));
            };
            let take_str = |m: &mut BTreeMap<String, Value>, k: &str| match m.remove(k) {
                Some(Value::Str(s)) => Some(s),
                _ => None,
            };
            let kind =
                take_str(&mut om, "kind").ok_or_else(|| corrupt("object entry missing kind"))?;
            let ons = take_str(&mut om, "namespace")
                .ok_or_else(|| corrupt("object entry missing namespace"))?;
            let name =
                take_str(&mut om, "name").ok_or_else(|| corrupt("object entry missing name"))?;
            let resource_version = om
                .get("rv")
                .and_then(Value::as_exact_u64)
                .ok_or_else(|| corrupt("object entry missing rv"))?;
            let model = om
                .remove("model")
                .ok_or_else(|| corrupt("object entry missing model"))?;
            objects.push(CheckpointObject {
                kind,
                namespace: ons,
                name,
                resource_version,
                model,
            });
        }
        shards.push(CheckpointShard {
            namespace,
            committed,
            retiring,
            objects,
        });
    }
    Ok(Checkpoint {
        committed_total,
        seqs,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("dspace-wal-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let opts = DurabilityOptions::new(&dir);
        {
            let (mut wal, recovered) = Wal::open(&opts).unwrap();
            assert!(recovered.records.is_empty());
            wal.commit(
                "default",
                0,
                true,
                1,
                &[r#"{"op":"del","kind":"K","ns":"default","name":"n"}"#.to_string()],
            );
            wal.retire("default");
            wal.drop_shard("default");
            wal.flush();
        }
        // Append a torn frame: a header promising more bytes than exist.
        let path = dir.join("wal-default.log");
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&1000u32.to_le_bytes()).unwrap();
            f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01]).unwrap();
        }
        let len_with_torn = fs::metadata(&path).unwrap().len();
        let (_, recovered) = Wal::open(&opts).unwrap();
        let recs = &recovered.records["default"];
        assert_eq!(recs.len(), 3);
        assert!(matches!(
            recs[0],
            WalRecord::Commit {
                seq: 1,
                base: 0,
                ensure: true,
                appended: 1,
                ..
            }
        ));
        assert!(matches!(recs[1], WalRecord::Retire { seq: 2 }));
        assert!(matches!(recs[2], WalRecord::Drop { seq: 3 }));
        // The torn tail was truncated away in place.
        assert!(fs::metadata(&path).unwrap().len() < len_with_torn);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_ends_the_scan() {
        let payload = br#"{"t":"retire","seq":1,"ns":"a"}"#;
        let mut data = Vec::new();
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        data.extend_from_slice(&checksum(payload).to_le_bytes());
        data.extend_from_slice(payload);
        let good_len = data.len();
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        data.extend_from_slice(&(checksum(payload) ^ 1).to_le_bytes());
        data.extend_from_slice(payload);
        let (recs, valid) = scan_records(&data);
        assert_eq!(recs.len(), 1);
        assert_eq!(valid, good_len);
    }

    #[test]
    fn namespace_escaping() {
        assert_eq!(escape_ns("tenant-7"), "tenant-7");
        assert_eq!(escape_ns("a/b c"), "a%2Fb%20c");
        assert_eq!(escape_ns("é"), "%C3%A9");
    }
}

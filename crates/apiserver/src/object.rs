//! API objects and references.

use std::fmt;

use dspace_value::{Shared, Value};

/// Uniquely identifies an API object: `(kind, namespace, name)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectRef {
    /// The object's kind, e.g. `Room` or `Sync`.
    pub kind: String,
    /// Namespace, usually `default`.
    pub namespace: String,
    /// Object name, e.g. `lvroom`.
    pub name: String,
}

impl ObjectRef {
    /// Creates a reference.
    pub fn new(
        kind: impl Into<String>,
        namespace: impl Into<String>,
        name: impl Into<String>,
    ) -> Self {
        ObjectRef {
            kind: kind.into(),
            namespace: namespace.into(),
            name: name.into(),
        }
    }

    /// Shorthand for the `default` namespace.
    pub fn default_ns(kind: impl Into<String>, name: impl Into<String>) -> Self {
        Self::new(kind, "default", name)
    }

    /// Builds a reference from a model's `meta` section, if complete.
    pub fn from_model(model: &Value) -> Option<ObjectRef> {
        Some(ObjectRef::new(
            model.get_path("meta.kind")?.as_str()?,
            model
                .get_path("meta.namespace")
                .and_then(Value::as_str)
                .unwrap_or("default"),
            model.get_path("meta.name")?.as_str()?,
        ))
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.kind, self.namespace, self.name)
    }
}

/// A stored object: its model document plus the resource version.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// The object's identity.
    pub oref: ObjectRef,
    /// The model document. `meta.gen` mirrors `resource_version` — this is
    /// the version number that §3.5's intent-reconciliation guarantee is
    /// built on.
    ///
    /// The snapshot is [`Shared`] with the watch events that announced it:
    /// reading an object is O(1) in the model size, and the store only
    /// deep-copies when it must mutate a snapshot that watchers still hold
    /// (copy-on-write via `Shared::make_mut`).
    pub model: Shared<Value>,
    /// Monotonic per-object version, incremented on every write.
    pub resource_version: u64,
}

impl Object {
    /// Convenience accessor into the model.
    pub fn get(&self, path: &str) -> Option<&Value> {
        self.model.get_path(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::json;

    #[test]
    fn display_is_kind_ns_name() {
        let r = ObjectRef::default_ns("Room", "lvroom");
        assert_eq!(r.to_string(), "Room/default/lvroom");
    }

    #[test]
    fn from_model_reads_meta() {
        let m =
            json::parse(r#"{"meta": {"kind": "Lamp", "namespace": "ns1", "name": "l1"}}"#).unwrap();
        assert_eq!(
            ObjectRef::from_model(&m),
            Some(ObjectRef::new("Lamp", "ns1", "l1"))
        );
        // Missing name -> None.
        let bad = json::parse(r#"{"meta": {"kind": "Lamp"}}"#).unwrap();
        assert_eq!(ObjectRef::from_model(&bad), None);
        // Missing namespace defaults.
        let dflt = json::parse(r#"{"meta": {"kind": "Lamp", "name": "l1"}}"#).unwrap();
        assert_eq!(ObjectRef::from_model(&dflt).unwrap().namespace, "default");
    }
}

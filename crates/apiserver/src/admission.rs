//! Admission webhooks (§5.1–5.2 of the paper).
//!
//! Before a mutating verb commits, the apiserver forwards the request to
//! every registered webhook, which may accept or reject it. dSpace's
//! topology webhook — the component enforcing the multi-hierarchy and
//! single-writer constraints of §3.3 — registers here.

use dspace_value::Value;

use crate::object::ObjectRef;
use crate::rbac::Verb;

/// The request under review.
#[derive(Debug, Clone)]
pub struct AdmissionReview<'a> {
    /// Requesting subject.
    pub subject: &'a str,
    /// The mutating verb.
    pub verb: Verb,
    /// Target object.
    pub oref: &'a ObjectRef,
    /// Current stored model, if the object exists.
    pub old: Option<&'a Value>,
    /// Proposed model (absent for deletes).
    pub new: Option<&'a Value>,
}

/// A webhook's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionResponse {
    /// Let the request proceed.
    Allow,
    /// Reject with a reason.
    Deny(String),
}

/// An admission webhook.
///
/// Webhooks observe *committed* state transitions via `observe` (called
/// after a mutation lands) and veto *proposed* ones via `review`. The
/// observe half lets stateful webhooks (like dSpace's topology tracker)
/// keep their view of the world current without polling.
pub trait AdmissionWebhook {
    /// This webhook's name, used in error messages.
    fn name(&self) -> &str;

    /// Reviews a proposed mutation.
    fn review(&mut self, review: &AdmissionReview<'_>) -> AdmissionResponse;

    /// Notifies the webhook that a mutation committed. Default: no-op.
    fn observe(&mut self, _review: &AdmissionReview<'_>) {}
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// A webhook rejecting any model that sets `forbidden: true`.
    pub struct RejectForbiddenFlag;

    impl AdmissionWebhook for RejectForbiddenFlag {
        fn name(&self) -> &str {
            "reject-forbidden-flag"
        }

        fn review(&mut self, review: &AdmissionReview<'_>) -> AdmissionResponse {
            if let Some(new) = review.new {
                if new.get_path("forbidden").and_then(Value::as_bool) == Some(true) {
                    return AdmissionResponse::Deny("forbidden flag set".into());
                }
            }
            AdmissionResponse::Allow
        }
    }
}

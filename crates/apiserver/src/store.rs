//! Object storage and the Watch event log, sharded by namespace.
//!
//! Every namespace owns a *shard*: its own event log, its own revision
//! counter, its own selector indexes, and its own compaction horizon.
//! Mutations in one namespace never touch another shard's log or wake its
//! watchers, so tenants cannot contend — the structural prerequisite for
//! running controllers on separate threads.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use dspace_value::{json, Path, Segment, Shared, Value, ValueError};

use crate::error::ApiError;
use crate::executor::ShardExecutor;
use crate::object::{Object, ObjectRef};
use crate::query::{IndexKey, Plan, PredicateSelector, Query, QueryError, QueryPred};
use crate::wal::{self, Checkpoint, DurabilityOptions, Wal, WalError, WalRecord};

/// What happened to an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// Object created.
    Added,
    /// Object updated.
    Modified,
    /// Object deleted.
    Deleted,
}

/// One entry of a namespace shard's ordered event log.
///
/// The model snapshot is reference-counted: a mutation materializes the
/// snapshot once, and every watcher that receives the event shares it.
/// Cloning a `WatchEvent` is O(1) in the model size.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Strictly increasing revision *within the event's namespace shard*.
    /// A single shard's log is totally ordered and gap-free; there is no
    /// revision ordering across namespaces (shards never contend).
    pub revision: u64,
    /// What happened.
    pub kind: WatchEventKind,
    /// The object affected.
    pub oref: ObjectRef,
    /// Model snapshot after the change (for deletes: the last model).
    pub model: Shared<Value>,
    /// The object's resource version after the change.
    pub resource_version: u64,
}

/// One coalesced delivery: the newest event for an object plus the number
/// of raw log events it absorbed.
///
/// The contract drivers rely on (§3.5 adapted to batch wakes): the carried
/// snapshot is the *newest* committed state of the object at poll time, and
/// `coalesced` counts *every* raw event folded in — so a driver woken after
/// a burst reconciles once, against current state, and its metrics still
/// account for the full mutation volume.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalescedEvent {
    /// The newest pending event for the object.
    pub event: WatchEvent,
    /// Raw events collapsed into this delivery (>= 1).
    pub coalesced: u64,
}

/// One entry of a shard's event log: the event identity plus either a
/// shared model snapshot or a *rollback* recipe against the object's
/// next-newer entry.
///
/// The rollback form is what makes steady-state writes zero-copy: when a
/// mutation finds that the only other holder of the current model `Arc`
/// is this log's newest entry for the object, it steals the `Arc`,
/// mutates the document in place, and leaves behind the inverse ops that
/// recover the pre-write model from the post-write one. Invariant: the
/// newest log entry for any object is always a `Snapshot`, so a rollback
/// entry's successor is resident whenever the entry is (compaction only
/// pops from the front).
#[derive(Debug, Clone)]
struct LogEntry {
    /// Strictly increasing revision within the shard.
    revision: u64,
    /// What happened.
    kind: WatchEventKind,
    /// The object affected.
    oref: ObjectRef,
    /// The model after the change, as a snapshot or a rollback recipe.
    model: EntryModel,
    /// The object's resource version after the change.
    resource_version: u64,
    /// Serialized size of the entry's model. `0` means "never sized"
    /// (no member was interested and no hint was available at append
    /// time); a JSON document is never 0 bytes, so the sentinel is safe.
    bytes: u64,
}

/// How a log entry stores its model: materialized, or as the inverse of
/// the mutation relative to the object's next-newer log entry.
#[derive(Debug, Clone)]
enum EntryModel {
    /// The model itself, shared with the object map and every delivery.
    Snapshot(Shared<Value>),
    /// Inverse ops that recover this entry's model from its successor's.
    /// Only laggard polls pay the materialization; the hot path never
    /// touches these again.
    Rollback(Vec<InverseOp>),
}

/// One inverse step of a rollback entry: restore `path` to its pre-write
/// value, or remove the key the write freshly inserted.
#[derive(Debug, Clone)]
struct InverseOp {
    path: Path,
    /// `Some(old)` restores the previous value; `None` removes a freshly
    /// inserted key.
    old: Option<Value>,
}

/// Recovers an entry's model from its successor's by applying the
/// recorded inverse ops. All ops restore mutually consistent pre-state
/// values, so application order is immaterial; failures (an inner path
/// whose container an outer restore already replaced) are benign no-ops.
fn apply_rollback(doc: &mut Value, ops: &[InverseOp]) {
    for op in ops.iter().rev() {
        match &op.old {
            Some(v) => {
                let _ = doc.set(&op.path, v.clone());
            }
            None => {
                doc.remove(&op.path);
            }
        }
    }
}

/// Handle to a watch subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WatchId(pub u64);

/// What a watch subscription is interested in.
///
/// Scoped subscriptions are what keep the notification fan-out linear: a
/// digi driver subscribes to exactly its own model instead of receiving
/// (and discarding) every other digi's events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchSelector {
    /// Every object in every namespace (debug/CLI views).
    All,
    /// Objects of one kind, in every namespace.
    Kind(String),
    /// One exact object.
    Object(ObjectRef),
    /// Objects of one kind inside one namespace. This is the tenancy
    /// boundary: the subscription registers in exactly one shard, so
    /// activity in other namespaces can never wake it.
    KindInNamespace {
        /// The object kind.
        kind: String,
        /// The namespace shard to register in.
        namespace: String,
    },
    /// Objects of one kind inside one namespace whose *model* satisfies a
    /// compiled predicate. Matching happens at commit time against the
    /// index delta the shard just computed, so events that do not satisfy
    /// the predicate never even go pending. Semantics are stateless: each
    /// event is judged by its own model snapshot (a modification that
    /// leaves the predicate produces no "goodbye" event; deletes are
    /// judged by the final model).
    Predicate(PredicateSelector),
}

impl WatchSelector {
    /// Returns `true` if events about `oref` *can* belong to this
    /// subscription. For predicate selectors this is the scope check only
    /// (kind + namespace) — whether a concrete event matches also depends
    /// on its model snapshot, which [`WatchSelector::event_matches`]
    /// judges.
    pub fn matches(&self, oref: &ObjectRef) -> bool {
        match self {
            WatchSelector::All => true,
            WatchSelector::Kind(k) => *k == oref.kind,
            WatchSelector::Object(r) => r == oref,
            WatchSelector::KindInNamespace { kind, namespace } => {
                *kind == oref.kind && *namespace == oref.namespace
            }
            WatchSelector::Predicate(p) => p.kind == oref.kind && p.namespace == oref.namespace,
        }
    }

    /// Returns `true` if a concrete event (identity + model snapshot)
    /// belongs to this subscription. This is the judgement the append
    /// path charges pending counters by, and the poll path re-applies;
    /// the two agree because predicates are pure functions of the model.
    pub fn event_matches(&self, oref: &ObjectRef, model: &Value) -> bool {
        match self {
            WatchSelector::Predicate(p) => {
                p.kind == oref.kind && p.namespace == oref.namespace && p.pred.matches(model)
            }
            _ => self.matches(oref),
        }
    }

    /// Returns `true` when the selector spans every namespace and must be
    /// registered in every shard, existing and future.
    fn is_global(&self) -> bool {
        matches!(self, WatchSelector::All | WatchSelector::Kind(_))
    }

    /// The single shard a namespace-scoped selector registers in.
    fn home_namespace(&self) -> Option<&str> {
        match self {
            WatchSelector::Object(r) => Some(&r.namespace),
            WatchSelector::KindInNamespace { namespace, .. } => Some(namespace),
            WatchSelector::Predicate(p) => Some(&p.namespace),
            _ => None,
        }
    }
}

/// Monotone per-slot charge counters: how many matching events were ever
/// appended while the slot existed, and their serialized bytes.
///
/// Members in cell mode derive their pending counts as the difference
/// between the slot's current charge and the baseline they captured at
/// registration (or their last drain) — so an append charges each
/// matching *slot* once, not each subscribed watcher, and per-write cost
/// is flat in watcher count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Charge {
    events: u64,
    bytes: u64,
}

impl Charge {
    fn bump(&mut self, bytes: u64) {
        self.events += 1;
        self.bytes += bytes;
    }
}

/// One selector slot of a shard: its subscriber refcounts plus the shared
/// charge cell that single-slot members ride instead of per-member
/// counters.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// Registration refcounts — a watcher can reach the same slot through
    /// several selectors (e.g. a global `Kind` plus a scoped
    /// `KindInNamespace` of the same kind), and dropping one of them must
    /// not unhook the others.
    subs: BTreeMap<WatchId, usize>,
    charge: Charge,
    /// Set when an append charged this slot since the last
    /// [`Store::drain_dirty_watchers`] pass; the slot's key is then listed
    /// once in its shard's `dirty_slots`, so the drain enumerates only
    /// slots that actually took events.
    dirty: bool,
}

/// Identity of a plain (non-predicate) selector slot within one shard.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum SlotKey {
    All,
    Kind(String),
    Object(ObjectRef),
}

/// A watcher's registration state within one shard, owned *by the shard*
/// so a worker thread can maintain cursors and pending counters without
/// touching coordinator state.
#[derive(Debug, Clone)]
struct ShardMember {
    /// Shard revision of the next event this watcher has yet to examine:
    /// all events with `revision < cursor` are delivered or filtered out.
    cursor: u64,
    /// Plain selector slots this member occupies, with per-slot
    /// registration refcounts.
    slots: Vec<(SlotKey, usize)>,
    /// Predicate registrations (each also listed in `pred_watchers`).
    pred_refs: usize,
    /// How this member's pending counts are tracked (see [`Acct`]).
    acct: Acct,
}

impl ShardMember {
    /// `true` while the member may ride its single slot's charge cell:
    /// exactly one plain slot, no predicate registrations.
    fn cell_eligible(&self) -> bool {
        self.slots.len() == 1 && self.pred_refs == 0
    }
}

/// Pending accounting mode of one shard member.
///
/// The overwhelmingly common shape — one selector, or several selectors
/// mapping to the same slot — derives its pending counts from the slot's
/// charge cell, so appends never touch it. Members spanning several
/// distinct slots, or holding any predicate registration, fall back to
/// exact per-member counters (charged per matching event, deduped).
#[derive(Debug, Clone)]
enum Acct {
    /// Derived: pending = slot charge − `base` (captured at registration
    /// or last drain). Valid only while [`ShardMember::cell_eligible`].
    Cell { base: Charge },
    /// Exact per-member counters, maintained by the append path.
    Exact { pending: u64, bytes: u64 },
}

#[derive(Debug, Clone, Default)]
struct Watcher {
    /// The union of these selectors defines the subscription; a watcher
    /// matching an event through several selectors still receives it once.
    selectors: Vec<WatchSelector>,
    /// Shards this watcher is a member of; per-shard cursors and pending
    /// accounting live in the shard itself (see [`ShardMember`]), and
    /// `has_pending`/`pending_bytes` derive from them on demand.
    shards: BTreeSet<String>,
}

/// Per-shard side effects of a mutation batch, accumulated on the owning
/// worker and merged into `Store`-level counters afterwards (in shard-name
/// order, so the merge is deterministic).
#[derive(Debug, Default)]
struct ShardTally {
    /// Events appended (each is one global commit ticket).
    appended: u64,
    /// Log entries reclaimed by eager or batch-end compaction.
    compacted: u64,
    /// High-water mark of this shard's log during the batch.
    peak_log_len: usize,
    /// Batch-end compaction passes run for this slice (0 or 1).
    compaction_passes: u64,
    /// Model deep-clones the copy-on-write path could not avoid (a live
    /// snapshot, a delivered event, or an unstealable log entry still
    /// held the `Arc`). Steady-state writes keep this at zero.
    deep_clones: u64,
    /// Shard revision when this slice began: the `base` of its WAL commit
    /// record, which replay asserts before re-applying the ops.
    wal_base: u64,
    /// `true` when the store journals: shard mutators render their own
    /// WAL op into `wal_ops` on success (sharing the model encoding with
    /// the event sizing), in ticket order, on the owning worker.
    journal: bool,
    /// Pre-serialized WAL forms of the slice's *successful* ops, in
    /// ticket order. Empty unless `journal` is set.
    wal_ops: Vec<String>,
}

impl ShardTally {
    fn journaling(journal: bool) -> ShardTally {
        ShardTally {
            journal,
            ..ShardTally::default()
        }
    }
}

/// One namespace's slice of the store: its objects, event log, revision
/// counter, selector indexes, and member cursors.
///
/// A `Shard` owns everything a mutation batch in its namespace touches and
/// is `Send`: the executor can move it onto a worker thread, run the batch
/// there, and move it back — no locks, no shared state, and therefore no
/// scheduling-dependent results.
#[derive(Debug, Default)]
struct Shard {
    /// The namespace's objects, keyed by full reference.
    ///
    /// The map lives behind an `Arc` so [`Store::snapshot`] can publish it
    /// to readers in O(1). Mutations go through [`Arc::make_mut`]: while no
    /// snapshot holds the map the write is in place (free), and when one
    /// does, the map is cloned once — every entry's model is itself a
    /// [`Shared`] value, so the clone is shallow — and the snapshot keeps
    /// observing exactly the batch-boundary state it was taken at.
    objects: Arc<BTreeMap<ObjectRef, Object>>,
    /// Serialized size of each object's current model, maintained across
    /// mutations so the batch path can update notification byte counts
    /// with delta arithmetic instead of re-encoding whole documents.
    /// An entry is present iff it was computed for the object's newest
    /// model; absent entries are recomputed on demand.
    enc_cache: BTreeMap<ObjectRef, u64>,
    /// Tail of this namespace's event log still needed by some member. The
    /// first entry's revision is `committed - log.len() + 1`.
    log: VecDeque<LogEntry>,
    /// Revision of the newest resident log entry per object — the entry a
    /// later write to the same object may *steal* its snapshot from (see
    /// [`LogEntry`]). Pruned lazily against the compaction floor, dropped
    /// wholesale when the log empties.
    tail_revs: BTreeMap<ObjectRef, u64>,
    /// Events ever committed in this shard (== the newest revision).
    committed: u64,
    /// Selector slots: which watchers to notify per event, without
    /// touching unrelated subscriptions, plus the charge cell their
    /// single-slot members derive pending counts from.
    all_watchers: Slot,
    kind_watchers: BTreeMap<String, Slot>,
    object_watchers: BTreeMap<ObjectRef, Slot>,
    /// Member watchers with their cursors and pending accounting.
    members: BTreeMap<WatchId, ShardMember>,
    /// Members in exact accounting mode ([`Acct::Exact`]): the append
    /// path resolves these few individually; everyone else rides the
    /// charge cells.
    exact_ids: BTreeSet<WatchId>,
    /// When set, `shard_append` re-walks every hinted size and asserts it
    /// matches — the equivalence tests' guard against stale incremental
    /// deltas (off by default: hints are trusted, never double-walked).
    verify_sizes: bool,
    /// Secondary indexes: kind → (model path → value-keyed posting
    /// lists) over this shard's objects of that kind. Strictly *derived*
    /// state — built lazily by the first query or predicate watch that
    /// probes the pair (a scan of the kind slice), maintained
    /// incrementally by every append from then on, and simply absent
    /// after recovery until something asks again. Never persisted.
    /// Paths are interned behind `Arc` so the append path's key delta
    /// and the query planner's probes clone handles, not allocations.
    indexes: BTreeMap<String, BTreeMap<Arc<Path>, PathIndex>>,
    /// Predicate subscriptions per kind, refcounted like the selector
    /// indexes above. The append path evaluates these against the
    /// committed model (pre-filtered by the index delta it just
    /// computed), so only matching events charge pending counters.
    pred_watchers: BTreeMap<String, Vec<PredWatcher>>,
    /// Set while the namespace is being deleted: once the objects are gone
    /// and the log drains, the shard itself is dropped.
    retiring: bool,
    /// Keys of slots charged since the last dirty drain (each listed once,
    /// guarded by [`Slot::dirty`]). Maintained on the owning worker;
    /// drained on the coordinator, which also clears the flags.
    dirty_slots: Vec<SlotKey>,
    /// Exact-mode members charged since the last dirty drain.
    dirty_exact: BTreeSet<WatchId>,
}

/// One value-keyed secondary index over a `(kind, path)` pair.
///
/// `by_name` is the inverse mapping; it lets an append replace an
/// object's old posting without knowing the previous model, and makes
/// "rebuild and compare" verification cheap.
#[derive(Debug, Clone, Default, PartialEq)]
struct PathIndex {
    by_key: BTreeMap<IndexKey, BTreeSet<String>>,
    by_name: BTreeMap<String, IndexKey>,
}

impl PathIndex {
    fn insert(&mut self, name: &str, key: IndexKey) {
        if let Some(old) = self.by_name.get(name) {
            if *old == key {
                return;
            }
            let old = old.clone();
            if let Some(set) = self.by_key.get_mut(&old) {
                set.remove(name);
                if set.is_empty() {
                    self.by_key.remove(&old);
                }
            }
        }
        self.by_key
            .entry(key.clone())
            .or_default()
            .insert(name.to_string());
        self.by_name.insert(name.to_string(), key);
    }

    fn remove(&mut self, name: &str) {
        if let Some(key) = self.by_name.remove(name) {
            if let Some(set) = self.by_key.get_mut(&key) {
                set.remove(name);
                if set.is_empty() {
                    self.by_key.remove(&key);
                }
            }
        }
    }
}

/// One predicate subscription's slot in a shard, refcounted per
/// `(watcher, predicate source)` registration.
#[derive(Debug, Clone)]
struct PredWatcher {
    id: WatchId,
    pred: QueryPred,
    refs: usize,
}

// The executor moves shards across threads; keep that statically true.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Shard>();
};

impl Shard {
    /// Mutable view of the object map. Copy-on-write against snapshots:
    /// in place while unshared, one shallow map clone when a live
    /// [`StoreSnapshot`] still holds the previous index.
    fn objects_mut(&mut self) -> &mut BTreeMap<ObjectRef, Object> {
        Arc::make_mut(&mut self.objects)
    }

    /// The plain slot key a non-predicate selector registers under.
    /// `Kind` and `KindInNamespace` share a key deliberately: within one
    /// shard they match the same events, so a member holding both stays
    /// in cell mode.
    fn slot_key(selector: &WatchSelector) -> Option<SlotKey> {
        match selector {
            WatchSelector::All => Some(SlotKey::All),
            WatchSelector::Kind(k) | WatchSelector::KindInNamespace { kind: k, .. } => {
                Some(SlotKey::Kind(k.clone()))
            }
            WatchSelector::Object(r) => Some(SlotKey::Object(r.clone())),
            WatchSelector::Predicate(_) => None,
        }
    }

    /// The current charge of a plain slot (zero if the slot is absent).
    fn slot_charge(&self, key: &SlotKey) -> Charge {
        match key {
            SlotKey::All => self.all_watchers.charge,
            SlotKey::Kind(k) => self
                .kind_watchers
                .get(k)
                .map(|s| s.charge)
                .unwrap_or_default(),
            SlotKey::Object(r) => self
                .object_watchers
                .get(r)
                .map(|s| s.charge)
                .unwrap_or_default(),
        }
    }

    /// A member's undelivered (events, bytes) in this shard — read from
    /// its exact counters, or derived from its slot's charge cell.
    fn member_pending(&self, m: &ShardMember) -> (u64, u64) {
        match &m.acct {
            Acct::Exact { pending, bytes } => (*pending, *bytes),
            Acct::Cell { base } => {
                let c = self.slot_charge(&m.slots[0].0);
                (c.events - base.events, c.bytes - base.bytes)
            }
        }
    }

    /// Marks everything up to the shard's current tail delivered: zero
    /// the exact counters or rebase the cell baseline, and advance the
    /// cursor past the committed revision.
    fn drain_member(&mut self, id: WatchId) {
        let committed = self.committed;
        let Some(m) = self.members.get(&id) else {
            return;
        };
        let acct = match &m.acct {
            Acct::Exact { .. } => Acct::Exact {
                pending: 0,
                bytes: 0,
            },
            Acct::Cell { .. } => Acct::Cell {
                base: self.slot_charge(&m.slots[0].0),
            },
        };
        let m = self.members.get_mut(&id).expect("present above");
        m.acct = acct;
        m.cursor = committed + 1;
    }

    /// Registers a selector for `id`; a first registration creates the
    /// member with `cursor` (existing members keep their position).
    fn register(&mut self, id: WatchId, selector: &WatchSelector, cursor: u64) {
        // Freeze the member's derived pending before its slot set
        // changes: a cell→exact transition must not lose or double
        // events.
        let frozen = self.members.get(&id).map(|m| self.member_pending(m));
        let key = Self::slot_key(selector);
        let base = match &key {
            Some(SlotKey::All) => {
                *self.all_watchers.subs.entry(id).or_default() += 1;
                self.all_watchers.charge
            }
            Some(SlotKey::Kind(k)) => {
                let slot = self.kind_watchers.entry(k.clone()).or_default();
                *slot.subs.entry(id).or_default() += 1;
                slot.charge
            }
            Some(SlotKey::Object(r)) => {
                let slot = self.object_watchers.entry(r.clone()).or_default();
                *slot.subs.entry(id).or_default() += 1;
                slot.charge
            }
            None => {
                let WatchSelector::Predicate(p) = selector else {
                    unreachable!("keyless selectors are predicates")
                };
                // Warm the indexes the predicate's plan probes, so the
                // append path can refuse non-matching commits from the
                // key delta alone.
                let mut paths = BTreeSet::new();
                p.pred.plan().paths(&mut paths);
                for path in paths {
                    self.ensure_index(&p.kind, &path);
                }
                let slots = self.pred_watchers.entry(p.kind.clone()).or_default();
                match slots.iter_mut().find(|w| w.id == id && w.pred == p.pred) {
                    Some(w) => w.refs += 1,
                    None => slots.push(PredWatcher {
                        id,
                        pred: p.pred.clone(),
                        refs: 1,
                    }),
                }
                Charge::default()
            }
        };
        match self.members.get_mut(&id) {
            None => {
                let acct = match key {
                    // New member, single plain slot: ride its cell.
                    Some(_) => Acct::Cell { base },
                    None => Acct::Exact {
                        pending: 0,
                        bytes: 0,
                    },
                };
                let slots = key.map(|k| (k, 1)).into_iter().collect::<Vec<_>>();
                let pred_refs = usize::from(slots.is_empty());
                if pred_refs > 0 || !matches!(acct, Acct::Cell { .. }) {
                    self.exact_ids.insert(id);
                }
                self.members.insert(
                    id,
                    ShardMember {
                        cursor,
                        slots,
                        pred_refs,
                        acct,
                    },
                );
            }
            Some(m) => {
                match key {
                    Some(k) => match m.slots.iter_mut().find(|(sk, _)| *sk == k) {
                        Some((_, refs)) => *refs += 1,
                        None => m.slots.push((k, 1)),
                    },
                    None => m.pred_refs += 1,
                }
                if !m.cell_eligible() && matches!(m.acct, Acct::Cell { .. }) {
                    // The member now spans several slots (or gained a
                    // predicate): freeze the derived counts into exact
                    // mode. Exact members never convert back on register.
                    let (pending, bytes) = frozen.expect("member existed");
                    m.acct = Acct::Exact { pending, bytes };
                    self.exact_ids.insert(id);
                }
            }
        }
    }

    /// Releases one selector registration. Returns `true` when this was
    /// the member's last registration in the shard (the membership is
    /// gone); pending counts are derived, so nothing needs refunding.
    fn deregister(&mut self, id: WatchId, selector: &WatchSelector) -> bool {
        fn unref(slot: &mut Slot, id: WatchId) {
            if let Some(n) = slot.subs.get_mut(&id) {
                *n -= 1;
                if *n == 0 {
                    slot.subs.remove(&id);
                }
            }
        }
        fn prune<K: Ord>(index: &mut BTreeMap<K, Slot>, key: &K, id: WatchId) {
            if let Some(slot) = index.get_mut(key) {
                unref(slot, id);
                if slot.subs.is_empty() {
                    index.remove(key);
                }
            }
        }
        let key = Self::slot_key(selector);
        match (&key, selector) {
            (Some(SlotKey::All), _) => {
                unref(&mut self.all_watchers, id);
            }
            (Some(SlotKey::Kind(k)), _) => {
                prune(&mut self.kind_watchers, k, id);
            }
            (Some(SlotKey::Object(r)), _) => {
                prune(&mut self.object_watchers, r, id);
            }
            (None, WatchSelector::Predicate(p)) => {
                if let Some(slots) = self.pred_watchers.get_mut(&p.kind) {
                    if let Some(pos) = slots.iter().position(|w| w.id == id && w.pred == p.pred) {
                        slots[pos].refs -= 1;
                        if slots[pos].refs == 0 {
                            slots.remove(pos);
                        }
                    }
                    if slots.is_empty() {
                        self.pred_watchers.remove(&p.kind);
                    }
                }
                // The indexes the predicate warmed stay: they are derived
                // state, cheap to keep current and useful to the next
                // query.
            }
            _ => unreachable!("plain selectors have slot keys"),
        }
        let Some(m) = self.members.get_mut(&id) else {
            return false;
        };
        match key {
            Some(k) => {
                if let Some(pos) = m.slots.iter().position(|(sk, _)| *sk == k) {
                    m.slots[pos].1 -= 1;
                    if m.slots[pos].1 == 0 {
                        m.slots.remove(pos);
                    }
                }
            }
            None => m.pred_refs = m.pred_refs.saturating_sub(1),
        }
        if m.slots.is_empty() && m.pred_refs == 0 {
            self.members.remove(&id);
            self.exact_ids.remove(&id);
            return true;
        }
        // A remaining exact member may now match fewer events than its
        // counters claim; callers re-settle via `recount_pending`. Cell
        // members cannot be affected: their one slot key is unchanged.
        false
    }

    /// Builds the `(kind, path)` index from the object map if it does not
    /// exist yet. One scan of the kind slice; every later append keeps it
    /// current incrementally.
    fn ensure_index(&mut self, kind: &str, path: &Path) {
        if self
            .indexes
            .get(kind)
            .is_some_and(|paths| paths.contains_key(path))
        {
            return;
        }
        let idx = Self::build_index(&self.objects, kind, path);
        self.indexes
            .entry(kind.to_string())
            .or_default()
            .insert(Arc::new(path.clone()), idx);
    }

    /// One full scan of a kind slice into a fresh index — the lazy-build
    /// path, and the oracle `indexes_consistent` compares against.
    fn build_index(objects: &BTreeMap<ObjectRef, Object>, kind: &str, path: &Path) -> PathIndex {
        let mut idx = PathIndex::default();
        for (oref, obj) in objects.iter() {
            if oref.kind == kind {
                idx.insert(&oref.name, IndexKey::of(obj.model.get(path)));
            }
        }
        idx
    }
}

/// Counters describing watch/notification traffic (bench + diagnostics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WatchStats {
    /// Events ever committed across all shards. Each append materializes
    /// exactly one shared model snapshot, regardless of watcher count.
    pub events_appended: u64,
    /// Raw events consumed by watchers, via `poll` or `poll_coalesced`
    /// (each delivery shares the snapshot; no model deep-clone).
    pub events_delivered: u64,
    /// Log entries reclaimed by compaction, across all shards.
    pub events_compacted: u64,
    /// High-water mark of a *single shard's* in-memory log length. Bounded
    /// by the lag of that shard's slowest member, not by mutation count.
    pub peak_log_len: usize,
    /// Deliveries handed out by `poll_coalesced` (one per object with
    /// pending events at poll time).
    pub coalesced_deliveries: u64,
    /// Raw events absorbed into an earlier delivery of the same object by
    /// coalescing (`raw - deliveries`, summed over polls).
    pub events_coalesced: u64,
    /// Batch-end compaction passes run by [`Store::apply_batch`] workers
    /// (one per shard slice per batch). A controller that batches its
    /// writes pays at most one of these per shard per pump cycle; a
    /// controller issuing per-op writes pays none here but loses the
    /// amortization (serial verbs compact at poll time instead).
    pub batch_compaction_passes: u64,
    /// Model deep-clones the copy-on-write write path could not avoid: a
    /// live [`StoreSnapshot`], a delivered event, or a log entry whose
    /// snapshot could not be stolen still held the model's `Arc`. In
    /// steady state (watchers keeping up, no snapshot pinned) this stays
    /// zero — writes to watched objects are O(delta), never O(model).
    pub deep_clones: u64,
}

/// The persistent store: objects plus the per-namespace event logs.
///
/// This is the etcd analogue. Each shard's log is its linearization point:
/// every mutation appends exactly one event to its namespace's log, and
/// watchers replay that log from their per-shard cursor — which yields the
/// ordered, gap-free delivery guarantee that §3.5 of the paper requires
/// for intent reconciliation, per shard and per filtered stream.
///
/// Logs are compacted independently: entries below every member's hold
/// point are dropped, so memory is bounded by watcher lag within the
/// shard, and a laggard in one namespace never pins another namespace's
/// log.
#[derive(Debug, Default)]
pub struct Store {
    /// Namespace shards; each owns its slice of the object space.
    shards: BTreeMap<String, Shard>,
    /// Total events ever committed across all shards. This is the only
    /// global counter a mutation touches: the coordinator assigns it in
    /// arrival order, so it is independent of worker scheduling.
    committed_total: u64,
    watchers: BTreeMap<WatchId, Watcher>,
    next_watch_id: u64,
    /// Watchers holding at least one namespace-spanning selector: they
    /// join every shard, including shards created after they subscribed.
    global_watchers: BTreeSet<WatchId>,
    stats: WatchStats,
    /// Runs per-shard batch slices, possibly on worker threads.
    executor: ShardExecutor,
    /// Reads served through the store itself (`get`/`list`/...), i.e. on
    /// the coordinator's borrow. The snapshot read path must keep this
    /// flat — that is what "readers never contend with the write
    /// coordinator" means operationally, and tests assert it.
    direct_reads: Cell<u64>,
    /// Reads served by detached [`StoreSnapshot`] handles. The counter is
    /// shared with every snapshot ever taken from this store.
    snapshot_reads: Arc<AtomicU64>,
    /// Mirrored into every shard: when set, hinted sizes are re-walked
    /// and asserted in `shard_append` (see [`Store::set_verify_sizes`]).
    verify_sizes: bool,
    /// The write-ahead log, when this store is durable ([`Store::open`]).
    /// `None` keeps the store purely in-memory with zero overhead.
    wal: Option<Wal>,
    /// Commit records logged since the last checkpoint; rolling past the
    /// configured interval triggers the next one.
    commits_since_ckpt: u64,
    /// Shards that appended events since the last
    /// [`Store::drain_dirty_watchers`] pass. The runtime's pump derives
    /// its pending-watcher shortlist from this instead of re-deriving
    /// every watcher's pending totals after every simulation event.
    dirty_shards: BTreeSet<String>,
}

/// One mutation of a batch, addressed to the shard owning its object.
///
/// `SetPath` is the high-frequency op (every intent/status write is one);
/// it carries a parsed [`Path`] so shard workers never parse strings.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreOp {
    /// Insert a new object (resource version 1).
    Create {
        /// The object to create.
        oref: ObjectRef,
        /// Its initial model.
        model: Value,
    },
    /// Replace an object's model, optionally OCC-guarded.
    Put {
        /// The object to replace.
        oref: ObjectRef,
        /// The replacement model.
        model: Value,
        /// Optimistic-concurrency guard, as in [`Store::update`].
        expected_rv: Option<u64>,
    },
    /// Deep-merge a patch into the current model.
    Merge {
        /// The object to patch.
        oref: ObjectRef,
        /// The patch document.
        patch: Value,
    },
    /// Set one attribute path.
    SetPath {
        /// The object to mutate.
        oref: ObjectRef,
        /// The attribute to set.
        path: Path,
        /// The new value.
        value: Value,
    },
    /// Delete the object.
    Delete {
        /// The object to delete.
        oref: ObjectRef,
    },
}

impl StoreOp {
    /// The object this op addresses (its namespace picks the shard).
    pub fn oref(&self) -> &ObjectRef {
        match self {
            StoreOp::Create { oref, .. }
            | StoreOp::Put { oref, .. }
            | StoreOp::Merge { oref, .. }
            | StoreOp::SetPath { oref, .. }
            | StoreOp::Delete { oref } => oref,
        }
    }
}

impl Store {
    /// Creates an empty store. The shard worker cap comes from
    /// [`crate::executor::SHARD_THREADS_ENV`] (default: inline execution).
    pub fn new() -> Self {
        Store {
            executor: ShardExecutor::from_env(),
            ..Store::default()
        }
    }

    /// Opens a durable store rooted at `opts.dir`: loads the newest
    /// checkpoint, replays each namespace's log tail onto it (stopping
    /// cleanly at a torn final record), and keeps journaling there. An
    /// empty or missing directory yields an empty, journaled store.
    ///
    /// Recovery is bit-identical to the committed state at the moment of
    /// the crash, with one deliberate exception: watch subscriptions die
    /// with the process, so recovered shards come up with empty event
    /// logs (compaction floor == committed revision) and a retiring
    /// shard that only a now-dead watcher was holding open is dropped —
    /// exactly the state the live store would reach once its watchers
    /// disconnected.
    pub fn open(opts: DurabilityOptions) -> Result<Store, WalError> {
        let (wal, recovered) = Wal::open(&opts)?;
        let mut store = Store::new();
        store.install_checkpoint(recovered.checkpoint);
        for (ns, records) in recovered.records {
            for record in records {
                store.replay_record(&ns, record)?;
            }
        }
        // Nothing can be holding a drained, retiring shard (watchers do
        // not survive a restart): drop them like the live store would.
        let drained: Vec<String> = store
            .shards
            .iter()
            .filter(|(_, s)| s.retiring && s.objects.is_empty() && s.log.is_empty())
            .map(|(ns, _)| ns.clone())
            .collect();
        for ns in drained {
            store.shards.remove(&ns);
        }
        store.wal = Some(wal);
        Ok(store)
    }

    /// `true` when mutations are journaled to a WAL directory.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Installs the checkpointed shards; replay continues from here.
    fn install_checkpoint(&mut self, ckpt: Checkpoint) {
        self.committed_total = ckpt.committed_total;
        for cs in ckpt.shards {
            let mut objects = BTreeMap::new();
            for co in cs.objects {
                let oref = ObjectRef::new(co.kind, co.namespace, co.name);
                objects.insert(
                    oref.clone(),
                    Object {
                        oref,
                        model: Shared::new(co.model),
                        resource_version: co.resource_version,
                    },
                );
            }
            let shard = Shard {
                objects: Arc::new(objects),
                committed: cs.committed,
                retiring: cs.retiring,
                ..Shard::default()
            };
            self.shards.insert(cs.namespace, shard);
        }
    }

    /// Replays one WAL record through the same shard-local mutation
    /// functions the live path uses, so revisions, `meta.gen` stamps, and
    /// event accounting come out identical.
    fn replay_record(&mut self, ns: &str, record: WalRecord) -> Result<(), WalError> {
        match record {
            WalRecord::Retire { .. } => {
                if let Some(shard) = self.shards.get_mut(ns) {
                    shard.retiring = true;
                }
            }
            WalRecord::Drop { .. } => {
                self.shards.remove(ns);
            }
            WalRecord::Commit {
                seq,
                base,
                ensure,
                appended,
                ops,
            } => {
                if ensure {
                    self.ensure_shard(ns);
                }
                let Some(shard) = self.shards.get_mut(ns) else {
                    return Err(WalError::corrupt(format!(
                        "commit record for unknown shard '{ns}' (seq {seq})"
                    )));
                };
                if shard.committed != base {
                    return Err(WalError::corrupt(format!(
                        "replay diverged in '{ns}' (seq {seq}): record base {base}, shard at {}",
                        shard.committed
                    )));
                }
                let mut tally = ShardTally::default();
                for op in ops {
                    replay_op(shard, op, &mut tally).map_err(|e| {
                        WalError::corrupt(format!("replay failed in '{ns}' (seq {seq}): {e}"))
                    })?;
                }
                if tally.appended != appended {
                    return Err(WalError::corrupt(format!(
                        "replay diverged in '{ns}' (seq {seq}): record appended {appended}, \
                         replay appended {}",
                        tally.appended
                    )));
                }
                self.finish_serial(ns, tally);
            }
        }
        Ok(())
    }

    /// Journals one shard slice: its base revision, whether the verb
    /// (re)ensured the shard (clearing a pending retirement), the events
    /// it appended, and the successful ops in ticket order. Slices that
    /// neither appended nor ensured leave no record.
    fn wal_commit(&mut self, ns: &str, base: u64, ensure: bool, appended: u64, ops: Vec<String>) {
        let Some(w) = self.wal.as_mut() else {
            return;
        };
        if !ensure && appended == 0 {
            return;
        }
        w.commit(ns, base, ensure, appended, &ops);
        self.commits_since_ckpt += 1;
    }

    /// Ends a journaled mutation verb: flush per the sync policy, and
    /// roll a checkpoint once enough commits accumulated. Runs on the
    /// coordinator with every shard back in the map.
    fn wal_seal(&mut self) {
        let Some(w) = self.wal.as_mut() else {
            return;
        };
        w.flush();
        if self.commits_since_ckpt >= w.checkpoint_every() {
            self.checkpoint();
        }
    }

    /// Writes a durable checkpoint of the whole store (objects, per-shard
    /// revisions, the global commit counter) and truncates the logs it
    /// supersedes. A no-op for in-memory stores.
    pub fn checkpoint(&mut self) {
        if self.wal.is_none() {
            return;
        }
        let shards_json = checkpoint_shards_json(&self.shards);
        let w = self.wal.as_mut().expect("checked above");
        let doc = format!(
            "{{\"committed_total\":{},\"seqs\":{},\"shards\":[{}]}}",
            wal::exact(self.committed_total),
            w.seqs_json(),
            shards_json
        );
        w.write_checkpoint(&doc);
        self.commits_since_ckpt = 0;
    }

    /// The shard worker cap.
    pub fn executor_threads(&self) -> usize {
        self.executor.threads()
    }

    /// Sets the shard worker cap (clamped to at least 1). Results are
    /// bit-identical at any setting; this only trades latency for threads.
    /// The executor's persistent pool is shut down (every worker joins)
    /// and rebuilt lazily at the new cap.
    pub fn set_executor_threads(&mut self, threads: usize) {
        self.executor.set_threads(threads);
    }

    /// Number of pooled worker threads currently alive (0 while cold).
    pub fn pooled_workers(&self) -> usize {
        self.executor.pooled_workers()
    }

    /// Benchmarking baseline knob: `true` restores spawn-per-batch scoped
    /// threads instead of the persistent pool. Bit-identical results.
    pub fn set_executor_spawn_per_batch(&mut self, spawn: bool) {
        self.executor.set_spawn_per_batch(spawn);
    }

    /// Runs `work` over `items` on the shard worker pool, returning
    /// results in item order (see [`ShardExecutor::run`]). Lets the plan
    /// phase borrow the same parked lanes batch commits use.
    pub fn run_pooled<T, R, F>(&mut self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.executor.run(items, work)
    }

    /// Takes a consistent, immutable snapshot of every object in the
    /// store, detached from the store's borrow: O(shards) `Arc` clones,
    /// no model copies.
    ///
    /// The snapshot observes exactly the state at the last commit
    /// boundary — never a half-applied batch, because the per-shard
    /// indexes it pins are only ever replaced (copy-on-write) by whole
    /// committed mutations. Reads against it are counted in
    /// [`Store::snapshot_reads`], not [`Store::direct_reads`].
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            shards: self
                .shards
                .iter()
                .map(|(ns, s)| (ns.clone(), Arc::clone(&s.objects)))
                .collect(),
            revision: self.committed_total,
            reads: Arc::clone(&self.snapshot_reads),
        }
    }

    /// Reads ever served by [`StoreSnapshot`] handles of this store.
    pub fn snapshot_reads(&self) -> u64 {
        self.snapshot_reads.load(Ordering::Relaxed)
    }

    /// Reads ever served through the store's own accessors (i.e. on the
    /// coordinator's borrow). Hot read paths ported onto snapshots keep
    /// this flat; tests assert it.
    pub fn direct_reads(&self) -> u64 {
        self.direct_reads.get()
    }

    /// Returns the current global revision (total committed events across
    /// all shards).
    pub fn revision(&self) -> u64 {
        self.committed_total
    }

    /// Returns the stored object, if present.
    pub fn get(&self, oref: &ObjectRef) -> Option<&Object> {
        self.direct_reads.set(self.direct_reads.get() + 1);
        self.shards.get(&oref.namespace)?.objects.get(oref)
    }

    /// Lists objects of `kind` across namespaces (sorted by namespace/name).
    #[deprecated(note = "use `Store::query` with a `Query`")]
    pub fn list(&self, kind: &str) -> Vec<&Object> {
        self.scan(kind)
    }

    pub(crate) fn scan(&self, kind: &str) -> Vec<&Object> {
        self.direct_reads.set(self.direct_reads.get() + 1);
        self.shards
            .values()
            .flat_map(|s| {
                s.objects
                    .iter()
                    .filter(move |(r, _)| r.kind == kind)
                    .map(|(_, o)| o)
            })
            .collect()
    }

    /// Lists objects of `kind` within one namespace (sorted by name).
    #[deprecated(note = "use `Store::query` with a `Query`")]
    pub fn list_in(&self, kind: &str, namespace: &str) -> Vec<&Object> {
        self.scan_in(kind, namespace)
    }

    pub(crate) fn scan_in(&self, kind: &str, namespace: &str) -> Vec<&Object> {
        self.direct_reads.set(self.direct_reads.get() + 1);
        let Some(shard) = self.shards.get(namespace) else {
            return Vec::new();
        };
        shard
            .objects
            .iter()
            .filter(|(r, _)| r.kind == kind)
            .map(|(_, o)| o)
            .collect()
    }

    /// Lists every object (sorted by kind/namespace/name).
    #[deprecated(note = "use `Store::query` with a `Query`")]
    pub fn list_all(&self) -> Vec<&Object> {
        self.scan_all()
    }

    pub(crate) fn scan_all(&self) -> Vec<&Object> {
        self.direct_reads.set(self.direct_reads.get() + 1);
        let mut out: Vec<&Object> = self
            .shards
            .values()
            .flat_map(|s| s.objects.values())
            .collect();
        out.sort_by(|a, b| a.oref.cmp(&b.oref));
        out
    }

    /// Runs a [`Query`]: the one read verb behind which `list`/`list_in`/
    /// `list_all` collapsed. Plannable filter predicates probe secondary
    /// indexes (built lazily on first use, maintained at commit) and the
    /// full predicate is re-evaluated on every candidate, so the result is
    /// always identical to a brute-force scan — only faster.
    ///
    /// Results are sorted by object reference (kind, namespace, name).
    pub fn query(&mut self, q: &Query) -> Vec<Object> {
        self.direct_reads.set(self.direct_reads.get() + 1);
        let namespaces: Vec<String> = match &q.namespace {
            Some(ns) if self.shards.contains_key(ns) => vec![ns.clone()],
            Some(_) => Vec::new(),
            None => self.shards.keys().cloned().collect(),
        };
        let mut out = Vec::new();
        for ns in namespaces {
            let shard = self.shards.get_mut(&ns).expect("listed above");
            query_shard(shard, &ns, q, &mut out);
        }
        out.sort_by(|a, b| a.oref.cmp(&b.oref));
        out
    }

    /// Test support: rebuilds every live secondary index from the object
    /// maps and compares against the incrementally maintained state.
    #[doc(hidden)]
    pub fn indexes_consistent(&self) -> Result<(), String> {
        for (ns, shard) in &self.shards {
            for (kind, paths) in &shard.indexes {
                for (path, idx) in paths {
                    let fresh = Shard::build_index(&shard.objects, kind, path);
                    if *idx != fresh {
                        return Err(format!(
                            "index ({kind}, {path}) in shard {ns} diverged from rebuild: \
                             incremental {idx:?} vs fresh {fresh:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Test support: the `(name, key)` postings of one index, building it
    /// if needed — recovery tests compare these dumps bit-for-bit.
    #[doc(hidden)]
    pub fn index_dump(
        &mut self,
        namespace: &str,
        kind: &str,
        path: &Path,
    ) -> Vec<(String, String)> {
        let Some(shard) = self.shards.get_mut(namespace) else {
            return Vec::new();
        };
        shard.ensure_index(kind, path);
        shard.indexes[kind][path]
            .by_name
            .iter()
            .map(|(name, key)| (name.clone(), key.to_string()))
            .collect()
    }

    /// Inserts a new object, assigning resource version 1.
    pub fn create(&mut self, oref: ObjectRef, model: Value) -> Result<&Object, ApiError> {
        let ns = oref.namespace.clone();
        self.ensure_shard(&ns);
        let mut tally = ShardTally::journaling(self.wal.is_some());
        let shard = self.shards.get_mut(&ns).expect("just ensured");
        let base = shard.committed;
        let result = shard_create(shard, oref.clone(), model, &mut tally);
        let (appended, ops) = (tally.appended, std::mem::take(&mut tally.wal_ops));
        self.finish_serial(&ns, tally);
        // `ensure` is always set: like the batch path, `create` resurrects
        // a retiring namespace even when the op itself fails, and replay
        // must mirror that.
        self.wal_commit(&ns, base, true, appended, ops);
        self.wal_seal();
        result?;
        Ok(self
            .shards
            .get(&ns)
            .expect("just ensured")
            .objects
            .get(&oref)
            .expect("just inserted"))
    }

    /// Replaces an object's model.
    ///
    /// `expected_rv` implements optimistic concurrency: when `Some`, the
    /// write only commits if it matches the stored version; on mismatch the
    /// caller gets [`ApiError::Conflict`] and must re-read and retry.
    pub fn update(
        &mut self,
        oref: &ObjectRef,
        model: Value,
        expected_rv: Option<u64>,
    ) -> Result<u64, ApiError> {
        let Some(shard) = self.shards.get_mut(&oref.namespace) else {
            return Err(ApiError::NotFound(oref.clone()));
        };
        let base = shard.committed;
        let mut tally = ShardTally::journaling(self.wal.is_some());
        let result = shard_update(shard, oref, model, expected_rv, &mut tally);
        let (appended, ops) = (tally.appended, std::mem::take(&mut tally.wal_ops));
        self.finish_serial(&oref.namespace, tally);
        if appended > 0 {
            self.wal_commit(&oref.namespace, base, false, appended, ops);
        }
        self.wal_seal();
        result
    }

    /// Removes an object, returning its final state.
    ///
    /// The deletion is itself a model change: the returned object and the
    /// `Deleted` event carry a *bumped* resource version, so watchers can
    /// order the delete against the modifications that preceded it.
    pub fn delete(&mut self, oref: &ObjectRef) -> Result<Object, ApiError> {
        let Some(shard) = self.shards.get_mut(&oref.namespace) else {
            return Err(ApiError::NotFound(oref.clone()));
        };
        let base = shard.committed;
        let mut tally = ShardTally::journaling(self.wal.is_some());
        let result = shard_delete(shard, oref, &mut tally);
        let (appended, ops) = (tally.appended, std::mem::take(&mut tally.wal_ops));
        self.finish_serial(&oref.namespace, tally);
        if appended > 0 {
            self.wal_commit(&oref.namespace, base, false, appended, ops);
        }
        self.wal_seal();
        result
    }

    /// Sets `path` to `value` on the stored model, in place — the serial
    /// form of [`StoreOp::SetPath`], and the hot verb behind `patch_path`.
    /// Zero-copy in steady state (the log-tail snapshot is stolen and
    /// rewritten as a rollback entry), O(delta) sizing via the encoded-
    /// length cache, and only the set itself is journaled. Replaying it
    /// against the same base reproduces the model bit-for-bit (both paths
    /// stamp `meta.gen` identically).
    pub fn update_via_set(
        &mut self,
        oref: &ObjectRef,
        path: &Path,
        value: &Value,
    ) -> Result<u64, ApiError> {
        let Some(shard) = self.shards.get_mut(&oref.namespace) else {
            return Err(ApiError::NotFound(oref.clone()));
        };
        let base = shard.committed;
        let mut tally = ShardTally::journaling(self.wal.is_some());
        let result = shard_set_path(shard, oref, path, value.clone(), &mut tally);
        let (appended, ops) = (tally.appended, std::mem::take(&mut tally.wal_ops));
        self.finish_serial(&oref.namespace, tally);
        if appended > 0 {
            self.wal_commit(&oref.namespace, base, false, appended, ops);
        }
        self.wal_seal();
        result
    }

    /// Deep-merges `patch` into the stored model, in place — the serial
    /// form of [`StoreOp::Merge`], with the same zero-copy/incremental-
    /// size machinery as [`Store::update_via_set`]; only the patch is
    /// journaled.
    pub fn update_via_merge(&mut self, oref: &ObjectRef, patch: &Value) -> Result<u64, ApiError> {
        let Some(shard) = self.shards.get_mut(&oref.namespace) else {
            return Err(ApiError::NotFound(oref.clone()));
        };
        let base = shard.committed;
        let mut tally = ShardTally::journaling(self.wal.is_some());
        let result = shard_merge(shard, oref, patch, &mut tally);
        let (appended, ops) = (tally.appended, std::mem::take(&mut tally.wal_ops));
        self.finish_serial(&oref.namespace, tally);
        if appended > 0 {
            self.wal_commit(&oref.namespace, base, false, appended, ops);
        }
        self.wal_seal();
        result
    }

    /// Jumps an object's resource version forward to `rv` without changing
    /// its model, re-stamping `meta.gen` and emitting a `Modified` event.
    ///
    /// A simulation aid: a real deployment reaches generation 2^53 only
    /// after years of mutations, but the version-gate arithmetic must be
    /// exact there. Tests use this to place an object deep into its
    /// mutation history in one step.
    pub fn fast_forward(&mut self, oref: &ObjectRef, rv: u64) -> Result<u64, ApiError> {
        let Some(shard) = self.shards.get_mut(&oref.namespace) else {
            return Err(ApiError::NotFound(oref.clone()));
        };
        let base = shard.committed;
        let mut tally = ShardTally::journaling(self.wal.is_some());
        let result = shard_fast_forward(shard, oref, rv, &mut tally);
        let (appended, ops) = (tally.appended, std::mem::take(&mut tally.wal_ops));
        self.finish_serial(&oref.namespace, tally);
        if appended > 0 {
            self.wal_commit(&oref.namespace, base, false, appended, ops);
        }
        self.wal_seal();
        result
    }

    /// Applies a batch of mutations, fanning each namespace's slice out to
    /// its shard's worker.
    ///
    /// Ops are ticketed in arrival (vector) order by the coordinator; each
    /// shard executes its ops in ticket order on one worker, and results
    /// come back in ticket order. Because shards share nothing and the
    /// per-shard outcomes are merged in shard-name order, the store's
    /// final state and every watcher stream are **bit-identical at any
    /// thread count** — parallelism is unobservable except in wall-clock.
    ///
    /// Per-op semantics (versioning, OCC, `meta.gen` stamping, event
    /// kinds) match the serial verbs exactly; in addition the whole batch
    /// pays one compaction pass per shard instead of one per write.
    pub fn apply_batch(&mut self, ops: Vec<StoreOp>) -> Vec<Result<u64, ApiError>> {
        let ticketed = ops.into_iter().enumerate().collect();
        self.apply_ops(ticketed)
            .into_iter()
            .map(|(_, result)| result)
            .collect()
    }

    /// [`Store::apply_batch`] with caller-assigned tickets. Results are
    /// returned sorted by ticket.
    pub fn apply_ops(&mut self, ops: Vec<(usize, StoreOp)>) -> Vec<(usize, Result<u64, ApiError>)> {
        // Group ops per shard, preserving ticket order within each group.
        let mut grouped: BTreeMap<String, Vec<(usize, StoreOp)>> = BTreeMap::new();
        for (ticket, op) in ops {
            grouped
                .entry(op.oref().namespace.clone())
                .or_default()
                .push((ticket, op));
        }
        // Single-shard short-circuit: one namespace means one lane, so the
        // batch applies inline on the coordinator — the shard stays in the
        // map and neither the pool nor any channel is touched.
        let journal = self.wal.is_some();
        if grouped.len() == 1 {
            let (ns, batch) = grouped.pop_first().expect("checked non-empty");
            self.ensure_shard(&ns);
            let shard = self.shards.get_mut(&ns).expect("just ensured");
            let outcome = apply_shard_batch(shard, batch, journal);
            let mut tally = outcome.tally;
            let ops = std::mem::take(&mut tally.wal_ops);
            let (base, appended) = (tally.wal_base, tally.appended);
            self.finish_serial(&ns, tally);
            self.wal_commit(&ns, base, true, appended, ops);
            self.maybe_drop_shard(&ns);
            self.wal_seal();
            let mut results = outcome.results;
            results.sort_by_key(|(ticket, _)| *ticket);
            return results;
        }
        let mut items = Vec::with_capacity(grouped.len());
        for (ns, batch) in grouped {
            self.ensure_shard(&ns);
            let shard = self.shards.remove(&ns).expect("just ensured");
            items.push((ns, shard, batch));
        }
        // Hand each shard to a worker; shards move out of the map and back,
        // so workers own their slice outright (and serialize their own WAL
        // ops in parallel — the coordinator only appends the built records).
        let outcomes = self.executor.run(items, move |(ns, mut shard, batch)| {
            let outcome = apply_shard_batch(&mut shard, batch, journal);
            (ns, shard, outcome)
        });
        let mut results = Vec::new();
        for (ns, shard, outcome) in outcomes {
            self.shards.insert(ns.clone(), shard);
            let mut tally = outcome.tally;
            let ops = std::mem::take(&mut tally.wal_ops);
            let (base, appended) = (tally.wal_base, tally.appended);
            self.finish_serial(&ns, tally);
            self.wal_commit(&ns, base, true, appended, ops);
            self.maybe_drop_shard(&ns);
            results.extend(outcome.results);
        }
        self.wal_seal();
        results.sort_by_key(|(ticket, _)| *ticket);
        results
    }

    /// Folds a worker-side tally into the store's global counters; called
    /// on the coordinator, in shard-name order for batches. A slice that
    /// appended events marks its shard dirty so
    /// [`Store::drain_dirty_watchers`] surfaces the charged watchers.
    fn finish_serial(&mut self, ns: &str, tally: ShardTally) {
        if tally.appended > 0 && !self.dirty_shards.contains(ns) {
            self.dirty_shards.insert(ns.to_string());
        }
        self.committed_total += tally.appended;
        self.stats.events_appended += tally.appended;
        self.stats.events_compacted += tally.compacted;
        self.stats.batch_compaction_passes += tally.compaction_passes;
        self.stats.deep_clones += tally.deep_clones;
        self.stats.peak_log_len = self.stats.peak_log_len.max(tally.peak_log_len);
    }

    /// Drains the set of watchers that *may* have gone pending since the
    /// last call: every watcher subscribed to a slot an append charged,
    /// plus every exact-mode member charged directly. Conservative — a
    /// returned watcher may have drained in the meantime (the caller
    /// re-checks [`Store::pending_totals`]) — but complete: a watcher with
    /// undelivered events is always either returned here or already known
    /// to the caller. Quiescent watchers cost nothing.
    pub fn drain_dirty_watchers(&mut self) -> Vec<WatchId> {
        if self.dirty_shards.is_empty() {
            return Vec::new();
        }
        let mut out: BTreeSet<WatchId> = BTreeSet::new();
        for ns in std::mem::take(&mut self.dirty_shards) {
            let Some(shard) = self.shards.get_mut(&ns) else {
                continue;
            };
            for key in std::mem::take(&mut shard.dirty_slots) {
                let slot = match &key {
                    SlotKey::All => Some(&mut shard.all_watchers),
                    SlotKey::Kind(k) => shard.kind_watchers.get_mut(k),
                    SlotKey::Object(o) => shard.object_watchers.get_mut(o),
                };
                // A slot dropped since it was charged simply contributes
                // nothing — its watchers deregistered and owe no wake.
                if let Some(slot) = slot {
                    slot.dirty = false;
                    out.extend(slot.subs.keys().copied());
                }
            }
            out.append(&mut shard.dirty_exact);
        }
        out.into_iter().collect()
    }

    /// Opens a watch over the union of `queries` — the one subscription
    /// verb behind which `watch`/`watch_selector(s)` collapsed. Each
    /// cursor starts at its shard's current tail: only *future* events
    /// are delivered. An empty query list is a valid (never-firing)
    /// subscription that can be widened later with
    /// [`Store::extend_watch`]. Filtered queries become predicate
    /// subscriptions, matched at commit time — non-matching events never
    /// go pending.
    pub fn watch_queries(&mut self, queries: &[Query]) -> Result<WatchId, QueryError> {
        let selectors = queries
            .iter()
            .map(Query::to_selector)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.open_watch(selectors))
    }

    /// Opens a watch over one query.
    pub fn watch_query(&mut self, q: &Query) -> Result<WatchId, QueryError> {
        self.watch_queries(std::slice::from_ref(q))
    }

    /// Widens an existing subscription with another query. Only future
    /// events of the newly covered scope are delivered. Returns
    /// `Ok(false)` when the watch id is unknown (e.g. already cancelled).
    pub fn extend_watch(&mut self, id: WatchId, q: &Query) -> Result<bool, QueryError> {
        Ok(self.attach_selector(id, q.to_selector()?))
    }

    /// Removes one occurrence of a query's selector from a subscription,
    /// re-settling pending counters so events only the removed selector
    /// matched stop being owed. Returns `Ok(false)` when the watch id is
    /// unknown or the selector was not part of the subscription.
    pub fn narrow_watch(&mut self, id: WatchId, q: &Query) -> Result<bool, QueryError> {
        Ok(self.detach_selector(id, &q.to_selector()?))
    }

    pub(crate) fn open_watch(&mut self, selectors: Vec<WatchSelector>) -> WatchId {
        let id = WatchId(self.next_watch_id);
        self.next_watch_id += 1;
        self.watchers.insert(id, Watcher::default());
        for selector in selectors {
            let known = self.attach_selector(id, selector);
            debug_assert!(known, "freshly inserted watcher");
        }
        id
    }

    /// Opens a watch over the union of `selectors`.
    #[deprecated(note = "use `Store::watch_queries` with `Query` values")]
    pub fn watch_selectors(&mut self, selectors: Vec<WatchSelector>) -> WatchId {
        self.open_watch(selectors)
    }

    /// Opens a watch over one selector.
    #[deprecated(note = "use `Store::watch_query` with a `Query`")]
    pub fn watch_selector(&mut self, selector: WatchSelector) -> WatchId {
        self.open_watch(vec![selector])
    }

    /// Opens a watch by kind. `kind = None` watches everything.
    #[deprecated(note = "use `Store::watch_query` with a `Query`")]
    pub fn watch(&mut self, kind: Option<&str>) -> WatchId {
        self.open_watch(vec![match kind {
            None => WatchSelector::All,
            Some(k) => WatchSelector::Kind(k.to_string()),
        }])
    }

    /// Widens an existing subscription with another selector. Only future
    /// events of the newly covered scope are delivered. Returns `false`
    /// when the watch id is unknown (e.g. already cancelled).
    #[deprecated(note = "use `Store::extend_watch` with a `Query`")]
    pub fn add_selector(&mut self, id: WatchId, selector: WatchSelector) -> bool {
        self.attach_selector(id, selector)
    }

    pub(crate) fn attach_selector(&mut self, id: WatchId, selector: WatchSelector) -> bool {
        if !self.watchers.contains_key(&id) {
            return false;
        }
        if selector.is_global() {
            self.global_watchers.insert(id);
            let w = self.watchers.get_mut(&id).expect("checked above");
            for (ns, shard) in self.shards.iter_mut() {
                shard.register(id, &selector, shard.committed + 1);
                w.shards.insert(ns.clone());
            }
            w.selectors.push(selector);
        } else {
            let ns = selector
                .home_namespace()
                .expect("non-global selector has a home namespace")
                .to_string();
            self.ensure_shard(&ns);
            let shard = self.shards.get_mut(&ns).expect("just ensured");
            shard.register(id, &selector, shard.committed + 1);
            let w = self.watchers.get_mut(&id).expect("checked above");
            w.shards.insert(ns);
            w.selectors.push(selector);
        }
        true
    }

    /// Removes one occurrence of `selector` from a subscription. Shards
    /// the watcher only reached through it are released (their pending
    /// counts refunded); shards it still holds through other selectors
    /// re-settle their pending counters against the remaining set, so an
    /// event only the removed selector matched stops being owed.
    pub(crate) fn detach_selector(&mut self, id: WatchId, selector: &WatchSelector) -> bool {
        let Store {
            shards,
            watchers,
            global_watchers,
            ..
        } = self;
        let Some(w) = watchers.get_mut(&id) else {
            return false;
        };
        let Some(pos) = w.selectors.iter().position(|s| s == selector) else {
            return false;
        };
        let selector = w.selectors.remove(pos);
        if selector.is_global() && !w.selectors.iter().any(|s| s.is_global()) {
            global_watchers.remove(&id);
        }
        let affected: Vec<String> = if selector.is_global() {
            w.shards.iter().cloned().collect()
        } else {
            let ns = selector
                .home_namespace()
                .expect("non-global selector has a home namespace");
            if w.shards.contains(ns) {
                vec![ns.to_string()]
            } else {
                Vec::new()
            }
        };
        for ns in &affected {
            let shard = shards.get_mut(ns).expect("membership implies shard");
            if shard.deregister(id, &selector) {
                // Last registration in this shard: the membership (and
                // with it the derived pending counts) is simply gone.
                w.shards.remove(ns);
            } else {
                // An exact member's counters may still include events
                // only the removed selector matched; re-settle them
                // against the remaining set. Cell members cannot be
                // affected (their single slot key is unchanged).
                let member = shard.members.get(&id).expect("deregister kept the member");
                if matches!(member.acct, Acct::Exact { .. }) && shard.member_pending(member).0 > 0 {
                    let (pending, bytes) = recount_pending(shard, member.cursor, &w.selectors);
                    let m = shard.members.get_mut(&id).expect("still a member");
                    m.acct = Acct::Exact { pending, bytes };
                }
            }
        }
        // Entries held only for the removed selector may now be droppable.
        for ns in &affected {
            self.compact_shard(ns);
        }
        true
    }

    /// Drains pending events for a watcher: within each shard in revision
    /// order (the per-shard §3.5 guarantee); shards are visited in
    /// namespace order, with no ordering defined across namespaces.
    ///
    /// Unknown watch ids return an empty vector (the subscription may have
    /// been cancelled).
    pub fn poll(&mut self, id: WatchId) -> Vec<WatchEvent> {
        let Store {
            shards,
            watchers,
            stats,
            ..
        } = self;
        let Some(w) = watchers.get_mut(&id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut touched: Vec<String> = Vec::new();
        for ns in &w.shards {
            let shard = shards.get_mut(ns).expect("membership implies shard");
            let member = shard.members.get(&id).expect("membership implies member");
            let (pending, _) = shard.member_pending(member);
            if pending > 0 {
                let first_rev = shard.committed - shard.log.len() as u64 + 1;
                // Compaction never reclaims past a member with pending
                // events, so the scan window is fully resident.
                let start = (member.cursor.max(first_rev) - first_rev) as usize;
                let before = out.len();
                scan_window(shard, start, &w.selectors, |e, model| {
                    out.push(WatchEvent {
                        revision: e.revision,
                        kind: e.kind,
                        oref: e.oref.clone(),
                        model: model.clone(),
                        resource_version: e.resource_version,
                    });
                });
                debug_assert_eq!(
                    (out.len() - before) as u64,
                    pending,
                    "pending counter out of sync in shard {ns}"
                );
                touched.push(ns.clone());
            }
            shard.drain_member(id);
        }
        stats.events_delivered += out.len() as u64;
        for ns in &touched {
            self.compact_shard(ns);
        }
        out
    }

    /// Drains pending events like [`Store::poll`], collapsing rapid
    /// mutations of the same object into one delivery carrying the newest
    /// snapshot plus the count of raw events absorbed.
    ///
    /// Deliveries keep the first-occurrence order of the raw stream; a
    /// burst of N writes to one object yields exactly one delivery with
    /// `coalesced == N`. A delete inside the burst is absorbed like any
    /// other event — the final delivery carries the newest state (the
    /// `Deleted` event itself, if the object ended deleted).
    pub fn poll_coalesced(&mut self, id: WatchId) -> Vec<CoalescedEvent> {
        // Predicate subscriptions judge each event by its model, so the
        // raw stream must be materialized first; plain subscriptions take
        // the zero-materialization path below — the newest entry per
        // object is always a resident snapshot, so a burst of rollback
        // entries is skipped over without reconstructing any of them.
        let has_pred = self.watchers.get(&id).is_some_and(|w| {
            w.selectors
                .iter()
                .any(|s| matches!(s, WatchSelector::Predicate(_)))
        });
        if has_pred {
            let raw = self.poll(id);
            let raw_count = raw.len() as u64;
            let mut out: Vec<CoalescedEvent> = Vec::new();
            let mut slots: BTreeMap<ObjectRef, usize> = BTreeMap::new();
            for ev in raw {
                match slots.get(&ev.oref) {
                    Some(&i) => {
                        // Newest snapshot wins; the count remembers the burst.
                        out[i].event = ev;
                        out[i].coalesced += 1;
                    }
                    None => {
                        slots.insert(ev.oref.clone(), out.len());
                        out.push(CoalescedEvent {
                            event: ev,
                            coalesced: 1,
                        });
                    }
                }
            }
            self.stats.coalesced_deliveries += out.len() as u64;
            self.stats.events_coalesced += raw_count - out.len() as u64;
            return out;
        }
        let Store {
            shards,
            watchers,
            stats,
            ..
        } = self;
        let Some(w) = watchers.get_mut(&id) else {
            return Vec::new();
        };
        let mut out: Vec<CoalescedEvent> = Vec::new();
        let mut raw_total = 0u64;
        let mut touched: Vec<String> = Vec::new();
        for ns in &w.shards {
            let shard = shards.get_mut(ns).expect("membership implies shard");
            let member = shard.members.get(&id).expect("membership implies member");
            let (pending, _) = shard.member_pending(member);
            if pending > 0 {
                let first_rev = shard.committed - shard.log.len() as u64 + 1;
                let start = (member.cursor.max(first_rev) - first_rev) as usize;
                // First pass: count matches per object and remember each
                // object's newest entry, keeping first-occurrence order.
                // Objects live in exactly one namespace, so per-shard
                // coalescing equals global coalescing.
                let mut slots: BTreeMap<&ObjectRef, usize> = BTreeMap::new();
                let mut found: Vec<(u64, usize)> = Vec::new();
                let mut raw_in_shard = 0u64;
                for (i, e) in shard.log.iter().enumerate().skip(start) {
                    if w.selectors.iter().any(|s| s.matches(&e.oref)) {
                        raw_in_shard += 1;
                        match slots.get(&e.oref) {
                            Some(&slot) => {
                                found[slot].0 += 1;
                                found[slot].1 = i;
                            }
                            None => {
                                slots.insert(&e.oref, found.len());
                                found.push((1, i));
                            }
                        }
                    }
                }
                debug_assert_eq!(
                    raw_in_shard, pending,
                    "pending counter out of sync in shard {ns}"
                );
                drop(slots);
                raw_total += raw_in_shard;
                for (coalesced, i) in found {
                    let e = &shard.log[i];
                    let EntryModel::Snapshot(model) = &e.model else {
                        unreachable!("newest log entry per object is a snapshot")
                    };
                    out.push(CoalescedEvent {
                        event: WatchEvent {
                            revision: e.revision,
                            kind: e.kind,
                            oref: e.oref.clone(),
                            model: model.clone(),
                            resource_version: e.resource_version,
                        },
                        coalesced,
                    });
                }
                touched.push(ns.clone());
            }
            shard.drain_member(id);
        }
        stats.events_delivered += raw_total;
        stats.coalesced_deliveries += out.len() as u64;
        stats.events_coalesced += raw_total - out.len() as u64;
        for ns in &touched {
            self.compact_shard(ns);
        }
        out
    }

    /// Returns `true` if the subscription exists (opened and not yet
    /// cancelled).
    pub fn watch_exists(&self, id: WatchId) -> bool {
        self.watchers.contains_key(&id)
    }

    /// Returns `true` if the watcher has undelivered events. O(member
    /// shards), no log scan: each shard answers from its charge cells or
    /// exact counters — and the typical driver subscription spans one
    /// shard.
    pub fn has_pending(&self, id: WatchId) -> bool {
        let Some(w) = self.watchers.get(&id) else {
            return false;
        };
        w.shards.iter().any(|ns| {
            let shard = self.shards.get(ns).expect("membership implies shard");
            let m = shard.members.get(&id).expect("membership implies member");
            shard.member_pending(m).0 > 0
        })
    }

    /// The serialized size of the watcher's undelivered events — the bytes
    /// its next notification would put on the wire. Derived like
    /// [`Store::has_pending`]; the runtime's pump loop sizes driver wake
    /// transfers with this, so it must mirror true encoded sizes exactly.
    pub fn pending_bytes(&self, id: WatchId) -> u64 {
        let Some(w) = self.watchers.get(&id) else {
            return 0;
        };
        w.shards
            .iter()
            .map(|ns| {
                let shard = self.shards.get(ns).expect("membership implies shard");
                let m = shard.members.get(&id).expect("membership implies member");
                shard.member_pending(m).1
            })
            .sum()
    }

    /// Undelivered `(events, bytes)` for the watcher, in one pass over its
    /// member shards — what the runtime's pump loop needs per wake, so it
    /// doesn't derive the same counters twice via
    /// [`Store::has_pending`] + [`Store::pending_bytes`].
    pub fn pending_totals(&self, id: WatchId) -> (u64, u64) {
        let Some(w) = self.watchers.get(&id) else {
            return (0, 0);
        };
        w.shards.iter().fold((0, 0), |(p, b), ns| {
            let shard = self.shards.get(ns).expect("membership implies shard");
            let m = shard.members.get(&id).expect("membership implies member");
            let (mp, mb) = shard.member_pending(m);
            (p + mp, b + mb)
        })
    }

    /// Cancels a watch subscription, releasing its compaction holds in
    /// every shard it was registered in.
    pub fn cancel_watch(&mut self, id: WatchId) {
        let Some(w) = self.watchers.remove(&id) else {
            return;
        };
        self.global_watchers.remove(&id);
        for ns in &w.shards {
            let shard = self.shards.get_mut(ns).expect("membership implies shard");
            for selector in &w.selectors {
                if selector.is_global() || selector.home_namespace() == Some(ns.as_str()) {
                    shard.deregister(id, selector);
                }
            }
            debug_assert!(
                !shard.members.contains_key(&id),
                "all registrations released"
            );
        }
        for ns in &w.shards {
            self.compact_shard(ns);
        }
    }

    /// Total in-memory log length, summed over shards (each bounded by its
    /// own members' lag).
    pub fn log_len(&self) -> usize {
        self.shards.values().map(|s| s.log.len()).sum()
    }

    /// In-memory log length of one namespace's shard.
    pub fn shard_log_len(&self, namespace: &str) -> usize {
        self.shards.get(namespace).map(|s| s.log.len()).unwrap_or(0)
    }

    /// Number of live namespace shards (a deleted namespace's shard is
    /// dropped once its log drains).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Names of all live shards, in order.
    pub fn shard_names(&self) -> Vec<String> {
        self.shards.keys().cloned().collect()
    }

    /// Committed revision of a single shard (0 if the shard does not exist).
    pub fn shard_revision(&self, namespace: &str) -> u64 {
        self.shards.get(namespace).map(|s| s.committed).unwrap_or(0)
    }

    /// Watch/notification traffic counters.
    pub fn watch_stats(&self) -> WatchStats {
        self.stats
    }

    /// Creates the shard for `ns` if absent, joining every live
    /// namespace-spanning watcher so `All`/`Kind` subscriptions cover
    /// namespaces born after them.
    fn ensure_shard(&mut self, ns: &str) {
        if let Some(shard) = self.shards.get_mut(ns) {
            // New activity while a deletion was draining: the namespace is
            // live again.
            shard.retiring = false;
            return;
        }
        let mut shard = Shard {
            verify_sizes: self.verify_sizes,
            ..Shard::default()
        };
        for &id in &self.global_watchers {
            let w = self.watchers.get_mut(&id).expect("global watcher is live");
            for selector in &w.selectors {
                if selector.is_global() {
                    // A fresh shard starts at revision 0: cursor 1
                    // delivers everything ever committed here.
                    shard.register(id, selector, 1);
                }
            }
            w.shards.insert(ns.to_string());
        }
        self.shards.insert(ns.to_string(), shard);
    }

    /// Removes a fully drained, retiring shard: the namespace is gone, its
    /// terminal events are delivered, so remaining registrations (global
    /// watchers) release their membership. They re-join at cursor 1 if the
    /// namespace is ever recreated ([`Store::ensure_shard`]).
    fn maybe_drop_shard(&mut self, ns: &str) {
        let done = self
            .shards
            .get(ns)
            .is_some_and(|s| s.retiring && s.objects.is_empty() && s.log.is_empty());
        if !done {
            return;
        }
        let shard = self.shards.remove(ns).expect("checked above");
        // The drop resets the namespace's revision counter: replay must
        // see it, or a recreated namespace's commit records would replay
        // against the dead incarnation's revisions.
        if let Some(w) = self.wal.as_mut() {
            w.drop_shard(ns);
        }
        for (id, member) in &shard.members {
            debug_assert_eq!(
                shard.member_pending(member).0,
                0,
                "empty log implies nothing pending"
            );
            if let Some(w) = self.watchers.get_mut(id) {
                w.shards.remove(ns);
            }
        }
    }

    /// Debug/test knob: when enabled, every hinted encoded size is
    /// re-walked and asserted against the model in `shard_append`, and
    /// stays enabled for shards created later. Off by default — hints are
    /// trusted and never double-walked, even in debug builds.
    pub fn set_verify_sizes(&mut self, verify: bool) {
        self.verify_sizes = verify;
        for shard in self.shards.values_mut() {
            shard.verify_sizes = verify;
        }
    }

    /// Test support: exhaustively audits the size bookkeeping against
    /// ground truth — every `enc_cache` entry equals its object's true
    /// encoded length, every sized log entry equals its (materialized)
    /// model's true encoded length, and every member's derived pending
    /// counts equal a from-scratch recount of the log window with
    /// freshly computed sizes.
    #[doc(hidden)]
    pub fn audit_sizes(&self) -> Result<(), String> {
        for (ns, shard) in &self.shards {
            for (oref, cached) in &shard.enc_cache {
                let Some(obj) = shard.objects.get(oref) else {
                    return Err(format!("enc_cache entry for missing object {oref} in {ns}"));
                };
                let truth = json::encoded_len(&obj.model) as u64;
                if *cached != truth {
                    return Err(format!(
                        "enc_cache for {oref} in {ns}: cached {cached}, true {truth}"
                    ));
                }
            }
            // Materialize the full window once and check entry sizes.
            let mut sized: Vec<(u64, u64)> = Vec::new();
            scan_window(shard, 0, &[WatchSelector::All], |e, model| {
                sized.push((e.bytes, json::encoded_len(model) as u64));
            });
            for (i, (stamped, truth)) in sized.iter().enumerate() {
                if *stamped != 0 && stamped != truth {
                    return Err(format!(
                        "log entry {i} in {ns}: stamped {stamped} bytes, true {truth}"
                    ));
                }
            }
            for (id, member) in &shard.members {
                let (pending, bytes) = shard.member_pending(member);
                let Some(w) = self.watchers.get(id) else {
                    return Err(format!("member {id:?} in {ns} has no watcher"));
                };
                let (mut truth_pending, mut truth_bytes) = (0u64, 0u64);
                if !shard.log.is_empty() {
                    let first_rev = shard.committed - shard.log.len() as u64 + 1;
                    let start = (member.cursor.max(first_rev) - first_rev) as usize;
                    scan_window(shard, start, &w.selectors, |_, model| {
                        truth_pending += 1;
                        truth_bytes += json::encoded_len(model) as u64;
                    });
                }
                if pending != truth_pending || bytes != truth_bytes {
                    return Err(format!(
                        "member {id:?} in {ns}: derived ({pending}, {bytes}), \
                         true ({truth_pending}, {truth_bytes})"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Appends one committed event to a shard: bump its revision, size the
/// notification, push the log entry, and charge interested members.
///
/// Runs on the shard's owning worker during batches (the `tally` carries
/// watcher-total deltas back to the coordinator). `enc_hint` is the
/// serialized size of `model` when the caller maintained it incrementally;
/// `None` falls back to a full encoding walk.
fn shard_append(
    shard: &mut Shard,
    kind: WatchEventKind,
    oref: ObjectRef,
    model: Shared<Value>,
    rv: u64,
    enc_hint: Option<u64>,
    tally: &mut ShardTally,
) {
    shard.committed += 1;
    tally.appended += 1;
    let revision = shard.committed;
    // Maintain the secondary indexes covering this kind, remembering the
    // new keys. Replay performs these identical updates, and the predicate
    // matching below rides the delta instead of re-deriving it.
    let mut new_keys: Vec<(Arc<Path>, IndexKey)> = Vec::new();
    if let Some(paths) = shard.indexes.get_mut(&oref.kind) {
        for (path, idx) in paths.iter_mut() {
            if kind == WatchEventKind::Deleted {
                idx.remove(&oref.name);
            } else {
                let key = IndexKey::of(model.get(path));
                idx.insert(&oref.name, key.clone());
                new_keys.push((Arc::clone(path), key));
            }
        }
    }
    // Resolve interest. Cell-mode members are never enumerated: each
    // matching *slot* is charged once, and every member riding it derives
    // its pending counts from the cell — per-write cost is flat in
    // watcher count. Only the few exact-mode members (multi-slot or
    // predicate subscriptions) are resolved individually, deduped so each
    // is charged exactly once per delivered event.
    let mut exact_hit: BTreeSet<WatchId> = BTreeSet::new();
    if !shard.exact_ids.is_empty() {
        let kind_slot = shard.kind_watchers.get(&oref.kind);
        let obj_slot = shard.object_watchers.get(&oref);
        for &eid in &shard.exact_ids {
            if shard.all_watchers.subs.contains_key(&eid)
                || kind_slot.is_some_and(|s| s.subs.contains_key(&eid))
                || obj_slot.is_some_and(|s| s.subs.contains_key(&eid))
            {
                exact_hit.insert(eid);
            }
        }
    }
    // Predicate subscriptions judge the committed model itself: an index
    // key the plan refuses proves a non-match without evaluating, and
    // only events that truly match go pending anywhere. (Deletes carry no
    // key delta and are judged on their final model.)
    if let Some(slots) = shard.pred_watchers.get(&oref.kind) {
        for w in slots {
            if !exact_hit.contains(&w.id) && w.pred.matches_indexed(&model, &new_keys) {
                exact_hit.insert(w.id);
            }
        }
    }
    let plain_interested = !shard.all_watchers.subs.is_empty()
        || shard.kind_watchers.contains_key(&oref.kind)
        || shard.object_watchers.contains_key(&oref);
    let interested = plain_interested || !exact_hit.is_empty();
    // Size the notification payload once per event — from the caller's
    // incremental delta when available, by one full walk otherwise, and
    // only when somebody will actually receive it. The cache entry always
    // mirrors the newest model's size (a free hint keeps it alive even
    // with no watcher present) — or is absent when never computed.
    if shard.verify_sizes {
        if let Some(n) = enc_hint {
            assert_eq!(
                n,
                json::encoded_len(&model) as u64,
                "stale encoded size hint for {oref}"
            );
        }
    }
    let event_bytes = match (enc_hint, interested) {
        (Some(n), _) => n,
        (None, true) => json::encoded_len(&model) as u64,
        (None, false) => 0,
    };
    if kind == WatchEventKind::Deleted || event_bytes == 0 {
        shard.enc_cache.remove(&oref);
    } else {
        shard.enc_cache.insert(oref.clone(), event_bytes);
    }
    let members_empty = shard.members.is_empty();
    if !members_empty {
        // Remember the newest entry per object so the next write can
        // steal its snapshot (deletes end the chain).
        if kind == WatchEventKind::Deleted {
            shard.tail_revs.remove(&oref);
        } else {
            shard.tail_revs.insert(oref.clone(), revision);
        }
        if !shard.all_watchers.subs.is_empty() {
            shard.all_watchers.charge.bump(event_bytes);
            if !shard.all_watchers.dirty {
                shard.all_watchers.dirty = true;
                shard.dirty_slots.push(SlotKey::All);
            }
        }
        if let Some(slot) = shard.kind_watchers.get_mut(&oref.kind) {
            slot.charge.bump(event_bytes);
            if !slot.dirty {
                slot.dirty = true;
                shard.dirty_slots.push(SlotKey::Kind(oref.kind.clone()));
            }
        }
        if let Some(slot) = shard.object_watchers.get_mut(&oref) {
            slot.charge.bump(event_bytes);
            if !slot.dirty {
                slot.dirty = true;
                shard.dirty_slots.push(SlotKey::Object(oref.clone()));
            }
        }
        for id in &exact_hit {
            let m = shard.members.get_mut(id).expect("hit watcher is a member");
            if let Acct::Exact { pending, bytes } = &mut m.acct {
                *pending += 1;
                *bytes += event_bytes;
                shard.dirty_exact.insert(*id);
            }
        }
    }
    shard.log.push_back(LogEntry {
        revision,
        kind,
        oref,
        model: EntryModel::Snapshot(model),
        resource_version: rv,
        bytes: event_bytes,
    });
    tally.peak_log_len = tally.peak_log_len.max(shard.log.len());
    if members_empty {
        // No watcher holds this shard: reclaim the tail eagerly.
        let n = shard.log.len() as u64;
        shard.log.clear();
        shard.tail_revs.clear();
        tally.compacted += n;
    }
}

/// Walks the log window from index `start`, materializing each
/// scope-matched entry's model — rolling back from the entry's successor
/// where it is stored in rollback form — and invokes `f` for every entry
/// whose `(oref, model)` satisfies some selector's `event_matches`.
///
/// The backward pass reconstructs models newest-to-oldest per object (a
/// rollback entry's successor is always resident, see [`LogEntry`]); the
/// forward pass then emits in revision order. Hot-path polls touch only
/// `Snapshot` entries and pay nothing; only laggards materialize.
fn scan_window(
    shard: &Shard,
    start: usize,
    selectors: &[WatchSelector],
    mut f: impl FnMut(&LogEntry, &Shared<Value>),
) {
    let n = shard.log.len();
    if start >= n {
        return;
    }
    let mut models: Vec<Option<Shared<Value>>> = vec![None; n - start];
    let mut successors: BTreeMap<&ObjectRef, Shared<Value>> = BTreeMap::new();
    for (i, e) in shard.log.iter().enumerate().skip(start).rev() {
        if !selectors.iter().any(|s| s.matches(&e.oref)) {
            continue;
        }
        let model = match &e.model {
            EntryModel::Snapshot(m) => m.clone(),
            EntryModel::Rollback(ops) => {
                let succ = successors
                    .get(&e.oref)
                    .expect("rollback entry has a resident successor");
                let mut doc = (**succ).clone();
                apply_rollback(&mut doc, ops);
                Shared::new(doc)
            }
        };
        successors.insert(&e.oref, model.clone());
        models[i - start] = Some(model);
    }
    for (i, e) in shard.log.iter().enumerate().skip(start) {
        if let Some(model) = &models[i - start] {
            if selectors.iter().any(|s| s.event_matches(&e.oref, model)) {
                f(e, model);
            }
        }
    }
}

/// Drops log entries that no member can still need, returning the count. A
/// member with pending events holds everything from its cursor; a fully
/// drained member holds nothing (events it skipped did not match it, or it
/// would have `pending > 0`).
fn compact(shard: &mut Shard) -> u64 {
    let tail = shard.committed + 1;
    let mut min_hold = tail;
    for m in shard.members.values() {
        let (pending, _) = shard.member_pending(m);
        min_hold = min_hold.min(if pending == 0 { tail } else { m.cursor });
    }
    let mut first_rev = shard.committed - shard.log.len() as u64 + 1;
    let mut reclaimed = 0u64;
    while first_rev < min_hold && !shard.log.is_empty() {
        shard.log.pop_front();
        reclaimed += 1;
        first_rev += 1;
    }
    // Popping from the front never strands a rollback entry (its
    // successor is always newer), but it can strand a `tail_revs` pointer
    // at a reclaimed revision; `steal_tail_snapshot` bounds-checks, so the
    // stale pointer is merely a missed steal, pruned lazily here.
    if reclaimed > 0 {
        let first_rev = shard.committed - shard.log.len() as u64 + 1;
        shard.tail_revs.retain(|_, rev| *rev >= first_rev);
    }
    reclaimed
}

impl Store {
    fn compact_shard(&mut self, ns: &str) {
        if let Some(shard) = self.shards.get_mut(ns) {
            self.stats.events_compacted += compact(shard);
            self.maybe_drop_shard(ns);
        }
    }
}

impl Store {
    /// Detaches every watcher from namespace `ns` ahead of its deletion
    /// and marks the shard retiring, returning the objects that still need
    /// terminal `Deleted` events.
    ///
    /// Selectors homed in the namespace are *cancelled*: they are removed
    /// from their subscriptions and their undelivered events are refunded
    /// — the subscription's scope is being deleted, so the events can
    /// never be re-matched. Global selectors stay registered: their
    /// watchers still see every already-pending event plus the terminal
    /// `Deleted` events, gap-free, and their membership is released only
    /// when the drained shard is dropped.
    ///
    /// The caller deletes the returned objects (possibly through admission
    /// / audit layers) and then calls [`Store::finish_delete_namespace`].
    pub fn begin_delete_namespace(&mut self, ns: &str) -> Vec<ObjectRef> {
        let Store {
            shards,
            watchers,
            wal,
            ..
        } = self;
        let Some(shard) = shards.get_mut(ns) else {
            return Vec::new();
        };
        let member_ids: Vec<WatchId> = shard.members.keys().copied().collect();
        for id in member_ids {
            let w = watchers.get_mut(&id).expect("member watcher is live");
            let homed: Vec<WatchSelector> = w
                .selectors
                .iter()
                .filter(|s| s.home_namespace() == Some(ns))
                .cloned()
                .collect();
            if homed.is_empty() {
                continue; // a purely global member keeps its cursor
            }
            w.selectors.retain(|s| s.home_namespace() != Some(ns));
            let mut removed = false;
            for selector in &homed {
                if shard.deregister(id, selector) {
                    removed = true;
                }
            }
            if removed {
                // Last registration gone: the member (and its derived or
                // exact charge) went with it.
                w.shards.remove(ns);
            } else {
                // Still a member through global selectors. A cell member
                // kept its sole slot (a homed `KindInNamespace` sharing
                // the slot of a global `Kind` over a strictly wider match
                // set), so its derived counts stay exact. Exact members'
                // counts may include events only the cancelled selectors
                // matched; re-settle them against the remaining set.
                let member = shard.members.get(&id).expect("still a member");
                if matches!(member.acct, Acct::Exact { .. }) && shard.member_pending(member).0 > 0 {
                    let (p, b) = recount_pending(shard, member.cursor, &w.selectors);
                    let m = shard.members.get_mut(&id).expect("still a member");
                    m.acct = Acct::Exact {
                        pending: p,
                        bytes: b,
                    };
                }
            }
        }
        shard.retiring = true;
        if let Some(w) = wal.as_mut() {
            w.retire(ns);
        }
        shard.objects.keys().cloned().collect()
    }

    /// Completes a namespace deletion: once the terminal events drain, the
    /// shard is dropped (immediately, if nobody is lagging).
    pub fn finish_delete_namespace(&mut self, ns: &str) {
        if let Some(shard) = self.shards.get_mut(ns) {
            shard.retiring = true;
            if let Some(w) = self.wal.as_mut() {
                w.retire(ns);
            }
        }
        self.compact_shard(ns);
        self.wal_seal();
    }

    /// Deletes a namespace: every object in it is deleted (emitting
    /// ordered terminal `Deleted` events to global watchers), selectors
    /// homed in it are cancelled, and the shard itself is dropped once its
    /// log drains. Returns the number of objects deleted.
    pub fn delete_namespace(&mut self, ns: &str) -> u64 {
        let orefs = self.begin_delete_namespace(ns);
        let deleted = orefs.len() as u64;
        for oref in &orefs {
            let _ = self.delete(oref);
        }
        self.finish_delete_namespace(ns);
        deleted
    }
}

/// Runs one query against one shard: warm the indexes the plan probes,
/// narrow to candidate names, then confirm every candidate with the full
/// predicate. Falls back to a scan of the kind slice (or the whole shard
/// for kind-less queries) when nothing is plannable.
fn query_shard(shard: &mut Shard, ns: &str, q: &Query, out: &mut Vec<Object>) {
    let planned = match (&q.kind, &q.pred) {
        (Some(kind), Some(pred)) if !pred.plan().is_full() => {
            let mut paths = BTreeSet::new();
            pred.plan().paths(&mut paths);
            for path in &paths {
                shard.ensure_index(kind, path);
            }
            plan_names(pred.plan(), kind, shard).map(|names| (kind.clone(), names))
        }
        _ => None,
    };
    match planned {
        Some((kind, names)) => {
            for name in names {
                let oref = ObjectRef::new(&kind, ns, &name);
                let Some(obj) = shard.objects.get(&oref) else {
                    continue;
                };
                if q.matches(&obj.oref, &obj.model) {
                    out.push(obj.clone());
                }
            }
        }
        None => {
            for obj in shard.objects.values() {
                if q.matches(&obj.oref, &obj.model) {
                    out.push(obj.clone());
                }
            }
        }
    }
}

/// Evaluates a plan to candidate object names through the shard's
/// indexes. `None` means "unconstrained" (a probe whose index is
/// unexpectedly missing degrades to the scan path rather than to a wrong
/// answer).
fn plan_names(plan: &Plan, kind: &str, shard: &Shard) -> Option<BTreeSet<String>> {
    match plan {
        Plan::Full => None,
        Plan::Eq { path, key } => {
            let idx = shard.indexes.get(kind)?.get(path)?;
            Some(idx.by_key.get(key).cloned().unwrap_or_default())
        }
        Plan::Range { path, lo, hi } => {
            let idx = shard.indexes.get(kind)?.get(path)?;
            let mut names = BTreeSet::new();
            for set in idx.by_key.range((lo.clone(), hi.clone())).map(|(_, s)| s) {
                names.extend(set.iter().cloned());
            }
            Some(names)
        }
        Plan::And(ps) => {
            let mut acc: Option<BTreeSet<String>> = None;
            for p in ps {
                let Some(names) = plan_names(p, kind, shard) else {
                    continue;
                };
                acc = Some(match acc {
                    None => names,
                    Some(a) => a.intersection(&names).cloned().collect(),
                });
                if acc.as_ref().is_some_and(|a| a.is_empty()) {
                    break;
                }
            }
            acc
        }
        Plan::Or(ps) => {
            let mut acc = BTreeSet::new();
            for p in ps {
                // An unconstrained disjunct widens the union to everything.
                acc.extend(plan_names(p, kind, shard)?);
            }
            Some(acc)
        }
    }
}

/// Counts the undelivered events from `cursor` that match `selectors`,
/// with their serialized sizes. Used to re-settle a member's pending
/// counters when part of its selector set is cancelled.
fn recount_pending(shard: &Shard, cursor: u64, selectors: &[WatchSelector]) -> (u64, u64) {
    if shard.log.is_empty() {
        return (0, 0);
    }
    let first_rev = shard.committed - shard.log.len() as u64 + 1;
    let start = (cursor.max(first_rev) - first_rev) as usize;
    let mut pending = 0u64;
    let mut bytes = 0u64;
    scan_window(shard, start, selectors, |e, model| {
        pending += 1;
        bytes += if e.bytes != 0 {
            e.bytes
        } else {
            json::encoded_len(model) as u64
        };
    });
    (pending, bytes)
}

/// A consistent, immutable view of every object in the store at one
/// commit boundary, detached from the store's borrow.
///
/// Cloning is O(shards); the per-shard indexes and every model inside them
/// are reference-counted and shared with the store. The view is `Send` and
/// `Sync`, so slow readers (CLIs, scenario assertions, dashboards) can
/// hold or even move it to another thread while the coordinator keeps
/// committing — later batches copy-on-write around it, they never mutate
/// it. A snapshot therefore always equals the exact batch-boundary state
/// it was taken at: no torn batches, ever.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    shards: BTreeMap<String, Arc<BTreeMap<ObjectRef, Object>>>,
    revision: u64,
    /// Shared with the originating store: snapshot reads are counted
    /// globally so tests can assert hot paths stay off the store borrow.
    reads: Arc<AtomicU64>,
}

// Snapshots may be handed to reader threads; keep that statically true.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StoreSnapshot>();
};

impl StoreSnapshot {
    /// The store's global revision when the snapshot was taken.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    fn count_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the object as of the snapshot, if present.
    pub fn get(&self, oref: &ObjectRef) -> Option<&Object> {
        self.count_read();
        self.shards.get(&oref.namespace)?.get(oref)
    }

    /// Lists objects of `kind` across namespaces (sorted by
    /// namespace/name), as of the snapshot.
    #[deprecated(note = "use `StoreSnapshot::query` with a `Query`")]
    pub fn list(&self, kind: &str) -> Vec<&Object> {
        self.scan(kind)
    }

    pub(crate) fn scan(&self, kind: &str) -> Vec<&Object> {
        self.count_read();
        self.shards
            .values()
            .flat_map(|s| {
                s.iter()
                    .filter(move |(r, _)| r.kind == kind)
                    .map(|(_, o)| o)
            })
            .collect()
    }

    /// Lists objects of `kind` within one namespace (sorted by name), as
    /// of the snapshot.
    #[deprecated(note = "use `StoreSnapshot::query` with a `Query`")]
    pub fn list_in(&self, kind: &str, namespace: &str) -> Vec<&Object> {
        self.scan_in(kind, namespace)
    }

    pub(crate) fn scan_in(&self, kind: &str, namespace: &str) -> Vec<&Object> {
        self.count_read();
        let Some(shard) = self.shards.get(namespace) else {
            return Vec::new();
        };
        shard
            .iter()
            .filter(|(r, _)| r.kind == kind)
            .map(|(_, o)| o)
            .collect()
    }

    /// Lists every object (sorted by kind/namespace/name), as of the
    /// snapshot.
    #[deprecated(note = "use `StoreSnapshot::query` with a `Query`")]
    pub fn list_all(&self) -> Vec<&Object> {
        self.scan_all()
    }

    pub(crate) fn scan_all(&self) -> Vec<&Object> {
        self.count_read();
        let mut out: Vec<&Object> = self.shards.values().flat_map(|s| s.values()).collect();
        out.sort_by(|a, b| a.oref.cmp(&b.oref));
        out
    }

    /// Runs a [`Query`] against the snapshot. Snapshots are frozen views
    /// without index state, so filters evaluate brute-force over the
    /// matching kind/namespace slice — byte-for-byte the semantics the
    /// store's indexed path must reproduce (tests compare the two).
    /// Results are sorted by object reference.
    pub fn query(&self, q: &Query) -> Vec<&Object> {
        self.count_read();
        let mut out: Vec<&Object> = match &q.namespace {
            Some(ns) => self
                .shards
                .get(ns)
                .map(|s| {
                    s.values()
                        .filter(|o| q.matches(&o.oref, &o.model))
                        .collect()
                })
                .unwrap_or_default(),
            None => self
                .shards
                .values()
                .flat_map(|s| s.values())
                .filter(|o| q.matches(&o.oref, &o.model))
                .collect(),
        };
        out.sort_by(|a, b| a.oref.cmp(&b.oref));
        out
    }
}

// ----- Shard-local mutation ops ------------------------------------------
//
// These run on the shard's owning worker thread during batches (and inline
// for the serial verbs). They may touch only the shard and the tally.

/// Outcome of one shard's slice of a batch.
struct ShardOutcome {
    /// Per-ticket results, in execution (= ticket) order.
    results: Vec<(usize, Result<u64, ApiError>)>,
    /// Side effects to fold into the coordinator's counters.
    tally: ShardTally,
}

/// Executes one shard's slice of a batch in ticket order, with a single
/// compaction pass at the end instead of one per write. With `journal`
/// set, successful ops are serialized into the tally for the
/// coordinator's WAL commit record.
fn apply_shard_batch(
    shard: &mut Shard,
    batch: Vec<(usize, StoreOp)>,
    journal: bool,
) -> ShardOutcome {
    let mut tally = ShardTally {
        wal_base: shard.committed,
        journal,
        ..ShardTally::default()
    };
    let mut results = Vec::with_capacity(batch.len());
    for (ticket, op) in batch {
        // Successful ops journal themselves inside the mutators (where
        // the committed model is already in hand, sized once for both the
        // event path and the WAL record).
        let result = match op {
            StoreOp::Create { oref, model } => shard_create(shard, oref, model, &mut tally),
            StoreOp::Put {
                oref,
                model,
                expected_rv,
            } => shard_update(shard, &oref, model, expected_rv, &mut tally),
            StoreOp::Merge { oref, patch } => shard_merge(shard, &oref, &patch, &mut tally),
            StoreOp::SetPath { oref, path, value } => {
                shard_set_path(shard, &oref, &path, value, &mut tally)
            }
            StoreOp::Delete { oref } => {
                shard_delete(shard, &oref, &mut tally).map(|o| o.resource_version)
            }
        };
        results.push((ticket, result));
    }
    tally.compacted += compact(shard);
    tally.compaction_passes += 1;
    ShardOutcome { results, tally }
}

// ----- WAL op serialization / replay ---------------------------------------
//
// Successful ops are journaled as small JSON documents; replay routes them
// back through the shard-local mutation functions above, so a recovered
// shard is bit-identical to the one that logged them. `expected_rv` guards
// are dropped on serialization: only ops that already committed are
// logged, and replay starts from the identical base state.

/// Starts an op record in `out`: `{"op":"<verb>","kind":…,"ns":…,"name":…`
/// — one buffer, no intermediate strings (op serialization runs once per
/// journaled write).
fn wal_op_open(out: &mut String, verb: &str, oref: &ObjectRef) {
    out.push_str("{\"op\":\"");
    out.push_str(verb);
    out.push_str("\",\"kind\":");
    json::write_str_to(out, &oref.kind);
    out.push_str(",\"ns\":");
    json::write_str_to(out, &oref.namespace);
    out.push_str(",\"name\":");
    json::write_str_to(out, &oref.name);
}

/// Renders a `{"op":…,"<key>":<model>}` record, returning it together
/// with the model segment's byte length — the same number as
/// `json::encoded_len(model)`, measured during the render. Journaling
/// `create`/`put` verbs size their event notification with the render
/// walk they already pay: the committed (post-stamp) model is written,
/// which replays identically because `meta.gen` stamping is idempotent.
fn wal_op_with_model_sized(
    verb: &str,
    key: &str,
    oref: &ObjectRef,
    model: &Value,
) -> (String, u64) {
    let mut out = String::with_capacity(96);
    wal_op_open(&mut out, verb, oref);
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    let mark = out.len();
    json::write_to(&mut out, model);
    let n = (out.len() - mark) as u64;
    out.push('}');
    (out, n)
}

/// Renders a `merge` op — the journal hot path for `patch`, so no
/// intermediate strings.
fn wal_op_merge(oref: &ObjectRef, patch: &Value) -> String {
    let mut out = String::with_capacity(96);
    wal_op_open(&mut out, "merge", oref);
    out.push_str(",\"patch\":");
    json::write_to(&mut out, patch);
    out.push('}');
    out
}

/// Appends a `set` op to `out` — the journal hot path for `patch_path`.
/// The path renders segment by segment straight into the buffer (its
/// canonical `.a.b[0]` form), escaped as it goes: no `path.to_string()`.
fn wal_op_set_into(out: &mut String, oref: &ObjectRef, path: &Path, value: &Value) {
    use std::fmt::Write as _;
    wal_op_open(out, "set", oref);
    out.push_str(",\"path\":\"");
    if path.is_empty() {
        out.push('.');
    }
    for seg in path.segments() {
        match seg {
            Segment::Key(k) => {
                out.push('.');
                json::write_str_body_to(out, k);
            }
            Segment::Index(i) => {
                let _ = write!(out, "[{i}]");
            }
        }
    }
    out.push_str("\",\"value\":");
    json::write_to(out, value);
    out.push('}');
}

fn wal_op_set(oref: &ObjectRef, path: &Path, value: &Value) -> String {
    let mut out = String::with_capacity(96);
    wal_op_set_into(&mut out, oref, path, value);
    out
}

fn wal_op_delete(oref: &ObjectRef) -> String {
    let mut out = String::with_capacity(64);
    wal_op_open(&mut out, "del", oref);
    out.push('}');
    out
}

fn wal_op_ff(oref: &ObjectRef, rv: u64) -> String {
    let mut out = String::with_capacity(72);
    wal_op_open(&mut out, "ff", oref);
    out.push_str(",\"rv\":");
    out.push_str(&wal::exact(rv));
    out.push('}');
    out
}

/// Re-applies one journaled op to a recovering shard. Every logged op
/// committed once, so failure here means the log and the recovered state
/// disagree — surfaced as corruption by the caller.
fn replay_op(shard: &mut Shard, op: Value, tally: &mut ShardTally) -> Result<(), String> {
    let Value::Object(mut map) = op else {
        return Err("op is not an object".to_string());
    };
    let verb = match map.get("op") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("op missing verb".to_string()),
    };
    let mut take_str = |k: &str| match map.remove(k) {
        Some(Value::Str(s)) => Ok(s),
        _ => Err(format!("op missing '{k}'")),
    };
    let (kind, ns, name) = (take_str("kind")?, take_str("ns")?, take_str("name")?);
    let oref = ObjectRef::new(kind, ns, name);
    let fail = |e: ApiError| e.to_string();
    match verb.as_str() {
        "create" => {
            let model = map.remove("model").ok_or("op missing 'model'")?;
            shard_create(shard, oref, model, tally)
                .map(|_| ())
                .map_err(fail)
        }
        "put" => {
            let model = map.remove("model").ok_or("op missing 'model'")?;
            shard_update(shard, &oref, model, None, tally)
                .map(|_| ())
                .map_err(fail)
        }
        "merge" => {
            let patch = map.remove("patch").ok_or("op missing 'patch'")?;
            shard_merge(shard, &oref, &patch, tally)
                .map(|_| ())
                .map_err(fail)
        }
        "set" => {
            let path: Path = match map.get("path") {
                Some(Value::Str(s)) => s.parse().map_err(|e| format!("bad path: {e}"))?,
                _ => return Err("op missing 'path'".to_string()),
            };
            let value = map.remove("value").ok_or("op missing 'value'")?;
            shard_set_path(shard, &oref, &path, value, tally)
                .map(|_| ())
                .map_err(fail)
        }
        "del" => shard_delete(shard, &oref, tally).map(|_| ()).map_err(fail),
        "ff" => {
            let rv = map
                .get("rv")
                .and_then(Value::as_exact_u64)
                .ok_or("op missing 'rv'")?;
            shard_fast_forward(shard, &oref, rv, tally)
                .map(|_| ())
                .map_err(fail)
        }
        other => Err(format!("unknown wal op '{other}'")),
    }
}

/// Serializes every shard for a checkpoint document.
fn checkpoint_shards_json(shards: &BTreeMap<String, Shard>) -> String {
    let mut out = Vec::with_capacity(shards.len());
    for (ns, shard) in shards {
        let objects: Vec<String> = shard
            .objects
            .values()
            .map(|o| {
                format!(
                    "{{\"kind\":{},\"namespace\":{},\"name\":{},\"rv\":{},\"model\":{}}}",
                    wal::jstr(&o.oref.kind),
                    wal::jstr(&o.oref.namespace),
                    wal::jstr(&o.oref.name),
                    wal::exact(o.resource_version),
                    json::to_string(&o.model)
                )
            })
            .collect();
        out.push(format!(
            "{{\"ns\":{},\"committed\":{},\"retiring\":{},\"objects\":[{}]}}",
            wal::jstr(ns),
            wal::exact(shard.committed),
            shard.retiring,
            objects.join(",")
        ));
    }
    out.join(",")
}

/// Tries to convert the newest resident log entry for `oref` from
/// snapshot to rollback form, returning its log index. Succeeds only
/// when that entry's snapshot is pointer-identical to the live object's
/// model (`model_ptr`): then the log holds the only other strong
/// reference, and stealing it back lets the caller mutate the model in
/// place with no deep clone. The caller **must** store the real inverse
/// ops at the returned index (or restore a snapshot) before returning.
fn steal_tail_snapshot(
    shard: &mut Shard,
    oref: &ObjectRef,
    model_ptr: *const Value,
) -> Option<usize> {
    let rev = *shard.tail_revs.get(oref)?;
    let first_rev = shard.committed + 1 - shard.log.len() as u64;
    if rev < first_rev || rev > shard.committed {
        // The entry was compacted away; prune the stale pointer lazily.
        shard.tail_revs.remove(oref);
        return None;
    }
    let idx = (rev - first_rev) as usize;
    let entry = &mut shard.log[idx];
    debug_assert_eq!(entry.oref, *oref, "tail_revs points at the wrong object");
    match &entry.model {
        EntryModel::Snapshot(m) if std::ptr::eq(Shared::as_ptr(m), model_ptr) => {
            entry.model = EntryModel::Rollback(Vec::new());
            Some(idx)
        }
        _ => None,
    }
}

/// Mutable access to the live model. When something else still holds the
/// `Arc` — a reader's snapshot, a delivered event, an unstealable log
/// entry — this deep-clones, and the tally counts it: the zero-copy
/// bench asserts steady-state writes never pay that clone.
fn cow_model<'a>(model: &'a mut Shared<Value>, tally: &mut ShardTally) -> &'a mut Value {
    if Shared::strong_count(model) > 1 {
        tally.deep_clones += 1;
    }
    Shared::make_mut(model)
}

/// `true` when `a` is a proper (strictly shorter) prefix of `b`.
fn proper_prefix(a: &Path, b: &Path) -> bool {
    a.len() < b.len() && a.is_prefix_of(b)
}

/// Stamps `meta.gen = rv` with semantics identical to [`stamp_gen`],
/// pushing the inverse op and returning the serialized-length delta when
/// it can be computed incrementally. The fallback (`.meta` is missing or
/// not an object — e.g. a patch just replaced it wholesale) accounts and
/// inverts at the whole-`.meta` level and reports no delta.
fn stamp_gen_accounted(m: &mut Value, rv: u64, inv: &mut Vec<InverseOp>) -> Option<i64> {
    if fast_set_applies(m, gen_path()) {
        inv.push(InverseOp {
            path: gen_path().clone(),
            old: m.get(gen_path()).cloned(),
        });
        Some(fast_set(m, gen_path(), Value::from_exact_u64(rv)))
    } else {
        let parent = gen_path().prefix(1);
        inv.push(InverseOp {
            path: parent.clone(),
            old: m.get(&parent).cloned(),
        });
        stamp_gen(m, rv);
        None
    }
}

/// Deep-merges `patch` into `slot` with semantics identical to
/// [`Value::merge`], returning the serialized-length delta and pushing
/// inverse ops (in application order) that restore the pre-merge state
/// when applied in reverse.
fn merge_and_account(slot: &mut Value, patch: &Value, at: &Path, inv: &mut Vec<InverseOp>) -> i64 {
    if let (Value::Object(dst), Value::Object(src)) = (&mut *slot, patch) {
        let mut delta = 0i64;
        for (k, pv) in src {
            match dst.get_mut(k) {
                Some(dv) => delta += merge_and_account(dv, pv, &at.child(k.clone()), inv),
                None => {
                    // `"k":v`, plus a comma unless it is the map's first
                    // entry (mirrors `fast_set`'s fresh-key accounting).
                    let sep = if dst.is_empty() { 0 } else { 1 };
                    inv.push(InverseOp {
                        path: at.child(k.clone()),
                        old: None,
                    });
                    delta +=
                        json::string_encoded_len(k) as i64 + 1 + json::encoded_len(pv) as i64 + sep;
                    dst.insert(k.clone(), pv.clone());
                }
            }
        }
        return delta;
    }
    let new_len = json::encoded_len(patch) as i64;
    let old = std::mem::replace(slot, patch.clone());
    let delta = new_len - json::encoded_len(&old) as i64;
    inv.push(InverseOp {
        path: at.clone(),
        old: Some(old),
    });
    delta
}

/// Combines the cached pre-write size with up to two incremental deltas
/// into the post-write size hint. Checked arithmetic throughout: a stale
/// cache entry (negative or overflowing sum) yields `None` **and evicts
/// the entry**, instead of wrapping into a huge bogus size that would
/// poison `pending_bytes` and driver wake sizing.
fn combine_hint(
    shard: &mut Shard,
    oref: &ObjectRef,
    cached: Option<u64>,
    deltas: [Option<i64>; 2],
) -> Option<u64> {
    let (Some(base), [Some(d1), Some(d2)]) = (cached, deltas) else {
        return None;
    };
    let sum = i64::try_from(base)
        .ok()
        .and_then(|b| b.checked_add(d1))
        .and_then(|s| s.checked_add(d2));
    match sum {
        Some(n) if n >= 0 => Some(n as u64),
        _ => {
            shard.enc_cache.remove(oref);
            None
        }
    }
}

fn shard_create(
    shard: &mut Shard,
    oref: ObjectRef,
    mut model: Value,
    tally: &mut ShardTally,
) -> Result<u64, ApiError> {
    if shard.objects.contains_key(&oref) {
        return Err(ApiError::AlreadyExists(oref));
    }
    let rv = 1;
    stamp_gen(&mut model, rv);
    // Journaling renders the committed model once; measuring the model
    // segment during that render doubles as the event-size hint, so the
    // append path never re-walks the document.
    let enc_hint = if tally.journal {
        let (rec, n) = wal_op_with_model_sized("create", "model", &oref, &model);
        tally.wal_ops.push(rec);
        Some(n)
    } else {
        None
    };
    let shared = Shared::new(model);
    shard.objects_mut().insert(
        oref.clone(),
        Object {
            oref: oref.clone(),
            model: shared.clone(),
            resource_version: rv,
        },
    );
    shard_append(
        shard,
        WatchEventKind::Added,
        oref,
        shared,
        rv,
        enc_hint,
        tally,
    );
    Ok(rv)
}

fn shard_update(
    shard: &mut Shard,
    oref: &ObjectRef,
    mut model: Value,
    expected_rv: Option<u64>,
    tally: &mut ShardTally,
) -> Result<u64, ApiError> {
    let obj = shard
        .objects_mut()
        .get_mut(oref)
        .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
    if let Some(expected) = expected_rv {
        if expected != obj.resource_version {
            return Err(ApiError::Conflict {
                oref: oref.clone(),
                expected,
                actual: obj.resource_version,
            });
        }
    }
    let rv = obj.resource_version + 1;
    stamp_gen(&mut model, rv);
    let shared = Shared::new(model);
    obj.model = shared.clone();
    obj.resource_version = rv;
    // Same render-once sizing as `shard_create`.
    let enc_hint = if tally.journal {
        let (rec, n) = wal_op_with_model_sized("put", "model", oref, &shared);
        tally.wal_ops.push(rec);
        Some(n)
    } else {
        None
    };
    shard_append(
        shard,
        WatchEventKind::Modified,
        oref.clone(),
        shared,
        rv,
        enc_hint,
        tally,
    );
    Ok(rv)
}

/// Deep-merges a patch into the stored model **in place**. In steady
/// state the log-tail snapshot is *stolen* — rewritten as a rollback
/// entry holding only the patch's inverse — so no deep clone fires, and
/// the serialized size is maintained by the same walk that applies the
/// merge: the write is O(patch), not O(model).
fn shard_merge(
    shard: &mut Shard,
    oref: &ObjectRef,
    patch: &Value,
    tally: &mut ShardTally,
) -> Result<u64, ApiError> {
    let cached = shard.enc_cache.get(oref).copied();
    let obj = shard
        .objects
        .get(oref)
        .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
    let rv = obj.resource_version + 1;
    // The merge walk itself is always invertible (it captures inverse ops
    // as it goes); `stamp_gen_accounted` inverts even its fallback shape.
    let model_ptr = Shared::as_ptr(&obj.model);
    let stolen = steal_tail_snapshot(shard, oref, model_ptr);
    let obj = shard.objects_mut().get_mut(oref).expect("probed above");
    let m = cow_model(&mut obj.model, tally);
    let mut inv = Vec::new();
    let d1 = merge_and_account(m, patch, &Path::root(), &mut inv);
    let d2 = stamp_gen_accounted(m, rv, &mut inv);
    obj.resource_version = rv;
    let snapshot = obj.model.clone();
    if let Some(idx) = stolen {
        shard.log[idx].model = EntryModel::Rollback(inv);
    }
    let enc_hint = combine_hint(shard, oref, cached, [Some(d1), d2]);
    if tally.journal {
        tally.wal_ops.push(wal_op_merge(oref, patch));
    }
    shard_append(
        shard,
        WatchEventKind::Modified,
        oref.clone(),
        snapshot,
        rv,
        enc_hint,
        tally,
    );
    Ok(rv)
}

/// Sets one attribute **in place**, maintaining the serialized size
/// incrementally when the write is a straight-line replacement — the hot
/// path of every intent/status toggle. In steady state the log-tail
/// snapshot is stolen and rewritten as a two-op rollback entry, so the
/// commit pays no full-document walk and no deep clone.
fn shard_set_path(
    shard: &mut Shard,
    oref: &ObjectRef,
    path: &Path,
    value: Value,
    tally: &mut ShardTally,
) -> Result<u64, ApiError> {
    let cached = shard.enc_cache.get(oref).copied();
    let obj = shard
        .objects
        .get(oref)
        .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
    let rv = obj.resource_version + 1;
    // Steal only when both writes are guaranteed to take the fast path
    // (so neither can fail or fall back mid-mutation) and neither path
    // routes through a container the other replaces — otherwise the
    // captured inverses could not restore the pre-state.
    let stealable = fast_set_applies(&obj.model, path)
        && fast_set_applies(&obj.model, gen_path())
        && !proper_prefix(path, gen_path())
        && !proper_prefix(gen_path(), path);
    let model_ptr = Shared::as_ptr(&obj.model);
    let stolen = if stealable {
        steal_tail_snapshot(shard, oref, model_ptr)
    } else {
        None
    };
    let obj = shard.objects_mut().get_mut(oref).expect("probed above");
    let m = cow_model(&mut obj.model, tally);
    let rec = tally.journal.then(|| wal_op_set(oref, path, &value));
    let mut inv: Vec<InverseOp> = Vec::new();
    let (d1, d2) = if stolen.is_some() {
        inv.push(InverseOp {
            path: path.clone(),
            old: m.get(path).cloned(),
        });
        inv.push(InverseOp {
            path: gen_path().clone(),
            old: m.get(gen_path()).cloned(),
        });
        (
            Some(fast_set(m, path, value)),
            Some(fast_set(m, gen_path(), Value::from_exact_u64(rv))),
        )
    } else {
        let d1 = match checked_set(m, path, value) {
            Ok(d) => d,
            Err(e) => return Err(ApiError::BadRequest(e.to_string())),
        };
        let d2 = checked_set(m, gen_path(), Value::from_exact_u64(rv))
            .ok()
            .flatten();
        (d1, d2)
    };
    obj.resource_version = rv;
    let snapshot = obj.model.clone();
    if let Some(idx) = stolen {
        shard.log[idx].model = EntryModel::Rollback(inv);
    }
    let enc_hint = combine_hint(shard, oref, cached, [d1, d2]);
    if let Some(rec) = rec {
        tally.wal_ops.push(rec);
    }
    shard_append(
        shard,
        WatchEventKind::Modified,
        oref.clone(),
        snapshot,
        rv,
        enc_hint,
        tally,
    );
    Ok(rv)
}

fn shard_delete(
    shard: &mut Shard,
    oref: &ObjectRef,
    tally: &mut ShardTally,
) -> Result<Object, ApiError> {
    let obj = shard
        .objects
        .get(oref)
        .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
    let model_ptr = Shared::as_ptr(&obj.model);
    let stolen = steal_tail_snapshot(shard, oref, model_ptr);
    let mut obj = shard.objects_mut().remove(oref).expect("probed above");
    // Drop the cached encoded length eagerly: if the oref is recreated a
    // stale hint would poison the size accounting for the new object's
    // events. `shard_append` also evicts on Deleted, but only when a watcher
    // is interested — this covers the watcher-free path too.
    let cached = shard.enc_cache.remove(oref);
    obj.resource_version += 1;
    let rv = obj.resource_version;
    let m = cow_model(&mut obj.model, tally);
    let mut inv = Vec::new();
    let d = stamp_gen_accounted(m, rv, &mut inv);
    if let Some(idx) = stolen {
        shard.log[idx].model = EntryModel::Rollback(inv);
    }
    let enc_hint = combine_hint(shard, oref, cached, [d, Some(0)]);
    if tally.journal {
        tally.wal_ops.push(wal_op_delete(oref));
    }
    shard_append(
        shard,
        WatchEventKind::Deleted,
        oref.clone(),
        obj.model.clone(),
        rv,
        enc_hint,
        tally,
    );
    Ok(obj)
}

fn shard_fast_forward(
    shard: &mut Shard,
    oref: &ObjectRef,
    rv: u64,
    tally: &mut ShardTally,
) -> Result<u64, ApiError> {
    let cached = shard.enc_cache.get(oref).copied();
    let obj = shard
        .objects
        .get(oref)
        .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
    if rv <= obj.resource_version {
        return Err(ApiError::Invalid(format!(
            "fast_forward to {rv} would not advance {} (at {})",
            oref, obj.resource_version
        )));
    }
    let model_ptr = Shared::as_ptr(&obj.model);
    let stolen = steal_tail_snapshot(shard, oref, model_ptr);
    let obj = shard.objects_mut().get_mut(oref).expect("probed above");
    let m = cow_model(&mut obj.model, tally);
    let mut inv = Vec::new();
    let d = stamp_gen_accounted(m, rv, &mut inv);
    obj.resource_version = rv;
    let snapshot = obj.model.clone();
    if let Some(idx) = stolen {
        shard.log[idx].model = EntryModel::Rollback(inv);
    }
    let enc_hint = combine_hint(shard, oref, cached, [d, Some(0)]);
    if tally.journal {
        tally.wal_ops.push(wal_op_ff(oref, rv));
    }
    shard_append(
        shard,
        WatchEventKind::Modified,
        oref.clone(),
        snapshot,
        rv,
        enc_hint,
        tally,
    );
    Ok(rv)
}

/// The parsed `.meta.gen` path (parsed once per process).
fn gen_path() -> &'static Path {
    static GEN: OnceLock<Path> = OnceLock::new();
    GEN.get_or_init(|| ".meta.gen".parse().expect("static path"))
}

/// Keeps `meta.gen` in the model equal to the resource version, so the
/// version number of §3.5 is visible to drivers and the mounter. Encoded
/// via [`Value::from_exact_u64`]: generations beyond 2^53 survive without
/// `f64` rounding, so the mounter's version gate stays exact.
///
/// Public because write-batching controllers simulate pending writes in a
/// local overlay and must stamp exactly like the server will at commit.
pub fn stamp_gen(model: &mut Value, rv: u64) {
    let _ = model.set(gen_path(), Value::from_exact_u64(rv));
}

// ----- Incremental sets ----------------------------------------------------

/// Sets `path` to `value`, returning `Ok(Some(delta))` — the exact change
/// in the model's serialized length — when the write was a straight-line
/// replacement or single-key insert through existing containers.
///
/// Anything else (intermediate-object creation, type mismatches, bad
/// indexes) falls back to [`Value::set`] on a scratch copy: semantics and
/// error values match `set` exactly, except that errors leave the document
/// untouched (which the in-place batch path requires — `set` itself may
/// create intermediates before failing).
fn checked_set(doc: &mut Value, path: &Path, value: Value) -> Result<Option<i64>, ValueError> {
    if fast_set_applies(doc, path) {
        return Ok(Some(fast_set(doc, path, value)));
    }
    let mut next = doc.clone();
    next.set(path, value)?;
    *doc = next;
    Ok(None)
}

/// Can `fast_set` handle this write? True when every segment resolves
/// through an existing container and the final slot either exists or is a
/// fresh object key (the two shapes with exactly computable deltas).
fn fast_set_applies(doc: &Value, path: &Path) -> bool {
    if path.is_empty() {
        return false;
    }
    let segs = path.segments();
    let mut cur = doc;
    for (i, seg) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        match (seg, cur) {
            (Segment::Key(k), Value::Object(map)) => match map.get(k) {
                Some(v) => cur = v,
                None => return last,
            },
            (Segment::Index(ix), Value::Array(arr)) => match arr.get(*ix) {
                Some(v) => cur = v,
                None => return false,
            },
            _ => return false,
        }
    }
    true
}

/// In-place set along a pre-validated path; returns the serialized-length
/// delta. Only call after [`fast_set_applies`] returns true.
fn fast_set(doc: &mut Value, path: &Path, value: Value) -> i64 {
    let segs = path.segments();
    let mut cur = doc;
    for (i, seg) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        match seg {
            Segment::Key(k) => {
                let Value::Object(map) = cur else {
                    unreachable!("fast_set_applies verified the container")
                };
                if last {
                    let added = json::encoded_len(&value) as i64;
                    return match map.insert(k.clone(), value) {
                        Some(old) => added - json::encoded_len(&old) as i64,
                        None => {
                            // `"k":v`, plus a comma unless it is now the
                            // object's only entry.
                            let sep = if map.len() == 1 { 0 } else { 1 };
                            json::string_encoded_len(k) as i64 + 1 + added + sep
                        }
                    };
                }
                cur = map.get_mut(k).expect("fast_set_applies verified the key");
            }
            Segment::Index(ix) => {
                let Value::Array(arr) = cur else {
                    unreachable!("fast_set_applies verified the container")
                };
                if last {
                    let added = json::encoded_len(&value) as i64;
                    let old = std::mem::replace(&mut arr[*ix], value);
                    return added - json::encoded_len(&old) as i64;
                }
                cur = &mut arr[*ix];
            }
        }
    }
    unreachable!("fast_set_applies rejects empty paths")
}

#[cfg(test)]
mod tests {
    // The deprecated shims (`list`/`watch`/`add_selector`/…) stay covered
    // here until they are removed.
    #![allow(deprecated)]
    use super::*;
    use dspace_value::json;

    fn model(kind: &str, name: &str) -> Value {
        model_in(kind, "default", name)
    }

    fn model_in(kind: &str, ns: &str, name: &str) -> Value {
        json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "{ns}"}}, "x": 0}}"#
        ))
        .unwrap()
    }

    fn lamp_ref() -> ObjectRef {
        ObjectRef::default_ns("Lamp", "l1")
    }

    #[test]
    fn create_get_roundtrip() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let obj = s.get(&lamp_ref()).unwrap();
        assert_eq!(obj.resource_version, 1);
        assert_eq!(obj.model.get_path("meta.gen").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn create_twice_fails() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(matches!(
            s.create(lamp_ref(), model("Lamp", "l1")),
            Err(ApiError::AlreadyExists(_))
        ));
    }

    #[test]
    fn update_bumps_version_and_stamps_gen() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let rv = s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert_eq!(rv, 2);
        assert_eq!(
            s.get(&lamp_ref())
                .unwrap()
                .model
                .get_path("meta.gen")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn occ_conflict_detected() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.update(&lamp_ref(), model("Lamp", "l1"), Some(1)).unwrap();
        // A writer that read version 1 now loses.
        let err = s
            .update(&lamp_ref(), model("Lamp", "l1"), Some(1))
            .unwrap_err();
        assert!(matches!(
            err,
            ApiError::Conflict {
                expected: 1,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn delete_then_get_fails() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let gone = s.delete(&lamp_ref()).unwrap();
        // The delete is itself a version: 1 (create) -> 2 (delete).
        assert_eq!(gone.resource_version, 2);
        assert!(s.get(&lamp_ref()).is_none());
        assert!(matches!(s.delete(&lamp_ref()), Err(ApiError::NotFound(_))));
    }

    #[test]
    fn delete_event_orders_after_preceding_modify() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(Some("Lamp"));
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap(); // rv 2
        s.delete(&lamp_ref()).unwrap(); // rv 3
        let evs = s.poll(w);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, WatchEventKind::Modified);
        assert_eq!(evs[1].kind, WatchEventKind::Deleted);
        assert!(
            evs[1].resource_version > evs[0].resource_version,
            "delete must be orderable after the preceding modify"
        );
        assert_eq!(evs[1].resource_version, 3);
        // The event model's gen mirrors the bumped version.
        assert_eq!(
            evs[1].model.get_path("meta.gen").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn watch_only_sees_future_events() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(None);
        assert!(s.poll(w).is_empty());
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, WatchEventKind::Modified);
        assert_eq!(evs[0].resource_version, 2);
        // Drained.
        assert!(s.poll(w).is_empty());
    }

    #[test]
    fn watch_kind_filter() {
        let mut s = Store::new();
        let w = s.watch(Some("Room"));
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.create(ObjectRef::default_ns("Room", "r1"), model("Room", "r1"))
            .unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref.kind, "Room");
    }

    #[test]
    fn watch_object_selector_filters_exactly() {
        let mut s = Store::new();
        let l1 = lamp_ref();
        let l2 = ObjectRef::default_ns("Lamp", "l2");
        s.create(l1.clone(), model("Lamp", "l1")).unwrap();
        s.create(l2.clone(), model("Lamp", "l2")).unwrap();
        let w = s.watch_selector(WatchSelector::Object(l1.clone()));
        s.update(&l2, model("Lamp", "l2"), None).unwrap();
        assert!(
            !s.has_pending(w),
            "same-kind sibling must not wake the watcher"
        );
        s.update(&l1, model("Lamp", "l1"), None).unwrap();
        assert!(s.has_pending(w));
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref, l1);
    }

    #[test]
    fn watch_ordering_is_gap_free() {
        // The §3.5 guarantee: a watcher sees every version in order.
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(Some("Lamp"));
        for _ in 0..50 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        let evs = s.poll(w);
        let versions: Vec<u64> = evs.iter().map(|e| e.resource_version).collect();
        assert_eq!(versions, (2..=51).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_watchers_independent_cursors() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w1 = s.watch(None);
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let w2 = s.watch(None);
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert_eq!(s.poll(w1).len(), 2);
        assert_eq!(s.poll(w2).len(), 1);
    }

    #[test]
    fn cancelled_watch_returns_nothing() {
        let mut s = Store::new();
        let w = s.watch(None);
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.cancel_watch(w);
        assert!(s.poll(w).is_empty());
        assert!(!s.has_pending(w));
    }

    #[test]
    fn pending_bytes_tracks_serialized_payloads() {
        let mut s = Store::new();
        let w = s.watch(Some("Lamp"));
        assert_eq!(s.pending_bytes(w), 0);
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let one = s.pending_bytes(w);
        let stored = s.get(&lamp_ref()).unwrap().model.clone();
        assert_eq!(one, dspace_value::json::encoded_len(&stored) as u64);
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert!(s.pending_bytes(w) > one, "second event adds bytes");
        s.poll(w);
        assert_eq!(s.pending_bytes(w), 0, "poll drains the byte counter");
        // An uninterested watcher is never charged.
        let other = s.watch(Some("Room"));
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert_eq!(s.pending_bytes(other), 0);
    }

    #[test]
    fn fast_forward_jumps_version_and_stamps_exact_gen() {
        const BIG: u64 = (1 << 53) + 7;
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(Some("Lamp"));
        assert_eq!(s.fast_forward(&lamp_ref(), BIG).unwrap(), BIG);
        let obj = s.get(&lamp_ref()).unwrap();
        assert_eq!(obj.resource_version, BIG);
        // Past 2^53 the generation is stored exactly (string-encoded).
        assert_eq!(
            obj.model.get_path("meta.gen").and_then(Value::as_exact_u64),
            Some(BIG)
        );
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].resource_version, BIG);
        // Subsequent normal updates keep counting from the new version.
        assert_eq!(
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap(),
            BIG + 1
        );
        // Regression can't rewind.
        assert!(s.fast_forward(&lamp_ref(), 5).is_err());
    }

    #[test]
    fn has_pending_respects_filter() {
        let mut s = Store::new();
        let w = s.watch(Some("Room"));
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(!s.has_pending(w));
        s.create(ObjectRef::default_ns("Room", "r1"), model("Room", "r1"))
            .unwrap();
        assert!(s.has_pending(w));
    }

    #[test]
    fn log_is_compacted_to_watcher_lag() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let fast = s.watch(Some("Lamp"));
        let slow = s.watch(Some("Lamp"));
        for i in 0..100 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
            // The fast watcher drains every 10 events; the slow one lags.
            if i % 10 == 9 {
                assert_eq!(s.poll(fast).len(), 10);
            }
        }
        // The slow watcher holds the whole stream.
        assert_eq!(s.log_len(), 100);
        assert_eq!(s.poll(slow).len(), 100);
        // Everyone drained: the log is empty however many mutations ran.
        assert_eq!(s.log_len(), 0);
        assert!(s.watch_stats().events_compacted >= 100);
    }

    #[test]
    fn log_reclaimed_with_no_watchers() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        for _ in 0..50 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        assert_eq!(s.log_len(), 0, "no watcher, nothing to hold");
        assert_eq!(s.revision(), 51, "revision still counts all commits");
    }

    #[test]
    fn cancel_releases_compaction_hold() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let laggard = s.watch(Some("Lamp"));
        for _ in 0..30 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        assert_eq!(s.log_len(), 30);
        s.cancel_watch(laggard);
        assert_eq!(s.log_len(), 0, "cancel must release the hold");
    }

    #[test]
    fn delivery_shares_snapshots_across_watchers() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w1 = s.watch(Some("Lamp"));
        let w2 = s.watch(Some("Lamp"));
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let e1 = s.poll(w1);
        let e2 = s.poll(w2);
        assert!(
            Shared::ptr_eq(&e1[0].model, &e2[0].model),
            "watchers must share one snapshot, not deep copies"
        );
    }

    // ----- Namespace shards ---------------------------------------------

    #[test]
    fn namespace_shards_isolate_watchers() {
        let mut s = Store::new();
        let a = ObjectRef::new("Lamp", "ns-a", "l1");
        let b = ObjectRef::new("Lamp", "ns-b", "l1");
        s.create(a.clone(), model_in("Lamp", "ns-a", "l1")).unwrap();
        s.create(b.clone(), model_in("Lamp", "ns-b", "l1")).unwrap();
        let wa = s.watch_selector(WatchSelector::KindInNamespace {
            kind: "Lamp".into(),
            namespace: "ns-a".into(),
        });
        // A burst entirely inside ns-b never touches the ns-a watcher.
        for _ in 0..100 {
            s.update(&b, model_in("Lamp", "ns-b", "l1"), None).unwrap();
        }
        assert!(!s.has_pending(wa), "cross-namespace burst leaked a wake");
        assert!(s.poll(wa).is_empty());
        s.update(&a, model_in("Lamp", "ns-a", "l1"), None).unwrap();
        let evs = s.poll(wa);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref, a);
    }

    #[test]
    fn shard_revisions_are_independent_and_gap_free() {
        let mut s = Store::new();
        let a = ObjectRef::new("Lamp", "ns-a", "l1");
        let b = ObjectRef::new("Lamp", "ns-b", "l1");
        s.create(a.clone(), model_in("Lamp", "ns-a", "l1")).unwrap();
        s.create(b.clone(), model_in("Lamp", "ns-b", "l1")).unwrap();
        let w = s.watch(Some("Lamp")); // global: joined to both shards
        for _ in 0..5 {
            s.update(&a, model_in("Lamp", "ns-a", "l1"), None).unwrap();
            s.update(&b, model_in("Lamp", "ns-b", "l1"), None).unwrap();
        }
        let evs = s.poll(w);
        assert_eq!(evs.len(), 10);
        // Each shard's sub-stream is consecutive from revision 2 (the
        // create was revision 1, before the watch).
        for ns in ["ns-a", "ns-b"] {
            let revs: Vec<u64> = evs
                .iter()
                .filter(|e| e.oref.namespace == ns)
                .map(|e| e.revision)
                .collect();
            assert_eq!(revs, (2..=6).collect::<Vec<_>>(), "shard {ns}");
        }
        // Global revision still totals all commits.
        assert_eq!(s.revision(), 12);
    }

    #[test]
    fn global_watcher_joins_future_shards() {
        let mut s = Store::new();
        let w = s.watch(None);
        let late = ObjectRef::new("Lamp", "born-later", "l1");
        s.create(late.clone(), model_in("Lamp", "born-later", "l1"))
            .unwrap();
        assert!(s.has_pending(w));
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref, late);
        assert_eq!(evs[0].revision, 1, "fresh shard starts at revision 1");
    }

    #[test]
    fn laggard_in_one_namespace_does_not_pin_other_shards() {
        let mut s = Store::new();
        let a = ObjectRef::new("Lamp", "ns-a", "l1");
        let b = ObjectRef::new("Lamp", "ns-b", "l1");
        s.create(a.clone(), model_in("Lamp", "ns-a", "l1")).unwrap();
        s.create(b.clone(), model_in("Lamp", "ns-b", "l1")).unwrap();
        let _laggard = s.watch_selector(WatchSelector::KindInNamespace {
            kind: "Lamp".into(),
            namespace: "ns-a".into(),
        });
        for _ in 0..20 {
            s.update(&a, model_in("Lamp", "ns-a", "l1"), None).unwrap();
            s.update(&b, model_in("Lamp", "ns-b", "l1"), None).unwrap();
        }
        assert_eq!(s.shard_log_len("ns-a"), 20, "laggard holds its shard");
        assert_eq!(s.shard_log_len("ns-b"), 0, "other shard compacts freely");
    }

    #[test]
    fn multi_selector_watch_delivers_once() {
        let mut s = Store::new();
        let l1 = lamp_ref();
        s.create(l1.clone(), model("Lamp", "l1")).unwrap();
        // Kind and Object selectors both match l1's events.
        let w = s.watch_selectors(vec![
            WatchSelector::Kind("Lamp".into()),
            WatchSelector::Object(l1.clone()),
        ]);
        s.update(&l1, model("Lamp", "l1"), None).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1, "overlapping selectors must not duplicate");
        assert!(!s.has_pending(w));
    }

    #[test]
    fn add_selector_widens_subscription() {
        let mut s = Store::new();
        let w = s.watch_selectors(vec![]);
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(!s.has_pending(w), "empty subscription never fires");
        assert!(s.add_selector(
            w,
            WatchSelector::KindInNamespace {
                kind: "Lamp".into(),
                namespace: "default".into(),
            }
        ));
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        // Unknown ids are reported, not panicked on.
        assert!(!s.add_selector(WatchId(999), WatchSelector::All));
    }

    // ----- Coalescing ----------------------------------------------------

    #[test]
    fn coalesced_poll_collapses_burst_to_newest_snapshot() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch_selector(WatchSelector::Object(lamp_ref()));
        for _ in 0..100 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        let evs = s.poll_coalesced(w);
        assert_eq!(evs.len(), 1, "one burst, one delivery");
        assert_eq!(evs[0].coalesced, 100, "every raw event accounted for");
        assert_eq!(evs[0].event.resource_version, 101, "newest snapshot");
        assert_eq!(
            evs[0].event.model.get_path("meta.gen").unwrap().as_f64(),
            Some(101.0)
        );
        let st = s.watch_stats();
        assert_eq!(st.coalesced_deliveries, 1);
        assert_eq!(st.events_coalesced, 99);
        assert_eq!(s.log_len(), 0, "drained and compacted");
    }

    #[test]
    fn coalesced_poll_keeps_first_occurrence_order_across_objects() {
        let mut s = Store::new();
        let l1 = lamp_ref();
        let l2 = ObjectRef::default_ns("Lamp", "l2");
        s.create(l1.clone(), model("Lamp", "l1")).unwrap();
        s.create(l2.clone(), model("Lamp", "l2")).unwrap();
        let w = s.watch(Some("Lamp"));
        s.update(&l2, model("Lamp", "l2"), None).unwrap();
        s.update(&l1, model("Lamp", "l1"), None).unwrap();
        s.update(&l2, model("Lamp", "l2"), None).unwrap();
        let evs = s.poll_coalesced(w);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].event.oref, l2, "l2 changed first");
        assert_eq!(evs[0].coalesced, 2);
        assert_eq!(evs[0].event.resource_version, 3, "newest l2 state");
        assert_eq!(evs[1].event.oref, l1);
        assert_eq!(evs[1].coalesced, 1);
    }

    #[test]
    fn coalesced_poll_absorbs_delete_as_newest_state() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(Some("Lamp"));
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        s.delete(&lamp_ref()).unwrap();
        let evs = s.poll_coalesced(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].coalesced, 2);
        assert_eq!(evs[0].event.kind, WatchEventKind::Deleted);
    }

    /// Regression: a watcher cancelled while a namespace deletion is
    /// draining (i.e. during the compaction window its selectors were
    /// holding open) must leave every accounting total at zero — no wrapped
    /// `total_pending_bytes` poisoning `pending_bytes()`.
    #[test]
    fn cancel_during_namespace_drain_keeps_totals_sane() {
        let mut s = Store::new();
        let oref = ObjectRef::new("Lamp", "room", "l1");
        s.create(oref.clone(), model_in("Lamp", "room", "l1"))
            .unwrap();
        // A scoped watcher homed in the retiring namespace plus a global
        // one: cancellation exercises both deregistration paths.
        let scoped = s.watch_selector(WatchSelector::KindInNamespace {
            kind: "Lamp".into(),
            namespace: "room".into(),
        });
        let global = s.watch(None);
        s.update(&oref, model_in("Lamp", "room", "l1"), None)
            .unwrap();
        assert!(s.pending_bytes(scoped) > 0);
        assert!(s.pending_bytes(global) > 0);
        // Begin the namespace deletion: scoped selectors are cancelled and
        // refunded; the global watcher's counts are re-settled.
        let victims = s.begin_delete_namespace("room");
        assert_eq!(victims, vec![oref.clone()]);
        assert_eq!(
            s.pending_bytes(scoped),
            0,
            "refund must zero the homed watcher, not wrap it"
        );
        for v in &victims {
            s.delete(v).unwrap();
        }
        // Cancel the lagging global watcher mid-drain: its compaction hold
        // is released and the retiring shard can be reclaimed.
        s.cancel_watch(global);
        assert_eq!(s.pending_bytes(global), 0);
        s.finish_delete_namespace("room");
        assert_eq!(s.shard_log_len("room"), 0, "hold released, log drained");
        assert_eq!(s.shard_count(), 0, "retiring shard dropped");
        // The survivor still works.
        assert_eq!(s.pending_bytes(scoped), 0);
        assert!(s.poll(scoped).is_empty());
    }

    /// Regression: re-settling a global watcher when a namespace-homed
    /// selector is cancelled must recount, not subtract blindly.
    #[test]
    fn mixed_selector_watcher_resettles_on_namespace_delete() {
        let mut s = Store::new();
        let room = ObjectRef::new("Lamp", "room", "l1");
        let hall = ObjectRef::new("Lamp", "hall", "l2");
        s.create(room.clone(), model_in("Lamp", "room", "l1"))
            .unwrap();
        s.create(hall.clone(), model_in("Lamp", "hall", "l2"))
            .unwrap();
        // One watcher, two selectors: global Kind plus a scoped duplicate
        // homed in "room" (refcount 2 in that shard).
        let w = s.watch(Some("Lamp"));
        s.add_selector(
            w,
            WatchSelector::KindInNamespace {
                kind: "Lamp".into(),
                namespace: "room".into(),
            },
        );
        s.update(&room, model_in("Lamp", "room", "l1"), None)
            .unwrap();
        s.update(&hall, model_in("Lamp", "hall", "l2"), None)
            .unwrap();
        let before = s.pending_bytes(w);
        assert!(before > 0);
        // Deleting "room" cancels the scoped selector; the watcher stays a
        // member through Kind("Lamp") and its counts are re-settled.
        s.delete_namespace("room");
        let evs = s.poll(w);
        // Pre-deletion updates plus the terminal Deleted event, all exactly
        // once: no gaps, no duplicates.
        let deleted: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == WatchEventKind::Deleted)
            .collect();
        assert_eq!(deleted.len(), 1);
        assert_eq!(deleted[0].oref, room);
        assert_eq!(
            evs.iter().filter(|e| e.oref == hall).count(),
            1,
            "hall update delivered once"
        );
        assert_eq!(s.pending_bytes(w), 0, "fully drained, nothing wrapped");
    }

    /// Regression: a cached encoded length must not survive object
    /// deletion — on recreate, the stale hint would corrupt byte
    /// accounting for the new object's events.
    #[test]
    fn enc_cache_evicted_on_delete_then_recreate() {
        let mut s = Store::new();
        // Big model first so a stale hint would visibly overcharge.
        let big = json::parse(&format!(
            r#"{{"meta": {{"kind": "Lamp", "name": "l1", "namespace": "default"}}, "blob": "{}"}}"#,
            "x".repeat(4096)
        ))
        .unwrap();
        s.create(lamp_ref(), big).unwrap();
        let w = s.watch(Some("Lamp"));
        // Touch it so the enc_cache holds the big length, then delete with
        // no poll in between (the watcher-free eviction path in
        // shard_delete is the one under test for serial deletes too).
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        s.delete(&lamp_ref()).unwrap();
        s.poll(w);
        assert_eq!(s.pending_bytes(w), 0);
        // Recreate under the same oref with a small model: pending bytes
        // must reflect the small model, not the cached big one.
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let small = s.pending_bytes(w);
        assert!(small > 0);
        assert!(
            small < 256,
            "stale enc_cache hint leaked across delete: {small} bytes"
        );
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(
            small,
            json::encoded_len(&evs[0].model) as u64,
            "pending bytes must equal the recreated model's encoding"
        );
    }

    /// Same leak, namespace-GC path: delete_namespace drops the whole
    /// shard, so recreating the namespace must start with a clean cache.
    #[test]
    fn enc_cache_cleared_by_namespace_delete() {
        let mut s = Store::new();
        let oref = ObjectRef::new("Lamp", "room", "l1");
        let big = json::parse(&format!(
            r#"{{"meta": {{"kind": "Lamp", "name": "l1", "namespace": "room"}}, "blob": "{}"}}"#,
            "y".repeat(4096)
        ))
        .unwrap();
        s.create(oref.clone(), big).unwrap();
        s.delete_namespace("room");
        assert_eq!(s.shard_count(), 0, "shard dropped with no watchers");
        let w = s.watch(None);
        s.create(oref.clone(), model_in("Lamp", "room", "l1"))
            .unwrap();
        let small = s.pending_bytes(w);
        assert!(
            small > 0 && small < 256,
            "fresh shard, fresh cache: {small}"
        );
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(small, json::encoded_len(&evs[0].model) as u64);
    }

    /// The tentpole guarantee for predicate watches: a commit that does not
    /// match the predicate is filtered at commit time against the computed
    /// index delta — it never goes pending, not even transiently. Pending
    /// counters and byte accounting stay at zero.
    #[test]
    fn predicate_watch_never_pends_non_matching_commits() {
        let mut s = Store::new();
        let q = Query::kind("Lamp")
            .in_ns("default")
            .filter(".x > 5")
            .unwrap();
        let w = s.watch_query(&q).unwrap();

        // Non-matching create (x = 0).
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(!s.has_pending(w), "non-matching commit went pending");
        assert_eq!(s.pending_bytes(w), 0);

        // Matching update: delivered.
        let mut m = model("Lamp", "l1");
        m.set(&".x".parse().unwrap(), 9.0.into()).unwrap();
        s.update(&lamp_ref(), m, None).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref, lamp_ref());

        // Transition out (9 -> 2): each event is judged by its own model —
        // stateless semantics — so the exit commit is not delivered either.
        let mut m = model("Lamp", "l1");
        m.set(&".x".parse().unwrap(), 2.0.into()).unwrap();
        s.update(&lamp_ref(), m, None).unwrap();
        assert!(!s.has_pending(w));
        assert_eq!(s.pending_bytes(w), 0);

        // Deletes are judged by the final model: x = 2 does not match...
        s.delete(&lamp_ref()).unwrap();
        assert!(!s.has_pending(w));
        assert_eq!(s.pending_bytes(w), 0);

        // ...while a matching final model does.
        let l2 = ObjectRef::default_ns("Lamp", "l2");
        let mut m = model("Lamp", "l2");
        m.set(&".x".parse().unwrap(), 7.0.into()).unwrap();
        s.create(l2.clone(), m).unwrap();
        s.delete(&l2).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].kind, WatchEventKind::Deleted);
        s.indexes_consistent().unwrap();
    }

    /// Predicate watches compose with other selectors on one subscription
    /// and detach cleanly: narrowing releases the shard registration and
    /// re-settles pending counts for the selectors that remain.
    #[test]
    fn predicate_selector_attaches_and_detaches() {
        let mut s = Store::new();
        let all = Query::kind("Lamp").in_ns("default");
        let hot = all.clone().filter(".x > 5").unwrap();
        let w = s.watch_query(&hot).unwrap();
        assert!(s.extend_watch(w, &all).unwrap());

        let mut m = model("Lamp", "l1");
        m.set(&".x".parse().unwrap(), 1.0.into()).unwrap();
        s.create(lamp_ref(), m).unwrap();
        // The kind selector matches even though the predicate does not.
        assert!(s.has_pending(w));

        // Dropping the kind selector re-settles pending to the predicate's
        // view: x = 1 does not match, so nothing remains pending.
        assert!(s.narrow_watch(w, &all).unwrap());
        assert!(!s.has_pending(w), "recount kept a non-matching event");
        assert_eq!(s.pending_bytes(w), 0);

        // Dropping a selector that is not attached reports false.
        assert!(!s.narrow_watch(w, &all).unwrap());
        // The predicate selector still works.
        let mut m = model("Lamp", "l1");
        m.set(&".x".parse().unwrap(), 8.0.into()).unwrap();
        s.update(&lamp_ref(), m, None).unwrap();
        assert_eq!(s.poll(w).len(), 1);
    }
}

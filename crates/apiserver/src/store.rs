//! Object storage and the Watch event log.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use dspace_value::Value;

use crate::error::ApiError;
use crate::object::{Object, ObjectRef};

/// What happened to an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// Object created.
    Added,
    /// Object updated.
    Modified,
    /// Object deleted.
    Deleted,
}

/// One entry of the totally ordered event log.
///
/// The model snapshot is reference-counted: a mutation materializes the
/// snapshot once, and every watcher that receives the event shares it.
/// Cloning a `WatchEvent` is O(1) in the model size.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Global, strictly increasing revision of the whole store.
    pub revision: u64,
    /// What happened.
    pub kind: WatchEventKind,
    /// The object affected.
    pub oref: ObjectRef,
    /// Model snapshot after the change (for deletes: the last model).
    pub model: Rc<Value>,
    /// The object's resource version after the change.
    pub resource_version: u64,
}

/// Handle to a watch subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WatchId(pub u64);

/// What a watch subscription is interested in.
///
/// Scoped subscriptions are what keep the notification fan-out linear: a
/// digi driver subscribes to exactly its own model instead of receiving
/// (and discarding) every other digi's events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchSelector {
    /// Every object (controllers such as the mounter need the full view).
    All,
    /// Objects of one kind.
    Kind(String),
    /// One exact object.
    Object(ObjectRef),
}

impl WatchSelector {
    /// Returns `true` if events about `oref` belong to this subscription.
    pub fn matches(&self, oref: &ObjectRef) -> bool {
        match self {
            WatchSelector::All => true,
            WatchSelector::Kind(k) => *k == oref.kind,
            WatchSelector::Object(r) => r == oref,
        }
    }
}

#[derive(Debug, Clone)]
struct Watcher {
    selector: WatchSelector,
    /// Revision of the next event this watcher has yet to examine: all
    /// events with `revision < cursor` are delivered or filtered out.
    cursor: u64,
    /// Number of undelivered events matching the selector. Maintained at
    /// append time, so `has_pending` is O(1) and `poll` never scans an
    /// empty tail.
    pending: u64,
}

/// Counters describing watch/notification traffic (bench + diagnostics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WatchStats {
    /// Events ever committed to the log. Each append materializes exactly
    /// one shared model snapshot, regardless of watcher count.
    pub events_appended: u64,
    /// Events handed out by `poll` across all watchers (each delivery
    /// shares the snapshot; no model deep-clone).
    pub events_delivered: u64,
    /// Log entries reclaimed by compaction.
    pub events_compacted: u64,
    /// High-water mark of the in-memory log length. Bounded by the lag of
    /// the slowest live watcher, not by total mutation count.
    pub peak_log_len: usize,
}

/// The persistent store: objects plus the event log and watchers.
///
/// This is the etcd analogue. The event log is the linearization point:
/// every mutation appends exactly one event, and watchers replay the log
/// from their cursor — which yields the ordered, gap-free delivery
/// guarantee that §3.5 of the paper requires for intent reconciliation,
/// per filtered stream.
///
/// The log is compacted: entries below every live watcher's hold point
/// are dropped, so memory is bounded by watcher lag rather than by the
/// lifetime mutation count.
#[derive(Debug, Default)]
pub struct Store {
    objects: BTreeMap<ObjectRef, Object>,
    /// Tail of the event log still needed by at least one watcher. The
    /// first entry's revision is `committed - log.len() + 1`.
    log: VecDeque<WatchEvent>,
    /// Total events ever committed (== the revision of the newest event).
    committed: u64,
    watchers: BTreeMap<WatchId, Watcher>,
    next_watch_id: u64,
    /// Selector indexes: which watchers to notify per event, without
    /// touching unrelated subscriptions.
    all_watchers: BTreeSet<WatchId>,
    kind_watchers: BTreeMap<String, BTreeSet<WatchId>>,
    object_watchers: BTreeMap<ObjectRef, BTreeSet<WatchId>>,
    stats: WatchStats,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Returns the current global revision (number of committed events).
    pub fn revision(&self) -> u64 {
        self.committed
    }

    /// Returns the stored object, if present.
    pub fn get(&self, oref: &ObjectRef) -> Option<&Object> {
        self.objects.get(oref)
    }

    /// Lists objects of `kind` (sorted by namespace/name).
    pub fn list(&self, kind: &str) -> Vec<&Object> {
        self.objects
            .iter()
            .filter(|(r, _)| r.kind == kind)
            .map(|(_, o)| o)
            .collect()
    }

    /// Lists every object.
    pub fn list_all(&self) -> Vec<&Object> {
        self.objects.values().collect()
    }

    /// Inserts a new object, assigning resource version 1.
    pub fn create(&mut self, oref: ObjectRef, mut model: Value) -> Result<&Object, ApiError> {
        if self.objects.contains_key(&oref) {
            return Err(ApiError::AlreadyExists(oref));
        }
        let rv = 1;
        stamp_gen(&mut model, rv);
        let shared = Rc::new(model);
        let obj = Object {
            oref: oref.clone(),
            model: (*shared).clone(),
            resource_version: rv,
        };
        self.objects.insert(oref.clone(), obj);
        self.append(WatchEventKind::Added, oref.clone(), shared, rv);
        Ok(self.objects.get(&oref).expect("just inserted"))
    }

    /// Replaces an object's model.
    ///
    /// `expected_rv` implements optimistic concurrency: when `Some`, the
    /// write only commits if it matches the stored version; on mismatch the
    /// caller gets [`ApiError::Conflict`] and must re-read and retry.
    pub fn update(
        &mut self,
        oref: &ObjectRef,
        mut model: Value,
        expected_rv: Option<u64>,
    ) -> Result<u64, ApiError> {
        let obj = self
            .objects
            .get_mut(oref)
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        if let Some(expected) = expected_rv {
            if expected != obj.resource_version {
                return Err(ApiError::Conflict {
                    oref: oref.clone(),
                    expected,
                    actual: obj.resource_version,
                });
            }
        }
        let rv = obj.resource_version + 1;
        stamp_gen(&mut model, rv);
        let shared = Rc::new(model);
        obj.model = (*shared).clone();
        obj.resource_version = rv;
        self.append(WatchEventKind::Modified, oref.clone(), shared, rv);
        Ok(rv)
    }

    /// Removes an object, returning its final state.
    ///
    /// The deletion is itself a model change: the returned object and the
    /// `Deleted` event carry a *bumped* resource version, so watchers can
    /// order the delete against the modifications that preceded it.
    pub fn delete(&mut self, oref: &ObjectRef) -> Result<Object, ApiError> {
        let mut obj = self
            .objects
            .remove(oref)
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        obj.resource_version += 1;
        stamp_gen(&mut obj.model, obj.resource_version);
        self.append(
            WatchEventKind::Deleted,
            oref.clone(),
            Rc::new(obj.model.clone()),
            obj.resource_version,
        );
        Ok(obj)
    }

    /// Opens a watch over `selector`. The cursor starts at the current log
    /// tail: only *future* events are delivered.
    pub fn watch_selector(&mut self, selector: WatchSelector) -> WatchId {
        let id = WatchId(self.next_watch_id);
        self.next_watch_id += 1;
        match &selector {
            WatchSelector::All => {
                self.all_watchers.insert(id);
            }
            WatchSelector::Kind(k) => {
                self.kind_watchers.entry(k.clone()).or_default().insert(id);
            }
            WatchSelector::Object(r) => {
                self.object_watchers
                    .entry(r.clone())
                    .or_default()
                    .insert(id);
            }
        }
        self.watchers.insert(
            id,
            Watcher {
                selector,
                cursor: self.committed + 1,
                pending: 0,
            },
        );
        id
    }

    /// Opens a watch by kind. `kind = None` watches everything.
    pub fn watch(&mut self, kind: Option<&str>) -> WatchId {
        self.watch_selector(match kind {
            None => WatchSelector::All,
            Some(k) => WatchSelector::Kind(k.to_string()),
        })
    }

    /// Drains pending events for a watcher, in revision order.
    ///
    /// Unknown watch ids return an empty vector (the subscription may have
    /// been cancelled).
    pub fn poll(&mut self, id: WatchId) -> Vec<WatchEvent> {
        let Some(w) = self.watchers.get_mut(&id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if w.pending > 0 {
            let first_rev = self.committed - self.log.len() as u64 + 1;
            // Compaction never reclaims past a watcher with pending
            // events, so the scan window is fully resident.
            let start = (w.cursor.max(first_rev) - first_rev) as usize;
            for ev in self.log.iter().skip(start) {
                if w.selector.matches(&ev.oref) {
                    out.push(ev.clone());
                }
            }
            debug_assert_eq!(out.len() as u64, w.pending, "pending counter out of sync");
            w.pending = 0;
        }
        w.cursor = self.committed + 1;
        self.stats.events_delivered += out.len() as u64;
        self.compact();
        out
    }

    /// Returns `true` if the watcher has undelivered events. O(1): the
    /// per-watcher counter is maintained at append time.
    pub fn has_pending(&self, id: WatchId) -> bool {
        self.watchers
            .get(&id)
            .map(|w| w.pending > 0)
            .unwrap_or(false)
    }

    /// Cancels a watch subscription, releasing its compaction hold.
    pub fn cancel_watch(&mut self, id: WatchId) {
        if let Some(w) = self.watchers.remove(&id) {
            match &w.selector {
                WatchSelector::All => {
                    self.all_watchers.remove(&id);
                }
                WatchSelector::Kind(k) => {
                    if let Some(set) = self.kind_watchers.get_mut(k) {
                        set.remove(&id);
                        if set.is_empty() {
                            self.kind_watchers.remove(k);
                        }
                    }
                }
                WatchSelector::Object(r) => {
                    if let Some(set) = self.object_watchers.get_mut(r) {
                        set.remove(&id);
                        if set.is_empty() {
                            self.object_watchers.remove(r);
                        }
                    }
                }
            }
            self.compact();
        }
    }

    /// Current in-memory log length (bounded by live watcher lag).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Watch/notification traffic counters.
    pub fn watch_stats(&self) -> WatchStats {
        self.stats
    }

    fn append(&mut self, kind: WatchEventKind, oref: ObjectRef, model: Rc<Value>, rv: u64) {
        self.committed += 1;
        self.stats.events_appended += 1;
        // Bump pending on exactly the watchers whose selector matches;
        // unrelated subscriptions are never touched.
        let watchers = &mut self.watchers;
        let mut bump = |ids: &BTreeSet<WatchId>| {
            for id in ids {
                if let Some(w) = watchers.get_mut(id) {
                    w.pending += 1;
                }
            }
        };
        bump(&self.all_watchers);
        if let Some(ids) = self.kind_watchers.get(&oref.kind) {
            bump(ids);
        }
        if let Some(ids) = self.object_watchers.get(&oref) {
            bump(ids);
        }
        self.log.push_back(WatchEvent {
            revision: self.committed,
            kind,
            oref,
            model,
            resource_version: rv,
        });
        self.stats.peak_log_len = self.stats.peak_log_len.max(self.log.len());
        // With no live watcher holding the tail, reclaim eagerly.
        if self.watchers.is_empty() {
            self.compact();
        }
    }

    /// Drops log entries no watcher can still need. A watcher with
    /// pending events holds everything from its cursor; a fully drained
    /// watcher holds nothing (events it skipped did not match it, or it
    /// would have `pending > 0`).
    fn compact(&mut self) {
        let tail = self.committed + 1;
        let min_hold = self
            .watchers
            .values()
            .map(|w| if w.pending == 0 { tail } else { w.cursor })
            .min()
            .unwrap_or(tail);
        let mut first_rev = self.committed - self.log.len() as u64 + 1;
        while first_rev < min_hold && !self.log.is_empty() {
            self.log.pop_front();
            self.stats.events_compacted += 1;
            first_rev += 1;
        }
    }
}

/// Keeps `meta.gen` in the model equal to the resource version, so the
/// version number of §3.5 is visible to drivers and the mounter.
fn stamp_gen(model: &mut Value, rv: u64) {
    let _ = model.set(
        &".meta.gen".parse().expect("static path"),
        Value::from(rv as f64),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::json;

    fn model(kind: &str, name: &str) -> Value {
        json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "default"}}, "x": 0}}"#
        ))
        .unwrap()
    }

    fn lamp_ref() -> ObjectRef {
        ObjectRef::default_ns("Lamp", "l1")
    }

    #[test]
    fn create_get_roundtrip() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let obj = s.get(&lamp_ref()).unwrap();
        assert_eq!(obj.resource_version, 1);
        assert_eq!(obj.model.get_path("meta.gen").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn create_twice_fails() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(matches!(
            s.create(lamp_ref(), model("Lamp", "l1")),
            Err(ApiError::AlreadyExists(_))
        ));
    }

    #[test]
    fn update_bumps_version_and_stamps_gen() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let rv = s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert_eq!(rv, 2);
        assert_eq!(
            s.get(&lamp_ref())
                .unwrap()
                .model
                .get_path("meta.gen")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn occ_conflict_detected() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.update(&lamp_ref(), model("Lamp", "l1"), Some(1)).unwrap();
        // A writer that read version 1 now loses.
        let err = s
            .update(&lamp_ref(), model("Lamp", "l1"), Some(1))
            .unwrap_err();
        assert!(matches!(
            err,
            ApiError::Conflict {
                expected: 1,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn delete_then_get_fails() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let gone = s.delete(&lamp_ref()).unwrap();
        // The delete is itself a version: 1 (create) -> 2 (delete).
        assert_eq!(gone.resource_version, 2);
        assert!(s.get(&lamp_ref()).is_none());
        assert!(matches!(s.delete(&lamp_ref()), Err(ApiError::NotFound(_))));
    }

    #[test]
    fn delete_event_orders_after_preceding_modify() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(Some("Lamp"));
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap(); // rv 2
        s.delete(&lamp_ref()).unwrap(); // rv 3
        let evs = s.poll(w);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, WatchEventKind::Modified);
        assert_eq!(evs[1].kind, WatchEventKind::Deleted);
        assert!(
            evs[1].resource_version > evs[0].resource_version,
            "delete must be orderable after the preceding modify"
        );
        assert_eq!(evs[1].resource_version, 3);
        // The event model's gen mirrors the bumped version.
        assert_eq!(
            evs[1].model.get_path("meta.gen").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn watch_only_sees_future_events() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(None);
        assert!(s.poll(w).is_empty());
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, WatchEventKind::Modified);
        assert_eq!(evs[0].resource_version, 2);
        // Drained.
        assert!(s.poll(w).is_empty());
    }

    #[test]
    fn watch_kind_filter() {
        let mut s = Store::new();
        let w = s.watch(Some("Room"));
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.create(ObjectRef::default_ns("Room", "r1"), model("Room", "r1"))
            .unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref.kind, "Room");
    }

    #[test]
    fn watch_object_selector_filters_exactly() {
        let mut s = Store::new();
        let l1 = lamp_ref();
        let l2 = ObjectRef::default_ns("Lamp", "l2");
        s.create(l1.clone(), model("Lamp", "l1")).unwrap();
        s.create(l2.clone(), model("Lamp", "l2")).unwrap();
        let w = s.watch_selector(WatchSelector::Object(l1.clone()));
        s.update(&l2, model("Lamp", "l2"), None).unwrap();
        assert!(
            !s.has_pending(w),
            "same-kind sibling must not wake the watcher"
        );
        s.update(&l1, model("Lamp", "l1"), None).unwrap();
        assert!(s.has_pending(w));
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref, l1);
    }

    #[test]
    fn watch_ordering_is_gap_free() {
        // The §3.5 guarantee: a watcher sees every version in order.
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(Some("Lamp"));
        for _ in 0..50 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        let evs = s.poll(w);
        let versions: Vec<u64> = evs.iter().map(|e| e.resource_version).collect();
        assert_eq!(versions, (2..=51).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_watchers_independent_cursors() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w1 = s.watch(None);
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let w2 = s.watch(None);
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert_eq!(s.poll(w1).len(), 2);
        assert_eq!(s.poll(w2).len(), 1);
    }

    #[test]
    fn cancelled_watch_returns_nothing() {
        let mut s = Store::new();
        let w = s.watch(None);
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.cancel_watch(w);
        assert!(s.poll(w).is_empty());
        assert!(!s.has_pending(w));
    }

    #[test]
    fn has_pending_respects_filter() {
        let mut s = Store::new();
        let w = s.watch(Some("Room"));
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(!s.has_pending(w));
        s.create(ObjectRef::default_ns("Room", "r1"), model("Room", "r1"))
            .unwrap();
        assert!(s.has_pending(w));
    }

    #[test]
    fn log_is_compacted_to_watcher_lag() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let fast = s.watch(Some("Lamp"));
        let slow = s.watch(Some("Lamp"));
        for i in 0..100 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
            // The fast watcher drains every 10 events; the slow one lags.
            if i % 10 == 9 {
                assert_eq!(s.poll(fast).len(), 10);
            }
        }
        // The slow watcher holds the whole stream.
        assert_eq!(s.log_len(), 100);
        assert_eq!(s.poll(slow).len(), 100);
        // Everyone drained: the log is empty however many mutations ran.
        assert_eq!(s.log_len(), 0);
        assert!(s.watch_stats().events_compacted >= 100);
    }

    #[test]
    fn log_reclaimed_with_no_watchers() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        for _ in 0..50 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        assert_eq!(s.log_len(), 0, "no watcher, nothing to hold");
        assert_eq!(s.revision(), 51, "revision still counts all commits");
    }

    #[test]
    fn cancel_releases_compaction_hold() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let laggard = s.watch(Some("Lamp"));
        for _ in 0..30 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        assert_eq!(s.log_len(), 30);
        s.cancel_watch(laggard);
        assert_eq!(s.log_len(), 0, "cancel must release the hold");
    }

    #[test]
    fn delivery_shares_snapshots_across_watchers() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w1 = s.watch(Some("Lamp"));
        let w2 = s.watch(Some("Lamp"));
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let e1 = s.poll(w1);
        let e2 = s.poll(w2);
        assert!(
            Rc::ptr_eq(&e1[0].model, &e2[0].model),
            "watchers must share one snapshot, not deep copies"
        );
    }
}

//! Object storage and the Watch event log.

use std::collections::BTreeMap;

use dspace_value::Value;

use crate::error::ApiError;
use crate::object::{Object, ObjectRef};

/// What happened to an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// Object created.
    Added,
    /// Object updated.
    Modified,
    /// Object deleted.
    Deleted,
}

/// One entry of the totally ordered event log.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Global, strictly increasing revision of the whole store.
    pub revision: u64,
    /// What happened.
    pub kind: WatchEventKind,
    /// The object affected.
    pub oref: ObjectRef,
    /// Model snapshot after the change (for deletes: the last model).
    pub model: Value,
    /// The object's resource version after the change.
    pub resource_version: u64,
}

/// Handle to a watch subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WatchId(pub u64);

#[derive(Debug, Clone)]
struct Watcher {
    /// Restrict to one kind, or `None` for all.
    kind: Option<String>,
    /// Index into the event log of the next event to deliver.
    cursor: usize,
}

/// The persistent store: objects plus the event log and watchers.
///
/// This is the etcd analogue. The event log is the linearization point:
/// every mutation appends exactly one event, and watchers replay the log
/// from their cursor — which yields the ordered, gap-free delivery
/// guarantee that §3.5 of the paper requires for intent reconciliation.
#[derive(Debug, Default)]
pub struct Store {
    objects: BTreeMap<ObjectRef, Object>,
    log: Vec<WatchEvent>,
    watchers: BTreeMap<WatchId, Watcher>,
    next_watch_id: u64,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Returns the current global revision (number of committed events).
    pub fn revision(&self) -> u64 {
        self.log.len() as u64
    }

    /// Returns the stored object, if present.
    pub fn get(&self, oref: &ObjectRef) -> Option<&Object> {
        self.objects.get(oref)
    }

    /// Lists objects of `kind` (sorted by namespace/name).
    pub fn list(&self, kind: &str) -> Vec<&Object> {
        self.objects
            .iter()
            .filter(|(r, _)| r.kind == kind)
            .map(|(_, o)| o)
            .collect()
    }

    /// Lists every object.
    pub fn list_all(&self) -> Vec<&Object> {
        self.objects.values().collect()
    }

    /// Inserts a new object, assigning resource version 1.
    pub fn create(&mut self, oref: ObjectRef, mut model: Value) -> Result<&Object, ApiError> {
        if self.objects.contains_key(&oref) {
            return Err(ApiError::AlreadyExists(oref));
        }
        let rv = 1;
        stamp_gen(&mut model, rv);
        let obj = Object { oref: oref.clone(), model: model.clone(), resource_version: rv };
        self.objects.insert(oref.clone(), obj);
        self.append(WatchEventKind::Added, oref.clone(), model, rv);
        Ok(self.objects.get(&oref).expect("just inserted"))
    }

    /// Replaces an object's model.
    ///
    /// `expected_rv` implements optimistic concurrency: when `Some`, the
    /// write only commits if it matches the stored version; on mismatch the
    /// caller gets [`ApiError::Conflict`] and must re-read and retry.
    pub fn update(
        &mut self,
        oref: &ObjectRef,
        mut model: Value,
        expected_rv: Option<u64>,
    ) -> Result<u64, ApiError> {
        let obj = self
            .objects
            .get_mut(oref)
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        if let Some(expected) = expected_rv {
            if expected != obj.resource_version {
                return Err(ApiError::Conflict {
                    oref: oref.clone(),
                    expected,
                    actual: obj.resource_version,
                });
            }
        }
        let rv = obj.resource_version + 1;
        stamp_gen(&mut model, rv);
        obj.model = model.clone();
        obj.resource_version = rv;
        self.append(WatchEventKind::Modified, oref.clone(), model, rv);
        Ok(rv)
    }

    /// Removes an object, returning its final state.
    pub fn delete(&mut self, oref: &ObjectRef) -> Result<Object, ApiError> {
        let obj = self
            .objects
            .remove(oref)
            .ok_or_else(|| ApiError::NotFound(oref.clone()))?;
        self.append(
            WatchEventKind::Deleted,
            oref.clone(),
            obj.model.clone(),
            obj.resource_version,
        );
        Ok(obj)
    }

    /// Opens a watch. `kind = None` watches everything. The cursor starts
    /// at the current log tail: only *future* events are delivered.
    pub fn watch(&mut self, kind: Option<&str>) -> WatchId {
        let id = WatchId(self.next_watch_id);
        self.next_watch_id += 1;
        self.watchers.insert(
            id,
            Watcher { kind: kind.map(str::to_string), cursor: self.log.len() },
        );
        id
    }

    /// Drains pending events for a watcher, in revision order.
    ///
    /// Unknown watch ids return an empty vector (the subscription may have
    /// been cancelled).
    pub fn poll(&mut self, id: WatchId) -> Vec<WatchEvent> {
        let Some(w) = self.watchers.get_mut(&id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while w.cursor < self.log.len() {
            let ev = &self.log[w.cursor];
            w.cursor += 1;
            if w.kind.as_deref().is_none_or_match(&ev.oref.kind) {
                out.push(ev.clone());
            }
        }
        out
    }

    /// Returns `true` if the watcher has undelivered events.
    pub fn has_pending(&self, id: WatchId) -> bool {
        self.watchers
            .get(&id)
            .map(|w| {
                self.log[w.cursor..]
                    .iter()
                    .any(|ev| w.kind.as_deref().is_none_or_match(&ev.oref.kind))
            })
            .unwrap_or(false)
    }

    /// Cancels a watch subscription.
    pub fn cancel_watch(&mut self, id: WatchId) {
        self.watchers.remove(&id);
    }

    fn append(&mut self, kind: WatchEventKind, oref: ObjectRef, model: Value, rv: u64) {
        let revision = self.log.len() as u64 + 1;
        self.log.push(WatchEvent { revision, kind, oref, model, resource_version: rv });
    }
}

/// Keeps `meta.gen` in the model equal to the resource version, so the
/// version number of §3.5 is visible to drivers and the mounter.
fn stamp_gen(model: &mut Value, rv: u64) {
    let _ = model.set(&".meta.gen".parse().expect("static path"), Value::from(rv as f64));
}

/// Tiny helper: `None` matches everything, `Some(k)` matches only `k`.
trait KindFilter {
    fn is_none_or_match(&self, kind: &str) -> bool;
}

impl KindFilter for Option<&str> {
    fn is_none_or_match(&self, kind: &str) -> bool {
        match self {
            None => true,
            Some(k) => *k == kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspace_value::json;

    fn model(kind: &str, name: &str) -> Value {
        json::parse(&format!(
            r#"{{"meta": {{"kind": "{kind}", "name": "{name}", "namespace": "default"}}, "x": 0}}"#
        ))
        .unwrap()
    }

    fn lamp_ref() -> ObjectRef {
        ObjectRef::default_ns("Lamp", "l1")
    }

    #[test]
    fn create_get_roundtrip() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let obj = s.get(&lamp_ref()).unwrap();
        assert_eq!(obj.resource_version, 1);
        assert_eq!(obj.model.get_path("meta.gen").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn create_twice_fails() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(matches!(
            s.create(lamp_ref(), model("Lamp", "l1")),
            Err(ApiError::AlreadyExists(_))
        ));
    }

    #[test]
    fn update_bumps_version_and_stamps_gen() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let rv = s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert_eq!(rv, 2);
        assert_eq!(
            s.get(&lamp_ref()).unwrap().model.get_path("meta.gen").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn occ_conflict_detected() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.update(&lamp_ref(), model("Lamp", "l1"), Some(1)).unwrap();
        // A writer that read version 1 now loses.
        let err = s.update(&lamp_ref(), model("Lamp", "l1"), Some(1)).unwrap_err();
        assert!(matches!(err, ApiError::Conflict { expected: 1, actual: 2, .. }));
    }

    #[test]
    fn delete_then_get_fails() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let gone = s.delete(&lamp_ref()).unwrap();
        assert_eq!(gone.resource_version, 1);
        assert!(s.get(&lamp_ref()).is_none());
        assert!(matches!(s.delete(&lamp_ref()), Err(ApiError::NotFound(_))));
    }

    #[test]
    fn watch_only_sees_future_events() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(None);
        assert!(s.poll(w).is_empty());
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, WatchEventKind::Modified);
        assert_eq!(evs[0].resource_version, 2);
        // Drained.
        assert!(s.poll(w).is_empty());
    }

    #[test]
    fn watch_kind_filter() {
        let mut s = Store::new();
        let w = s.watch(Some("Room"));
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.create(ObjectRef::default_ns("Room", "r1"), model("Room", "r1")).unwrap();
        let evs = s.poll(w);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].oref.kind, "Room");
    }

    #[test]
    fn watch_ordering_is_gap_free() {
        // The §3.5 guarantee: a watcher sees every version in order.
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w = s.watch(Some("Lamp"));
        for _ in 0..50 {
            s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        }
        let evs = s.poll(w);
        let versions: Vec<u64> = evs.iter().map(|e| e.resource_version).collect();
        assert_eq!(versions, (2..=51).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_watchers_independent_cursors() {
        let mut s = Store::new();
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        let w1 = s.watch(None);
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        let w2 = s.watch(None);
        s.update(&lamp_ref(), model("Lamp", "l1"), None).unwrap();
        assert_eq!(s.poll(w1).len(), 2);
        assert_eq!(s.poll(w2).len(), 1);
    }

    #[test]
    fn cancelled_watch_returns_nothing() {
        let mut s = Store::new();
        let w = s.watch(None);
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        s.cancel_watch(w);
        assert!(s.poll(w).is_empty());
        assert!(!s.has_pending(w));
    }

    #[test]
    fn has_pending_respects_filter() {
        let mut s = Store::new();
        let w = s.watch(Some("Room"));
        s.create(lamp_ref(), model("Lamp", "l1")).unwrap();
        assert!(!s.has_pending(w));
        s.create(ObjectRef::default_ns("Room", "r1"), model("Room", "r1")).unwrap();
        assert!(s.has_pending(w));
    }
}

//! A Kubernetes-style API server for digi models.
//!
//! dSpace reuses the k8s apiserver as the single point of coordination: all
//! digi models live there as API objects, every component communicates only
//! by reading/writing/watching models (§5.1 of the paper). This crate
//! implements the apiserver semantics that dSpace relies on, from scratch:
//!
//! - an object store keyed by `(kind, namespace, name)` with **optimistic
//!   concurrency control** via per-object resource versions,
//! - a **Watch API** with per-subscriber cursors over a totally ordered
//!   event log, providing the §3.5 guarantee: a watcher that has seen
//!   versions `Va < Vb` of an object has also seen every version between
//!   them, in order, with no gaps,
//! - an **admission webhook chain** consulted before any mutating verb
//!   commits (dSpace's topology webhook plugs in here, §5.2),
//! - **RBAC** with roles, rules, and subject bindings (§3.6),
//! - a **schema registry** validating models against their
//!   [`dspace_value::KindSchema`] (the CRD analogue).
//!
//! # Examples
//!
//! ```
//! use dspace_apiserver::{ApiServer, ObjectRef, Query, Verb};
//! use dspace_value::{AttrType, KindSchema, Value};
//!
//! let mut api = ApiServer::new();
//! api.register_schema(KindSchema::digivice("digi.dev", "v1", "Plug")
//!     .control("power", AttrType::String));
//!
//! let plug = ObjectRef::new("Plug", "default", "p1");
//! let model = api.schema("Plug").unwrap().new_model("p1", "default");
//! api.create(ApiServer::ADMIN, &plug, model).unwrap();
//!
//! let w = api.watch_query(ApiServer::ADMIN, &Query::kind("Plug")).unwrap();
//! api.patch_path(ApiServer::ADMIN, &plug, ".control.power.intent", "on".into()).unwrap();
//! let events = api.poll(w);
//! assert_eq!(events.len(), 1);
//!
//! // Filtered reads compile a reflex predicate and ride secondary indexes:
//! let q = Query::kind("Plug").in_ns("default")
//!     .filter(".control.power.intent == \"on\"").unwrap();
//! assert_eq!(api.query(ApiServer::ADMIN, &q).unwrap().len(), 1);
//! ```

pub mod admission;
pub mod client;
pub mod error;
pub mod executor;
pub mod object;
pub mod query;
pub mod rbac;
pub mod server;
pub mod store;
pub mod wal;

pub use admission::{AdmissionResponse, AdmissionReview, AdmissionWebhook};
pub use client::{Client, NamespacedClient, NamespacedReadClient, ReadClient};
pub use error::ApiError;
pub use executor::{ShardExecutor, SHARD_THREADS_ENV};
pub use object::{Object, ObjectRef};
pub use query::{IndexKey, Plan, PredicateSelector, Query, QueryError, QueryPred};
pub use rbac::{Role, RoleBinding, Rule, Verb};
pub use server::{ApiServer, BatchOp, SnapshotView};
pub use store::{
    stamp_gen, CoalescedEvent, StoreOp, StoreSnapshot, WatchEvent, WatchEventKind, WatchId,
    WatchSelector, WatchStats,
};
pub use wal::{DurabilityOptions, WalError, WalSync};

//! API error taxonomy, mirroring the HTTP statuses a k8s apiserver returns.

use std::fmt;

use crate::object::ObjectRef;
use crate::store::WatchId;

/// Errors returned by apiserver verbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The object does not exist (404).
    NotFound(ObjectRef),
    /// Create on an existing object (409).
    AlreadyExists(ObjectRef),
    /// Optimistic-concurrency failure: the expected resource version did
    /// not match (409). The caller must re-read and retry.
    Conflict {
        /// The object being written.
        oref: ObjectRef,
        /// Version the writer based its update on.
        expected: u64,
        /// Version currently stored.
        actual: u64,
    },
    /// RBAC denied the request (403).
    Forbidden {
        /// The requesting subject.
        subject: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// An admission webhook rejected the request (400/422).
    AdmissionDenied {
        /// The webhook that rejected.
        webhook: String,
        /// Its reason.
        reason: String,
    },
    /// Schema validation failed (422).
    Invalid(String),
    /// The kind is not registered (404 on the API group).
    UnknownKind(String),
    /// Malformed request (400).
    BadRequest(String),
    /// The watch subscription does not exist (410): never opened, or
    /// already cancelled.
    UnknownWatch(WatchId),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::NotFound(r) => write!(f, "not found: {r}"),
            ApiError::AlreadyExists(r) => write!(f, "already exists: {r}"),
            ApiError::Conflict {
                oref,
                expected,
                actual,
            } => write!(
                f,
                "conflict on {oref}: expected resource version {expected}, found {actual}"
            ),
            ApiError::Forbidden { subject, reason } => {
                write!(f, "forbidden for {subject}: {reason}")
            }
            ApiError::AdmissionDenied { webhook, reason } => {
                write!(f, "admission denied by {webhook}: {reason}")
            }
            ApiError::Invalid(m) => write!(f, "invalid object: {m}"),
            ApiError::UnknownKind(k) => write!(f, "unknown kind: {k}"),
            ApiError::BadRequest(m) => write!(f, "bad request: {m}"),
            ApiError::UnknownWatch(id) => write!(f, "unknown watch subscription: {}", id.0),
        }
    }
}

impl std::error::Error for ApiError {}

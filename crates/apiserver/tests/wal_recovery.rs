//! Kill-and-restart recovery: a durable store reopened from its WAL
//! directory is bit-identical to the store that crashed — same per-shard
//! revisions, same `committed_total`, same models and resource versions,
//! same compaction floors — including after a torn final record, a
//! checkpoint rolled mid-stream, or a namespace delete/recreate cycle.
//!
//! One deliberate carve-out, documented on `Store::open`: watch
//! subscriptions die with the process, so both sides are compared with
//! watchers drained and cancelled (live shards then hold empty logs, just
//! like recovered ones).

use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use dspace_apiserver::store::Store;
use dspace_apiserver::wal::{DurabilityOptions, WalSync};
use dspace_apiserver::{ObjectRef, Query, StoreOp};
use dspace_value::{json, Value};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory (std-only; no tempfile crate in tree).
fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dspace-wal-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const NAMESPACES: [&str; 3] = ["alpha", "beta", "gamma"];
const OBJECTS_PER_NS: usize = 2;

fn oref(ns: usize, obj: usize) -> ObjectRef {
    ObjectRef::new("Thing", NAMESPACES[ns], format!("t{obj}"))
}

fn model(ns: usize, obj: usize) -> Value {
    json::parse(&format!(
        r#"{{"meta": {{"kind": "Thing", "name": "t{obj}", "namespace": "{}"}}, "n": 0}}"#,
        NAMESPACES[ns]
    ))
    .unwrap()
}

/// Everything recovery promises to restore, as comparable lines: the
/// global commit counter, each shard's revision and compaction floor
/// (`log=0` once drained), and every object bit-for-bit.
fn fingerprint(store: &mut Store) -> Vec<String> {
    let mut out = vec![format!("committed_total={}", store.revision())];
    for ns in store.shard_names() {
        out.push(format!(
            "shard {ns} committed={} log={}",
            store.shard_revision(&ns),
            store.shard_log_len(&ns)
        ));
    }
    for obj in store.query(&Query::all()) {
        out.push(format!(
            "{} rv={} {}",
            obj.oref,
            obj.resource_version,
            json::to_string(&obj.model)
        ));
    }
    out
}

fn opts(dir: &Path) -> DurabilityOptions {
    DurabilityOptions::new(dir.to_path_buf())
}

// ---------------------------------------------------------------------------
// Scripted proptest: mutations + checkpoints + polls, then kill & restart
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    SetN { ns: usize, obj: usize, value: u32 },
    Create { ns: usize, obj: usize },
    Delete { ns: usize, obj: usize },
    DeleteNamespace { ns: usize },
    Checkpoint,
    Poll,
}

#[derive(Debug, Clone)]
enum Step {
    /// One multi-shard `apply_batch` call.
    Batch(Vec<Op>),
    /// One serial verb (or store-level action).
    Serial(Op),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0usize..3), (0usize..OBJECTS_PER_NS), (0u32..100))
            .prop_map(|(ns, obj, value)| Op::SetN { ns, obj, value }),
        ((0usize..3), (0usize..OBJECTS_PER_NS)).prop_map(|(ns, obj)| Op::Create { ns, obj }),
        ((0usize..3), (0usize..OBJECTS_PER_NS)).prop_map(|(ns, obj)| Op::Delete { ns, obj }),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        prop::collection::vec(arb_op(), 1..8).prop_map(Step::Batch),
        arb_op().prop_map(Step::Serial),
        (0usize..3).prop_map(|ns| Step::Serial(Op::DeleteNamespace { ns })),
        Just(Step::Serial(Op::Checkpoint)),
        Just(Step::Serial(Op::Poll)),
    ]
}

fn arb_script() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(arb_step(), 1..24)
}

fn to_store_op(op: &Op) -> StoreOp {
    match *op {
        Op::SetN { ns, obj, value } => StoreOp::SetPath {
            oref: oref(ns, obj),
            path: ".n".parse().unwrap(),
            value: Value::from(value as f64),
        },
        Op::Create { ns, obj } => StoreOp::Create {
            oref: oref(ns, obj),
            model: model(ns, obj),
        },
        Op::Delete { ns, obj } => StoreOp::Delete {
            oref: oref(ns, obj),
        },
        _ => unreachable!("not a batchable op"),
    }
}

/// Runs the script against a durable store; watchers are drained and
/// cancelled before the fingerprint so live state matches what recovery
/// can promise (subscriptions die with the process).
fn run_script(script: &[Step], dir: &Path, threads: usize) -> Vec<String> {
    let mut store = Store::open(opts(dir)).unwrap();
    store.set_executor_threads(threads);
    // Two global watchers keep compaction honest without creating shards.
    let w1 = store.watch_query(&Query::all()).unwrap();
    let w2 = store.watch_query(&Query::kind("Thing")).unwrap();
    for step in script {
        match step {
            Step::Batch(ops) => {
                let _ = store.apply_batch(ops.iter().map(to_store_op).collect());
            }
            Step::Serial(op) => match op {
                Op::SetN { .. } | Op::Create { .. } | Op::Delete { .. } => {
                    let _ = store.apply_batch(vec![to_store_op(op)]);
                }
                Op::DeleteNamespace { ns } => {
                    store.delete_namespace(NAMESPACES[*ns]);
                }
                Op::Checkpoint => store.checkpoint(),
                Op::Poll => {
                    let _ = store.poll(w1);
                }
            },
        }
    }
    let _ = store.poll(w1);
    let _ = store.poll(w2);
    store.cancel_watch(w1);
    store.cancel_watch(w2);
    fingerprint(&mut store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of batches, serial verbs, namespace deletions,
    /// checkpoints, and polls recovers bit-identically — at one worker
    /// thread and at several, with identical fingerprints across thread
    /// counts too, and even with trailing garbage torn onto a log.
    #[test]
    fn kill_and_restart_recovers_bit_identically(script in arb_script()) {
        let mut fps = Vec::new();
        for threads in [1usize, 4] {
            let dir = scratch_dir("prop");
            let live = run_script(&script, &dir, threads);

            // Crash: the store is dropped; simulate a torn in-flight
            // append on whatever log happens to exist.
            if let Some(entry) = fs::read_dir(&dir).unwrap().flatten().find(|e| {
                e.file_name().to_string_lossy().starts_with("wal-")
            }) {
                let mut f = OpenOptions::new().append(true).open(entry.path()).unwrap();
                f.write_all(&2000u32.to_le_bytes()).unwrap();
                f.write_all(b"torn").unwrap();
            }

            let mut recovered = Store::open(opts(&dir)).unwrap();
            prop_assert_eq!(&fingerprint(&mut recovered), &live,
                "recovery diverged at threads={}", threads);
            // Reopening is idempotent (the torn tail was truncated away).
            drop(recovered);
            let mut again = Store::open(opts(&dir)).unwrap();
            prop_assert_eq!(&fingerprint(&mut again), &live);
            let _ = fs::remove_dir_all(&dir);
            fps.push(live);
        }
        // Thread count is unobservable in durable state too.
        prop_assert_eq!(&fps[0], &fps[1]);
    }
}

// ---------------------------------------------------------------------------
// Deterministic edges
// ---------------------------------------------------------------------------

/// Applies a fixed little history: serial verbs, a cross-shard batch, an
/// OCC failure, and a failed create.
fn seed_history(store: &mut Store) {
    store.create(oref(0, 0), model(0, 0)).unwrap();
    store.create(oref(1, 0), model(1, 0)).unwrap();
    store.update(&oref(0, 0), model(0, 0), Some(1)).unwrap();
    assert!(store.update(&oref(0, 0), model(0, 0), Some(1)).is_err());
    assert!(store.create(oref(0, 0), model(0, 0)).is_err());
    let results = store.apply_batch(vec![
        StoreOp::SetPath {
            oref: oref(0, 0),
            path: ".n".parse().unwrap(),
            value: Value::from(7.0),
        },
        StoreOp::Create {
            oref: oref(2, 0),
            model: model(2, 0),
        },
        StoreOp::Delete { oref: oref(1, 0) },
    ]);
    assert!(results.iter().all(Result::is_ok));
}

#[test]
fn restart_recovers_serial_and_batch_history() {
    let dir = scratch_dir("history");
    let mut store = Store::open(opts(&dir)).unwrap();
    seed_history(&mut store);
    let live = fingerprint(&mut store);
    drop(store);

    let mut recovered = Store::open(opts(&dir)).unwrap();
    assert_eq!(fingerprint(&mut recovered), live);
    // And the recovered store keeps working: version history continues.
    let mut recovered = recovered;
    let rv = recovered.update(&oref(0, 0), model(0, 0), None).unwrap();
    assert_eq!(rv, 4, "create, update, patch, then this");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_record_truncates_to_previous_commit() {
    let dir = scratch_dir("torn");
    let mut store = Store::open(opts(&dir)).unwrap();
    store.create(oref(0, 0), model(0, 0)).unwrap();
    store.update(&oref(0, 0), model(0, 0), None).unwrap();
    let before_last = fingerprint(&mut store);
    // The final op lands in alpha's log as exactly one more record.
    store.update(&oref(0, 0), model(0, 0), None).unwrap();
    drop(store);

    // Tear the last record in half: walk whole frames, stop before the
    // final one, cut mid-payload.
    let path = dir.join("wal-alpha.log");
    let data = fs::read(&path).unwrap();
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        frames.push(pos);
        pos += 8 + len;
    }
    assert!(frames.len() >= 2, "expected several records in alpha's log");
    let last = *frames.last().unwrap();
    OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(last as u64 + 11)
        .unwrap();

    let mut recovered = Store::open(opts(&dir)).unwrap();
    assert_eq!(
        fingerprint(&mut recovered),
        before_last,
        "replay must stop cleanly at the last whole record"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_logs_and_recovery_prefers_it() {
    let dir = scratch_dir("ckpt");
    let mut o = opts(&dir);
    o.checkpoint_every = 4; // roll checkpoints mid-stream
    let mut store = Store::open(o.clone()).unwrap();
    for round in 0..10 {
        let _ = store.apply_batch(vec![
            StoreOp::Create {
                oref: oref(round % 3, 0),
                model: model(round % 3, 0),
            },
            StoreOp::SetPath {
                oref: oref(round % 3, 0),
                path: ".n".parse().unwrap(),
                value: Value::from(round as f64),
            },
        ]);
    }
    let live = fingerprint(&mut store);
    drop(store);

    assert!(
        dir.join("checkpoint.json").exists(),
        "interval checkpoints must have rolled"
    );
    let log_bytes: u64 = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .map(|e| e.metadata().unwrap().len())
        .sum();
    // Only the post-checkpoint tail remains in the logs.
    assert!(
        log_bytes < 2048,
        "checkpoint must truncate logs ({log_bytes} bytes left)"
    );

    let mut recovered = Store::open(o).unwrap();
    assert_eq!(fingerprint(&mut recovered), live);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn explicit_checkpoint_concurrent_with_writes_recovers() {
    let dir = scratch_dir("ckpt-live");
    let mut store = Store::open(opts(&dir)).unwrap();
    let w = store.watch_query(&Query::all()).unwrap();
    for round in 0..6 {
        store
            .create(
                oref(round % 3, round % OBJECTS_PER_NS),
                model(round % 3, round % OBJECTS_PER_NS),
            )
            .ok();
        if round % 2 == 0 {
            // Checkpoint with a lagging watcher holding live logs: the
            // checkpoint captures objects/revisions, not subscriptions.
            store.checkpoint();
        }
        store
            .update(
                &oref(round % 3, round % OBJECTS_PER_NS),
                model(round % 3, round % OBJECTS_PER_NS),
                None,
            )
            .unwrap();
    }
    let _ = store.poll(w);
    store.cancel_watch(w);
    let live = fingerprint(&mut store);
    drop(store);

    let mut recovered = Store::open(opts(&dir)).unwrap();
    assert_eq!(fingerprint(&mut recovered), live);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn namespace_delete_and_recreate_survives_restart() {
    let dir = scratch_dir("nsdel");
    let mut store = Store::open(opts(&dir)).unwrap();
    store.create(oref(0, 0), model(0, 0)).unwrap();
    store.update(&oref(0, 0), model(0, 0), None).unwrap();
    // Drop the namespace (revision counter resets with the shard), then
    // recreate the same oref: rv starts over at 1.
    store.delete_namespace(NAMESPACES[0]);
    assert_eq!(store.shard_revision(NAMESPACES[0]), 0);
    store.create(oref(0, 0), model(0, 0)).unwrap();
    assert_eq!(store.get(&oref(0, 0)).unwrap().resource_version, 1);
    let live = fingerprint(&mut store);
    drop(store);

    let mut recovered = Store::open(opts(&dir)).unwrap();
    assert_eq!(fingerprint(&mut recovered), live);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fast_forward_past_2_53_recovers_exactly() {
    let dir = scratch_dir("ff");
    let big = (1u64 << 53) + 5;
    let mut store = Store::open(opts(&dir)).unwrap();
    store.create(oref(0, 0), model(0, 0)).unwrap();
    store.fast_forward(&oref(0, 0), big).unwrap();
    let live = fingerprint(&mut store);
    drop(store);

    let mut recovered = Store::open(opts(&dir)).unwrap();
    assert_eq!(fingerprint(&mut recovered), live);
    assert_eq!(
        recovered.get(&oref(0, 0)).unwrap().resource_version,
        big,
        "versions past 2^53 must round-trip exactly through the WAL"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resumed_watchers_see_no_gaps_and_no_duplicates() {
    let dir = scratch_dir("watch");
    let mut store = Store::open(opts(&dir)).unwrap();
    let doomed = store.watch_query(&Query::all()).unwrap();
    store.create(oref(0, 0), model(0, 0)).unwrap();
    store.update(&oref(0, 0), model(0, 0), None).unwrap();
    assert!(
        store.has_pending(doomed),
        "events were pending at crash time"
    );
    drop(store); // crash: `doomed` and its pending events die here

    let mut store = Store::open(opts(&dir)).unwrap();
    let w = store.watch_query(&Query::all()).unwrap();
    // Nothing from before the crash is re-delivered...
    assert!(store.poll(w).is_empty(), "no duplicates from the old life");
    // ...and everything after arrives exactly once, in revision order
    // continuing the recovered counter (no gap, no restart from 1).
    store.update(&oref(0, 0), model(0, 0), None).unwrap();
    store.create(oref(0, 1), model(0, 1)).unwrap();
    let evs = store.poll(w);
    assert_eq!(evs.len(), 2);
    assert_eq!(
        evs.iter().map(|e| e.revision).collect::<Vec<_>>(),
        vec![3, 4],
        "revisions continue the pre-crash shard history contiguously"
    );
    assert!(store.poll(w).is_empty(), "delivered exactly once");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn commit_sync_mode_also_recovers() {
    let dir = scratch_dir("sync");
    let mut o = opts(&dir);
    o.sync = WalSync::Commit;
    let mut store = Store::open(o.clone()).unwrap();
    seed_history(&mut store);
    let live = fingerprint(&mut store);
    drop(store);
    let mut recovered = Store::open(o).unwrap();
    assert_eq!(fingerprint(&mut recovered), live);
    let _ = fs::remove_dir_all(&dir);
}

//! Property tests for the §3.5 runtime guarantee.
//!
//! "The dSpace runtime guarantees that if a writer sees updates to a model
//! with two version numbers Va and Vb (Va < Vb), then it must have also
//! seen all updates with version number between the two" — we test the
//! stronger invariant the store provides: watchers observe every version
//! of every object they watch, in order, with no gaps or duplicates,
//! regardless of how reads interleave with writes.

use proptest::prelude::*;

use dspace_apiserver::{ApiServer, ObjectRef, Query, WatchEventKind, WatchId};
use dspace_value::Value;

/// One scripted step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// Write to object `i`.
    Write(usize),
    /// Poll watcher `j`.
    Poll(usize),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..3).prop_map(Step::Write),
            (0usize..2).prop_map(Step::Poll),
        ],
        1..120,
    )
}

proptest! {
    #[test]
    fn watchers_see_ordered_gap_free_versions(steps in arb_steps()) {
        let mut api = ApiServer::new();
        let objects: Vec<ObjectRef> = (0..3)
            .map(|i| ObjectRef::default_ns("Thing", format!("t{i}")))
            .collect();
        for oref in &objects {
            let model = dspace_value::json::parse(&format!(
                r#"{{"meta": {{"kind": "Thing", "name": "{}", "namespace": "default"}}, "n": 0}}"#,
                oref.name
            )).unwrap();
            api.create(ApiServer::ADMIN, oref, model).unwrap();
        }
        let watchers = [
            api.watch_query(ApiServer::ADMIN, &Query::kind("Thing")).unwrap(),
            api.watch_query(ApiServer::ADMIN, &Query::kind("Thing")).unwrap(),
        ];
        // seen[w][obj] = versions delivered so far to watcher w.
        let mut seen: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); 3]; 2];
        let run_step = |api: &mut ApiServer, step: &Step, seen: &mut Vec<Vec<Vec<u64>>>| {
            match step {
                Step::Write(i) => {
                    api.patch_path(ApiServer::ADMIN, &objects[*i], ".n", Value::from(1.0)).unwrap();
                }
                Step::Poll(j) => {
                    let mut last_rev = 0;
                    for ev in api.poll(watchers[*j]) {
                        prop_assert!(ev.revision > last_rev, "revisions out of order");
                        last_rev = ev.revision;
                        prop_assert_eq!(ev.kind, WatchEventKind::Modified);
                        let idx = objects.iter().position(|o| *o == ev.oref).unwrap();
                        seen[*j][idx].push(ev.resource_version);
                    }
                }
            }
            Ok(())
        };
        let mut writes = [0u64; 3];
        for step in &steps {
            if let Step::Write(i) = step { writes[*i] += 1; }
            run_step(&mut api, step, &mut seen)?;
        }
        // Final drain so every watcher catches up.
        for j in 0..2 {
            run_step(&mut api, &Step::Poll(j), &mut seen)?;
        }
        for (w, streams) in seen.iter().enumerate() {
            for (i, versions) in streams.iter().enumerate() {
                // Versions start at 2 (creation was before the watch) and
                // are consecutive: no gaps, no duplicates, no reordering.
                let expect: Vec<u64> = (2..2 + writes[i]).collect();
                prop_assert_eq!(versions, &expect, "watcher {} object {}", w, i);
            }
        }
    }

    /// Optimistic concurrency: with randomized interleavings of two
    /// read-modify-write actors, every successful OCC write is based on
    /// the version it observed, so no update is ever lost.
    #[test]
    fn occ_prevents_lost_updates(ops in prop::collection::vec(0usize..2, 1..60)) {
        let mut api = ApiServer::new();
        let oref = ObjectRef::default_ns("Counter", "c");
        let model = dspace_value::json::parse(
            r#"{"meta": {"kind": "Counter", "name": "c", "namespace": "default"}, "n": 0}"#,
        ).unwrap();
        api.create(ApiServer::ADMIN, &oref, model).unwrap();

        // Each actor holds a possibly-stale snapshot and tries OCC writes.
        let mut snapshots: Vec<Option<(u64, f64)>> = vec![None, None];
        let mut successful_increments = 0u64;
        for actor in ops {
            match snapshots[actor].take() {
                None => {
                    let obj = api.get(ApiServer::ADMIN, &oref).unwrap();
                    let n = obj.model.get_path(".n").unwrap().as_f64().unwrap();
                    snapshots[actor] = Some((obj.resource_version, n));
                }
                Some((rv, n)) => {
                    let mut m = (*api.get(ApiServer::ADMIN, &oref).unwrap().model).clone();
                    m.set(&".n".parse().unwrap(), Value::from(n + 1.0)).unwrap();
                    match api.update(ApiServer::ADMIN, &oref, m, Some(rv)) {
                        Ok(_) => successful_increments += 1,
                        Err(dspace_apiserver::ApiError::Conflict { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
            }
        }
        let final_n = api
            .get_path(ApiServer::ADMIN, &oref, ".n")
            .unwrap()
            .as_f64()
            .unwrap() as u64;
        prop_assert_eq!(final_n, successful_increments, "an update was lost");
    }

    /// The §3.5 guarantee holds per *filtered* stream: a per-object
    /// subscription (what digi drivers use) sees every version of its
    /// object in order with no gaps — and nothing else — even while log
    /// compaction runs underneath for faster watchers.
    #[test]
    fn object_selector_streams_are_gap_free_across_compaction(steps in arb_steps()) {
        let mut api = ApiServer::new();
        let objects: Vec<ObjectRef> = (0..3)
            .map(|i| ObjectRef::default_ns("Thing", format!("t{i}")))
            .collect();
        for oref in &objects {
            let model = dspace_value::json::parse(&format!(
                r#"{{"meta": {{"kind": "Thing", "name": "{}", "namespace": "default"}}, "n": 0}}"#,
                oref.name
            )).unwrap();
            api.create(ApiServer::ADMIN, oref, model).unwrap();
        }
        // One per-object subscription per digi. The random Poll steps only
        // ever touch watchers 0 and 1, so watcher 2 lags arbitrarily far:
        // its entries must survive compaction until the final drain.
        let watchers: Vec<WatchId> = objects
            .iter()
            .map(|o| {
                let q = Query::kind(o.kind.as_str()).in_ns(o.namespace.as_str()).named(o.name.as_str());
                api.watch_query(ApiServer::ADMIN, &q).unwrap()
            })
            .collect();
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut writes = [0u64; 3];
        for step in &steps {
            match step {
                Step::Write(i) => {
                    writes[*i] += 1;
                    api.patch_path(ApiServer::ADMIN, &objects[*i], ".n", Value::from(1.0)).unwrap();
                }
                Step::Poll(j) => {
                    for ev in api.poll(watchers[*j]) {
                        prop_assert_eq!(&ev.oref, &objects[*j], "foreign event leaked into object stream");
                        seen[*j].push(ev.resource_version);
                    }
                }
            }
        }
        // Final drain: every stream — including the laggard's — is complete.
        for j in 0..3 {
            for ev in api.poll(watchers[j]) {
                prop_assert_eq!(&ev.oref, &objects[j], "foreign event leaked into object stream");
                seen[j].push(ev.resource_version);
            }
        }
        for (i, versions) in seen.iter().enumerate() {
            let expect: Vec<u64> = (2..2 + writes[i]).collect();
            prop_assert_eq!(versions, &expect, "object {} stream has gaps/reorders", i);
        }
        // All drained: the log is fully compacted regardless of how many
        // writes the run made.
        prop_assert_eq!(api.log_len(), 0, "drained watchers must not hold the log");
    }

    /// Cancelling a subscription releases its compaction hold: a laggard
    /// watcher pins the log tail only while it is alive.
    #[test]
    fn cancel_watch_releases_compaction_hold(writes in 1usize..80) {
        let mut api = ApiServer::new();
        let oref = ObjectRef::default_ns("Thing", "t");
        let model = dspace_value::json::parse(
            r#"{"meta": {"kind": "Thing", "name": "t", "namespace": "default"}, "n": 0}"#,
        ).unwrap();
        api.create(ApiServer::ADMIN, &oref, model).unwrap();
        let laggard = api.watch_query(ApiServer::ADMIN, &Query::kind("Thing")).unwrap();
        for _ in 0..writes {
            api.patch_path(ApiServer::ADMIN, &oref, ".n", Value::from(1.0)).unwrap();
        }
        prop_assert_eq!(api.log_len(), writes, "laggard must pin undelivered events");
        api.cancel_watch(laggard);
        prop_assert_eq!(api.log_len(), 0, "cancel must release the log");
        prop_assert!(api.poll(laggard).is_empty());
    }
}

//! Indexed queries are an optimization, not a semantics: under arbitrary
//! churn (batched and serial creates/patches/deletes, namespace drops,
//! checkpoints) every filtered `Store::query` must return byte-for-byte
//! what a brute-force scan over a snapshot returns, and the incrementally
//! maintained index postings must stay identical to a from-scratch
//! rebuild. A second property covers kill-and-restart: reopening a
//! durable store from checkpoint + WAL replay and re-deriving the indexes
//! yields bit-identical postings and query results — at one shard worker
//! thread and at the machine's maximum.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use dspace_apiserver::store::Store;
use dspace_apiserver::wal::DurabilityOptions;
use dspace_apiserver::{Object, ObjectRef, Query, StoreOp};
use dspace_value::{json, Value};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory (std-only; no tempfile crate in tree).
fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dspace-query-equiv-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const NAMESPACES: [&str; 3] = ["alpha", "beta", "gamma"];
const KINDS: [&str; 2] = ["Lamp", "Plug"];
const OBJECTS_PER_KIND: usize = 3;
const BRIGHTNESS: &str = ".control.brightness.intent";
const POWER: &str = ".control.power.intent";

fn oref(kind: usize, ns: usize, obj: usize) -> ObjectRef {
    ObjectRef::new(
        KINDS[kind],
        NAMESPACES[ns],
        format!("{}{obj}", KINDS[kind].to_lowercase()),
    )
}

fn model(kind: usize, ns: usize, obj: usize, brightness: u32, on: bool) -> Value {
    json::parse(&format!(
        r#"{{"meta": {{"kind": "{}", "name": "{}{obj}", "namespace": "{}"}},
            "control": {{"brightness": {{"intent": {brightness}}},
                         "power": {{"intent": "{}"}}}}}}"#,
        KINDS[kind],
        KINDS[kind].to_lowercase(),
        NAMESPACES[ns],
        if on { "on" } else { "off" },
    ))
    .unwrap()
}

// ---------------------------------------------------------------------------
// Churn scripts
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Create {
        kind: usize,
        ns: usize,
        obj: usize,
        brightness: u32,
        on: bool,
    },
    SetBrightness {
        kind: usize,
        ns: usize,
        obj: usize,
        value: u32,
    },
    SetPower {
        kind: usize,
        ns: usize,
        obj: usize,
        on: bool,
    },
    Delete {
        kind: usize,
        ns: usize,
        obj: usize,
    },
}

#[derive(Debug, Clone)]
enum Step {
    /// One multi-shard `apply_batch` call.
    Batch(Vec<Op>),
    /// One serial verb.
    Serial(Op),
    DeleteNamespace {
        ns: usize,
    },
    Checkpoint,
}

fn arb_slot() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        0usize..KINDS.len(),
        0usize..NAMESPACES.len(),
        0usize..OBJECTS_PER_KIND,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_slot(), 0u32..100, any::<bool>()).prop_map(|((kind, ns, obj), brightness, on)| {
            Op::Create {
                kind,
                ns,
                obj,
                brightness,
                on,
            }
        }),
        (arb_slot(), 0u32..100).prop_map(|((kind, ns, obj), value)| Op::SetBrightness {
            kind,
            ns,
            obj,
            value,
        }),
        (arb_slot(), any::<bool>()).prop_map(|((kind, ns, obj), on)| Op::SetPower {
            kind,
            ns,
            obj,
            on,
        }),
        arb_slot().prop_map(|(kind, ns, obj)| Op::Delete { kind, ns, obj }),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        prop::collection::vec(arb_op(), 1..8).prop_map(Step::Batch),
        arb_op().prop_map(Step::Serial),
        arb_op().prop_map(Step::Serial),
        (0usize..NAMESPACES.len()).prop_map(|ns| Step::DeleteNamespace { ns }),
        Just(Step::Checkpoint),
    ]
}

fn arb_script() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(arb_step(), 1..24)
}

fn to_store_op(op: &Op) -> StoreOp {
    match *op {
        Op::Create {
            kind,
            ns,
            obj,
            brightness,
            on,
        } => StoreOp::Create {
            oref: oref(kind, ns, obj),
            model: model(kind, ns, obj, brightness, on),
        },
        Op::SetBrightness {
            kind,
            ns,
            obj,
            value,
        } => StoreOp::SetPath {
            oref: oref(kind, ns, obj),
            path: BRIGHTNESS.parse().unwrap(),
            value: Value::from(value as f64),
        },
        Op::SetPower { kind, ns, obj, on } => StoreOp::SetPath {
            oref: oref(kind, ns, obj),
            path: POWER.parse().unwrap(),
            value: Value::from(if on { "on" } else { "off" }),
        },
        Op::Delete { kind, ns, obj } => StoreOp::Delete {
            oref: oref(kind, ns, obj),
        },
    }
}

fn apply(store: &mut Store, step: &Step) {
    match step {
        Step::Batch(ops) => {
            let _ = store.apply_batch(ops.iter().map(to_store_op).collect());
        }
        Step::Serial(op) => {
            let _ = store.apply_batch(vec![to_store_op(op)]);
        }
        Step::DeleteNamespace { ns } => {
            store.delete_namespace(NAMESPACES[*ns]);
        }
        Step::Checkpoint => store.checkpoint(),
    }
}

// ---------------------------------------------------------------------------
// The query pool: every planner shape, scoped and unscoped
// ---------------------------------------------------------------------------

/// Covers Eq (string), Range (both directions, inclusive and exclusive),
/// And, Or, and a `!=` predicate the planner cannot express (Plan::Full
/// fallback — exercises the brute-force path through the same verb).
fn query_pool() -> Vec<Query> {
    let filters: &[(&str, &str)] = &[
        ("Lamp", ".control.brightness.intent > 50"),
        ("Lamp", ".control.brightness.intent <= 20"),
        ("Plug", ".control.power.intent == \"on\""),
        (
            "Lamp",
            ".control.brightness.intent >= 10 and .control.power.intent == \"on\"",
        ),
        (
            "Lamp",
            ".control.brightness.intent < 5 or .control.brightness.intent > 90",
        ),
        // `!=` is not plannable: falls back to a full kind scan.
        ("Plug", ".control.power.intent != \"off\""),
    ];
    let mut qs = vec![
        Query::all(),
        Query::kind("Lamp"),
        Query::kind("Plug").in_ns("beta"),
        Query::kind("Lamp").in_ns("alpha").named("lamp0"),
    ];
    for (kind, expr) in filters {
        qs.push(Query::kind(*kind).filter(expr).unwrap());
        qs.push(Query::kind(*kind).in_ns("alpha").filter(expr).unwrap());
    }
    qs
}

fn line(o: &Object) -> String {
    format!(
        "{} rv={} {}",
        o.oref,
        o.resource_version,
        json::to_string(&o.model)
    )
}

/// Indexed read ≡ brute force, for every query in the pool, plus the
/// incremental-vs-rebuilt index invariant.
fn check_equivalence(store: &mut Store) -> Result<(), TestCaseError> {
    for q in query_pool() {
        let indexed: Vec<String> = store.query(&q).iter().map(line).collect();
        let snap = store.snapshot();
        let brute: Vec<String> = snap.query(&q).into_iter().map(line).collect();
        prop_assert_eq!(indexed, brute, "indexed query diverged from scan: {:?}", q);
    }
    if let Err(e) = store.indexes_consistent() {
        return Err(TestCaseError::fail(e));
    }
    Ok(())
}

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Property 1: filtered list via indexes ≡ brute-force scan under churn
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every step of an arbitrary churn script, every query shape
    /// returns exactly what the snapshot's brute-force evaluation returns,
    /// and every live index matches a from-scratch rebuild — at shard
    /// worker caps 1 and max. Querying *before* the churn matters: it
    /// builds the indexes early so the rest of the script exercises the
    /// incremental commit-time maintenance, not lazy rebuilds.
    #[test]
    fn indexed_queries_match_brute_force_under_churn(script in arb_script()) {
        for threads in [1usize, max_threads()] {
            let mut store = Store::new();
            store.set_executor_threads(threads);
            check_equivalence(&mut store)?;
            for step in &script {
                apply(&mut store, step);
                check_equivalence(&mut store)?;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property 2: kill-and-restart rebuilds indexes bit-identically
// ---------------------------------------------------------------------------

/// Flattens every index this suite uses into comparable posting lines,
/// forcing a build where one does not exist yet.
fn dump_all(store: &mut Store) -> Vec<String> {
    let mut out = Vec::new();
    for ns in NAMESPACES {
        for (kind, path) in [("Lamp", BRIGHTNESS), ("Lamp", POWER), ("Plug", POWER)] {
            let p: dspace_value::Path = path.parse().unwrap();
            for (name, key) in store.index_dump(ns, kind, &p) {
                out.push(format!("{ns} {kind} {path} {name} => {key}"));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A durable store churned through an arbitrary script (including
    /// mid-stream checkpoints), killed, and reopened from checkpoint +
    /// WAL replay re-derives bit-identical index postings and query
    /// results — the live side's postings were maintained incrementally,
    /// the recovered side's are rebuilt from replayed objects, and the
    /// two must never be distinguishable. Checked at shard worker caps
    /// 1 and max.
    #[test]
    fn recovery_rebuilds_indexes_bit_identically(script in arb_script()) {
        for threads in [1usize, max_threads()] {
            let dir = scratch_dir("idx");
            let mut store = Store::open(DurabilityOptions::new(dir.clone())).unwrap();
            store.set_executor_threads(threads);
            // Warm the indexes first so churn maintains them incrementally.
            for q in query_pool() {
                let _ = store.query(&q);
            }
            for step in &script {
                apply(&mut store, step);
            }
            check_equivalence(&mut store)?;
            let live_dump = dump_all(&mut store);
            let live_results: Vec<Vec<String>> = query_pool()
                .iter()
                .map(|q| store.query(q).iter().map(line).collect())
                .collect();
            drop(store); // crash

            let mut recovered = Store::open(DurabilityOptions::new(dir.clone())).unwrap();
            recovered.set_executor_threads(threads);
            let recovered_dump = dump_all(&mut recovered);
            prop_assert_eq!(recovered_dump, live_dump,
                "recovered index postings diverged at threads={}", threads);
            let recovered_results: Vec<Vec<String>> = query_pool()
                .iter()
                .map(|q| recovered.query(q).iter().map(line).collect())
                .collect();
            prop_assert_eq!(recovered_results, live_results,
                "recovered query results diverged at threads={}", threads);
            check_equivalence(&mut recovered)?;
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge: mixed-type keys and null ordering
// ---------------------------------------------------------------------------

/// Models whose indexed attribute is a string, null, or absent must sort
/// and filter identically through the index and through reflex: range
/// probes over `IndexKey` order over-approximate, and reflex's own
/// comparison (which errors on mixed types, counting as a non-match)
/// makes the final call on both paths.
#[test]
fn mixed_type_keys_filter_identically() {
    let mut store = Store::new();
    store
        .create(
            ObjectRef::new("Lamp", "alpha", "numeric"),
            json::parse(
                r#"{"meta": {"kind": "Lamp", "name": "numeric", "namespace": "alpha"},
                    "control": {"brightness": {"intent": 42}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
    store
        .create(
            ObjectRef::new("Lamp", "alpha", "stringy"),
            json::parse(
                r#"{"meta": {"kind": "Lamp", "name": "stringy", "namespace": "alpha"},
                    "control": {"brightness": {"intent": "dim"}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
    store
        .create(
            ObjectRef::new("Lamp", "alpha", "absent"),
            json::parse(
                r#"{"meta": {"kind": "Lamp", "name": "absent", "namespace": "alpha"},
                    "control": {}}"#,
            )
            .unwrap(),
        )
        .unwrap();
    for expr in [
        ".control.brightness.intent > 10",
        ".control.brightness.intent < 10",
        ".control.brightness.intent == 42",
        ".control.brightness.intent == \"dim\"",
    ] {
        let q = Query::kind("Lamp").filter(expr).unwrap();
        let indexed: Vec<String> = store.query(&q).iter().map(line).collect();
        let snap = store.snapshot();
        let brute: Vec<String> = snap.query(&q).into_iter().map(line).collect();
        assert_eq!(indexed, brute, "diverged on {expr}");
    }
    store.indexes_consistent().unwrap();
}

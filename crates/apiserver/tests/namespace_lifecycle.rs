//! Namespace lifecycle: deleting a namespace drops its shard, cancels the
//! watch selectors homed in it, and delivers terminal `Deleted` events to
//! global watchers — ordered and gap-free (§3.5), even for watchers that
//! were lagging when the deletion ran.

use dspace_apiserver::{ApiServer, ObjectRef, Query, WatchEventKind};
use dspace_value::json;

fn oref(ns: &str, name: &str) -> ObjectRef {
    ObjectRef::new("Thing", ns, name)
}

fn model(ns: &str, name: &str) -> dspace_value::Value {
    json::parse(&format!(
        r#"{{"meta": {{"kind": "Thing", "name": "{name}", "namespace": "{ns}"}}, "n": 0}}"#
    ))
    .unwrap()
}

/// Two namespaces, three objects in `doomed`, two in `keeper`.
fn setup() -> ApiServer {
    let mut api = ApiServer::new();
    for name in ["a", "b", "c"] {
        api.create(
            ApiServer::ADMIN,
            &oref("doomed", name),
            model("doomed", name),
        )
        .unwrap();
    }
    for name in ["x", "y"] {
        api.create(
            ApiServer::ADMIN,
            &oref("keeper", name),
            model("keeper", name),
        )
        .unwrap();
    }
    api
}

/// A lagging global watcher must see the full history of the deleted
/// namespace — every `Added` then every terminal `Deleted`, with per-shard
/// revisions consecutive — and the drained shard is dropped only after it
/// catches up.
#[test]
fn global_watcher_sees_terminal_deletes_gap_free() {
    let mut api = ApiServer::new();
    let w = api.watch_query(ApiServer::ADMIN, &Query::all()).unwrap();
    for name in ["a", "b", "c"] {
        api.create(
            ApiServer::ADMIN,
            &oref("doomed", name),
            model("doomed", name),
        )
        .unwrap();
    }
    api.create(ApiServer::ADMIN, &oref("keeper", "x"), model("keeper", "x"))
        .unwrap();
    assert_eq!(api.shard_count(), 2);

    // Delete while the watcher is lagging: it has never polled.
    let deleted = api.delete_namespace(ApiServer::ADMIN, "doomed").unwrap();
    assert_eq!(deleted, 3);
    assert!(api.get(ApiServer::ADMIN, &oref("doomed", "a")).is_err());
    // The retiring shard must survive until the lagging watcher drains it.
    assert_eq!(api.shard_count(), 2, "shard held for the lagging watcher");

    let evs = api.poll(w);
    let doomed: Vec<_> = evs
        .iter()
        .filter(|e| e.oref.namespace == "doomed")
        .collect();
    assert_eq!(doomed.len(), 6, "3 creates + 3 terminal deletes");
    let revs: Vec<u64> = doomed.iter().map(|e| e.revision).collect();
    assert_eq!(revs, vec![1, 2, 3, 4, 5, 6], "gap-free shard history");
    let kinds: Vec<_> = doomed.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            WatchEventKind::Added,
            WatchEventKind::Added,
            WatchEventKind::Added,
            WatchEventKind::Deleted,
            WatchEventKind::Deleted,
            WatchEventKind::Deleted,
        ]
    );
    // Terminal events carry the last committed model.
    assert!(doomed
        .iter()
        .all(|e| !matches!(*e.model, dspace_value::Value::Null)));

    // Drained: the shard is gone, the keeper namespace is untouched.
    assert_eq!(api.shard_count(), 1);
    assert!(api.get(ApiServer::ADMIN, &oref("keeper", "x")).is_ok());
    assert!(api.poll(w).is_empty());
}

/// Selectors homed in the deleted namespace are cancelled outright: their
/// undelivered events are refunded, and the watcher goes quiet instead of
/// receiving events for a scope that no longer exists.
#[test]
fn homed_watchers_are_cancelled_and_refunded() {
    let mut api = setup();
    let homed = api
        .client(ApiServer::ADMIN)
        .namespace("doomed")
        .watch(&Query::kind("Thing"))
        .unwrap();
    api.patch_path(
        ApiServer::ADMIN,
        &oref("doomed", "a"),
        ".n",
        dspace_value::Value::from(1.0),
    )
    .unwrap();
    assert!(api.has_pending(homed), "event queued before the deletion");

    api.delete_namespace(ApiServer::ADMIN, "doomed").unwrap();
    assert!(!api.has_pending(homed), "pending refunded on cancellation");
    assert_eq!(api.pending_bytes(homed), 0);
    assert!(api.poll(homed).is_empty());

    // With no lagging member left, the shard drops immediately.
    assert_eq!(api.shard_count(), 1);
}

/// A namespace can be recreated after deletion: it gets a fresh shard with
/// revisions starting over, and watchers opened afterwards see only the
/// new incarnation.
#[test]
fn namespace_can_be_recreated_with_fresh_history() {
    let mut api = setup();
    api.delete_namespace(ApiServer::ADMIN, "doomed").unwrap();
    assert_eq!(api.shard_count(), 1);

    let w = api.watch_query(ApiServer::ADMIN, &Query::all()).unwrap();
    api.create(ApiServer::ADMIN, &oref("doomed", "a"), model("doomed", "a"))
        .unwrap();
    assert_eq!(api.shard_count(), 2);
    let evs = api.poll(w);
    assert_eq!(evs.len(), 1);
    assert_eq!(
        evs[0].revision, 1,
        "fresh shard restarts its revision clock"
    );
    assert_eq!(evs[0].kind, WatchEventKind::Added);
}

/// Deleting a namespace that does not exist is a no-op reporting zero
/// objects deleted.
#[test]
fn deleting_missing_namespace_is_a_noop() {
    let mut api = setup();
    assert_eq!(api.delete_namespace(ApiServer::ADMIN, "ghost").unwrap(), 0);
    assert_eq!(api.shard_count(), 2);
}

//! The zero-copy event path is an optimization with an exact-accounting
//! contract: every write carries an incremental `encoded_len` hint, the
//! per-shard `enc_cache` and every watcher's pending-byte totals must
//! mirror the true encoded sizes *exactly* (driver wake sizing and WAL
//! rendering depend on them), and steady-state writes to watched objects
//! must never deep-clone the model. This suite churns a store through
//! arbitrary create/put/merge/set-path/delete(+recreate) scripts with
//! watchers joining, polling, and leaving mid-stream — at one shard
//! worker thread and at the machine's maximum — auditing the size
//! bookkeeping against freshly computed truth after every step, and
//! pins the `#[deprecated]` list/watch shims byte-identical to their
//! `Query`-builder replacements.

use proptest::prelude::*;

use dspace_apiserver::store::Store;
use dspace_apiserver::{Object, ObjectRef, Query, StoreOp, WatchEvent, WatchId, WatchSelector};
use dspace_value::{json, Value};

const NAMESPACES: [&str; 3] = ["alpha", "beta", "gamma"];
const KINDS: [&str; 2] = ["Lamp", "Plug"];
const OBJECTS_PER_KIND: usize = 3;
const BRIGHTNESS: &str = ".control.brightness.intent";
const POWER: &str = ".control.power.intent";

fn oref(kind: usize, ns: usize, obj: usize) -> ObjectRef {
    ObjectRef::new(
        KINDS[kind],
        NAMESPACES[ns],
        format!("{}{obj}", KINDS[kind].to_lowercase()),
    )
}

fn model(kind: usize, ns: usize, obj: usize, brightness: u32, on: bool) -> Value {
    json::parse(&format!(
        r#"{{"meta": {{"kind": "{}", "name": "{}{obj}", "namespace": "{}"}},
            "control": {{"brightness": {{"intent": {brightness}}},
                         "power": {{"intent": "{}"}}}}}}"#,
        KINDS[kind],
        KINDS[kind].to_lowercase(),
        NAMESPACES[ns],
        if on { "on" } else { "off" },
    ))
    .unwrap()
}

// ---------------------------------------------------------------------------
// Churn scripts: mutations plus watcher lifecycle
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Create {
        kind: usize,
        ns: usize,
        obj: usize,
        brightness: u32,
        on: bool,
    },
    /// Full-model replace (`shard_update`): the hint comes from the
    /// sized WAL render, not from a path delta.
    Put {
        kind: usize,
        ns: usize,
        obj: usize,
        brightness: u32,
        on: bool,
    },
    /// Deep merge (`shard_merge`): delta accumulated key-by-key.
    Merge {
        kind: usize,
        ns: usize,
        obj: usize,
        brightness: u32,
    },
    SetBrightness {
        kind: usize,
        ns: usize,
        obj: usize,
        value: u32,
    },
    SetPower {
        kind: usize,
        ns: usize,
        obj: usize,
        on: bool,
    },
    Delete {
        kind: usize,
        ns: usize,
        obj: usize,
    },
}

#[derive(Debug, Clone)]
enum Step {
    /// One multi-shard `apply_batch` call.
    Batch(Vec<Op>),
    /// One serial verb (exercises the per-verb WAL/hint plumbing).
    Serial(Op),
    /// Open a watch from the query pool (index wraps).
    Join {
        query: usize,
    },
    /// Cancel an open watch (index wraps over live watchers; no-op when
    /// none are open).
    Leave {
        slot: usize,
    },
    /// Drain one open watch, sharing (then dropping) the event snapshots.
    Poll {
        slot: usize,
    },
    DeleteNamespace {
        ns: usize,
    },
}

fn arb_slot() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        0usize..KINDS.len(),
        0usize..NAMESPACES.len(),
        0usize..OBJECTS_PER_KIND,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_slot(), 0u32..100, any::<bool>()).prop_map(|((kind, ns, obj), brightness, on)| {
            Op::Create {
                kind,
                ns,
                obj,
                brightness,
                on,
            }
        }),
        (arb_slot(), 0u32..100, any::<bool>()).prop_map(|((kind, ns, obj), brightness, on)| {
            Op::Put {
                kind,
                ns,
                obj,
                brightness,
                on,
            }
        }),
        (arb_slot(), 0u32..100).prop_map(|((kind, ns, obj), brightness)| Op::Merge {
            kind,
            ns,
            obj,
            brightness,
        }),
        (arb_slot(), 0u32..100).prop_map(|((kind, ns, obj), value)| Op::SetBrightness {
            kind,
            ns,
            obj,
            value,
        }),
        (arb_slot(), any::<bool>()).prop_map(|((kind, ns, obj), on)| Op::SetPower {
            kind,
            ns,
            obj,
            on,
        }),
        arb_slot().prop_map(|(kind, ns, obj)| Op::Delete { kind, ns, obj }),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        arb_op().prop_map(Step::Serial),
        arb_op().prop_map(Step::Serial),
        arb_op().prop_map(Step::Serial),
        prop::collection::vec(arb_op(), 1..8).prop_map(Step::Batch),
        prop::collection::vec(arb_op(), 1..8).prop_map(Step::Batch),
        (0usize..64).prop_map(|query| Step::Join { query }),
        (0usize..64).prop_map(|slot| Step::Leave { slot }),
        (0usize..64).prop_map(|slot| Step::Poll { slot }),
        (0usize..64).prop_map(|slot| Step::Poll { slot }),
        (0usize..NAMESPACES.len()).prop_map(|ns| Step::DeleteNamespace { ns }),
    ]
}

fn arb_script() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(arb_step(), 1..32)
}

fn to_store_op(op: &Op) -> StoreOp {
    match *op {
        Op::Create {
            kind,
            ns,
            obj,
            brightness,
            on,
        } => StoreOp::Create {
            oref: oref(kind, ns, obj),
            model: model(kind, ns, obj, brightness, on),
        },
        Op::Put {
            kind,
            ns,
            obj,
            brightness,
            on,
        } => StoreOp::Put {
            oref: oref(kind, ns, obj),
            model: model(kind, ns, obj, brightness, on),
            expected_rv: None,
        },
        Op::Merge {
            kind,
            ns,
            obj,
            brightness,
        } => StoreOp::Merge {
            oref: oref(kind, ns, obj),
            patch: json::parse(&format!(
                r#"{{"control": {{"brightness": {{"intent": {brightness}}}}},
                    "annotations": {{"note": "merge-{brightness}"}}}}"#
            ))
            .unwrap(),
        },
        Op::SetBrightness {
            kind,
            ns,
            obj,
            value,
        } => StoreOp::SetPath {
            oref: oref(kind, ns, obj),
            path: BRIGHTNESS.parse().unwrap(),
            value: Value::from(value as f64),
        },
        Op::SetPower { kind, ns, obj, on } => StoreOp::SetPath {
            oref: oref(kind, ns, obj),
            path: POWER.parse().unwrap(),
            value: Value::from(if on { "on" } else { "off" }),
        },
        Op::Delete { kind, ns, obj } => StoreOp::Delete {
            oref: oref(kind, ns, obj),
        },
    }
}

/// Every watch scope the accounting distinguishes: the shared all/kind/
/// object group cells, the single-shard kind-in-namespace registration,
/// and a predicate watch (exact accounting, commit-time matching).
fn watch_pool() -> Vec<Query> {
    vec![
        Query::all(),
        Query::kind("Lamp"),
        Query::kind("Plug"),
        Query::kind("Lamp").in_ns("alpha"),
        Query::kind("Plug").in_ns("beta").named("plug0"),
        Query::kind("Lamp")
            .in_ns("gamma")
            .filter(".control.brightness.intent > 50")
            .unwrap(),
    ]
}

fn serial_apply(store: &mut Store, op: &Op) {
    match *op {
        Op::Create {
            kind,
            ns,
            obj,
            brightness,
            on,
        } => {
            let _ = store.create(oref(kind, ns, obj), model(kind, ns, obj, brightness, on));
        }
        Op::Put {
            kind,
            ns,
            obj,
            brightness,
            on,
        } => {
            let _ = store.update(
                &oref(kind, ns, obj),
                model(kind, ns, obj, brightness, on),
                None,
            );
        }
        Op::Merge { .. } | Op::SetBrightness { .. } | Op::SetPower { .. } => {
            match to_store_op(op) {
                StoreOp::Merge { oref, patch } => {
                    let _ = store.update_via_merge(&oref, &patch);
                }
                StoreOp::SetPath { oref, path, value } => {
                    let _ = store.update_via_set(&oref, &path, &value);
                }
                _ => unreachable!(),
            };
        }
        Op::Delete { kind, ns, obj } => {
            let _ = store.delete(&oref(kind, ns, obj));
        }
    }
}

fn apply(store: &mut Store, watchers: &mut Vec<WatchId>, step: &Step) {
    match step {
        Step::Batch(ops) => {
            let _ = store.apply_batch(ops.iter().map(to_store_op).collect());
        }
        Step::Serial(op) => serial_apply(store, op),
        Step::Join { query } => {
            let pool = watch_pool();
            let q = &pool[*query % pool.len()];
            watchers.push(store.watch_query(q).unwrap());
        }
        Step::Leave { slot } => {
            if !watchers.is_empty() {
                let id = watchers.remove(*slot % watchers.len());
                store.cancel_watch(id);
            }
        }
        Step::Poll { slot } => {
            if !watchers.is_empty() {
                let id = watchers[*slot % watchers.len()];
                // Alternate raw and coalesced delivery by slot parity.
                if *slot % 2 == 0 {
                    let _ = store.poll(id);
                } else {
                    let _ = store.poll_coalesced(id);
                }
            }
        }
        Step::DeleteNamespace { ns } => {
            store.delete_namespace(NAMESPACES[*ns]);
        }
    }
}

/// `audit_sizes` recomputes truth from scratch — live `encoded_len`
/// walks for the cache, event-log materialization (rollback replay) for
/// stamped entry sizes, and a full scan for each member's pending
/// totals — and compares it with what the incremental path maintained.
fn audit(store: &Store, watchers: &[WatchId]) -> Result<(), TestCaseError> {
    if let Err(e) = store.audit_sizes() {
        return Err(TestCaseError::fail(e));
    }
    for &id in watchers {
        let (pending, bytes) = store.pending_totals(id);
        prop_assert_eq!(pending > 0, store.has_pending(id));
        prop_assert_eq!(bytes, store.pending_bytes(id));
    }
    Ok(())
}

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Property: incremental size accounting ≡ recomputed truth under churn
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// After every step of an arbitrary churn-plus-watcher script, the
    /// enc cache, every stamped log-entry size, and every watcher's
    /// pending event/byte totals equal freshly recomputed truth — at
    /// shard worker caps 1 and max. `verify_sizes` additionally makes
    /// every hinted append assert its hint against a full walk inside
    /// the shard, so a wrong delta fails at the write that produced it.
    #[test]
    fn size_accounting_is_exact_under_churn(script in arb_script()) {
        for threads in [1usize, max_threads()] {
            let mut store = Store::new();
            store.set_executor_threads(threads);
            store.set_verify_sizes(true);
            let mut watchers: Vec<WatchId> = Vec::new();
            // One watcher from the start so the very first writes are
            // accounted, not just post-join churn.
            watchers.push(store.watch_query(&Query::all()).unwrap());
            audit(&store, &watchers)?;
            for step in &script {
                apply(&mut store, &mut watchers, step);
                audit(&store, &watchers)?;
            }
            // Drain everything and re-audit the emptied logs.
            for &id in &watchers {
                let _ = store.poll(id);
            }
            audit(&store, &watchers)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Steady state: writes to a watched object never deep-clone the model
// ---------------------------------------------------------------------------

/// A watcher that keeps up (polls and drops its events) leaves only the
/// event log holding the model's `Arc` — and the write path steals that
/// snapshot back into rollback form, so create-then-churn over every
/// verb performs zero `Shared::make_mut` deep-clones.
#[test]
fn steady_state_writes_never_deep_clone() {
    let mut store = Store::new();
    store.set_verify_sizes(true);
    let w = store.watch_query(&Query::kind("Lamp")).unwrap();
    let o = oref(0, 0, 0);
    store.create(o.clone(), model(0, 0, 0, 10, true)).unwrap();
    let brightness: dspace_value::Path = BRIGHTNESS.parse().unwrap();
    for i in 0u32..200 {
        match i % 4 {
            0 => {
                store
                    .update_via_set(&o, &brightness, &Value::from(f64::from(i)))
                    .unwrap();
            }
            1 => {
                let patch = json::parse(&format!(
                    r#"{{"control": {{"power": {{"intent": "{}"}}}}}}"#,
                    if i % 8 == 1 { "on" } else { "off" }
                ))
                .unwrap();
                store.update_via_merge(&o, &patch).unwrap();
            }
            2 => {
                store
                    .update(&o, model(0, 0, 0, i % 100, i % 3 == 0), None)
                    .unwrap();
            }
            _ => {
                let rv = store.get(&o).unwrap().resource_version;
                store.fast_forward(&o, rv + 1).unwrap();
            }
        }
        let events = store.poll(w);
        assert!(!events.is_empty());
        drop(events); // release the shared snapshots before the next write
        assert_eq!(
            store.watch_stats().deep_clones,
            0,
            "write {i} deep-cloned a watched model"
        );
    }
    store.audit_sizes().unwrap();
}

// ---------------------------------------------------------------------------
// Regression: deprecated list/watch shims ≡ Query builder, byte for byte
// ---------------------------------------------------------------------------

fn line(o: &Object) -> String {
    format!(
        "{} rv={} {}",
        o.oref,
        o.resource_version,
        json::to_string(&o.model)
    )
}

fn event_line(e: &WatchEvent) -> String {
    format!(
        "r{} {:?} {} rv={} {}",
        e.revision,
        e.kind,
        e.oref,
        e.resource_version,
        json::to_string(&e.model)
    )
}

fn churn(store: &mut Store) {
    for (kind, ns, obj) in [(0, 0, 0), (0, 1, 1), (1, 1, 0), (1, 2, 2), (0, 2, 0)] {
        let (o, m) = (oref(kind, ns, obj), model(kind, ns, obj, 30, false));
        if store.get(&o).is_some() {
            store.update(&o, m, None).unwrap();
        } else {
            store.create(o, m).unwrap();
        }
    }
    let bright: dspace_value::Path = BRIGHTNESS.parse().unwrap();
    store
        .update_via_set(&oref(0, 0, 0), &bright, &Value::from(77.0))
        .unwrap();
    store
        .update_via_merge(
            &oref(1, 1, 0),
            &json::parse(r#"{"control": {"power": {"intent": "on"}}}"#).unwrap(),
        )
        .unwrap();
    store.delete(&oref(0, 1, 1)).unwrap();
    store
        .create(oref(0, 1, 1), model(0, 1, 1, 99, true))
        .unwrap();
}

/// `list` / `list_in` / `list_all` (store and snapshot) must return
/// byte-for-byte what the `Query` builder returns for the equivalent
/// scope — the shims are thin renames, not a second read path.
#[test]
#[allow(deprecated)]
fn deprecated_list_shims_match_query_builder() {
    let mut store = Store::new();
    churn(&mut store);

    let via_shim: Vec<String> = store.list("Lamp").into_iter().map(line).collect();
    let via_query: Vec<String> = store.query(&Query::kind("Lamp")).iter().map(line).collect();
    assert_eq!(via_shim, via_query);

    let via_shim: Vec<String> = store
        .list_in("Plug", "beta")
        .into_iter()
        .map(line)
        .collect();
    let via_query: Vec<String> = store
        .query(&Query::kind("Plug").in_ns("beta"))
        .iter()
        .map(line)
        .collect();
    assert_eq!(via_shim, via_query);

    let via_shim: Vec<String> = store.list_all().into_iter().map(line).collect();
    let via_query: Vec<String> = store.query(&Query::all()).iter().map(line).collect();
    assert_eq!(via_shim, via_query);

    let snap = store.snapshot();
    let via_shim: Vec<String> = snap.list("Lamp").into_iter().map(line).collect();
    let via_query: Vec<String> = snap
        .query(&Query::kind("Lamp"))
        .into_iter()
        .map(line)
        .collect();
    assert_eq!(via_shim, via_query);
    let via_shim: Vec<String> = snap
        .list_in("Lamp", "alpha")
        .into_iter()
        .map(line)
        .collect();
    let via_query: Vec<String> = snap
        .query(&Query::kind("Lamp").in_ns("alpha"))
        .into_iter()
        .map(line)
        .collect();
    assert_eq!(via_shim, via_query);
    let via_shim: Vec<String> = snap.list_all().into_iter().map(line).collect();
    let via_query: Vec<String> = snap.query(&Query::all()).into_iter().map(line).collect();
    assert_eq!(via_shim, via_query);
}

/// The deprecated watch entry points (`watch`, `watch_selector`,
/// `watch_selectors`, `add_selector`) must produce event streams
/// byte-identical to `watch_query`/`watch_queries`/`extend_watch` over
/// the same churn, including shared-snapshot deliveries and byte
/// accounting.
#[test]
#[allow(deprecated)]
fn deprecated_watch_shims_match_query_builder() {
    let mut store = Store::new();
    store.set_verify_sizes(true);

    let shim_all = store.watch(None);
    let query_all = store.watch_query(&Query::all()).unwrap();
    let shim_kind = store.watch(Some("Lamp"));
    let query_kind = store.watch_query(&Query::kind("Lamp")).unwrap();
    let shim_obj = store.watch_selector(WatchSelector::Object(oref(1, 1, 0)));
    let query_obj = store
        .watch_query(&Query::kind("Plug").in_ns("beta").named("plug0"))
        .unwrap();
    let shim_union = store.watch_selectors(vec![
        WatchSelector::KindInNamespace {
            kind: "Lamp".into(),
            namespace: "alpha".into(),
        },
        WatchSelector::Kind("Plug".into()),
    ]);
    let query_union = store
        .watch_queries(&[Query::kind("Lamp").in_ns("alpha"), Query::kind("Plug")])
        .unwrap();

    churn(&mut store);

    // Same pending byte totals before delivery...
    for (shim, query) in [
        (shim_all, query_all),
        (shim_kind, query_kind),
        (shim_obj, query_obj),
        (shim_union, query_union),
    ] {
        assert_eq!(store.pending_totals(shim), store.pending_totals(query));
        // ...and the same events, byte for byte.
        let shim_events: Vec<String> = store.poll(shim).iter().map(event_line).collect();
        let query_events: Vec<String> = store.poll(query).iter().map(event_line).collect();
        assert!(!shim_events.is_empty());
        assert_eq!(shim_events, query_events);
        store.cancel_watch(shim);
        store.cancel_watch(query);
    }

    // Widening a shim watch via `add_selector` tracks `extend_watch`.
    let shim = store.watch_selector(WatchSelector::KindInNamespace {
        kind: "Lamp".into(),
        namespace: "alpha".into(),
    });
    let query = store
        .watch_query(&Query::kind("Lamp").in_ns("alpha"))
        .unwrap();
    assert!(store.add_selector(shim, WatchSelector::Kind("Plug".into())));
    assert!(store.extend_watch(query, &Query::kind("Plug")).unwrap());
    churn(&mut store);
    assert_eq!(store.pending_totals(shim), store.pending_totals(query));
    let shim_events: Vec<String> = store.poll(shim).iter().map(event_line).collect();
    let query_events: Vec<String> = store.poll(query).iter().map(event_line).collect();
    assert!(!shim_events.is_empty());
    assert_eq!(shim_events, query_events);
    store.audit_sizes().unwrap();
}

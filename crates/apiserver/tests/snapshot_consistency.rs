//! Snapshot consistency: `ApiServer::snapshot` is batch-boundary exact.
//!
//! A snapshot taken between batches must equal the store state at that
//! boundary — bit for bit, at any executor thread count — and must stay
//! frozen there while later batches commit around it (copy-on-write: the
//! coordinator clones shared maps rather than mutating them in place).
//! A snapshot can never observe half of a batch: `snapshot()` borrows
//! the server immutably, every mutation path borrows it mutably, so the
//! only reachable states are commit boundaries.

use proptest::prelude::*;

use dspace_apiserver::{ApiServer, BatchOp, ObjectRef, Query, StoreSnapshot};
use dspace_value::{json, Value};

const NAMESPACES: [&str; 3] = ["alpha", "beta", "gamma"];
const OBJECTS_PER_NS: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    SetN { ns: usize, obj: usize, value: u32 },
    Delete { ns: usize, obj: usize },
    Create { ns: usize, obj: usize },
}

fn arb_script() -> impl Strategy<Value = Vec<Vec<Op>>> {
    let op = prop_oneof![
        ((0usize..3), (0usize..OBJECTS_PER_NS), (0u32..100))
            .prop_map(|(ns, obj, value)| Op::SetN { ns, obj, value }),
        ((0usize..3), (0usize..OBJECTS_PER_NS)).prop_map(|(ns, obj)| Op::Delete { ns, obj }),
        ((0usize..3), (0usize..OBJECTS_PER_NS)).prop_map(|(ns, obj)| Op::Create { ns, obj }),
    ];
    prop::collection::vec(prop::collection::vec(op, 1..10), 1..10)
}

fn oref(ns: usize, obj: usize) -> ObjectRef {
    ObjectRef::new("Thing", NAMESPACES[ns], format!("t{obj}"))
}

fn model(ns: usize, obj: usize) -> Value {
    json::parse(&format!(
        r#"{{"meta": {{"kind": "Thing", "name": "t{obj}", "namespace": "{}"}}, "n": 0}}"#,
        NAMESPACES[ns]
    ))
    .unwrap()
}

fn to_batch_op(op: &Op) -> BatchOp {
    match *op {
        Op::SetN { ns, obj, value } => BatchOp::PatchPath {
            oref: oref(ns, obj),
            path: ".n".into(),
            value: Value::from(value as f64),
        },
        Op::Delete { ns, obj } => BatchOp::Delete {
            oref: oref(ns, obj),
        },
        Op::Create { ns, obj } => BatchOp::Create {
            oref: oref(ns, obj),
            model: model(ns, obj),
        },
    }
}

fn setup(threads: usize) -> ApiServer {
    let mut api = ApiServer::new();
    api.set_executor_threads(threads);
    for ns in 0..NAMESPACES.len() {
        for obj in 0..OBJECTS_PER_NS {
            api.create(ApiServer::ADMIN, &oref(ns, obj), model(ns, obj))
                .unwrap();
        }
    }
    api
}

/// Serializes everything a snapshot exposes.
fn fingerprint(snap: &StoreSnapshot) -> Vec<String> {
    let mut out = vec![format!("revision={}", snap.revision())];
    for obj in snap.query(&Query::all()) {
        out.push(format!(
            "{} rv={} {}",
            obj.oref,
            obj.resource_version,
            json::to_string(&obj.model)
        ));
    }
    out
}

/// Applies the script once at `threads`, snapshotting after every batch
/// and keeping every snapshot alive until the very end.
fn run(script: &[Vec<Op>], threads: usize) -> Vec<StoreSnapshot> {
    let mut api = setup(threads);
    let mut snaps = vec![api.snapshot()];
    for batch in script {
        let ops: Vec<BatchOp> = batch.iter().map(to_batch_op).collect();
        api.apply_batch(ApiServer::ADMIN, ops);
        snaps.push(api.snapshot());
    }
    snaps
}

proptest! {
    /// Every snapshot equals the batch-boundary state it was taken at —
    /// across executor thread counts, and even though every snapshot was
    /// held alive while all later batches committed (no torn batches, no
    /// retroactive mutation through shared maps).
    #[test]
    fn snapshots_pin_batch_boundaries_at_any_thread_count(script in arb_script()) {
        // Reference history: consume each boundary's fingerprint
        // immediately, before the next batch runs.
        let mut api = setup(1);
        let mut reference = vec![fingerprint(&api.snapshot())];
        for batch in &script {
            let ops: Vec<BatchOp> = batch.iter().map(to_batch_op).collect();
            api.apply_batch(ApiServer::ADMIN, ops);
            reference.push(fingerprint(&api.snapshot()));
        }
        for threads in [1usize, 2, 4] {
            let snaps = run(&script, threads);
            prop_assert_eq!(snaps.len(), reference.len());
            for (k, snap) in snaps.iter().enumerate() {
                prop_assert_eq!(
                    &fingerprint(snap), &reference[k],
                    "threads={}, boundary {}", threads, k
                );
            }
        }
    }
}

/// Snapshots are `Send + Sync`: a reader thread can chew on one while
/// the coordinator keeps committing, with no lock between them, and the
/// reader still sees exactly its boundary.
#[test]
fn reader_threads_see_their_boundary_while_writes_continue() {
    let mut api = setup(2);
    let snap = api.snapshot();
    let pinned = fingerprint(&snap);
    let reader = std::thread::spawn(move || fingerprint(&snap));
    for round in 0..50 {
        let ops: Vec<BatchOp> = (0..6)
            .map(|i| BatchOp::PatchPath {
                oref: oref(i % 3, i % OBJECTS_PER_NS),
                path: ".n".into(),
                value: Value::from((round * 10 + i) as f64),
            })
            .collect();
        api.apply_batch(ApiServer::ADMIN, ops);
    }
    assert_eq!(reader.join().unwrap(), pinned);
    assert_ne!(
        fingerprint(&api.snapshot()),
        pinned,
        "the live store moved on"
    );
}

/// The hot read paths bump the snapshot-read counter, never the store's
/// direct-read counter: zero store involvement per read.
#[test]
fn snapshot_reads_never_touch_the_store() {
    let api = setup(1);
    let direct_before = api.direct_reads();
    let snap_before = api.snapshot_reads();
    let snap = api.snapshot();
    snap.get(&oref(0, 0));
    assert_eq!(snap.query(&Query::kind("Thing")).len(), 6);
    assert_eq!(
        snap.query(&Query::kind("Thing").in_ns("alpha")).len(),
        OBJECTS_PER_NS
    );
    assert_eq!(snap.query(&Query::all()).len(), 6);
    assert_eq!(
        api.snapshot_reads(),
        snap_before + 4,
        "each accessor counts as one snapshot read"
    );
    assert_eq!(
        api.direct_reads(),
        direct_before,
        "snapshot reads take zero store reads (and zero store locks)"
    );
}
